#!/bin/bash
# Regenerates every table and figure of the paper. Results land in results/.
# Scale with AUTOBLOX_SCALE=quick|standard|full (default standard).
set -u
BINS="fig02_clustering fig04_coarse_pruning fig05_fine_pruning table1_nvme_mlc \
table4_new_workloads table6_overheads fig07_energy fig08_learning_time \
fig09_tuning_order fig10_trajectory table7_whatif table8_nvme_slc \
table9_sata_mlc fig11_alpha_sweep fig12_beta_sweep \
ablation_surrogates ablation_validation_pruning ablation_root_selection \
ablation_clustering_params ablation_ftl_policies"
for bin in $BINS; do
    echo "=== $bin ==="
    cargo run --release -p autoblox-bench --bin "$bin" > "results/$bin.txt" 2> "results/$bin.log"
    echo "    exit=$? ($(wc -l < results/$bin.txt) lines)"
done
