//! Compare the three commodity baselines the paper evaluates against
//! (Intel 750, Samsung 850 PRO, Samsung Z-SSD) across every workload
//! category, including the read-path wait decomposition.
//!
//! Run with: `cargo run --release --example compare_baselines`

use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;
use ssdsim::{SimReport, Simulator};

fn run(cfg: ssdsim::SsdConfig, kind: WorkloadKind) -> SimReport {
    let trace = kind.spec().generate(5_000, 0xB10C5);
    let mut sim = Simulator::new(cfg);
    sim.warm_up(0.5);
    sim.run(&trace)
}

fn main() {
    let baselines = [
        ("Intel 750 (NVMe MLC)", presets::intel_750()),
        ("Samsung 850 PRO (SATA MLC)", presets::samsung_850_pro()),
        ("Samsung Z-SSD (NVMe SLC)", presets::samsung_z_ssd()),
    ];

    for (name, cfg) in &baselines {
        println!("\n=== {name} ===");
        println!(
            "{:<16} {:>9} {:>9} {:>10} {:>8} {:>9} {:>9}",
            "workload", "mean(us)", "p99(us)", "tp(MiB/s)", "cache", "die-wait", "ch-wait"
        );
        for kind in WorkloadKind::STUDIED {
            let r = run(cfg.clone(), kind);
            println!(
                "{:<16} {:>9.0} {:>9.0} {:>10.0} {:>7.0}% {:>7.0}us {:>7.0}us",
                kind.name(),
                r.latency.mean_ns / 1e3,
                r.latency.p99_ns as f64 / 1e3,
                r.throughput_mibps(),
                r.read_cache_hit_rate * 100.0,
                r.read_breakdown.mean_die_wait_ns / 1e3,
                r.read_breakdown.mean_channel_wait_ns / 1e3,
            );
        }
    }

    println!(
        "\nExpected shape: the SLC Z-SSD wins latency everywhere; SATA caps \
         streaming throughput at ~570 MiB/s; MLC NVMe sits between."
    );
}
