//! What-if analysis (§4.5): search for configurations that meet explicit
//! performance targets, as SSD vendors would when planning a next-generation
//! device.
//!
//! Run with: `cargo run --release --example whatif_analysis`

use autoblox::constraints::Constraints;
use autoblox::tuner::TunerOptions;
use autoblox::validator::{Validator, ValidatorOptions};
use autoblox::whatif::{what_if, WhatIfGoal, WhatIfOptions};
use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;

fn main() {
    let validator = Validator::new(ValidatorOptions {
        trace_events: 1_500,
        ..Default::default()
    });
    let opts = WhatIfOptions {
        tuner: TunerOptions {
            max_iterations: 15,
            ..TunerOptions::default()
        },
    };

    // Latency-sensitive workloads chase a latency-reduction target;
    // throughput-intensive workloads chase a throughput target (Table 7
    // uses VDI/WebSearch and Database/KVStore respectively).
    let goals = [
        (WorkloadKind::Vdi, WhatIfGoal::LatencyReduction(1.5)),
        (WorkloadKind::WebSearch, WhatIfGoal::LatencyReduction(1.5)),
        (
            WorkloadKind::Database,
            WhatIfGoal::ThroughputImprovement(1.2),
        ),
        (
            WorkloadKind::KvStore,
            WhatIfGoal::ThroughputImprovement(1.2),
        ),
    ];

    for (kind, goal) in goals {
        let out = what_if(
            kind,
            goal,
            Constraints::paper_default(),
            &presets::intel_750(),
            &validator,
            opts.clone(),
        );
        let goal_desc = match goal {
            WhatIfGoal::LatencyReduction(f) => format!("{f:.1}x lower latency"),
            WhatIfGoal::ThroughputImprovement(f) => format!("{f:.1}x higher throughput"),
        };
        println!(
            "{:<12} goal: {:<24} achieved {:.2}x after {} iterations -> {}",
            out.workload,
            goal_desc,
            out.achieved,
            out.tuning.iterations,
            if out.met { "MET" } else { "not met" }
        );
        let c = &out.tuning.best.config;
        println!(
            "    channels={} chips/ch={} dies={} planes={} cache={}MiB cmt={}MiB rate={}MT/s qd={}",
            c.channel_count,
            c.chips_per_channel,
            c.dies_per_chip,
            c.planes_per_die,
            c.data_cache_mb,
            c.cmt_capacity_mb,
            c.channel_transfer_rate_mts,
            c.io_queue_depth
        );
    }
}
