//! The full framework flow (Figure 3): train clustering, learn a
//! configuration for a new workload, persist it in AutoDB, and watch the
//! second encounter recall the stored configuration instantly.
//!
//! Run with: `cargo run --release --example tune_with_autodb`

use autoblox::constraints::Constraints;
use autoblox::framework::{AutoBlox, AutoBloxOptions, Recommendation};
use autoblox::tuner::TunerOptions;
use autoblox::validator::{Validator, ValidatorOptions};
use autodb::Store;
use iotrace::gen::WorkloadKind;
use iotrace::window::WindowOptions;
use iotrace::Trace;
use ssdsim::config::presets;
use std::time::Instant;

fn main() {
    let validator = Validator::new(ValidatorOptions {
        trace_events: 1_000,
        ..Default::default()
    });
    let db_path = std::env::temp_dir().join("autoblox-example-autodb.db");
    std::fs::remove_file(&db_path).ok();
    let db = Store::open(&db_path).expect("open AutoDB");

    let mut framework = AutoBlox::new(
        Constraints::paper_default(),
        &validator,
        db,
        AutoBloxOptions {
            tuner: TunerOptions {
                max_iterations: 8,
                non_target: vec![WorkloadKind::WebSearch],
                ..TunerOptions::default()
            },
            window: WindowOptions { window_len: 1_000 },
            ..Default::default()
        },
    );

    // Train the clustering front end on three distinct categories.
    let kinds = [
        WorkloadKind::WebSearch,
        WorkloadKind::Database,
        WorkloadKind::CloudStorage,
    ];
    let train: Vec<Trace> = kinds.iter().map(|k| k.spec().generate(6_000, 3)).collect();
    framework
        .train_clustering(&train, kinds.len())
        .expect("train");
    println!(
        "clustering trained: {} clusters",
        framework.clusterer().unwrap().k()
    );

    // First encounter with a database-like trace: AutoBlox learns.
    let trace1 = WorkloadKind::Database.spec().generate(3_000, 404);
    let t0 = Instant::now();
    let r1 = framework.recommend(&trace1, &presets::intel_750());
    match &r1 {
        Recommendation::Learned { cluster, outcome, .. } => println!(
            "first encounter : LEARNED for cluster {cluster} in {:.1}s ({} validations, grade {:+.4})",
            t0.elapsed().as_secs_f64(),
            outcome.validations,
            outcome.best.grade
        ),
        Recommendation::Recalled { .. } => unreachable!("empty AutoDB cannot recall"),
    }

    // Second encounter with a different database-like trace: recalled.
    let trace2 = WorkloadKind::Database.spec().generate(3_000, 808);
    let t1 = Instant::now();
    let r2 = framework.recommend(&trace2, &presets::intel_750());
    match &r2 {
        Recommendation::Recalled { cluster, distance, stored } => println!(
            "second encounter: RECALLED cluster {cluster} (distance {distance:.2}) in {:.3}s, stored grade {:+.4}",
            t1.elapsed().as_secs_f64(),
            stored.grade
        ),
        Recommendation::Learned { .. } => println!("second encounter unexpectedly re-learned"),
    }

    println!(
        "\nAutoDB at {:?}: {} keys, {} log records",
        framework.db().path().unwrap(),
        framework.db().len(),
        framework.db().log_records()
    );
    std::fs::remove_file(&db_path).ok();
}
