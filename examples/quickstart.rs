//! Quickstart: learn an optimized SSD configuration for one workload.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! This walks the core AutoBlox loop end to end: generate a workload trace,
//! set the user constraints (`set_cons`-style), tune against the Intel 750
//! reference configuration, and print the learned configuration with its
//! speedups.

use autoblox::constraints::Constraints;
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox::validator::{Validator, ValidatorOptions};
use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;

fn main() {
    // 1. The target workload: a TPCC-style database service.
    let target = WorkloadKind::Database;
    println!("target workload : {target}");

    // 2. User constraints, as in the paper's §4.2 evaluation:
    //    512 GiB, NVMe, MLC flash, 25 W power budget.
    let constraints = Constraints::paper_default();
    println!(
        "constraints     : {} GiB, {}, {}, {} W",
        constraints.capacity_bytes >> 30,
        constraints.interface,
        constraints.flash_type,
        constraints.power_budget_w
    );

    // 3. The efficiency validator wraps the SSD simulator.
    let validator = Validator::new(ValidatorOptions {
        trace_events: 2_000,
        ..Default::default()
    });

    // 4. Tune, grading candidates against two non-target workload clusters.
    let opts = TunerOptions {
        max_iterations: 12,
        non_target: vec![WorkloadKind::WebSearch, WorkloadKind::CloudStorage],
        ..Default::default()
    };
    let tuner = Tuner::new(constraints, &validator, opts);
    let outcome = tuner.tune(target, &presets::intel_750(), &[], None);

    // 5. Report.
    let best = &outcome.best;
    println!(
        "\nconverged after {} iterations ({} simulator validations)",
        outcome.iterations, outcome.validations
    );
    println!(
        "latency   : {:8.1} us -> {:8.1} us  ({:.2}x)",
        outcome.reference.latency_ns / 1e3,
        best.measurement.latency_ns / 1e3,
        best.measurement.latency_speedup(&outcome.reference)
    );
    println!(
        "throughput: {:8.1} MiB/s -> {:8.1} MiB/s  ({:.2}x)",
        outcome.reference.throughput_bps / (1 << 20) as f64,
        best.measurement.throughput_bps / (1 << 20) as f64,
        best.measurement.throughput_speedup(&outcome.reference)
    );
    println!("grade     : {:+.4}", best.grade);

    let c = &best.config;
    println!("\nlearned configuration (vs Intel 750):");
    println!(
        "  flash channels     : {:4}  (baseline 12)",
        c.channel_count
    );
    println!(
        "  chips per channel  : {:4}  (baseline 5)",
        c.chips_per_channel
    );
    println!("  dies per chip      : {:4}  (baseline 8)", c.dies_per_chip);
    println!(
        "  planes per die     : {:4}  (baseline 1)",
        c.planes_per_die
    );
    println!(
        "  data cache (MiB)   : {:4}  (baseline 800)",
        c.data_cache_mb
    );
    println!(
        "  CMT capacity (MiB) : {:4}  (baseline 256)",
        c.cmt_capacity_mb
    );
    println!(
        "  queue depth        : {:4}  (baseline 32)",
        c.io_queue_depth
    );
}
