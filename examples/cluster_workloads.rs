//! Workload clustering demo (Figure 2 of the paper).
//!
//! Run with: `cargo run --release --example cluster_workloads`
//!
//! Trains the PCA + k-means front end on the seven studied workload
//! categories, verifies that fresh traces of each category land in their own
//! cluster, and shows how an unseen workload (FIU) is detected as new.

use autoblox::clustering::{ClusterDecision, WorkloadClusterer};
use iotrace::gen::WorkloadKind;
use iotrace::window::WindowOptions;
use iotrace::Trace;

fn main() {
    let window = WindowOptions { window_len: 1_000 };

    // Train on the seven studied categories of Table 2.
    let train: Vec<Trace> = WorkloadKind::STUDIED
        .iter()
        .map(|k| k.spec().generate(8_000, 11))
        .collect();
    let mut model =
        WorkloadClusterer::fit(&train, WorkloadKind::STUDIED.len(), window, 7).expect("fit");
    println!(
        "trained {} clusters; PCA captures {:.1}% of variance; new-cluster threshold {:.2}",
        model.k(),
        model.explained_variance() * 100.0,
        model.threshold()
    );

    // Validation: unseen traces (different seeds) of the studied kinds.
    println!(
        "\n{:<16} {:>8} {:>10}  decision",
        "workload", "cluster", "distance"
    );
    for kind in WorkloadKind::STUDIED {
        let fresh = kind.spec().generate(4_000, 977);
        match model.classify(&fresh).expect("classify") {
            ClusterDecision::Existing { cluster, distance } => {
                println!(
                    "{:<16} {cluster:>8} {distance:>10.3}  existing",
                    kind.name()
                );
            }
            ClusterDecision::New { nearest, distance } => {
                println!("{:<16} {nearest:>8} {distance:>10.3}  NEW", kind.name());
            }
        }
    }

    // The paper's Table 3 workloads: some match studied clusters
    // (LevelDB ~ KVStore, MySQL ~ Database, HDFS ~ CloudStorage), others
    // are genuinely new access patterns.
    println!("\nnew workloads (Table 3):");
    for kind in WorkloadKind::NEW {
        let t = kind.spec().generate(4_000, 31);
        match model.classify(&t).expect("classify") {
            ClusterDecision::Existing { cluster, distance } => {
                println!(
                    "  {:<12} joins cluster {cluster} (distance {distance:.3})",
                    kind.name()
                );
            }
            ClusterDecision::New { nearest, distance } => {
                let id = model.learn_new_cluster(&t).expect("retrain");
                println!(
                    "  {:<12} is NEW (nearest {nearest}, distance {distance:.3}) -> created cluster {id}",
                    kind.name()
                );
            }
        }
    }
    println!("\nfinal cluster count: {}", model.k());
}
