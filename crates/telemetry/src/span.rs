//! Structured span tracing: nested, thread-aware, deterministic.
//!
//! A [`Span`] is an RAII guard around one timed region of the pipeline
//! (a simulator replay, a tuner iteration, a pruning sweep). Spans nest
//! through a thread-local stack, cross worker-pool boundaries via
//! [`adopt_parent`], and carry **content-derived deterministic ids**: a
//! span's id is a hash of its parent id, its name, and a discriminator —
//! either an explicit caller-supplied key ([`Span::enter_keyed`], for work
//! items that may execute on any worker thread) or a per-thread sequence
//! number ([`Span::enter`], for strictly sequential regions). Because ids
//! never depend on wall-clock time or scheduling, the canonical span tree
//! of a run is identical at `AUTOBLOX_THREADS=1` and `=4`.
//!
//! Completed spans land in a **bounded ring buffer** guarded by a plain
//! mutex held only for a push or a drain — never across I/O — with a drop
//! counter for overflow, so the instrumented hot path cannot block on a
//! slow journal consumer. While tracing is disabled (the default) entering
//! a span costs one relaxed atomic load and performs **no allocation**
//! (enforced by `tests/disabled_alloc.rs`).
//!
//! # Examples
//!
//! ```
//! telemetry::span::set_tracing(true);
//! {
//!     let _outer = telemetry::span::Span::enter("outer");
//!     let _inner = telemetry::span::Span::enter_keyed("inner", 7);
//! }
//! let mut spans = Vec::new();
//! telemetry::span::drain_spans(&mut spans);
//! telemetry::span::set_tracing(false);
//! assert_eq!(spans.len(), 2);
//! assert_eq!(spans[0].name, "inner"); // inner closed first
//! assert_eq!(spans[0].parent, spans[1].id);
//! ```

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::Counter;

/// The process-wide tracing switch; off by default and independent of the
/// telemetry switch so counter-only runs never pay for span recording.
static TRACING: AtomicBool = AtomicBool::new(false);

/// Spans dropped because the ring buffer was full.
static DROPPED: Counter = Counter::new();

/// Next thread ordinal for [`SpanRecord::thread`].
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

/// Default capacity of the completed-span ring buffer.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// FNV-1a offset basis / prime (same constants as the validator's
/// `ConfigKey`, reused for span identity hashing).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One completed span, as drained from the ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Deterministic span id (content-derived, never zero).
    pub id: u64,
    /// Parent span id; `0` for a root span.
    pub parent: u64,
    /// Static span name (e.g. `sim.run`, `tuner.iteration`).
    pub name: &'static str,
    /// Discriminator the id was derived from: the caller's key for
    /// [`Span::enter_keyed`], a per-thread sequence number otherwise.
    pub disc: u64,
    /// Start time relative to the tracing epoch, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
    /// Ordinal of the OS thread the span ran on (diagnostic only — not
    /// part of the span's identity, so canonical trees stay thread-count
    /// invariant).
    pub thread: u64,
}

struct Ring {
    buf: VecDeque<SpanRecord>,
    cap: usize,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            buf: VecDeque::new(),
            cap: DEFAULT_RING_CAPACITY,
        })
    })
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One frame of the thread-local span stack: the span (or adopted parent)
/// id, and whether the frame came from [`adopt_parent`].
struct Frame {
    id: u64,
    adopted: bool,
}

#[derive(Default)]
struct ThreadCtx {
    stack: Vec<Frame>,
    /// Per-(parent, name) sequence counters for [`Span::enter`].
    seq: HashMap<(u64, &'static str), u64>,
    /// This thread's ordinal (assigned on first traced span).
    ordinal: u64,
}

thread_local! {
    static CTX: RefCell<ThreadCtx> = RefCell::new(ThreadCtx::default());
}

/// Turns span tracing on or off for the whole process. Enabling also pins
/// the tracing epoch that [`SpanRecord::start_ns`] is measured from.
pub fn set_tracing(on: bool) {
    if on {
        let _ = epoch();
    }
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether span tracing is currently enabled (one relaxed load).
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Replaces the ring-buffer capacity (existing contents are kept up to the
/// new capacity; newest records are discarded first on shrink).
pub fn set_ring_capacity(cap: usize) {
    let mut ring = lock_ring();
    ring.cap = cap.max(1);
    while ring.buf.len() > ring.cap {
        ring.buf.pop_back();
        DROPPED.inc();
    }
}

/// Moves every buffered span into `out` (oldest first).
pub fn drain_spans(out: &mut Vec<SpanRecord>) {
    let mut ring = lock_ring();
    out.extend(ring.buf.drain(..));
}

/// Spans dropped so far because the ring buffer was full.
pub fn dropped_spans() -> u64 {
    DROPPED.get()
}

/// Clears the ring buffer, the drop counter, and the **calling thread's**
/// sequence counters, so two runs traced back-to-back in one process
/// produce identical span ids. Worker threads are scoped (they die with
/// their batch), so resetting the calling thread is sufficient for the
/// sequential pipeline.
pub fn reset_tracing_state() {
    lock_ring().buf.clear();
    DROPPED.reset();
    CTX.with(|ctx| ctx.borrow_mut().seq.clear());
}

fn lock_ring() -> std::sync::MutexGuard<'static, Ring> {
    ring()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The current innermost span id on this thread (`0` when tracing is off
/// or no span is open). Capture this before fanning work out to a pool and
/// hand it to [`adopt_parent`] inside each worker.
#[inline]
pub fn current_span() -> u64 {
    if !tracing_enabled() {
        return 0;
    }
    CTX.with(|ctx| ctx.borrow().stack.last().map(|f| f.id).unwrap_or(0))
}

/// Guard that re-parents spans opened on this thread under `parent` (see
/// [`adopt_parent`]).
#[must_use = "dropping the guard immediately un-adopts the parent"]
pub struct ParentGuard {
    active: bool,
}

/// Installs `parent` as the ambient parent for spans subsequently opened
/// on this thread, until the returned guard drops. A `parent` of `0` (or
/// tracing being disabled) yields an inert guard, so worker pools can call
/// this unconditionally.
pub fn adopt_parent(parent: u64) -> ParentGuard {
    if !tracing_enabled() || parent == 0 {
        return ParentGuard { active: false };
    }
    CTX.with(|ctx| {
        ctx.borrow_mut().stack.push(Frame {
            id: parent,
            adopted: true,
        });
    });
    ParentGuard { active: true }
}

impl Drop for ParentGuard {
    fn drop(&mut self) {
        if self.active {
            CTX.with(|ctx| {
                let popped = ctx.borrow_mut().stack.pop();
                debug_assert!(popped.is_some_and(|f| f.adopted), "unbalanced adopt_parent");
            });
        }
    }
}

/// Derives a content key for [`Span::enter_keyed`] from a string (FNV-1a).
pub fn key_str(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in s.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes a span's identity from its parent, name, and discriminator.
/// Keyed and sequential discriminators hash into disjoint id spaces.
fn span_id(parent: u64, name: &str, disc: u64, keyed: bool) -> u64 {
    let mut h = FNV_OFFSET;
    for chunk in [parent, disc, u64::from(keyed)] {
        for b in chunk.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
    for &b in name.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h.max(1)
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    disc: u64,
    start: Instant,
    thread: u64,
}

/// An RAII guard for one traced region; see the [module docs](self).
///
/// While tracing is disabled the guard is inert: no allocation, no clock
/// read, no thread-local access.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span(Option<ActiveSpan>);

impl Span {
    /// Opens a span whose discriminator is a per-thread `(parent, name)`
    /// sequence number. Deterministic for regions that execute
    /// sequentially on one thread (the outer pipeline); inside a parallel
    /// fan-out use [`Span::enter_keyed`] with a content-derived key.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        if !tracing_enabled() {
            return Span(None);
        }
        Span::open(name, None)
    }

    /// Opens a span with an explicit content-derived discriminator (e.g. a
    /// configuration fingerprint or an iteration index), making its id
    /// independent of which thread executes it.
    #[inline]
    pub fn enter_keyed(name: &'static str, key: u64) -> Span {
        if !tracing_enabled() {
            return Span(None);
        }
        Span::open(name, Some(key))
    }

    #[cold]
    fn open(name: &'static str, key: Option<u64>) -> Span {
        let start = Instant::now();
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            if ctx.ordinal == 0 {
                ctx.ordinal = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            }
            let parent = ctx.stack.last().map(|f| f.id).unwrap_or(0);
            let (disc, keyed) = match key {
                Some(k) => (k, true),
                None => {
                    let seq = ctx.seq.entry((parent, name)).or_insert(0);
                    let d = *seq;
                    *seq += 1;
                    (d, false)
                }
            };
            let id = span_id(parent, name, disc, keyed);
            ctx.stack.push(Frame { id, adopted: false });
            Span(Some(ActiveSpan {
                id,
                parent,
                name,
                disc,
                start,
                thread: ctx.ordinal,
            }))
        })
    }

    /// The span's deterministic id (`0` for an inert span).
    pub fn id(&self) -> u64 {
        self.0.as_ref().map(|a| a.id).unwrap_or(0)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        CTX.with(|ctx| {
            let popped = ctx.borrow_mut().stack.pop();
            debug_assert!(
                popped.is_some_and(|f| f.id == active.id && !f.adopted),
                "unbalanced span nesting"
            );
        });
        let e = epoch();
        let start_ns =
            u64::try_from(active.start.saturating_duration_since(e).as_nanos()).unwrap_or(u64::MAX);
        let dur_ns = u64::try_from(active.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            disc: active.disc,
            start_ns,
            dur_ns,
            thread: active.thread,
        };
        let mut ring = lock_ring();
        if ring.buf.len() >= ring.cap {
            // The hot path never blocks or grows without bound: overflow
            // drops the newest record and counts it.
            DROPPED.inc();
        } else {
            ring.buf.push_back(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All tracing tests share one lock: the switch, ring, and drop
    /// counter are process-wide.
    static TRACE_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TRACE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = locked();
        set_tracing(false);
        let s = Span::enter("noop");
        assert_eq!(s.id(), 0);
        assert_eq!(current_span(), 0);
        drop(s);
        let mut out = Vec::new();
        drain_spans(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn nesting_parents_and_determinism() {
        let _guard = locked();
        set_tracing(true);
        reset_tracing_state();
        let run = || {
            reset_tracing_state();
            let outer = Span::enter("outer");
            let outer_id = outer.id();
            let inner = Span::enter_keyed("inner", 42);
            let inner_id = inner.id();
            drop(inner);
            drop(outer);
            let mut out = Vec::new();
            drain_spans(&mut out);
            (outer_id, inner_id, out)
        };
        let (o1, i1, spans1) = run();
        let (o2, i2, spans2) = run();
        set_tracing(false);
        assert_eq!(o1, o2, "sequence-derived ids must repeat after reset");
        assert_eq!(i1, i2, "keyed ids must repeat");
        assert_eq!(spans1.len(), 2);
        assert_eq!(spans1[0].parent, o1, "inner nests under outer");
        assert_eq!(spans1[1].parent, 0, "outer is a root");
        let strip = |v: &[SpanRecord]| -> Vec<(u64, u64, &str, u64)> {
            v.iter().map(|s| (s.parent, s.id, s.name, s.disc)).collect()
        };
        assert_eq!(strip(&spans1), strip(&spans2));
    }

    #[test]
    fn adopted_parent_crosses_threads() {
        let _guard = locked();
        set_tracing(true);
        reset_tracing_state();
        let outer = Span::enter("fanout");
        let parent = current_span();
        assert_eq!(parent, outer.id());
        std::thread::scope(|s| {
            s.spawn(|| {
                let _adopt = adopt_parent(parent);
                let child = Span::enter_keyed("work", 7);
                assert_ne!(child.id(), 0);
            });
        });
        drop(outer);
        let mut out = Vec::new();
        drain_spans(&mut out);
        set_tracing(false);
        let child = out.iter().find(|s| s.name == "work").expect("child span");
        assert_eq!(child.parent, parent);
    }

    #[test]
    fn ring_overflow_drops_and_counts() {
        let _guard = locked();
        set_tracing(true);
        reset_tracing_state();
        set_ring_capacity(4);
        for i in 0..10 {
            let _s = Span::enter_keyed("burst", i);
        }
        let mut out = Vec::new();
        drain_spans(&mut out);
        let dropped = dropped_spans();
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        reset_tracing_state();
        set_tracing(false);
        assert_eq!(out.len(), 4, "capacity bounds the buffer");
        assert_eq!(dropped, 6, "overflow is counted, not blocked on");
    }

    #[test]
    fn key_str_is_stable() {
        assert_eq!(key_str("database"), key_str("database"));
        assert_ne!(key_str("database"), key_str("websearch"));
    }
}
