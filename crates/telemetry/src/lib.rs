//! Process-wide telemetry switch and lightweight primitives.
//!
//! This crate sits below every other crate in the workspace so that the
//! simulator, the worker pool, and the tuning pipeline can all ask one
//! question — [`enabled`] — before paying for any instrumentation. The
//! answer is a single relaxed atomic load, and every timing helper returns
//! a zero immediately when telemetry is off, so the hot path costs nothing
//! by default (the "global no-op" guarantee documented in DESIGN.md §11).
//!
//! What lives here is deliberately tiny: the switch, a relaxed [`Counter`],
//! gated stopwatch helpers ([`start`] / [`elapsed_ns`]), and the structured
//! [`span`] tracing layer (nested, thread-aware, deterministic ids). The
//! structured collection layer (`TelemetrySink`, the JSON run report) lives
//! in `autoblox::telemetry`, which re-exports this crate's surface.
//!
//! # Examples
//!
//! ```
//! telemetry::set_enabled(true);
//! let t = telemetry::start();
//! let n: u64 = (0..1000).sum();
//! assert!(n > 0);
//! let ns = telemetry::elapsed_ns(t);
//! assert!(ns > 0, "enabled stopwatch must measure time");
//! telemetry::set_enabled(false);
//! assert_eq!(telemetry::elapsed_ns(telemetry::start()), 0);
//! ```

#![warn(missing_docs)]

pub mod span;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// The process-wide telemetry switch; off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns telemetry collection on or off for the whole process.
///
/// Off (the default) means every instrumented call site skips its
/// measurement work entirely — no clock reads, no record pushes.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry collection is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts a stopwatch — only if telemetry is enabled.
///
/// When telemetry is off this is a single atomic load and returns `None`,
/// so instrumented hot paths never touch the clock.
#[inline]
pub fn start() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Nanoseconds elapsed on a stopwatch from [`start`]; `0` if telemetry was
/// disabled when the stopwatch was started.
#[inline]
pub fn elapsed_ns(since: Option<Instant>) -> u64 {
    match since {
        Some(t) => u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX),
        None => 0,
    }
}

/// A relaxed monotone event counter.
///
/// Thread-safe and allocation-free; increments are single relaxed atomic
/// adds. Call sites that want the zero-cost-when-off guarantee gate their
/// increments on [`enabled`] — the counter itself does not consult the
/// switch, so always-on counters (e.g. the validator's simulator-run
/// count) can use it too.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All switch-toggling assertions live in one test so the process-wide
    /// flag is never raced by a sibling test.
    #[test]
    fn switch_gates_stopwatches() {
        assert!(!enabled(), "telemetry must default to off");
        assert_eq!(elapsed_ns(start()), 0, "disabled stopwatch reads zero");
        set_enabled(true);
        assert!(enabled());
        let t = start();
        assert!(t.is_some());
        std::hint::black_box((0..100).sum::<u64>());
        assert!(elapsed_ns(t) > 0);
        set_enabled(false);
        assert!(!enabled());
        assert_eq!(elapsed_ns(start()), 0);
    }

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
