//! Proves the disabled-tracing path is allocation-free.
//!
//! A counting global allocator wraps the system allocator; with tracing
//! off, entering and dropping spans (and probing the ambient parent) must
//! not allocate at all — the whole point of the relaxed-load early-out.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracing_does_not_allocate() {
    telemetry::span::set_tracing(false);
    // Warm anything lazily initialised outside the measured window.
    {
        let _s = telemetry::span::Span::enter("warmup");
        let _g = telemetry::span::adopt_parent(telemetry::span::current_span());
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let s = telemetry::span::Span::enter("hot");
        let k = telemetry::span::Span::enter_keyed("hot_keyed", i);
        let g = telemetry::span::adopt_parent(telemetry::span::current_span());
        std::hint::black_box((s.id(), k.id()));
        drop(g);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled span path must not allocate (got {} allocations over 10k iterations)",
        after - before
    );
}

#[test]
fn disabled_stopwatch_does_not_allocate() {
    telemetry::set_enabled(false);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        let t = telemetry::start();
        std::hint::black_box(telemetry::elapsed_ns(t));
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled stopwatch must not allocate");
}
