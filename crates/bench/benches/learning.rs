//! Criterion micro-benchmarks for the learning substrate: GPR fit/predict,
//! k-means, PCA, and Ridge — the per-iteration costs of Table 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlkit::gpr::GprBuilder;
use mlkit::kmeans::KMeans;
use mlkit::linalg::Matrix;
use mlkit::pca::Pca;
use mlkit::ridge::Ridge;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen::<f64>()).collect(),
    )
}

fn bench_gpr(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpr");
    for n in [32usize, 128] {
        let x = random_matrix(n, 48, 1);
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| GprBuilder::new().optimize_rounds(1).fit(&x, &y).unwrap());
        });
        let gp = GprBuilder::new().optimize_rounds(0).fit(&x, &y).unwrap();
        let point = vec![0.5; 48];
        group.bench_with_input(BenchmarkId::new("predict", n), &n, |b, _| {
            b.iter(|| gp.predict(&point).unwrap());
        });
    }
    group.finish();
}

fn bench_kmeans_pca(c: &mut Criterion) {
    let x = random_matrix(500, 12, 3);
    c.bench_function("kmeans_fit_k7", |b| {
        b.iter(|| KMeans::fit(&x, 7, 1).unwrap());
    });
    c.bench_function("pca_fit_5", |b| {
        b.iter(|| Pca::fit(&x, 5).unwrap());
    });
}

fn bench_ridge(c: &mut Criterion) {
    let x = random_matrix(64, 36, 5);
    let y: Vec<f64> = (0..64).map(|i| i as f64 * 0.01).collect();
    c.bench_function("ridge_fit_36params", |b| {
        b.iter(|| Ridge::fit(&x, &y, 1e-3).unwrap());
    });
}

criterion_group!(benches, bench_gpr, bench_kmeans_pca, bench_ridge);
criterion_main!(benches);
