//! Criterion micro-benchmarks for the SSD simulator: events/second across
//! workload categories and configuration shapes (the cost driver behind the
//! paper's Table 6 "efficiency validation" row).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iotrace::gen::WorkloadKind;
use ssdsim::config::{presets, SsdConfig};
use ssdsim::Simulator;

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_trace");
    group.sample_size(20);
    for kind in [
        WorkloadKind::Database,
        WorkloadKind::WebSearch,
        WorkloadKind::BatchAnalytics,
        WorkloadKind::Fiu,
    ] {
        let trace = kind.spec().generate(2_000, 7);
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &trace, |b, t| {
            b.iter(|| {
                let mut sim = Simulator::new(presets::intel_750());
                sim.warm_up(0.5);
                sim.run(t)
            });
        });
    }
    group.finish();
}

fn bench_config_shapes(c: &mut Criterion) {
    let trace = WorkloadKind::Database.spec().generate(2_000, 7);
    let mut group = c.benchmark_group("simulate_config_shape");
    group.sample_size(20);
    let shapes: [(&str, SsdConfig); 3] = [
        ("intel750", presets::intel_750()),
        (
            "wide-64ch",
            SsdConfig {
                channel_count: 64,
                chips_per_channel: 1,
                blocks_per_plane: 512,
                ..presets::intel_750()
            },
        ),
        ("sata-850pro", presets::samsung_850_pro()),
    ];
    for (name, cfg) in shapes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut sim = Simulator::new(cfg.clone());
                sim.warm_up(0.5);
                sim.run(&trace)
            });
        });
    }
    group.finish();
}

fn bench_warm_up(c: &mut Criterion) {
    c.bench_function("simulator_warm_up", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(presets::intel_750());
            sim.warm_up(0.5);
            sim
        });
    });
}

criterion_group!(benches, bench_workloads, bench_config_shapes, bench_warm_up);
criterion_main!(benches);
