//! Criterion micro-benchmarks for the framework pipeline stages measured in
//! the paper's Table 6: feature extraction, workload classification, AutoDB
//! lookups, and one full tuning iteration.

use autoblox::clustering::WorkloadClusterer;
use autoblox::constraints::Constraints;
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox::validator::{Validator, ValidatorOptions};
use autodb::Store;
use criterion::{criterion_group, criterion_main, Criterion};
use iotrace::gen::WorkloadKind;
use iotrace::window::{window_features, WindowOptions};
use iotrace::Trace;
use ssdsim::config::presets;

fn bench_features(c: &mut Criterion) {
    let trace = WorkloadKind::Database.spec().generate(100_000, 3);
    let mut group = c.benchmark_group("features");
    group.sample_size(20);
    group.bench_function("window_features_100k_events", |b| {
        b.iter(|| window_features(&trace, WindowOptions::default()));
    });
    group.finish();
}

fn bench_classify(c: &mut Criterion) {
    let window = WindowOptions { window_len: 1_000 };
    let train: Vec<Trace> = WorkloadKind::STUDIED
        .iter()
        .map(|k| k.spec().generate(6_000, 42))
        .collect();
    let model = WorkloadClusterer::fit(&train, 7, window, 7).unwrap();
    let fresh = WorkloadKind::KvStore.spec().generate(6_000, 99);
    c.bench_function("workload_similarity_comparison", |b| {
        b.iter(|| model.classify(&fresh).unwrap());
    });
}

fn bench_autodb(c: &mut Criterion) {
    let db = Store::in_memory();
    for i in 0..100 {
        db.put_record(&format!("cluster:{i}"), &serde_json::json!({"grade": i}))
            .unwrap();
    }
    c.bench_function("autodb_lookup", |b| {
        b.iter(|| db.get("cluster:42").unwrap());
    });
}

fn bench_tuning_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("tuning");
    group.sample_size(10);
    group.bench_function("tuning_iteration_with_validation", |b| {
        b.iter(|| {
            let v = Validator::new(ValidatorOptions {
                trace_events: 500,
                ..Default::default()
            });
            let opts = TunerOptions {
                max_iterations: 1,
                sgd_iterations: 2,
                non_target: vec![],
                ..TunerOptions::default()
            };
            let tuner = Tuner::new(Constraints::paper_default(), &v, opts);
            tuner.tune(WorkloadKind::Database, &presets::intel_750(), &[], None)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_features,
    bench_classify,
    bench_autodb,
    bench_tuning_iteration
);
criterion_main!(benches);
