//! Throughput of the `autoblox watch` ingest path and the cost of the
//! `progress` journal records feeding it.
//!
//! Three measurements, written to `BENCH_journal_tail.json`:
//!
//! 1. **Ingest throughput** — lines/second through `WatchState::ingest`
//!    over an authentic journal (produced by a real journaled tuning run,
//!    replicated to a fixed line budget). The watcher must outrun any
//!    plausible producer by orders of magnitude.
//! 2. **Watch-tick cost** — nanoseconds to produce one live-mode tick
//!    (timed snapshot + status line) from a populated state.
//! 3. **Progress-record overhead** — identical journaled tuning runs with
//!    `progress` records enabled vs suppressed, interleaved best-of-N.
//!    The acceptance criterion is < 3% overhead: the per-iteration ETA
//!    bookkeeping must be invisible next to the simulator work.
//!
//! `AUTOBLOX_SCALE=quick|standard|full` scales the trace length.

use autoblox::constraints::Constraints;
use autoblox::journal::{self, Journal};
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox::validator::{Validator, ValidatorOptions};
use autoblox::WatchState;
use iotrace::gen::WorkloadKind;
use serde_json::json;
use ssdsim::config::presets;
use std::time::Instant;

const REPS: usize = 5;

/// One journaled smoke tune; returns wall seconds for the tuning region
/// and leaves the journal text at `path`.
fn journaled_run(trace_events: usize, path: &str) -> f64 {
    autoblox::telemetry::global().clear();
    let journal = Journal::create(path).expect("journal opens");
    autoblox::telemetry::global().attach_journal(journal.handle());

    let validator = Validator::new(ValidatorOptions {
        trace_events,
        ..Default::default()
    });
    let opts = TunerOptions {
        max_iterations: 8,
        sgd_iterations: 4,
        non_target: vec![WorkloadKind::WebSearch],
        ..Default::default()
    };
    let tuner = Tuner::new(Constraints::paper_default(), &validator, opts);
    let t0 = Instant::now();
    let _ = tuner.tune(WorkloadKind::Database, &presets::intel_750(), &[], None);
    let secs = t0.elapsed().as_secs_f64();

    autoblox::telemetry::global().detach_journal();
    journal.finish(path).expect("journal closes");
    secs
}

/// Interleaved best-of-N with progress records on and off. Alternating
/// per repetition keeps slow host drift from biasing one side.
fn measure_progress_overhead(trace_events: usize, path: &str, reps: usize) -> (f64, f64) {
    let mut with_progress = f64::INFINITY;
    let mut without = f64::INFINITY;
    for _ in 0..reps {
        journal::set_progress_records(false);
        without = without.min(journaled_run(trace_events, path));
        journal::set_progress_records(true);
        with_progress = with_progress.min(journaled_run(trace_events, path));
    }
    (without, with_progress)
}

fn main() {
    let check = autoblox_bench::check_mode();
    let scale = autoblox_bench::run_scale();
    let (trace_events, ingest_lines) = match scale {
        autoblox_bench::Scale::Quick => (400, 50_000),
        autoblox_bench::Scale::Standard => (2_000, 400_000),
        autoblox_bench::Scale::Full => (6_000, 1_000_000),
    };
    let reps = if check { 1 } else { REPS };
    let journal_path = std::env::temp_dir().join("bench_journal_tail.jsonl");
    let journal_path = journal_path.to_string_lossy().into_owned();

    autoblox::telemetry::set_enabled(true);
    if !check {
        // Warm-up so neither mode pays first-touch costs.
        let _ = journaled_run(trace_events, &journal_path);
    }

    // (3) progress-record overhead on the producer side.
    let (without_s, with_s) = measure_progress_overhead(trace_events, &journal_path, reps);
    let overhead_pct = (with_s - without_s) / without_s * 100.0;

    // The final (progress-enabled) journal seeds the ingest corpus.
    let sample = std::fs::read_to_string(&journal_path).expect("journal readable");
    autoblox::telemetry::set_enabled(false);
    let _ = std::fs::remove_file(&journal_path);
    let sample_lines: Vec<&str> = sample.lines().collect();
    assert!(
        sample_lines
            .iter()
            .any(|l| l.contains("\"t\":\"progress\"")),
        "corpus carries progress records"
    );

    // (1) ingest throughput over a fixed line budget.
    let budget = if check { 2_000 } else { ingest_lines };
    let mut state = WatchState::new();
    let t0 = Instant::now();
    let mut ingested = 0u64;
    'outer: loop {
        for line in &sample_lines {
            state.ingest(line);
            ingested += 1;
            if ingested as usize >= budget {
                break 'outer;
            }
        }
    }
    let ingest_secs = t0.elapsed().as_secs_f64();
    let lines_per_sec = ingested as f64 / ingest_secs;
    assert_eq!(state.counts().total(), ingested, "every line accounted for");

    // (2) live-tick cost on the populated state: one timed snapshot plus
    // one status line, exactly what `watch --interval-ms` does per tick.
    let tick_iters = if check { 100 } else { 10_000 };
    let t0 = Instant::now();
    let mut sink = 0usize;
    for _ in 0..tick_iters {
        let snap = serde_json::to_string(&state.snapshot(true)).expect("snapshot serializes");
        sink += snap.len() + state.status_line().len();
    }
    let watch_tick_ns = t0.elapsed().as_nanos() as f64 / tick_iters as f64;
    assert!(sink > 0);

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "ingest {lines_per_sec:.0} lines/s, watch tick {watch_tick_ns:.0} ns, \
         progress overhead {overhead_pct:+.2}% (criterion < 3%; \
         off {without_s:.3}s vs on {with_s:.3}s)"
    );

    let doc = json!({
        "benchmark": "journal_tail",
        "host_cpus": host_cpus,
        "trace_events": trace_events,
        "reps_best_of": reps as u64,
        "ingest_lines": ingested,
        "ingest_lines_per_sec": lines_per_sec,
        "watch_tick_ns": watch_tick_ns,
        "progress_off_best_s": without_s,
        "progress_on_best_s": with_s,
        "overhead_pct": overhead_pct,
        "criterion_pct": 3.0,
        "criterion_met": overhead_pct < 3.0,
    });
    autoblox_bench::write_bench_report(
        "BENCH_journal_tail.json",
        "journal_tail",
        &[
            "host_cpus",
            "trace_events",
            "reps_best_of",
            "ingest_lines",
            "ingest_lines_per_sec",
            "watch_tick_ns",
            "progress_off_best_s",
            "progress_on_best_s",
            "overhead_pct",
            "criterion_pct",
            "criterion_met",
        ],
        &doc,
    );
    println!("lines_per_sec: {lines_per_sec:.0}");
}
