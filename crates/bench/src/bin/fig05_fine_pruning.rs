//! Figure 5: fine-grained parameter pruning with Ridge regression.
//!
//! Fits a linear regression from normalized parameter values to the unified
//! performance metric and prints the per-parameter coefficients per
//! workload: positive coefficients (blue in the paper) help performance as
//! the parameter grows, negative (red) hurt, and |coef| below the threshold
//! is pruned. The |coefficient| ordering becomes the tuning order.

use autoblox::params::ParamSpace;
use autoblox::pruning::{coarse_prune, fine_prune, FineOptions};
use autoblox_bench::{print_table, validator, Scale};
use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;

fn main() {
    let scale = Scale::from_env();
    let v = validator(scale);
    let space = ParamSpace::new();
    let base = presets::intel_750();
    let workloads = match scale {
        Scale::Quick => vec![WorkloadKind::Database],
        _ => vec![
            WorkloadKind::Database,
            WorkloadKind::WebSearch,
            WorkloadKind::KvStore,
            WorkloadKind::CloudStorage,
        ],
    };

    for w in workloads {
        eprintln!("fine-grained regression for {w} ...");
        let coarse = coarse_prune(&space, &base, w, &v);
        let sensitive = coarse.sensitive();
        let report = fine_prune(
            &space,
            &base,
            w,
            &sensitive,
            &v,
            FineOptions {
                samples: scale.samples(),
                ..Default::default()
            },
        );
        let mut rows: Vec<Vec<String>> = report
            .coefficients
            .iter()
            .map(|c| {
                vec![
                    c.name.clone(),
                    format!("{:+.4}", c.coefficient),
                    if c.pruned {
                        "pruned".into()
                    } else {
                        "kept".into()
                    },
                ]
            })
            .collect();
        rows.sort_by(|a, b| {
            let pa: f64 = a[1].parse().unwrap_or(0.0);
            let pb: f64 = b[1].parse().unwrap_or(0.0);
            pb.abs().partial_cmp(&pa.abs()).unwrap()
        });
        print_table(
            &format!(
                "Figure 5 — Ridge coefficients, {w} (R² = {:.3})",
                report.r_squared
            ),
            &["parameter".into(), "coefficient".into(), "verdict".into()],
            &rows,
        );
        println!("\ntuning order for {w}: {:?}", report.tuning_order());
    }
}
