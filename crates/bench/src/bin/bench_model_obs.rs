//! Wall-clock overhead of the model observatory.
//!
//! The observatory adds two kinds of per-iteration work to the BO loop:
//! the always-on provenance bookkeeping (explore/exploit shares, decision
//! margin, calibration pair — a handful of float ops against values the
//! loop already computed) and the telemetry-gated importance sweep (one
//! `Gpr::predict` per neighbor of the incumbent, no simulator runs). This
//! benchmark times an identical tuning run with telemetry off and on —
//! best of three repetitions each, fresh validator per repetition — and
//! writes `BENCH_model_obs.json`. Acceptance: the telemetry-on run (which
//! pays for the sweep) stays under 3% overhead, and the telemetry-off run
//! carries the bookkeeping for ~0 cost (measured against the same gate's
//! pre-observatory behavior, it is pure arithmetic on the hot iteration).
//!
//! `AUTOBLOX_SCALE=quick|standard|full` scales the trace length.

use autoblox::constraints::Constraints;
use autoblox::telemetry::{self, TelemetrySink};
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox::validator::{Validator, ValidatorOptions};
use iotrace::gen::WorkloadKind;
use serde_json::json;
use ssdsim::config::presets;
use std::time::Instant;

const REPS: usize = 3;

fn tuning_run(trace_events: usize, sink: &TelemetrySink) -> (f64, u64) {
    let validator = Validator::new(ValidatorOptions {
        trace_events,
        ..Default::default()
    });
    let opts = TunerOptions {
        max_iterations: 6,
        sgd_iterations: 4,
        non_target: vec![WorkloadKind::WebSearch],
        ..Default::default()
    };
    let tuner = Tuner::new(Constraints::paper_default(), &validator, opts);
    let t0 = Instant::now();
    let outcome = sink.phase("tune", || {
        tuner.tune(WorkloadKind::Database, &presets::intel_750(), &[], None)
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let sweeps = outcome
        .iteration_records
        .iter()
        .filter(|r| !r.importance.is_empty())
        .count() as u64;
    (elapsed, sweeps)
}

/// Best wall time over `reps` runs at the given telemetry setting, plus
/// the importance-sweep count of the last run (a gating witness: it must
/// be zero with telemetry off and positive with it on).
fn best_of(trace_events: usize, enabled: bool, reps: usize) -> (f64, u64) {
    telemetry::set_enabled(enabled);
    let mut best = f64::INFINITY;
    let mut sweeps = 0u64;
    for _ in 0..reps {
        let sink = TelemetrySink::new();
        let (s, swept) = tuning_run(trace_events, &sink);
        best = best.min(s);
        sweeps = swept;
    }
    telemetry::set_enabled(false);
    (best, sweeps)
}

fn main() {
    let check = autoblox_bench::check_mode();
    let scale = autoblox_bench::run_scale();
    let trace_events = match scale {
        autoblox_bench::Scale::Quick => 400,
        autoblox_bench::Scale::Standard => 2_000,
        autoblox_bench::Scale::Full => 6_000,
    };
    // `--check` runs a single repetition with no warm-up: the overhead
    // percentage is noise there, only the harness and report shape matter.
    let reps = if check { 1 } else { REPS };

    if !check {
        // Warm-up run so neither mode pays first-touch costs.
        let _ = best_of(trace_events, false, 1);
    }

    let (off_s, off_sweeps) = best_of(trace_events, false, reps);
    let (on_s, on_sweeps) = best_of(trace_events, true, reps);
    let overhead_pct = (on_s - off_s) / off_s * 100.0;

    assert_eq!(
        off_sweeps, 0,
        "telemetry off must skip the importance sweep entirely"
    );
    assert!(
        on_sweeps > 0,
        "telemetry on must actually run the importance sweep"
    );

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "observatory off {off_s:.3}s (0 sweeps), on {on_s:.3}s ({on_sweeps} sweeps), \
         overhead {overhead_pct:+.2}% (criterion < 3%)"
    );

    let doc = json!({
        "benchmark": "model_obs",
        "host_cpus": host_cpus,
        "trace_events": trace_events,
        "reps_best_of": reps as u64,
        "telemetry_off_best_s": off_s,
        "telemetry_on_best_s": on_s,
        "overhead_pct": overhead_pct,
        "importance_sweeps_on": on_sweeps,
        "importance_sweeps_off": off_sweeps,
        "criterion_pct": 3.0,
        "criterion_met": overhead_pct < 3.0,
    });
    autoblox_bench::write_bench_report(
        "BENCH_model_obs.json",
        "model_obs",
        &[
            "host_cpus",
            "trace_events",
            "reps_best_of",
            "telemetry_off_best_s",
            "telemetry_on_best_s",
            "overhead_pct",
            "importance_sweeps_on",
            "importance_sweeps_off",
            "criterion_pct",
            "criterion_met",
        ],
        &doc,
    );
    println!("overhead_pct: {overhead_pct:.3}");
}
