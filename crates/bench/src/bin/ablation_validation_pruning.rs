//! Ablation: the non-target validation-pruning optimization of §3.4.
//!
//! With pruning, configurations whose target-only grade cannot beat the
//! elite floor skip the expensive non-target simulations. The ablation
//! counts simulator runs with and without pruning at equal search budgets.

use autoblox::constraints::Constraints;
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox_bench::{print_table, tuner_options, validator, Scale};
use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;

fn main() {
    let scale = Scale::from_env();
    let reference = presets::intel_750();
    let constraints = Constraints::paper_default();
    let workloads = match scale {
        Scale::Quick => vec![WorkloadKind::Database],
        _ => vec![WorkloadKind::Database, WorkloadKind::LiveMaps],
    };

    let mut rows = Vec::new();
    for kind in workloads {
        for (label, pruning) in [("with pruning", true), ("without pruning", false)] {
            let v = validator(scale);
            let opts = TunerOptions {
                validation_pruning: pruning,
                ..tuner_options(scale)
            };
            let tuner = Tuner::new(constraints, &v, opts);
            let out = tuner.tune(kind, &reference, &[], None);
            rows.push(vec![
                kind.name().to_string(),
                label.to_string(),
                out.validations.to_string(),
                format!("{:+.4}", out.best.grade),
            ]);
        }
    }
    print_table(
        "Ablation — non-target validation pruning",
        &[
            "workload".into(),
            "mode".into(),
            "simulator runs".into(),
            "final grade".into(),
        ],
        &rows,
    );
    println!("\nexpected: pruning reduces simulator runs without degrading the final grade");
}
