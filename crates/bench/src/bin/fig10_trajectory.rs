//! Figure 10: the learning trajectory (best grade per iteration) for the
//! Database workload, with and without the enforced tuning order.

use autoblox::constraints::Constraints;
use autoblox::params::ParamSpace;
use autoblox::pruning::{coarse_prune, fine_prune, FineOptions};
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox_bench::{tuner_options, validator, Scale};
use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;

fn main() {
    let scale = Scale::from_env();
    let v = validator(scale);
    let reference = presets::intel_750();
    let constraints = Constraints::paper_default();
    let kind = WorkloadKind::Database;
    let space = ParamSpace::new();

    eprintln!("pruning for {kind} ...");
    let coarse = coarse_prune(&space, &reference, kind, &v);
    let sensitive = coarse.sensitive();
    let fine = fine_prune(
        &space,
        &reference,
        kind,
        &sensitive,
        &v,
        FineOptions {
            samples: scale.samples(),
            ..Default::default()
        },
    );
    let order = fine.tuning_order();

    let mut curves = Vec::new();
    for (label, use_order) in [("with-order", true), ("without-order", false)] {
        let v_run = validator(scale);
        let opts = TunerOptions {
            use_tuning_order: use_order,
            // Disable early convergence so the whole curve is visible.
            convergence_epsilon: 0.0,
            convergence_window: usize::MAX,
            ..tuner_options(scale)
        };
        let tuner = Tuner::new(constraints, &v_run, opts);
        let out = tuner.tune(
            kind,
            &reference,
            &[],
            if use_order { Some(&order) } else { None },
        );
        curves.push((label, out.grade_history.clone()));
    }

    println!("# Figure 10 — best grade per iteration, Database workload");
    println!("# iteration {} {}", curves[0].0, curves[1].0);
    let n = curves.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
    for i in 0..n {
        let a = curves[0].1.get(i).copied().unwrap_or(f64::NAN);
        let b = curves[1].1.get(i).copied().unwrap_or(f64::NAN);
        println!("{i} {a:.4} {b:.4}");
    }
    println!("\n# paper: the with-order curve rises faster and plateaus higher");
}
