//! Figure 8: learning time for different target workloads.
//!
//! The paper learns a configuration in 14.0-18.7 hours at ~89 search
//! iterations, with efficiency validation (670.9 s per run on real traces)
//! dominating. Our simulator is faster, so wall-clock differs; the shape —
//! iterations to convergence and validation-dominated cost — is reproduced.

use autoblox::constraints::Constraints;
use autoblox::tuner::Tuner;
use autoblox_bench::{print_table, tuner_options, validator, Scale};
use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let v = validator(scale);
    let reference = presets::intel_750();
    let constraints = Constraints::paper_default();
    let opts = tuner_options(scale);

    let mut rows = Vec::new();
    for kind in WorkloadKind::STUDIED {
        let t0 = Instant::now();
        let runs_before = v.simulator_runs();
        let tuner = Tuner::new(constraints, &v, opts.clone());
        let out = tuner.tune(kind, &reference, &[], None);
        let secs = t0.elapsed().as_secs_f64();
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.1}", secs),
            out.iterations.to_string(),
            (v.simulator_runs() - runs_before).to_string(),
            format!("{:+.4}", out.best.grade),
        ]);
    }
    print_table(
        "Figure 8 — learning time per target workload",
        &[
            "workload".into(),
            "wall-clock (s)".into(),
            "iterations".into(),
            "validations".into(),
            "final grade".into(),
        ],
        &rows,
    );
    println!("\npaper: 14.02-18.71 hours per workload at 89 iterations on average");
    println!("(wall-clock scales with the substrate; iteration counts are comparable)");
}
