//! Wall-clock overhead of the device-observatory sampling layer.
//!
//! Replays an identical generated trace through the simulator with the
//! telemetry switch off (sampling fully compiled out of the hot loop —
//! one relaxed atomic load per run) and with sampling enabled at two
//! intervals: the 100 µs default and an aggressive 10 µs. Interleaved
//! best-of-5 per mode, a fresh warmed simulator per repetition, and
//! writes `BENCH_device_sampling.json`. The acceptance criterion is
//! < 3% overhead with sampling enabled at the default interval; the
//! disabled path should measure ≈ 0.
//!
//! `AUTOBLOX_SCALE=quick|standard|full` scales the trace length.

use iotrace::gen::WorkloadKind;
use serde_json::json;
use ssdsim::config::SsdConfig;
use ssdsim::observe::{DEFAULT_SAMPLE_CAP, DEFAULT_SAMPLE_INTERVAL_NS};
use ssdsim::Simulator;
use std::time::Instant;

// Best-of-5 over interleaved repetitions: the min filters scheduler
// noise, interleaving keeps slow drift from biasing one mode.
const REPS: usize = 5;

/// One timed replay. `interval_ns == 0` leaves sampling off even with
/// the switch on; the switch itself is toggled by the caller.
fn replay(trace: &iotrace::Trace, interval_ns: u64) -> (f64, usize, u64) {
    let mut sim = Simulator::new(SsdConfig::default());
    sim.warm_up(0.5);
    sim.set_sampling(interval_ns, DEFAULT_SAMPLE_CAP);
    let t0 = Instant::now();
    let report = sim.run(trace);
    let secs = t0.elapsed().as_secs_f64();
    (secs, report.device.samples.len(), report.device.dropped)
}

fn main() {
    // A single replay is orders of magnitude cheaper than the tuning-loop
    // benches, so this harness uses much longer traces: a 3% criterion on a
    // millisecond-long region would only measure timer noise.
    let check = autoblox_bench::check_mode();
    let scale = autoblox_bench::run_scale();
    let trace_events = match scale {
        autoblox_bench::Scale::Quick => {
            // `--check` only validates that the harness runs and the
            // report conforms; the overhead numbers are meaningless there.
            if check {
                5_000
            } else {
                20_000
            }
        }
        autoblox_bench::Scale::Standard => 100_000,
        autoblox_bench::Scale::Full => 400_000,
    };
    let reps = if check { 1 } else { REPS };
    let trace = WorkloadKind::Database.spec().generate(trace_events, 42);
    let fine_interval = DEFAULT_SAMPLE_INTERVAL_NS / 10;

    // Warm-up so no mode pays first-touch costs.
    telemetry::set_enabled(false);
    let _ = replay(&trace, 0);

    let mut disabled = f64::INFINITY;
    let mut default_on = f64::INFINITY;
    let mut fine_on = f64::INFINITY;
    let mut default_samples = 0;
    let mut default_dropped = 0;
    let mut fine_samples = 0;
    let mut fine_dropped = 0;
    for _ in 0..reps {
        telemetry::set_enabled(false);
        disabled = disabled.min(replay(&trace, DEFAULT_SAMPLE_INTERVAL_NS).0);
        telemetry::set_enabled(true);
        let (t, n, d) = replay(&trace, DEFAULT_SAMPLE_INTERVAL_NS);
        default_on = default_on.min(t);
        default_samples = n;
        default_dropped = d;
        let (t, n, d) = replay(&trace, fine_interval);
        fine_on = fine_on.min(t);
        fine_samples = n;
        fine_dropped = d;
    }
    telemetry::set_enabled(false);

    let default_pct = (default_on - disabled) / disabled * 100.0;
    let fine_pct = (fine_on - disabled) / disabled * 100.0;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "disabled {disabled:.4}s; sampling@{DEFAULT_SAMPLE_INTERVAL_NS}ns {default_on:.4}s \
         ({default_pct:+.2}%, {default_samples} samples, {default_dropped} dropped); \
         sampling@{fine_interval}ns {fine_on:.4}s ({fine_pct:+.2}%, {fine_samples} samples, \
         {fine_dropped} dropped); criterion < 3% at the default interval"
    );

    let doc = json!({
        "benchmark": "device_sampling",
        "host_cpus": host_cpus,
        "trace_events": trace_events,
        "reps_best_of": reps as u64,
        "sample_cap": DEFAULT_SAMPLE_CAP as u64,
        "disabled_best_s": disabled,
        "default_interval_ns": DEFAULT_SAMPLE_INTERVAL_NS,
        "default_enabled_best_s": default_on,
        "default_overhead_pct": default_pct,
        "default_samples": default_samples as u64,
        "default_dropped": default_dropped,
        "fine_interval_ns": fine_interval,
        "fine_enabled_best_s": fine_on,
        "fine_overhead_pct": fine_pct,
        "fine_samples": fine_samples as u64,
        "fine_dropped": fine_dropped,
        "criterion_pct": 3.0,
        "criterion_met": default_pct < 3.0,
    });
    autoblox_bench::write_bench_report(
        "BENCH_device_sampling.json",
        "device_sampling",
        &[
            "host_cpus",
            "trace_events",
            "disabled_best_s",
            "default_enabled_best_s",
            "default_overhead_pct",
            "fine_overhead_pct",
            "criterion_pct",
            "criterion_met",
        ],
        &doc,
    );
    println!("default_overhead_pct: {default_pct:.3}");
}
