//! Ablation: clustering window length and PCA dimensionality (§3.1 justifies
//! 3,000-entry windows and 5 PCA dimensions).

use autoblox::clustering::WorkloadClusterer;
use autoblox_bench::{print_table, Scale};
use iotrace::gen::WorkloadKind;
use iotrace::window::WindowOptions;
use iotrace::Trace;

fn purity(model: &WorkloadClusterer, events: usize) -> f64 {
    let mut total = 0.0;
    for kind in WorkloadKind::STUDIED {
        let fresh = kind.spec().generate(events, 1234);
        let Ok(assignments) = model.classify_windows(&fresh) else {
            continue;
        };
        let mut counts = vec![0usize; model.k()];
        for &a in &assignments {
            counts[a] += 1;
        }
        let majority = counts.iter().max().copied().unwrap_or(0);
        total += majority as f64 / assignments.len().max(1) as f64;
    }
    total / WorkloadKind::STUDIED.len() as f64
}

fn main() {
    let scale = Scale::from_env();
    let events = scale.trace_events().max(8_000);
    let train: Vec<Trace> = WorkloadKind::STUDIED
        .iter()
        .map(|k| k.spec().generate(events, 42))
        .collect();

    let mut rows = Vec::new();
    for window_len in [250usize, 500, 1_000, 2_000] {
        for dims in [2usize, 3, 5, 8] {
            let window = WindowOptions { window_len };
            match WorkloadClusterer::fit_with_dims(&train, 7, window, 7, dims) {
                Ok(model) => rows.push(vec![
                    window_len.to_string(),
                    dims.to_string(),
                    format!("{:.1}%", model.explained_variance() * 100.0),
                    format!("{:.1}%", purity(&model, events) * 100.0),
                ]),
                Err(e) => rows.push(vec![
                    window_len.to_string(),
                    dims.to_string(),
                    format!("error: {e}"),
                    "-".into(),
                ]),
            }
        }
    }
    print_table(
        "Ablation — clustering window length and PCA dimensionality",
        &[
            "window".into(),
            "pca dims".into(),
            "explained var".into(),
            "validation purity".into(),
        ],
        &rows,
    );
    println!(
        "\npaper: 3,000-entry windows and 5 dimensions (70.4% variance) balance fidelity and cost"
    );
}
