//! Ablation: FTL policy booleans on a small, GC-stressed device — greedy vs
//! random victim selection, write-back vs write-through caching, and read
//! suspension. These are the boolean ML parameters of §3.2; the ablation
//! shows each flag's isolated effect where it matters most.

use autoblox_bench::print_table;
use iotrace::gen::WorkloadKind;
use iotrace::Trace;
use ssdsim::config::{CacheMode, GcPolicy, SsdConfig};
use ssdsim::Simulator;

/// A small device where sustained overwrites actually trigger GC.
fn small_device() -> SsdConfig {
    SsdConfig {
        channel_count: 4,
        chips_per_channel: 2,
        dies_per_chip: 2,
        planes_per_die: 2,
        blocks_per_plane: 64,
        pages_per_block: 64,
        data_cache_mb: 64,
        cmt_capacity_mb: 64,
        overprovisioning_ratio: 0.07,
        gc_threshold: 0.15,
        gc_hard_threshold: 0.01,
        ..SsdConfig::default()
    }
}

fn churn_trace() -> Trace {
    // Write-heavy churn over a region sized to stress the small device.
    WorkloadKind::Fiu.spec().generate(30_000, 0xD15C)
}

fn run(cfg: SsdConfig, trace: &Trace) -> (f64, f64, u64, f64) {
    let mut sim = Simulator::new(cfg);
    sim.warm_up(0.8);
    let r = sim.run(trace);
    (
        r.latency.mean_ns / 1e3,
        r.read_latency.p99_ns as f64 / 1e3,
        r.flash.gc_invocations,
        r.write_amplification,
    )
}

fn main() {
    let trace = churn_trace();
    let base = small_device();
    let variants: Vec<(&str, SsdConfig)> = vec![
        ("greedy GC (base)", base.clone()),
        (
            "random GC",
            SsdConfig {
                gc_policy: GcPolicy::Random,
                ..base.clone()
            },
        ),
        (
            "non-preemptible GC",
            SsdConfig {
                preemptible_gc: false,
                ..base.clone()
            },
        ),
        (
            "write-through cache",
            SsdConfig {
                cache_mode: CacheMode::WriteThrough,
                ..base.clone()
            },
        ),
        (
            "read suspension on",
            SsdConfig {
                program_suspension_enabled: true,
                ..base.clone()
            },
        ),
        (
            "wear leveling off",
            SsdConfig {
                static_wearleveling_enabled: false,
                ..base.clone()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, cfg) in variants {
        let (mean, p99r, gc, wa) = run(cfg, &trace);
        rows.push(vec![
            name.to_string(),
            format!("{mean:.0}"),
            format!("{p99r:.0}"),
            gc.to_string(),
            format!("{wa:.2}"),
        ]);
    }
    print_table(
        "Ablation — FTL policy flags under GC-stressing churn",
        &[
            "variant".into(),
            "mean lat (us)".into(),
            "read p99 (us)".into(),
            "GC cycles".into(),
            "write amp".into(),
        ],
        &rows,
    );
    println!("\nexpected: greedy GC <= random GC in write amplification;");
    println!("write-through raises mean latency; suspension cuts the read tail");
}
