//! Wall-clock overhead of the telemetry layer.
//!
//! Times an identical tuning run with telemetry disabled and enabled —
//! best of three repetitions each, a fresh validator per repetition so
//! every candidate pays for its simulator run — and writes
//! `BENCH_telemetry_overhead.json`. The acceptance criterion is < 3%
//! overhead with telemetry enabled; the disabled fast path is also
//! micro-benchmarked (a gated stopwatch + counter pair per iteration)
//! to show it costs on the order of a nanosecond.
//!
//! `AUTOBLOX_SCALE=quick|standard|full` scales the trace length.

use autoblox::constraints::Constraints;
use autoblox::telemetry::{self, Counter, TelemetrySink};
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox::validator::{Validator, ValidatorOptions};
use iotrace::gen::WorkloadKind;
use serde_json::json;
use ssdsim::config::presets;
use std::time::Instant;

const REPS: usize = 3;

fn tuning_run(trace_events: usize, sink: &TelemetrySink) -> f64 {
    let validator = Validator::new(ValidatorOptions {
        trace_events,
        ..Default::default()
    });
    let opts = TunerOptions {
        max_iterations: 6,
        sgd_iterations: 4,
        non_target: vec![WorkloadKind::WebSearch],
        ..Default::default()
    };
    let tuner = Tuner::new(Constraints::paper_default(), &validator, opts);
    let t0 = Instant::now();
    let outcome = sink.phase("tune", || {
        tuner.tune(WorkloadKind::Database, &presets::intel_750(), &[], None)
    });
    sink.record_outcome(&outcome);
    let _ = sink.report(Some(&validator));
    t0.elapsed().as_secs_f64()
}

fn best_of(trace_events: usize, enabled: bool, reps: usize) -> f64 {
    telemetry::set_enabled(enabled);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let sink = TelemetrySink::new();
        best = best.min(tuning_run(trace_events, &sink));
    }
    telemetry::set_enabled(false);
    best
}

/// Nanoseconds per disabled-path probe: one gated stopwatch plus one
/// counter bump, the exact shape the hot paths use.
fn disabled_probe_ns() -> f64 {
    telemetry::set_enabled(false);
    let counter = Counter::default();
    const ITERS: u64 = 10_000_000;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        let started = telemetry::start();
        counter.add(telemetry::elapsed_ns(started));
    }
    let ns = t0.elapsed().as_nanos() as f64 / ITERS as f64;
    assert_eq!(counter.get(), 0, "disabled stopwatch must read zero");
    ns
}

fn main() {
    let check = autoblox_bench::check_mode();
    let scale = autoblox_bench::run_scale();
    let trace_events = match scale {
        autoblox_bench::Scale::Quick => 400,
        autoblox_bench::Scale::Standard => 2_000,
        autoblox_bench::Scale::Full => 6_000,
    };
    // `--check` runs a single repetition with no warm-up: the overhead
    // percentage is noise there, only the harness and report shape matter.
    let reps = if check { 1 } else { REPS };

    if !check {
        // Warm-up run so neither mode pays first-touch costs.
        let _ = best_of(trace_events, false, 1);
    }

    let disabled_s = best_of(trace_events, false, reps);
    let enabled_s = best_of(trace_events, true, reps);
    let overhead_pct = (enabled_s - disabled_s) / disabled_s * 100.0;
    let probe_ns = disabled_probe_ns();

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "disabled {disabled_s:.3}s, enabled {enabled_s:.3}s, overhead {overhead_pct:+.2}% \
         (criterion < 3%), disabled probe {probe_ns:.2} ns"
    );

    let doc = json!({
        "benchmark": "telemetry_overhead",
        "host_cpus": host_cpus,
        "trace_events": trace_events,
        "reps_best_of": reps as u64,
        "disabled_best_s": disabled_s,
        "enabled_best_s": enabled_s,
        "overhead_pct": overhead_pct,
        "criterion_pct": 3.0,
        "criterion_met": overhead_pct < 3.0,
        "disabled_probe_ns": probe_ns,
    });
    autoblox_bench::write_bench_report(
        "BENCH_telemetry_overhead.json",
        "telemetry_overhead",
        &[
            "host_cpus",
            "trace_events",
            "reps_best_of",
            "disabled_best_s",
            "enabled_best_s",
            "overhead_pct",
            "criterion_pct",
            "criterion_met",
            "disabled_probe_ns",
        ],
        &doc,
    );
    println!("overhead_pct: {overhead_pct:.3}");
}
