//! Figure 2: PCA + k-means clustering of popular storage workloads.
//!
//! The paper projects trace windows into 2 dimensions with PCA and shows
//! that windows of the same workload category form distinct clusters. This
//! binary prints the 2-D PCA coordinates of every window (a plottable
//! scatter), the per-category cluster assignments, and the validation
//! accuracy ("95% of the validation data points fall into the same workload
//! cluster on average").

use autoblox::clustering::WorkloadClusterer;
use autoblox_bench::{print_table, Scale};
use iotrace::gen::WorkloadKind;
use iotrace::window::WindowOptions;
use iotrace::Trace;

fn main() {
    let scale = Scale::from_env();
    let events = scale.trace_events().max(6_000);
    let window = WindowOptions { window_len: 1_000 };

    // Training traces: one long trace per studied category.
    let train: Vec<Trace> = WorkloadKind::STUDIED
        .iter()
        .map(|k| k.spec().generate(events, 42))
        .collect();
    let model = WorkloadClusterer::fit(&train, WorkloadKind::STUDIED.len(), window, 7)
        .expect("clustering fits");
    println!(
        "k = {}, PCA explained variance = {:.1}% (paper: 70.4% at 5 dims), threshold = {:.2}",
        model.k(),
        model.explained_variance() * 100.0,
        model.threshold()
    );

    // Scatter data: first two PCA dimensions of every training window.
    println!("\n# scatter: workload pc1 pc2");
    for (kind, trace) in WorkloadKind::STUDIED.iter().zip(&train) {
        let p = model.project(trace).expect("project");
        for r in 0..p.rows() {
            println!("{} {:.4} {:.4}", kind.name(), p[(r, 0)], p[(r, 1)]);
        }
    }

    // Validation: fresh traces (unseen seeds), window-level purity.
    let mut rows = Vec::new();
    let mut total_majority = 0.0;
    for kind in WorkloadKind::STUDIED {
        let fresh = kind.spec().generate(events, 1234);
        let assignments = model.classify_windows(&fresh).expect("classify");
        // Majority cluster fraction = how consistently this workload maps.
        let mut counts = vec![0usize; model.k()];
        for &a in &assignments {
            counts[a] += 1;
        }
        let (majority_cluster, majority) = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, &c)| (i, c as f64 / assignments.len() as f64))
            .unwrap();
        total_majority += majority;
        rows.push(vec![
            kind.name().to_string(),
            majority_cluster.to_string(),
            format!("{:.1}%", majority * 100.0),
        ]);
    }
    print_table(
        "Figure 2 — validation: fraction of windows in the majority cluster",
        &["workload".into(), "cluster".into(), "purity".into()],
        &rows,
    );
    println!(
        "\nmean window purity: {:.1}% (paper reports ~95% of validation points in the right cluster)",
        total_majority / WorkloadKind::STUDIED.len() as f64 * 100.0
    );
}
