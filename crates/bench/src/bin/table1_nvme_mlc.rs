//! Table 1 (and Table 5): learned configurations for NVMe MLC SSDs,
//! normalized to the Intel 750 reference.
//!
//! For each of the seven studied workload categories, AutoBlox learns an
//! optimized configuration under [512 GiB, NVMe, MLC] constraints; the
//! matrix reports latency/throughput speedups of each learned configuration
//! on every workload. The paper reports 1.25-1.93x target-latency gains with
//! non-target geometric means around 1.0-1.26x. A second pass with β = 0
//! reproduces the "ignore non-target" rows.

use autoblox::constraints::Constraints;
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox_bench::{
    fmt_cell, geo_mean_cells, print_critical_parameters, print_cross_matrix, print_table,
    speedup_cell, tune_targets, tuner_options, validator, Scale,
};
use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;

fn main() {
    let scale = Scale::from_env();
    let v = validator(scale);
    let reference = presets::intel_750();
    let constraints = Constraints::paper_default();
    let opts = tuner_options(scale);
    let targets = WorkloadKind::STUDIED;

    let outcomes = tune_targets(&targets, &reference, constraints, &v, &opts);
    print_cross_matrix(
        "Table 1 — NVMe MLC, normalized to Intel 750",
        &reference,
        &v,
        &targets,
        &targets,
        &outcomes,
    );
    print_critical_parameters(&reference, &targets, &outcomes);

    // "Ignore non-target" pass: β = 0 maximizes the target alone.
    eprintln!("re-tuning with beta = 0 (ignore non-target) ...");
    let selfish_opts = TunerOptions {
        beta: 0.0,
        non_target: Vec::new(),
        ..opts
    };
    let mut max_rows = Vec::new();
    let mut geo_rows = Vec::new();
    let mut worst_rows = Vec::new();
    for &t in &targets {
        let tuner = Tuner::new(constraints, &v, selfish_opts.clone());
        let out = tuner.tune(t, &reference, &[], None);
        let target_cell = speedup_cell(&out.best.config, &reference, t, &v);
        let mut non_cells = Vec::new();
        for &w in &targets {
            if w != t {
                non_cells.push(speedup_cell(&out.best.config, &reference, w, &v));
            }
        }
        max_rows.push(fmt_cell(target_cell));
        geo_rows.push(fmt_cell(geo_mean_cells(&non_cells)));
        let worst = non_cells
            .iter()
            .cloned()
            .min_by(|a, b| (a.0 * a.1).partial_cmp(&(b.0 * b.1)).unwrap())
            .unwrap();
        worst_rows.push(fmt_cell(worst));
    }
    let mut headers = vec!["row".to_string()];
    headers.extend(targets.iter().map(|t| t.name().to_string()));
    let mut rows = Vec::new();
    let mut r1 = vec!["max target speedup (ignore non-target)".to_string()];
    r1.extend(max_rows);
    let mut r2 = vec!["geo-mean non-target (ignore non-target)".to_string()];
    r2.extend(geo_rows);
    let mut r3 = vec!["worst non-target (ignore non-target)".to_string()];
    r3.extend(worst_rows);
    rows.push(r1);
    rows.push(r2);
    rows.push(r3);
    print_table("Table 1 (bottom) — ignore-non-target rows", &headers, &rows);
}
