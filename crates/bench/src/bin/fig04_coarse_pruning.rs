//! Figure 4: coarse-grained parameter pruning.
//!
//! Sweeps every numeric SSD parameter from its baseline up to 16x (plus the
//! grid extremes) and reports the per-parameter performance sensitivity per
//! workload. Flat lines — insensitive parameters — are the prune set; the
//! paper finds ~12 insensitive parameters such as Page_Metadata_Capacity,
//! Static_Wearleveling_Threshold, and Suspend_Program_Time.

use autoblox::params::ParamSpace;
use autoblox::pruning::{coarse_prune, COARSE_MULTIPLIERS};
use autoblox_bench::{print_table, validator, Scale};
use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;

fn main() {
    let scale = Scale::from_env();
    let v = validator(scale);
    let space = ParamSpace::new();
    let base = presets::intel_750();

    let workloads = match scale {
        Scale::Quick => vec![WorkloadKind::Database],
        _ => vec![
            WorkloadKind::Database,
            WorkloadKind::WebSearch,
            WorkloadKind::KvStore,
            WorkloadKind::BatchAnalytics,
        ],
    };

    let mut all_insensitive: Option<Vec<String>> = None;
    for w in workloads {
        eprintln!("coarse sweep for {w} ...");
        let report = coarse_prune(&space, &base, w, &v);
        let mut rows: Vec<Vec<String>> = report
            .sweeps
            .iter()
            .map(|s| {
                let mut row = vec![s.name.clone()];
                row.extend(s.scores.iter().map(|x| format!("{x:+.3}")));
                row.push(format!("{:+.3}", s.sensitivity));
                row.push(if s.insensitive {
                    "PRUNE".into()
                } else {
                    "keep".into()
                });
                row
            })
            .collect();
        rows.sort_by(|a, b| a[0].cmp(&b[0]));
        let mut headers = vec!["parameter".to_string()];
        headers.extend(COARSE_MULTIPLIERS.iter().map(|m| format!("x{m}")));
        headers.push("sensitivity".into());
        headers.push("verdict".into());
        print_table(&format!("Figure 4 — coarse sweep, {w}"), &headers, &rows);

        let ins: Vec<String> = report.insensitive().iter().map(|s| s.to_string()).collect();
        println!("\n{} insensitive parameters for {w}: {:?}", ins.len(), ins);
        all_insensitive = Some(match all_insensitive {
            None => ins,
            Some(prev) => prev.into_iter().filter(|p| ins.contains(p)).collect(),
        });
    }
    if let Some(common) = all_insensitive {
        println!(
            "\nparameters insensitive across ALL swept workloads ({}): {:?}",
            common.len(),
            common
        );
        println!("(paper identifies 12 such parameters in its Figure 4)");
    }
}
