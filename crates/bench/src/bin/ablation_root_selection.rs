//! Ablation: sampling the search root from the top-3 elite configurations
//! versus greedily restarting from the single best (§3.4's rationale for
//! randomized top-3 selection: avoiding convergence to a suboptimum).

use autoblox::constraints::Constraints;
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox_bench::{print_table, tuner_options, validator, Scale};
use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;

fn main() {
    let scale = Scale::from_env();
    let reference = presets::intel_750();
    let constraints = Constraints::paper_default();
    let workloads = match scale {
        Scale::Quick => vec![WorkloadKind::KvStore],
        _ => vec![
            WorkloadKind::KvStore,
            WorkloadKind::Recomm,
            WorkloadKind::Vdi,
        ],
    };

    let mut rows = Vec::new();
    for kind in workloads {
        for top_k in [1usize, 3, 8] {
            let v = validator(scale);
            let opts = TunerOptions {
                top_k,
                ..tuner_options(scale)
            };
            let tuner = Tuner::new(constraints, &v, opts);
            let out = tuner.tune(kind, &reference, &[], None);
            rows.push(vec![
                kind.name().to_string(),
                format!("top-{top_k}"),
                format!("{:+.4}", out.best.grade),
                out.iterations.to_string(),
            ]);
        }
    }
    print_table(
        "Ablation — search-root elite size",
        &[
            "workload".into(),
            "root pool".into(),
            "final grade".into(),
            "iterations".into(),
        ],
        &rows,
    );
    println!("\npaper: top-3 balances convergence speed against suboptimal attraction");
}
