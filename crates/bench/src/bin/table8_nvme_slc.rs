//! Table 8: learned configurations for NVMe SLC SSDs, normalized to the
//! Samsung Z-SSD. The paper reports up to 2.46x latency reduction and up to
//! 1.92x throughput improvement for target workloads.

use autoblox::constraints::Constraints;
use autoblox_bench::{cross_matrix_experiment, tuner_options, validator, Scale};
use iotrace::gen::WorkloadKind;
use ssdsim::config::{presets, FlashTechnology, Interface};

fn main() {
    let scale = Scale::from_env();
    let v = validator(scale);
    let reference = presets::samsung_z_ssd();
    let cap_gib = reference.physical_capacity_bytes() >> 30;
    let constraints = Constraints::new(cap_gib, Interface::Nvme, FlashTechnology::Slc, 25.0);
    let opts = tuner_options(scale);
    cross_matrix_experiment(
        "Table 8 — NVMe SLC, normalized to Samsung Z-SSD",
        &reference,
        constraints,
        &v,
        &opts,
        &WorkloadKind::STUDIED,
        &WorkloadKind::STUDIED,
    );
}
