//! Table 7: what-if analysis — optimized configurations for explicit
//! performance targets (3x latency reduction for VDI/WebSearch, 3x
//! throughput improvement for Database/KVStore) over an expanded design
//! space. The paper converges within ~121 iterations over a 4.11-trillion
//! combination space.

use autoblox::constraints::Constraints;
use autoblox::params::ParamSpace;
use autoblox::tuner::TunerOptions;
use autoblox::whatif::{what_if, WhatIfGoal, WhatIfOptions};
use autoblox_bench::{print_table, validator, Scale};
use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;

fn main() {
    let scale = Scale::from_env();
    let v = validator(scale);
    let reference = presets::intel_750();
    let constraints = Constraints::paper_default();
    println!(
        "full search space: {:.2e} configuration combinations",
        ParamSpace::new().search_space_size()
    );

    let goals = [
        (WorkloadKind::Vdi, WhatIfGoal::LatencyReduction(3.0)),
        (WorkloadKind::WebSearch, WhatIfGoal::LatencyReduction(3.0)),
        (
            WorkloadKind::Database,
            WhatIfGoal::ThroughputImprovement(3.0),
        ),
        (
            WorkloadKind::KvStore,
            WhatIfGoal::ThroughputImprovement(3.0),
        ),
    ];

    let opts = WhatIfOptions {
        tuner: TunerOptions {
            // The paper's what-if analysis converges "within 121 iterations
            // on average"; give the search a comparable budget.
            max_iterations: 121,
            manhattan_limit: 8,
            ..TunerOptions::default()
        },
    };

    let mut rows = Vec::new();
    let mut configs = Vec::new();
    for (kind, goal) in goals {
        eprintln!("what-if for {kind} ...");
        let out = what_if(kind, goal, constraints, &reference, &v, opts.clone());
        rows.push(vec![
            kind.name().to_string(),
            match goal {
                WhatIfGoal::LatencyReduction(f) => format!("{f:.0}x latency"),
                WhatIfGoal::ThroughputImprovement(f) => format!("{f:.0}x throughput"),
            },
            format!("{:.2}x", out.achieved),
            if out.met {
                "met".into()
            } else {
                "not met".into()
            },
            out.tuning.iterations.to_string(),
        ]);
        configs.push((kind, out.tuning.best.config.clone()));
    }
    print_table(
        "Table 7 — what-if goals",
        &[
            "workload".into(),
            "goal".into(),
            "achieved".into(),
            "status".into(),
            "iterations".into(),
        ],
        &rows,
    );

    // Critical parameters, Table 7 style.
    type ParamGetter = (&'static str, fn(&ssdsim::config::SsdConfig) -> String);
    let getters: [ParamGetter; 8] = [
        ("DataCacheCapacity (MiB)", |c| c.data_cache_mb.to_string()),
        ("CMT_Capacity (MiB)", |c| c.cmt_capacity_mb.to_string()),
        ("Channel_Width (bits)", |c| c.channel_width_bits.to_string()),
        ("Channel_Rate (MT/s)", |c| {
            c.channel_transfer_rate_mts.to_string()
        }),
        ("tRead (us)", |c| (c.read_latency_ns / 1000).to_string()),
        ("tProg (us)", |c| (c.program_latency_ns / 1000).to_string()),
        ("ChannelCount", |c| c.channel_count.to_string()),
        ("ChipsPerChannel", |c| c.chips_per_channel.to_string()),
    ];
    let mut headers = vec!["parameter".to_string(), "baseline".to_string()];
    headers.extend(configs.iter().map(|(k, _)| k.name().to_string()));
    let prows: Vec<Vec<String>> = getters
        .iter()
        .map(|(name, get)| {
            let mut row = vec![name.to_string(), get(&reference)];
            row.extend(configs.iter().map(|(_, c)| get(c)));
            row
        })
        .collect();
    print_table("Table 7 — optimized configurations", &headers, &prows);
}
