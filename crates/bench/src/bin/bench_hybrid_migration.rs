//! Hybrid SLC/QLC cache-tier behavior and cost on a write-heavy trace.
//!
//! Replays the same generated FIU trace through three devices that share
//! one (deliberately small) geometry, so cache blocks actually seal and
//! fold within the trace: a homogeneous QLC baseline, a hybrid device
//! folding on idle, and a hybrid device folding on the free-page
//! watermark. Write-through caching exposes raw program latency, so the
//! write-latency delta measures the SLC absorption benefit directly.
//! Interleaved best-of-5 wall-clock per mode bounds the simulator-side
//! cost of the migration machinery; the simulated results themselves are
//! deterministic per (config, trace). Writes `BENCH_hybrid_migration.json`.
//!
//! Acceptance criteria: the hybrid device beats homogeneous QLC on mean
//! write latency, and both migration policies fold a non-zero number of
//! pages with a non-zero `slc_migration` attribution.
//!
//! `AUTOBLOX_SCALE=quick|standard|full` scales the trace length.

use iotrace::gen::WorkloadKind;
use serde_json::json;
use ssdsim::config::{
    presets, CacheMode, DeviceFamily, FlashTechnology, MigrationPolicy, SsdConfig,
};
use ssdsim::{SimReport, Simulator};
use std::time::Instant;

// Best-of-5 over interleaved repetitions: the min filters scheduler
// noise, interleaving keeps slow drift from biasing one mode.
const REPS: usize = 5;

/// Shrinks a device to a geometry where a short trace cycles the cache
/// tier (the preset geometry needs millions of events to seal a block).
fn small(cfg: SsdConfig) -> SsdConfig {
    SsdConfig {
        channel_count: 2,
        chips_per_channel: 1,
        dies_per_chip: 1,
        planes_per_die: 1,
        blocks_per_plane: 32,
        pages_per_block: 32,
        cache_mode: CacheMode::WriteThrough,
        ..cfg
    }
}

fn homogeneous_qlc() -> SsdConfig {
    small(SsdConfig {
        flash_technology: FlashTechnology::Qlc,
        read_latency_ns: FlashTechnology::Qlc.base_read_ns(),
        program_latency_ns: FlashTechnology::Qlc.base_program_ns(),
        erase_latency_ns: FlashTechnology::Qlc.base_erase_ns(),
        ..SsdConfig::default()
    })
}

fn hybrid(policy: MigrationPolicy) -> SsdConfig {
    let mut cfg = small(presets::hybrid_slc_qlc());
    cfg.device_family = DeviceFamily::HybridSlcCache {
        cache_blocks_pct: 10.0,
        migration_policy: policy,
        migration_threshold_pct: 25.0,
    };
    cfg
}

/// One timed replay on a fresh warmed simulator.
fn replay(cfg: &SsdConfig, trace: &iotrace::Trace) -> (f64, SimReport) {
    let mut sim = Simulator::new(cfg.clone());
    sim.warm_up(0.5);
    let t0 = Instant::now();
    let report = sim.run(trace);
    (t0.elapsed().as_secs_f64(), report)
}

fn main() {
    let check = autoblox_bench::check_mode();
    let scale = autoblox_bench::run_scale();
    // Floor of 3k events: below that the cache tier never seals a block
    // on this geometry and the migration counters are vacuously zero.
    let trace_events = match scale {
        autoblox_bench::Scale::Quick => 3_000,
        autoblox_bench::Scale::Standard => 12_000,
        autoblox_bench::Scale::Full => 40_000,
    };
    let reps = if check { 1 } else { REPS };
    let trace = WorkloadKind::Fiu.spec().generate(trace_events, 42);

    let qlc_cfg = homogeneous_qlc();
    let idle_cfg = hybrid(MigrationPolicy::Idle);
    let watermark_cfg = hybrid(MigrationPolicy::Watermark);

    // Warm-up so no mode pays first-touch costs.
    let _ = replay(&qlc_cfg, &trace);

    let mut qlc_s = f64::INFINITY;
    let mut idle_s = f64::INFINITY;
    let mut watermark_s = f64::INFINITY;
    let mut qlc_report = None;
    let mut idle_report = None;
    let mut watermark_report = None;
    for _ in 0..reps {
        let (t, r) = replay(&qlc_cfg, &trace);
        qlc_s = qlc_s.min(t);
        qlc_report = Some(r);
        let (t, r) = replay(&idle_cfg, &trace);
        idle_s = idle_s.min(t);
        idle_report = Some(r);
        let (t, r) = replay(&watermark_cfg, &trace);
        watermark_s = watermark_s.min(t);
        watermark_report = Some(r);
    }
    let qlc_report = qlc_report.expect("baseline ran");
    let idle_report = idle_report.expect("idle-policy run");
    let watermark_report = watermark_report.expect("watermark-policy run");

    let qlc_write_ns = qlc_report.write_latency.mean_ns;
    let idle_write_ns = idle_report.write_latency.mean_ns;
    let watermark_write_ns = watermark_report.write_latency.mean_ns;
    let best_hybrid_write_ns = idle_write_ns.min(watermark_write_ns);
    let write_speedup = qlc_write_ns / best_hybrid_write_ns.max(1.0);
    let overhead_pct = (idle_s.min(watermark_s) - qlc_s) / qlc_s * 100.0;
    let criterion_met = best_hybrid_write_ns < qlc_write_ns
        && idle_report.flash.slc_migrated_pages > 0
        && watermark_report.flash.slc_migrated_pages > 0
        && idle_report.bottleneck.slc_migration_ns > 0
        && watermark_report.bottleneck.slc_migration_ns > 0;

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "qlc write {qlc_write_ns:.0}ns; hybrid idle {idle_write_ns:.0}ns \
         ({} pages folded, {:.3} migration frac); hybrid watermark \
         {watermark_write_ns:.0}ns ({} pages folded, {:.3} migration frac); \
         write speedup x{write_speedup:.2}; sim wall overhead {overhead_pct:+.2}%",
        idle_report.flash.slc_migrated_pages,
        idle_report.bottleneck.slc_migration_frac,
        watermark_report.flash.slc_migrated_pages,
        watermark_report.bottleneck.slc_migration_frac,
    );

    let doc = json!({
        "benchmark": "hybrid_migration",
        "host_cpus": host_cpus,
        "trace_events": trace_events,
        "reps_best_of": reps as u64,
        "qlc_write_mean_ns": qlc_write_ns,
        "idle_write_mean_ns": idle_write_ns,
        "watermark_write_mean_ns": watermark_write_ns,
        "write_speedup": write_speedup,
        "idle_migrated_pages": idle_report.flash.slc_migrated_pages,
        "watermark_migrated_pages": watermark_report.flash.slc_migrated_pages,
        "idle_migration_frac": idle_report.bottleneck.slc_migration_frac,
        "watermark_migration_frac": watermark_report.bottleneck.slc_migration_frac,
        "qlc_best_s": qlc_s,
        "idle_best_s": idle_s,
        "watermark_best_s": watermark_s,
        "sim_overhead_pct": overhead_pct,
        "criterion_met": criterion_met,
    });
    autoblox_bench::write_bench_report(
        "BENCH_hybrid_migration.json",
        "hybrid_migration",
        &[
            "host_cpus",
            "trace_events",
            "qlc_write_mean_ns",
            "idle_write_mean_ns",
            "watermark_write_mean_ns",
            "write_speedup",
            "idle_migrated_pages",
            "watermark_migrated_pages",
            "criterion_met",
        ],
        &doc,
    );
    println!("write_speedup: x{write_speedup:.3}");
}
