//! Wall-clock benchmark of the batched BO loop and its surrogate hot paths.
//!
//! Three sections, one JSON report (`BENCH_bo_throughput.json`):
//!
//! 1. **Tune throughput** — a pinned-seed tuning run at 1/2/4/8 threads with
//!    `speculative_batch` matched to the thread count, reporting unique
//!    candidates scored per second, total surrogate-fit time, and the
//!    speculation ledger (runs / hits / wasted). The k=1 single-thread run
//!    is the sequential baseline; the determinism tests guarantee every row
//!    converges to byte-identical state, so the rows differ only in time.
//! 2. **Surrogate fit before/after** — full `GprBuilder::fit` vs the
//!    incremental `Gpr::extend` rank-1 append at n = 16/32/64 on the paper
//!    kernel (RBF(0.5, 1.0) + White(1e-4)), the O(n³) → O(n²) claim.
//! 3. **Gram crossover** — `Kernel::gram` at n = 16/32/64/128, sequential
//!    vs the pool, documenting the `GRAM_PARALLEL_MIN = 32` threshold.
//!
//! On a single-CPU host the thread rows time-share one core, so the
//! meaningful acceptance signals are the speculation counters (bounded
//! wasted work) and the fit-time drop; `host_cpus` is recorded so readers
//! can interpret the wall-clock columns.
//!
//! `AUTOBLOX_SCALE=quick|standard|full` scales trace length and iterations.

use autoblox::constraints::Constraints;
use autoblox::parallel;
use autoblox::tuner::{Tuner, TunerOptions, TuningTarget};
use autoblox::validator::{Validator, ValidatorOptions};
use iotrace::gen::WorkloadKind;
use mlkit::gpr::GprBuilder;
use mlkit::kernel::{Kernel, Rbf, SumKernel, White, GRAM_PARALLEL_MIN};
use mlkit::linalg::Matrix;
use serde_json::json;
use ssdsim::config::presets;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const FIT_SIZES: [usize; 3] = [16, 32, 64];
const GRAM_SIZES: [usize; 4] = [16, 32, 64, 128];
const DIMS: usize = 8;

fn paper_kernel() -> SumKernel {
    SumKernel::new(vec![
        Box::new(Rbf::new(0.5, 1.0)) as Box<dyn Kernel>,
        Box::new(White::new(1e-4)),
    ])
}

/// Deterministic synthetic training set in [0, 1]^DIMS with a smooth target,
/// shaped like the tuner's normalized observation stream.
fn synthetic(n: usize) -> (Matrix, Vec<f64>) {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..DIMS)
                .map(|d| {
                    let t = (i * DIMS + d) as f64;
                    (t * 0.618_033_988_75).fract()
                })
                .collect()
        })
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| {
            r.iter()
                .enumerate()
                .map(|(d, v)| v.sin() * (d + 1) as f64)
                .sum::<f64>()
                / DIMS as f64
        })
        .collect();
    (Matrix::from_rows(&rows), y)
}

fn tune_row(
    threads: usize,
    k: usize,
    trace_events: usize,
    max_iterations: usize,
) -> serde_json::Value {
    parallel::set_max_threads(threads);
    let v = Validator::new(ValidatorOptions {
        trace_events,
        ..Default::default()
    });
    let tuner = Tuner::new(
        Constraints::paper_default(),
        &v,
        TunerOptions {
            max_iterations,
            convergence_window: max_iterations,
            non_target: vec![WorkloadKind::WebSearch],
            speculative_batch: k,
            ..Default::default()
        },
    );
    let target = TuningTarget::Category(WorkloadKind::Database);
    let mut state = tuner.init_state(target, &presets::intel_750(), &[], None);
    let t0 = Instant::now();
    while tuner.step(target, &mut state) {}
    let wall_s = t0.elapsed().as_secs_f64();
    let candidates: u64 = state.records.iter().map(|r| r.candidates_considered).sum();
    let fit_ns: u64 = state.records.iter().map(|r| r.surrogate_fit_ns).sum();
    let stats = v.stats();
    eprintln!(
        "threads={threads} k={k}: {wall_s:.2}s, {:.1} candidates/s, fit {:.3} ms, \
         speculation {} run(s) / {} hit(s) / {} wasted",
        candidates as f64 / wall_s,
        fit_ns as f64 / 1e6,
        stats.speculative_runs,
        stats.speculative_hits,
        stats.speculative_wasted,
    );
    json!({
        "threads": threads,
        "speculative_batch": k,
        "wall_s": wall_s,
        "iterations": state.iterations,
        "candidates_considered": candidates,
        "candidates_per_s": candidates as f64 / wall_s,
        "validations": state.validations,
        "surrogate_fit_ms_total": fit_ns as f64 / 1e6,
        "best_grade": state.best.as_ref().map(|b| b.grade),
        "speculative_runs": stats.speculative_runs,
        "speculative_hits": stats.speculative_hits,
        "speculative_wasted": stats.speculative_wasted,
        "simulator_runs": stats.simulator_runs,
    })
}

fn main() {
    let check = autoblox_bench::check_mode();
    let scale = autoblox_bench::run_scale();
    let (trace_events, max_iterations) = match scale {
        autoblox_bench::Scale::Quick => (300, 6),
        autoblox_bench::Scale::Standard => (800, 10),
        autoblox_bench::Scale::Full => (2_000, 16),
    };
    // `--check` shrinks every sweep to its smallest point and a single rep:
    // the run only has to prove the binary works and its report conforms.
    let thread_counts: &[usize] = if check { &[1] } else { &THREAD_COUNTS };
    let fit_sizes: &[usize] = if check { &FIT_SIZES[..1] } else { &FIT_SIZES };
    let gram_sizes: &[usize] = if check { &GRAM_SIZES[..2] } else { &GRAM_SIZES };
    let reps = if check { 1 } else { 5 };

    // Section 1: tune throughput. Sequential baseline first, then batched
    // speculation with the batch width matched to the thread count.
    // Telemetry must be on for `surrogate_fit_ns` to be collected at all.
    telemetry::set_enabled(true);
    eprintln!("— tune throughput ({trace_events} events, {max_iterations} iterations) —");
    let baseline = tune_row(1, 1, trace_events, max_iterations);
    let mut tune_rows = vec![baseline.clone()];
    for &threads in thread_counts {
        let k = threads.max(2);
        tune_rows.push(tune_row(threads, k, trace_events, max_iterations));
    }
    parallel::set_max_threads(0);
    telemetry::set_enabled(false);

    // Section 2: full refit vs incremental extend at growing n. Each extend
    // timing appends one observation to an (n-1)-point model, exactly the
    // step the tuner performs between scheduled retunes.
    eprintln!("— surrogate fit: full refit vs incremental extend —");
    let mut fit_rows = Vec::new();
    for &n in fit_sizes {
        let (x, y) = synthetic(n);
        let mut full_s = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let g = GprBuilder::new()
                .kernel(paper_kernel())
                .optimize_rounds(1)
                .fit(&x, &y)
                .expect("full fit succeeds");
            full_s = full_s.min(t0.elapsed().as_secs_f64());
            assert_eq!(g.n_samples(), n);
        }
        let (x_prev, y_prev) = synthetic(n - 1);
        let base = GprBuilder::new()
            .kernel(paper_kernel())
            .optimize_rounds(1)
            .fit(&x_prev, &y_prev)
            .expect("base fit succeeds");
        let last: Vec<f64> = (0..DIMS).map(|d| x[(n - 1, d)]).collect();
        let mut ext_s = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let g = base.extend(&last, y[n - 1]).expect("extend succeeds");
            ext_s = ext_s.min(t0.elapsed().as_secs_f64());
            assert_eq!(g.n_samples(), n);
        }
        eprintln!(
            "n={n}: full {:.3} ms, extend {:.3} ms ({:.1}x)",
            full_s * 1e3,
            ext_s * 1e3,
            full_s / ext_s
        );
        fit_rows.push(json!({
            "n": n,
            "full_fit_ms": full_s * 1e3,
            "extend_ms": ext_s * 1e3,
            "speedup": full_s / ext_s,
        }));
    }

    // Section 3: Gram-matrix build, sequential vs pooled, around the
    // GRAM_PARALLEL_MIN threshold.
    eprintln!("— gram crossover (threshold n = {GRAM_PARALLEL_MIN}) —");
    let kernel = paper_kernel();
    let mut gram_rows = Vec::new();
    for &n in gram_sizes {
        let (x, _) = synthetic(n);
        let mut seq_s = f64::INFINITY;
        parallel::set_max_threads(1);
        for _ in 0..reps {
            let t0 = Instant::now();
            let _ = kernel.gram(&x);
            seq_s = seq_s.min(t0.elapsed().as_secs_f64());
        }
        let mut par_s = f64::INFINITY;
        parallel::set_max_threads(4);
        for _ in 0..reps {
            let t0 = Instant::now();
            let _ = kernel.gram(&x);
            par_s = par_s.min(t0.elapsed().as_secs_f64());
        }
        parallel::set_max_threads(0);
        eprintln!(
            "n={n}: sequential {:.1} us, 4-thread {:.1} us",
            seq_s * 1e6,
            par_s * 1e6
        );
        gram_rows.push(json!({
            "n": n,
            "parallel_eligible": n >= GRAM_PARALLEL_MIN,
            "sequential_us": seq_s * 1e6,
            "threads4_us": par_s * 1e6,
        }));
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = json!({
        "benchmark": "bo_throughput",
        "host_cpus": host_cpus,
        "trace_events": trace_events,
        "max_iterations": max_iterations,
        "workload": WorkloadKind::Database.name(),
        "note": "Determinism tests pin every row to the same trajectory; on hosts \
                 where host_cpus is below the thread count, rows time-share the \
                 CPU and the speculation ledger (bounded wasted work) plus the \
                 extend-vs-refit speedup are the meaningful columns.",
        "tune": tune_rows,
        "surrogate_fit": fit_rows,
        "gram_parallel_min": GRAM_PARALLEL_MIN,
        "gram": gram_rows,
    });
    autoblox_bench::write_bench_report(
        "BENCH_bo_throughput.json",
        "bo_throughput",
        &[
            "host_cpus",
            "trace_events",
            "max_iterations",
            "workload",
            "tune",
            "surrogate_fit",
            "gram_parallel_min",
            "gram",
        ],
        &doc,
    );
}
