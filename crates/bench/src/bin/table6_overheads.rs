//! Table 6: overhead sources of AutoBlox.
//!
//! Measures the wall-clock cost of each framework component: feature
//! extraction per 100K I/O requests, workload similarity comparison,
//! clustering, AutoDB lookup, one learning iteration, and one efficiency
//! validation. The paper's validation dominates at 670.89 s (real traces on
//! MQSim); ours is proportionally faster but preserves the ordering.

use autoblox::clustering::WorkloadClusterer;
use autoblox::constraints::Constraints;
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox::validator::{Validator, ValidatorOptions};
use autoblox_bench::{print_table, Scale};
use autodb::Store;
use iotrace::gen::WorkloadKind;
use iotrace::window::{window_features, WindowOptions};
use iotrace::Trace;
use ssdsim::config::presets;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let window = WindowOptions { window_len: 1_000 };
    let mut rows = Vec::new();

    // Feature extraction per 100K I/O requests.
    let big = WorkloadKind::Database.spec().generate(100_000, 3);
    let t0 = Instant::now();
    let feats = window_features(&big, window);
    rows.push(vec![
        "extract workload features per 100K I/O requests".into(),
        format!("{:.3}", t0.elapsed().as_secs_f64()),
    ]);
    assert!(!feats.is_empty());

    // Clustering model training.
    let train: Vec<Trace> = WorkloadKind::STUDIED
        .iter()
        .map(|k| k.spec().generate(6_000, 42))
        .collect();
    let t0 = Instant::now();
    let model = WorkloadClusterer::fit(&train, 7, window, 7).expect("fit");
    rows.push(vec![
        "workload clustering (train PCA + k-means)".into(),
        format!("{:.3}", t0.elapsed().as_secs_f64()),
    ]);

    // Similarity comparison of a new workload.
    let fresh = WorkloadKind::KvStore.spec().generate(6_000, 99);
    let t0 = Instant::now();
    let _ = model.classify(&fresh).expect("classify");
    rows.push(vec![
        "workload similarity comparison".into(),
        format!("{:.3}", t0.elapsed().as_secs_f64()),
    ]);

    // AutoDB lookup.
    let db = Store::in_memory();
    db.put_record("cluster:1", &serde_json::json!({"grade": 1.0}))
        .expect("put");
    let t0 = Instant::now();
    for _ in 0..1000 {
        let _ = db.get("cluster:1").expect("get");
    }
    rows.push(vec![
        "AutoDB database lookup (amortized over 1000)".into(),
        format!("{:.6}", t0.elapsed().as_secs_f64() / 1000.0),
    ]);

    // One learning iteration (GPR fit + SGD proposals) and one validation.
    let v = Validator::new(ValidatorOptions {
        trace_events: scale.trace_events(),
        ..Default::default()
    });
    let reference = presets::intel_750();
    let opts = TunerOptions {
        max_iterations: 5,
        non_target: vec![],
        ..TunerOptions::default()
    };
    let tuner = Tuner::new(Constraints::paper_default(), &v, opts);
    let t0 = Instant::now();
    let out = tuner.tune(WorkloadKind::Database, &reference, &[], None);
    let per_iter = t0.elapsed().as_secs_f64() / out.iterations as f64;
    rows.push(vec![
        "new configuration learning per iteration (incl. validation)".into(),
        format!("{per_iter:.3}"),
    ]);

    let t0 = Instant::now();
    v.clear_cache();
    let _ = v.evaluate(&reference, WorkloadKind::Database);
    rows.push(vec![
        "efficiency validation (one simulator run)".into(),
        format!("{:.3}", t0.elapsed().as_secs_f64()),
    ]);

    print_table(
        "Table 6 — overhead sources of AutoBlox (seconds)",
        &["component".into(), "execution time (s)".into()],
        &rows,
    );
    println!("\npaper (seconds): features/100K 0.84, similarity 4.65, clustering 0.57,");
    println!("AutoDB lookup 0.02, learning/iter 2.75, validation 670.89");
    println!("the ordering — validation >> everything else — is the reproduced claim");
}
