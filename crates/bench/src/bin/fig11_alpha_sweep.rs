//! Figure 11: impact of the latency/throughput balance coefficient alpha.
//!
//! Sweeping alpha from 0.01 to 0.99 and retuning from scratch: small alpha
//! maximizes latency gains at the cost of throughput; alpha = 0.5 achieves
//! both — the paper's default.

use autoblox::constraints::Constraints;
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox_bench::{print_table, validator, Scale};
use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;

fn main() {
    let scale = Scale::from_env();
    let reference = presets::intel_750();
    let constraints = Constraints::paper_default();
    let alphas = [0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99];
    let workloads = match scale {
        Scale::Quick => vec![WorkloadKind::Database],
        _ => vec![
            WorkloadKind::Database,
            WorkloadKind::KvStore,
            WorkloadKind::LiveMaps,
        ],
    };

    let mut rows = Vec::new();
    for kind in workloads {
        for &alpha in &alphas {
            // Reset the model per point, as the paper does.
            let v = validator(scale);
            let opts = TunerOptions {
                alpha,
                max_iterations: scale.max_iterations().min(20),
                non_target: vec![],
                beta: 0.0,
                ..TunerOptions::default()
            };
            let tuner = Tuner::new(constraints, &v, opts);
            let out = tuner.tune(kind, &reference, &[], None);
            let lat = out.reference.latency_ns / out.best.measurement.latency_ns;
            let tp = out.best.measurement.throughput_bps / out.reference.throughput_bps;
            rows.push(vec![
                kind.name().to_string(),
                format!("{alpha:.2}"),
                format!("{lat:.2}x"),
                format!("{tp:.2}x"),
            ]);
        }
    }
    print_table(
        "Figure 11 — alpha sweep (latency vs throughput balance)",
        &[
            "workload".into(),
            "alpha".into(),
            "latency speedup".into(),
            "throughput speedup".into(),
        ],
        &rows,
    );
    println!("\npaper: alpha = 0.5 achieves both improved latency and throughput");
}
