//! Wall-clock benchmark of the parallel validation engine.
//!
//! For each thread count (1/2/4/8) it times a cold-cache coarse-pruning
//! sweep — the workload the pool was built for: dozens of independent
//! simulator probes — plus a raw validator fan-out over distinct
//! configurations, and writes `BENCH_parallel_validation.json` with the
//! timings, speedups, and evaluation throughput.
//!
//! `AUTOBLOX_SCALE=quick|standard|full` scales the trace length.

use autoblox::parallel;
use autoblox::pruning::coarse_prune;
use autoblox::validator::{Validator, ValidatorOptions};
use autoblox::ParamSpace;
use iotrace::gen::WorkloadKind;
use serde_json::json;
use ssdsim::config::SsdConfig;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

const SWEEP_PARAMS: [&str; 8] = [
    "channel_count",
    "chip_no_per_channel",
    "die_no_per_chip",
    "plane_no_per_die",
    "data_cache_size",
    "cmt_capacity",
    "read_latency",
    "io_queue_depth",
];

fn main() {
    let check = autoblox_bench::check_mode();
    let scale = autoblox_bench::run_scale();
    let trace_events = match scale {
        autoblox_bench::Scale::Quick => {
            if check {
                300
            } else {
                800
            }
        }
        autoblox_bench::Scale::Standard => 2_000,
        autoblox_bench::Scale::Full => 6_000,
    };
    // `--check` runs one thread count and one rep: just enough to prove
    // the binary works and its report conforms to the schema.
    let thread_counts: &[usize] = if check { &[1] } else { &THREAD_COUNTS };
    let reps = if check { 1 } else { 3 };
    let space = ParamSpace::with_params(&SWEEP_PARAMS);
    let base = SsdConfig::default();
    let workload = WorkloadKind::Database;

    let mut results = Vec::new();
    let mut coarse_baseline_s = 0.0;
    for &threads in thread_counts {
        parallel::set_max_threads(threads);

        // Cold-cache coarse-pruning sweep: the acceptance workload. Best of
        // three repetitions, each on a fresh validator so every probe pays
        // for its simulator run.
        let mut coarse_s = f64::INFINITY;
        let mut probes = 0;
        let mut insensitive = 0;
        for _ in 0..reps {
            let v = Validator::new(ValidatorOptions {
                trace_events,
                ..Default::default()
            });
            let t0 = Instant::now();
            let report = coarse_prune(&space, &base, workload, &v);
            coarse_s = coarse_s.min(t0.elapsed().as_secs_f64());
            probes = v.simulator_runs();
            insensitive = report.insensitive().len();
        }

        // Raw validator fan-out: distinct configurations hammered through
        // one shared validator.
        let v2 = Validator::new(ValidatorOptions {
            trace_events,
            ..Default::default()
        });
        let configs: Vec<SsdConfig> = (0u32..24)
            .map(|i| SsdConfig {
                channel_count: 1 + (i % 8),
                chips_per_channel: 1 + (i / 8),
                ..SsdConfig::default()
            })
            .collect();
        let t1 = Instant::now();
        parallel::parallel_map(configs, |cfg| v2.evaluate(&cfg, workload));
        let fanout_s = t1.elapsed().as_secs_f64();
        let fanout_evals = v2.simulator_runs();

        if threads == 1 {
            coarse_baseline_s = coarse_s;
        }
        let speedup = coarse_baseline_s / coarse_s;
        eprintln!(
            "threads={threads}: coarse_prune {coarse_s:.2}s ({probes} probes, {speedup:.2}x), \
             fan-out {fanout_s:.2}s ({:.1} evals/s)",
            fanout_evals as f64 / fanout_s
        );
        results.push(json!({
            "threads": threads,
            "coarse_prune_s": coarse_s,
            "coarse_probes": probes,
            "coarse_speedup_vs_1t": speedup,
            "fanout_s": fanout_s,
            "fanout_evals": fanout_evals,
            "fanout_evals_per_s": fanout_evals as f64 / fanout_s,
            "insensitive_params": insensitive,
        }));
    }
    parallel::set_max_threads(0);

    let speedup_4t = results
        .iter()
        .find(|r| r["threads"] == 4)
        .map(|r| r["coarse_speedup_vs_1t"].clone())
        .unwrap_or(serde_json::Value::Null);
    // Wall-clock speedup is bounded by the host's physical parallelism:
    // on a single-core machine all thread counts time-share one CPU and
    // the expected speedup is ~1.0x, so record the bound with the numbers.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = json!({
        "benchmark": "parallel_validation",
        "host_cpus": host_cpus,
        "trace_events": trace_events,
        "sweep_params": SWEEP_PARAMS.to_vec(),
        "workload": workload.name(),
        "results": results,
        "coarse_speedup_at_4_threads": speedup_4t,
    });
    autoblox_bench::write_bench_report(
        "BENCH_parallel_validation.json",
        "parallel_validation",
        &[
            "host_cpus",
            "trace_events",
            "sweep_params",
            "workload",
            "results",
            "coarse_speedup_at_4_threads",
        ],
        &doc,
    );
    println!(
        "coarse-prune speedup at 4 threads: {}",
        serde_json::to_string(&speedup_4t).expect("serializes")
    );
}
