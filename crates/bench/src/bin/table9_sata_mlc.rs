//! Table 9: learned configurations for SATA MLC SSDs, normalized to the
//! Samsung 850 PRO. The paper reports up to 2.45x latency reduction and up
//! to 1.58x throughput improvement for target workloads.

use autoblox::constraints::Constraints;
use autoblox_bench::{cross_matrix_experiment, tuner_options, validator, Scale};
use iotrace::gen::WorkloadKind;
use ssdsim::config::{presets, FlashTechnology, Interface};

fn main() {
    let scale = Scale::from_env();
    let v = validator(scale);
    let reference = presets::samsung_850_pro();
    let cap_gib = reference.physical_capacity_bytes() >> 30;
    let constraints = Constraints::new(cap_gib, Interface::Sata, FlashTechnology::Mlc, 10.0);
    let opts = tuner_options(scale);
    cross_matrix_experiment(
        "Table 9 — SATA MLC, normalized to Samsung 850 PRO",
        &reference,
        constraints,
        &v,
        &opts,
        &WorkloadKind::STUDIED,
        &WorkloadKind::STUDIED,
    );
}
