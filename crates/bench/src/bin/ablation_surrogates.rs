//! Ablation: the grade surrogate — GPR (the paper's customized BO) versus a
//! DQN-style neural value network versus random proposals.
//!
//! §3.2 argues that "BO can deliver similar performance compared to deep
//! neural networks, but with low performance overhead ... it sometimes
//! performs even faster than DNNs like deep Q-networks". This ablation runs
//! the same search budget with all three surrogates and also reports
//! surrogate wall-clock cost.

use autoblox::constraints::Constraints;
use autoblox::tuner::{SurrogateKind, Tuner, TunerOptions};
use autoblox_bench::{print_table, tuner_options, validator, Scale};
use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let reference = presets::intel_750();
    let constraints = Constraints::paper_default();
    let workloads = match scale {
        Scale::Quick => vec![WorkloadKind::Database],
        _ => vec![
            WorkloadKind::Database,
            WorkloadKind::CloudStorage,
            WorkloadKind::Fiu,
        ],
    };

    let mut rows = Vec::new();
    for kind in workloads {
        for (label, surrogate) in [
            ("GPR (paper)", SurrogateKind::Gpr),
            ("neural (DQN-style)", SurrogateKind::Neural),
            ("random proposals", SurrogateKind::Random),
        ] {
            let v = validator(scale);
            let opts = TunerOptions {
                surrogate,
                ..tuner_options(scale)
            };
            let tuner = Tuner::new(constraints, &v, opts);
            let t0 = Instant::now();
            let out = tuner.tune(kind, &reference, &[], None);
            rows.push(vec![
                kind.name().to_string(),
                label.to_string(),
                format!("{:+.4}", out.best.grade),
                out.iterations.to_string(),
                out.validations.to_string(),
                format!("{:.1}", t0.elapsed().as_secs_f64()),
            ]);
        }
    }
    print_table(
        "Ablation — grade surrogate: GPR vs neural vs random",
        &[
            "workload".into(),
            "surrogate".into(),
            "final grade".into(),
            "iterations".into(),
            "validations".into(),
            "time (s)".into(),
        ],
        &rows,
    );
    println!(
        "
paper claim: GPR matches the DNN's quality at lower overhead (§3.2)"
    );
}
