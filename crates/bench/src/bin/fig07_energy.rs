//! Figure 7: energy consumption of the learned configurations versus the
//! Intel 750 baseline. The paper reports up to 1.16x energy reduction and at
//! most 5% increase across workloads.

use autoblox::constraints::Constraints;
use autoblox_bench::{print_table, tune_targets, tuner_options, validator, Scale};
use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;

fn main() {
    let scale = Scale::from_env();
    let v = validator(scale);
    let reference = presets::intel_750();
    let constraints = Constraints::paper_default();
    let opts = tuner_options(scale);
    let targets = WorkloadKind::STUDIED;
    let outcomes = tune_targets(&targets, &reference, constraints, &v, &opts);

    let mut rows = Vec::new();
    for (kind, outcome) in targets.iter().zip(&outcomes) {
        let base = v.evaluate(&reference, *kind);
        let tuned = v.evaluate(&outcome.best.config, *kind);
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.1}", base.energy_mj),
            format!("{:.1}", tuned.energy_mj),
            format!("{:.2}x", base.energy_mj / tuned.energy_mj),
            format!("{:.2}", base.power_w),
            format!("{:.2}", tuned.power_w),
        ]);
    }
    print_table(
        "Figure 7 — energy of learned vs baseline configurations",
        &[
            "workload".into(),
            "baseline (mJ)".into(),
            "learned (mJ)".into(),
            "reduction".into(),
            "baseline (W)".into(),
            "learned (W)".into(),
        ],
        &rows,
    );
    println!("\npaper: up to 1.16x energy reduction, at most 5% increase");
}
