//! Figure 12: impact of the penalty-balance coefficient beta between target
//! and non-target workloads. The paper finds a sweet spot at beta = 0.1.

use autoblox::constraints::Constraints;
use autoblox::metrics::geometric_mean;
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox_bench::{print_table, speedup_cell, validator, Scale};
use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;

fn main() {
    let scale = Scale::from_env();
    let reference = presets::intel_750();
    let constraints = Constraints::paper_default();
    let betas = [0.01, 0.05, 0.1, 0.3, 0.5, 0.7, 0.99];
    let workloads = match scale {
        Scale::Quick => vec![WorkloadKind::Database],
        _ => vec![
            WorkloadKind::Database,
            WorkloadKind::KvStore,
            WorkloadKind::LiveMaps,
        ],
    };

    let mut rows = Vec::new();
    for kind in workloads {
        for &beta in &betas {
            let v = validator(scale);
            let opts = TunerOptions {
                beta,
                max_iterations: scale.max_iterations().min(20),
                non_target: WorkloadKind::STUDIED.to_vec(),
                ..TunerOptions::default()
            };
            let tuner = Tuner::new(constraints, &v, opts);
            let out = tuner.tune(kind, &reference, &[], None);
            let target = speedup_cell(&out.best.config, &reference, kind, &v);
            let mut non_lat = Vec::new();
            for w in WorkloadKind::STUDIED {
                if w != kind {
                    non_lat.push(speedup_cell(&out.best.config, &reference, w, &v).0);
                }
            }
            rows.push(vec![
                kind.name().to_string(),
                format!("{beta:.2}"),
                format!("{:.2}x", target.0),
                format!("{:.2}x", geometric_mean(&non_lat)),
            ]);
        }
    }
    print_table(
        "Figure 12 — beta sweep (target vs non-target balance)",
        &[
            "workload".into(),
            "beta".into(),
            "target latency speedup".into(),
            "non-target geo-mean".into(),
        ],
        &rows,
    );
    println!("\npaper: beta = 0.1 delivers maximum improvement for both target and non-target");
}
