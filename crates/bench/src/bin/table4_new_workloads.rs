//! Table 4: learned configurations for new (unseen) storage workloads,
//! normalized to the Intel 750. LevelDB/MySQL/HDFS cluster into the studied
//! categories KVStore/Database/CloudStorage; VDI/FIU/RadiusAuth form new
//! clusters. The paper reports 1.34-1.53x target gains, 1.12x non-target.

use autoblox::clustering::WorkloadClusterer;
use autoblox::constraints::Constraints;
use autoblox_bench::{cross_matrix_experiment, print_table, tuner_options, validator, Scale};
use iotrace::gen::WorkloadKind;
use iotrace::window::WindowOptions;
use iotrace::Trace;
use ssdsim::config::presets;

fn main() {
    let scale = Scale::from_env();
    let v = validator(scale);
    let reference = presets::intel_750();
    let constraints = Constraints::paper_default();
    let mut opts = tuner_options(scale);
    // Non-targets for Table 4 are the other new workloads.
    opts.non_target = WorkloadKind::NEW.to_vec();

    // First: show how the new workloads relate to the studied clusters.
    let window = WindowOptions { window_len: 1_000 };
    let train: Vec<Trace> = WorkloadKind::STUDIED
        .iter()
        .map(|k| k.spec().generate(scale.trace_events().max(6_000), 42))
        .collect();
    let model = WorkloadClusterer::fit(&train, 7, window, 7).expect("clustering fits");
    let mut rows = Vec::new();
    for kind in WorkloadKind::NEW {
        let t = kind.spec().generate(scale.trace_events().max(4_000), 99);
        let decision = model.classify(&t).expect("classify");
        let (verdict, dist) = match decision {
            autoblox::clustering::ClusterDecision::Existing { cluster, distance } => {
                (format!("cluster {cluster}"), distance)
            }
            autoblox::clustering::ClusterDecision::New { nearest, distance } => {
                (format!("NEW (nearest {nearest})"), distance)
            }
        };
        rows.push(vec![
            kind.name().to_string(),
            verdict,
            format!("{dist:.2}"),
            format!("{:.2}", model.threshold()),
        ]);
    }
    print_table(
        "Table 4 (prelude) — where the new workloads land",
        &[
            "workload".into(),
            "decision".into(),
            "distance".into(),
            "threshold".into(),
        ],
        &rows,
    );

    cross_matrix_experiment(
        "Table 4 — new workloads, NVMe MLC, normalized to Intel 750",
        &reference,
        constraints,
        &v,
        &opts,
        &WorkloadKind::NEW,
        &WorkloadKind::NEW,
    );
}
