//! Figure 9: learning-time reduction from enforcing the pruning-derived
//! tuning order. With the order, AutoBlox converges in less time to an
//! equal-or-better configuration.

use autoblox::constraints::Constraints;
use autoblox::params::ParamSpace;
use autoblox::pruning::{coarse_prune, fine_prune, FineOptions};
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox_bench::{print_table, tuner_options, validator, Scale};
use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let v = validator(scale);
    let reference = presets::intel_750();
    let constraints = Constraints::paper_default();
    let space = ParamSpace::new();

    let workloads = match scale {
        Scale::Quick => vec![WorkloadKind::Database, WorkloadKind::KvStore],
        _ => WorkloadKind::STUDIED.to_vec(),
    };

    let mut rows = Vec::new();
    for kind in workloads {
        eprintln!("pruning for {kind} ...");
        let coarse = coarse_prune(&space, &reference, kind, &v);
        let sensitive = coarse.sensitive();
        let fine = fine_prune(
            &space,
            &reference,
            kind,
            &sensitive,
            &v,
            FineOptions {
                samples: scale.samples(),
                ..Default::default()
            },
        );
        let order = fine.tuning_order();

        for (label, use_order) in [("with order", true), ("without order", false)] {
            // Fresh validator per run so cache effects do not skew time.
            let v_run = validator(scale);
            let opts = TunerOptions {
                use_tuning_order: use_order,
                seed: 0xA070,
                ..tuner_options(scale)
            };
            let tuner = Tuner::new(constraints, &v_run, opts);
            let t0 = Instant::now();
            let out = tuner.tune(
                kind,
                &reference,
                &[],
                if use_order { Some(&order) } else { None },
            );
            rows.push(vec![
                kind.name().to_string(),
                label.to_string(),
                format!("{:.1}", t0.elapsed().as_secs_f64()),
                out.iterations.to_string(),
                out.validations.to_string(),
                format!("{:+.4}", out.best.grade),
            ]);
        }
    }
    print_table(
        "Figure 9 — learning time with vs without the enforced tuning order",
        &[
            "workload".into(),
            "mode".into(),
            "time (s)".into(),
            "iterations".into(),
            "validations".into(),
            "final grade".into(),
        ],
        &rows,
    );
    println!("\npaper: the enforced order always converges faster to an equal-or-better grade");
}
