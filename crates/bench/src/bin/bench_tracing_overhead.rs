//! Wall-clock overhead of the span-tracing + run-journal layer.
//!
//! Times an identical tuning run with tracing fully disabled and with the
//! whole tentpole path active (spans recorded, journal streaming to disk) —
//! best of three repetitions each, a fresh validator per repetition so every
//! candidate pays for its simulator run — and writes
//! `BENCH_tracing_overhead.json`. The acceptance criterion is < 3% overhead
//! with tracing + journal enabled; the disabled fast path is also
//! micro-benchmarked (one `Span::enter` per iteration) to show it costs on
//! the order of a nanosecond.
//!
//! `AUTOBLOX_SCALE=quick|standard|full` scales the trace length.

use autoblox::constraints::Constraints;
use autoblox::journal::Journal;
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox::validator::{Validator, ValidatorOptions};
use iotrace::gen::WorkloadKind;
use serde_json::json;
use ssdsim::config::presets;
use std::time::Instant;
use telemetry::span::{self, Span};

// Best-of-5: on a small shared host the scheduler noise floor is a few
// milliseconds, comparable to the 3% budget on a short run; the min over
// five repetitions of a lengthened run keeps the comparison meaningful.
const REPS: usize = 5;

fn tuning_run(trace_events: usize) -> f64 {
    let validator = Validator::new(ValidatorOptions {
        trace_events,
        ..Default::default()
    });
    let opts = TunerOptions {
        max_iterations: 12,
        sgd_iterations: 4,
        non_target: vec![WorkloadKind::WebSearch],
        ..Default::default()
    };
    let tuner = Tuner::new(Constraints::paper_default(), &validator, opts);
    let t0 = Instant::now();
    let _ = tuner.tune(WorkloadKind::Database, &presets::intel_750(), &[], None);
    t0.elapsed().as_secs_f64()
}

/// One repetition with tracing disabled: every instrumented call site
/// reduces to a single relaxed atomic load.
fn run_disabled(trace_events: usize) -> f64 {
    span::set_tracing(false);
    tuning_run(trace_events)
}

/// One repetition with the full observability path on: spans recorded into
/// the ring AND streamed to an on-disk journal by the writer thread during
/// the timed region. Journal open/close is a fixed per-run cost (the writer
/// thread can sit out one full 25 ms flush tick at shutdown), so it is
/// measured separately and returned as `(tune_seconds, teardown_seconds)` —
/// folding a constant ~25 ms into a proportional-overhead criterion would
/// only measure how short the run is.
fn run_traced(trace_events: usize, journal_path: &str) -> (f64, f64) {
    let t0 = Instant::now();
    let journal = Journal::create(journal_path).expect("journal opens");
    autoblox::telemetry::global().attach_journal(journal.handle());
    let secs = tuning_run(trace_events);
    autoblox::telemetry::global().detach_journal();
    journal.finish(journal_path).expect("journal closes");
    span::set_tracing(false);
    let teardown = (t0.elapsed().as_secs_f64() - secs).max(0.0);
    (secs, teardown)
}

/// Interleaved best-of-N for both modes. Alternating disabled/traced per
/// repetition (instead of all-disabled-then-all-traced) keeps slow drift —
/// frequency scaling, background load arriving mid-benchmark — from
/// systematically biasing one side.
fn measure(trace_events: usize, journal_path: &str, reps: usize) -> (f64, f64, f64) {
    let mut disabled = f64::INFINITY;
    let mut traced = f64::INFINITY;
    let mut teardown = f64::INFINITY;
    for _ in 0..reps {
        disabled = disabled.min(run_disabled(trace_events));
        let (t, td) = run_traced(trace_events, journal_path);
        traced = traced.min(t);
        teardown = teardown.min(td);
    }
    (disabled, traced, teardown)
}

/// Nanoseconds per disabled-path span probe: exactly what every
/// instrumented hot path pays when tracing is off.
fn disabled_span_probe_ns() -> f64 {
    span::set_tracing(false);
    const ITERS: u64 = 10_000_000;
    let t0 = Instant::now();
    for i in 0..ITERS {
        let _s = Span::enter_keyed("bench.probe", i);
    }
    let ns = t0.elapsed().as_nanos() as f64 / ITERS as f64;
    let mut drained = Vec::new();
    span::drain_spans(&mut drained);
    assert!(drained.is_empty(), "disabled spans must record nothing");
    ns
}

fn main() {
    let check = autoblox_bench::check_mode();
    let scale = autoblox_bench::run_scale();
    let trace_events = match scale {
        autoblox_bench::Scale::Quick => 400,
        autoblox_bench::Scale::Standard => 2_000,
        autoblox_bench::Scale::Full => 6_000,
    };
    // `--check` runs a single repetition with no warm-up: the overhead
    // percentage is noise there, only the harness and report shape matter.
    let reps = if check { 1 } else { REPS };
    let journal_path = std::env::temp_dir().join("bench_tracing_overhead.jsonl");
    let journal_path = journal_path.to_string_lossy().into_owned();

    if !check {
        // Warm-up run so neither mode pays first-touch costs.
        let _ = run_disabled(trace_events);
    }

    let (disabled_s, traced_s, teardown_s) = measure(trace_events, &journal_path, reps);
    let overhead_pct = (traced_s - disabled_s) / disabled_s * 100.0;
    let probe_ns = disabled_span_probe_ns();
    let _ = std::fs::remove_file(&journal_path);

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "disabled {disabled_s:.3}s, traced+journal {traced_s:.3}s, overhead {overhead_pct:+.2}% \
         (criterion < 3%), journal open/close {teardown_s:.3}s fixed, \
         disabled span probe {probe_ns:.2} ns"
    );

    let doc = json!({
        "benchmark": "tracing_overhead",
        "host_cpus": host_cpus,
        "trace_events": trace_events,
        "reps_best_of": reps as u64,
        "disabled_best_s": disabled_s,
        "traced_journal_best_s": traced_s,
        "journal_open_close_fixed_s": teardown_s,
        "overhead_pct": overhead_pct,
        "criterion_pct": 3.0,
        "criterion_met": overhead_pct < 3.0,
        "disabled_span_probe_ns": probe_ns,
    });
    autoblox_bench::write_bench_report(
        "BENCH_tracing_overhead.json",
        "tracing_overhead",
        &[
            "host_cpus",
            "trace_events",
            "reps_best_of",
            "disabled_best_s",
            "traced_journal_best_s",
            "journal_open_close_fixed_s",
            "overhead_pct",
            "criterion_pct",
            "criterion_met",
            "disabled_span_probe_ns",
        ],
        &doc,
    );
    println!("overhead_pct: {overhead_pct:.3}");
}
