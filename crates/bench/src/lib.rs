//! Shared harness for regenerating every table and figure of the AutoBlox
//! paper. Each `src/bin/*` binary reproduces one experiment; this library
//! provides the common scaffolding: experiment scaling, tuned-configuration
//! production, cross-workload evaluation matrices, and table printing.

#![warn(missing_docs)]

use autoblox::constraints::Constraints;
use autoblox::metrics::Measurement;
use autoblox::tuner::{Tuner, TunerOptions, TuningOutcome};
use autoblox::validator::{Validator, ValidatorOptions};
use iotrace::gen::WorkloadKind;
use ssdsim::config::SsdConfig;

/// Experiment scale, selected via the `AUTOBLOX_SCALE` environment variable
/// (`quick`, `standard` (default), or `full`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small traces and few iterations: smoke-test an experiment in seconds.
    Quick,
    /// Default: minutes per experiment, stable trends.
    Standard,
    /// Larger traces and search budgets: closest to the paper's runs.
    Full,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Self {
        match std::env::var("AUTOBLOX_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("full") => Scale::Full,
            _ => Scale::Standard,
        }
    }

    /// Events per validation trace. Long enough that the trace's data
    /// footprint exercises the DRAM cache parameters (a 3k-event trace
    /// moves ~25 MB and cannot differentiate multi-hundred-MB caches).
    pub fn trace_events(self) -> usize {
        match self {
            Scale::Quick => 2_000,
            Scale::Standard => 20_000,
            Scale::Full => 60_000,
        }
    }

    /// Outer tuning iterations.
    pub fn max_iterations(self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Standard => 30,
            Scale::Full => 89,
        }
    }

    /// Samples for regression-based stages.
    pub fn samples(self) -> usize {
        match self {
            Scale::Quick => 24,
            Scale::Standard => 64,
            Scale::Full => 128,
        }
    }
}

/// `true` when the binary was invoked with `--check`: the CI smoke mode
/// that runs every benchmark at minimum cost (Quick scale, one rep, a
/// single thread row) purely to validate that the binary still runs and
/// emits a schema-conformant `BENCH_*.json`.
pub fn check_mode() -> bool {
    std::env::args().any(|a| a == "--check")
}

/// The effective scale for a benchmark run: forced to [`Scale::Quick`] in
/// `--check` mode, otherwise read from `AUTOBLOX_SCALE`.
pub fn run_scale() -> Scale {
    if check_mode() {
        Scale::Quick
    } else {
        Scale::from_env()
    }
}

/// Validates a benchmark report document: it must be a JSON object whose
/// `benchmark` field equals `name` and which carries every required key.
pub fn validate_bench_doc(
    doc: &serde_json::Value,
    name: &str,
    required: &[&str],
) -> Result<(), String> {
    let serde_json::Value::Object(obj) = doc else {
        return Err(String::from("report is not a JSON object"));
    };
    match obj.get("benchmark").and_then(|v| v.as_str()) {
        Some(b) if b == name => {}
        Some(b) => return Err(format!("benchmark field is {b:?}, expected {name:?}")),
        None => return Err(String::from("missing string field \"benchmark\"")),
    }
    for key in required {
        if !obj.contains_key(*key) {
            return Err(format!("missing required key {key:?}"));
        }
    }
    Ok(())
}

/// Writes a benchmark report to `path`, re-reads it, and validates it
/// against its schema (the `benchmark` name plus `required` keys),
/// aborting the process with a nonzero exit on any mismatch — this is the
/// contract the CI `bench-smoke` stage relies on.
pub fn write_bench_report(path: &str, name: &str, required: &[&str], doc: &serde_json::Value) {
    let json = serde_json::to_string_pretty(doc).expect("serializes");
    std::fs::write(path, json).expect("writes benchmark report");
    let back: serde_json::Value = std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
        .unwrap_or_else(|e| {
            eprintln!("error: cannot re-read {path}: {e}");
            std::process::exit(1);
        });
    if let Err(e) = validate_bench_doc(&back, name, required) {
        eprintln!("error: {path} failed schema validation: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}

/// A validator configured for the chosen scale.
pub fn validator(scale: Scale) -> Validator {
    Validator::new(ValidatorOptions {
        trace_events: scale.trace_events(),
        ..Default::default()
    })
}

/// Standard tuner options for the chosen scale: the seven studied clusters
/// act as mutual non-targets, as in the paper's Table 1 setup.
pub fn tuner_options(scale: Scale) -> TunerOptions {
    TunerOptions {
        max_iterations: scale.max_iterations(),
        non_target: WorkloadKind::STUDIED.to_vec(),
        ..TunerOptions::default()
    }
}

/// Tunes one configuration per target workload.
///
/// The power budget is tightened per target to 1.25x the reference
/// configuration's measured power on that workload: the paper's power
/// constraint is what keeps learned configurations from buying latency
/// with unbounded silicon, which is how Figure 7's "at most 5% energy
/// increase" outcome arises.
pub fn tune_targets(
    targets: &[WorkloadKind],
    reference: &SsdConfig,
    constraints: Constraints,
    validator: &Validator,
    opts: &TunerOptions,
) -> Vec<TuningOutcome> {
    // One tuning run per target, fanned out on the worker pool
    // (`AUTOBLOX_THREADS`). Outcome configurations and grades are
    // deterministic regardless of thread count — measurements are memoized
    // pure functions of (config, workload) — but the per-outcome
    // `validations` counters can include runs from concurrently tuning
    // targets sharing the validator.
    autoblox::parallel::parallel_map(targets.to_vec(), |t| {
        eprintln!("  tuning for {t} ...");
        let baseline_power = validator.evaluate(reference, t).power_w;
        let per_target = Constraints {
            power_budget_w: constraints.power_budget_w.min(baseline_power * 1.25),
            ..constraints
        };
        let tuner = Tuner::new(per_target, validator, opts.clone());
        tuner.tune(t, reference, &[], None)
    })
}

/// Latency/throughput speedups of `config` on `workload` relative to the
/// same workload on `reference`.
pub fn speedup_cell(
    config: &SsdConfig,
    reference: &SsdConfig,
    workload: WorkloadKind,
    validator: &Validator,
) -> (f64, f64) {
    let m = validator.evaluate(config, workload);
    let r = validator.evaluate(reference, workload);
    (m.latency_speedup(&r), m.throughput_speedup(&r))
}

/// Geometric mean over `(latency, throughput)` speedup cells.
pub fn geo_mean_cells(cells: &[(f64, f64)]) -> (f64, f64) {
    let lats: Vec<f64> = cells.iter().map(|c| c.0).collect();
    let tps: Vec<f64> = cells.iter().map(|c| c.1).collect();
    (
        autoblox::metrics::geometric_mean(&lats),
        autoblox::metrics::geometric_mean(&tps),
    )
}

/// Prints a markdown-style table.
pub fn print_table(title: &str, headers: &[String], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    println!("{}", fmt_row(headers));
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a latency/throughput cell the way the paper's tables do.
pub fn fmt_cell((lat, tp): (f64, f64)) -> String {
    format!("{lat:.2}/{tp:.2}")
}

/// Convenience: the reference measurement of every studied workload.
pub fn reference_measurements(
    reference: &SsdConfig,
    validator: &Validator,
) -> Vec<(WorkloadKind, Measurement)> {
    let meas = autoblox::parallel::parallel_map(WorkloadKind::STUDIED.to_vec(), |w| {
        validator.evaluate(reference, w)
    });
    WorkloadKind::STUDIED.iter().copied().zip(meas).collect()
}

/// Builds and prints a Table-1-style cross matrix: one learned configuration
/// per target (columns), evaluated on every workload (rows), with the
/// non-target geometric-mean summary row. Returns the outcomes for reuse.
pub fn cross_matrix_experiment(
    title: &str,
    reference: &SsdConfig,
    constraints: Constraints,
    validator: &Validator,
    opts: &TunerOptions,
    targets: &[WorkloadKind],
    rows_workloads: &[WorkloadKind],
) -> Vec<TuningOutcome> {
    let outcomes = tune_targets(targets, reference, constraints, validator, opts);
    print_cross_matrix(
        title,
        reference,
        validator,
        targets,
        rows_workloads,
        &outcomes,
    );
    outcomes
}

/// Prints the cross matrix for already-tuned outcomes.
pub fn print_cross_matrix(
    title: &str,
    reference: &SsdConfig,
    validator: &Validator,
    targets: &[WorkloadKind],
    rows_workloads: &[WorkloadKind],
    outcomes: &[TuningOutcome],
) {
    // Warm the validator cache for every (configuration, workload) cell in
    // parallel; the sequential table assembly below then only reads cache
    // hits, so cell values match a sequential run exactly.
    let mut cells: Vec<(&SsdConfig, WorkloadKind)> = Vec::new();
    for &w in rows_workloads {
        cells.push((reference, w));
        cells.extend(outcomes.iter().map(|o| (&o.best.config, w)));
    }
    autoblox::parallel::parallel_map(cells, |(cfg, w)| validator.evaluate(cfg, w));

    let mut headers = vec!["workload \\ target".to_string()];
    headers.extend(targets.iter().map(|t| t.name().to_string()));
    let mut rows = Vec::new();
    let mut non_target_cells: Vec<Vec<(f64, f64)>> = vec![Vec::new(); targets.len()];
    for &w in rows_workloads {
        let mut row = vec![w.name().to_string()];
        for (ti, outcome) in outcomes.iter().enumerate() {
            let cell = speedup_cell(&outcome.best.config, reference, w, validator);
            let is_target = targets[ti] == w;
            row.push(if is_target {
                format!("*{}*", fmt_cell(cell))
            } else {
                non_target_cells[ti].push(cell);
                fmt_cell(cell)
            });
        }
        rows.push(row);
    }
    let mut geo_row = vec!["geo-mean (non-target)".to_string()];
    for cells in &non_target_cells {
        geo_row.push(fmt_cell(geo_mean_cells(cells)));
    }
    rows.push(geo_row);
    print_table(title, &headers, &rows);
    println!("\ncells are latency/throughput speedups vs the reference; *bold* = target workload");
}

/// Prints Table 5: the critical parameters of each learned configuration
/// next to the reference values.
pub fn print_critical_parameters(
    reference: &SsdConfig,
    targets: &[WorkloadKind],
    outcomes: &[TuningOutcome],
) {
    type ParamRow = (&'static str, fn(&SsdConfig) -> String);
    let param_rows: [ParamRow; 8] = [
        ("CMTCapacity (MiB)", |c| c.cmt_capacity_mb.to_string()),
        ("DataCacheSize (MiB)", |c| c.data_cache_mb.to_string()),
        ("FlashChannelCount", |c| c.channel_count.to_string()),
        ("ChipNoPerChannel", |c| c.chips_per_channel.to_string()),
        ("DieNoPerChip", |c| c.dies_per_chip.to_string()),
        ("PlaneNoPerDie", |c| c.planes_per_die.to_string()),
        ("BlockNoPerPlane", |c| c.blocks_per_plane.to_string()),
        ("PageNoPerBlock", |c| c.pages_per_block.to_string()),
    ];
    let mut headers = vec!["parameter".to_string(), "reference".to_string()];
    headers.extend(targets.iter().map(|t| t.name().to_string()));
    let rows: Vec<Vec<String>> = param_rows
        .iter()
        .map(|(name, get)| {
            let mut row = vec![name.to_string(), get(reference)];
            row.extend(outcomes.iter().map(|o| get(&o.best.config)));
            row
        })
        .collect();
    print_table(
        "Table 5 — critical parameters of the learned configurations",
        &headers,
        &rows,
    );
}
