//! Property-based tests for AutoDB: arbitrary operation sequences must
//! behave exactly like a reference map, survive reopen, and compact
//! losslessly.

use autodb::Store;
use proptest::prelude::*;
use serde_json::json;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, i64),
    Delete(u8),
    Compact,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..16, any::<i64>()).prop_map(|(k, v)| Op::Put(k, v)),
            (0u8..16).prop_map(Op::Delete),
            Just(Op::Compact),
        ],
        0..60,
    )
}

fn apply(store: &Store, model: &mut HashMap<String, i64>, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Put(k, v) => {
                let key = format!("k{k}");
                store.put(&key, &json!(v)).unwrap();
                model.insert(key, *v);
            }
            Op::Delete(k) => {
                let key = format!("k{k}");
                let existed = store.delete(&key).unwrap();
                assert_eq!(existed, model.remove(&key).is_some());
            }
            Op::Compact => store.compact().unwrap(),
        }
    }
}

fn check(store: &Store, model: &HashMap<String, i64>) {
    assert_eq!(store.len(), model.len());
    for (k, v) in model {
        let got = store.get(k).unwrap().unwrap();
        assert_eq!(got, json!(*v));
    }
    let mut keys: Vec<String> = model.keys().cloned().collect();
    keys.sort();
    assert_eq!(store.keys(), keys);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn in_memory_store_matches_reference_model(ops in arb_ops()) {
        let store = Store::in_memory();
        let mut model = HashMap::new();
        apply(&store, &mut model, &ops);
        check(&store, &model);
    }

    #[test]
    fn persistent_store_survives_reopen(ops in arb_ops(), case in 0u64..1_000_000) {
        let dir = std::env::temp_dir().join(format!(
            "autodb-prop-{}-{case}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.db");
        std::fs::remove_file(&path).ok();

        let mut model = HashMap::new();
        {
            let store = Store::open(&path).unwrap();
            apply(&store, &mut model, &ops);
            check(&store, &model);
        }
        {
            let store = Store::open(&path).unwrap();
            check(&store, &model);
            // Compaction after reopen preserves everything and shrinks the
            // log to exactly the live set.
            store.compact().unwrap();
            prop_assert_eq!(store.log_records(), model.len());
            check(&store, &model);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
