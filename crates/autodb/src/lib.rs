//! # autodb — a log-structured key-value store for learned configurations
//!
//! The paper implements AutoDB on LevelDB, keyed by workload-cluster id with
//! JSON values holding SSD configurations and their performance grades
//! (§3.5). This crate provides the same contract as a small self-contained
//! store: an append-only log with an in-memory index, tombstone deletes,
//! crash-safe reload, and log compaction.
//!
//! # Examples
//!
//! ```
//! use autodb::Store;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("autodb-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let db = Store::open(dir.join("demo.db"))?;
//! db.put("cluster:0", &serde_json::json!({"grade": 1.25}))?;
//! let v = db.get("cluster:0")?.expect("present");
//! assert_eq!(v["grade"], 1.25);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use parking_lot::Mutex;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Error type for store operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum DbError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A log record could not be decoded (corrupt or truncated log).
    Corrupt {
        /// 1-based line number in the log file.
        line: usize,
        /// Decoder message.
        message: String,
    },
    /// Value (de)serialization failed.
    Serde(serde_json::Error),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "autodb I/O error: {e}"),
            DbError::Corrupt { line, message } => {
                write!(f, "autodb log corrupt at line {line}: {message}")
            }
            DbError::Serde(e) => write!(f, "autodb serialization error: {e}"),
        }
    }
}

impl Error for DbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DbError::Io(e) => Some(e),
            DbError::Serde(e) => Some(e),
            DbError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e)
    }
}

impl From<serde_json::Error> for DbError {
    fn from(e: serde_json::Error) -> Self {
        DbError::Serde(e)
    }
}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, DbError>;

#[derive(Debug, Serialize, Deserialize)]
struct LogRecord {
    key: String,
    #[serde(skip_serializing_if = "Option::is_none")]
    value: Option<Value>,
    #[serde(default)]
    tombstone: bool,
}

#[derive(Debug)]
struct Inner {
    index: BTreeMap<String, Value>,
    writer: Option<BufWriter<File>>,
    log_records: usize,
}

/// A persistent (or in-memory) key-value store with JSON values.
///
/// All operations take `&self`; the store is internally synchronized and is
/// `Send + Sync`.
#[derive(Debug)]
pub struct Store {
    inner: Mutex<Inner>,
    path: Option<PathBuf>,
}

impl Store {
    /// Opens (creating if absent) a store backed by the log file at `path`,
    /// replaying any existing log into memory.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on filesystem failures and
    /// [`DbError::Corrupt`] if an existing log cannot be decoded.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut index = BTreeMap::new();
        let mut log_records = 0;
        if path.exists() {
            let reader = BufReader::new(File::open(&path)?);
            for (i, line) in reader.lines().enumerate() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let rec: LogRecord = serde_json::from_str(&line).map_err(|e| DbError::Corrupt {
                    line: i + 1,
                    message: e.to_string(),
                })?;
                log_records += 1;
                if rec.tombstone {
                    index.remove(&rec.key);
                } else if let Some(v) = rec.value {
                    index.insert(rec.key, v);
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Store {
            inner: Mutex::new(Inner {
                index,
                writer: Some(BufWriter::new(file)),
                log_records,
            }),
            path: Some(path),
        })
    }

    /// Creates a purely in-memory store (no persistence).
    pub fn in_memory() -> Self {
        Store {
            inner: Mutex::new(Inner {
                index: BTreeMap::new(),
                writer: None,
                log_records: 0,
            }),
            path: None,
        }
    }

    /// The backing file path, if persistent.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Stores `value` under `key`, overwriting any previous value.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] if appending to the log fails.
    pub fn put(&self, key: &str, value: &Value) -> Result<()> {
        let mut inner = self.inner.lock();
        Self::append(
            &mut inner,
            &LogRecord {
                key: key.to_string(),
                value: Some(value.clone()),
                tombstone: false,
            },
        )?;
        inner.index.insert(key.to_string(), value.clone());
        Ok(())
    }

    /// Serializes any `Serialize` record and stores it under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Serde`] if serialization fails, or [`DbError::Io`]
    /// on log-append failure.
    pub fn put_record<T: Serialize>(&self, key: &str, record: &T) -> Result<()> {
        let value = serde_json::to_value(record)?;
        self.put(key, &value)
    }

    /// Fetches the value stored under `key`.
    ///
    /// # Errors
    ///
    /// This in-memory lookup is infallible today; the `Result` reserves room
    /// for tiered storage.
    pub fn get(&self, key: &str) -> Result<Option<Value>> {
        Ok(self.inner.lock().index.get(key).cloned())
    }

    /// Fetches and deserializes the record stored under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Serde`] if the stored JSON does not match `T`.
    pub fn get_record<T: DeserializeOwned>(&self, key: &str) -> Result<Option<T>> {
        match self.get(key)? {
            Some(v) => Ok(Some(serde_json::from_value(v)?)),
            None => Ok(None),
        }
    }

    /// Deletes `key`; returns `true` if it existed.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] if appending the tombstone fails.
    pub fn delete(&self, key: &str) -> Result<bool> {
        let mut inner = self.inner.lock();
        let existed = inner.index.remove(key).is_some();
        if existed {
            Self::append(
                &mut inner,
                &LogRecord {
                    key: key.to_string(),
                    value: None,
                    tombstone: true,
                },
            )?;
        }
        Ok(existed)
    }

    /// All live keys in sorted order.
    pub fn keys(&self) -> Vec<String> {
        self.inner.lock().index.keys().cloned().collect()
    }

    /// All live keys beginning with `prefix`, sorted ascending. Useful for
    /// enumerating a key family (e.g. every `cluster:` record) without
    /// materializing the whole key set.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.inner
            .lock()
            .index
            .range(prefix.to_string()..)
            .map(|(k, _)| k)
            .take_while(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// The lexicographically greatest live key beginning with `prefix`, if
    /// any. With zero-padded fixed-width sequence suffixes (as the run
    /// registry uses) this is the newest record of a family, found without
    /// materializing the whole family's key list.
    pub fn last_key_with_prefix(&self, prefix: &str) -> Option<String> {
        self.inner
            .lock()
            .index
            .range(prefix.to_string()..)
            .map(|(k, _)| k)
            .take_while(|k| k.starts_with(prefix))
            .last()
            .cloned()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    /// `true` if the store holds no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records in the on-disk log (including superseded ones).
    pub fn log_records(&self) -> usize {
        self.inner.lock().log_records
    }

    /// Rewrites the log so it contains exactly the live records.
    ///
    /// No-op for in-memory stores.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] if rewriting fails; the original log is
    /// replaced atomically via a rename.
    pub fn compact(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let Some(path) = &self.path else {
            return Ok(());
        };
        let tmp = path.with_extension("compact");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            for (key, value) in &inner.index {
                let rec = LogRecord {
                    key: key.clone(),
                    value: Some(value.clone()),
                    tombstone: false,
                };
                serde_json::to_writer(&mut w, &rec)?;
                w.write_all(b"\n")?;
            }
            w.flush()?;
        }
        // Swap in the compacted log.
        inner.writer = None;
        std::fs::rename(&tmp, path)?;
        let file = OpenOptions::new().append(true).open(path)?;
        inner.writer = Some(BufWriter::new(file));
        inner.log_records = inner.index.len();
        Ok(())
    }

    /// Flushes buffered log writes to the OS.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on flush failure.
    pub fn flush(&self) -> Result<()> {
        if let Some(w) = self.inner.lock().writer.as_mut() {
            w.flush()?;
        }
        Ok(())
    }

    fn append(inner: &mut Inner, rec: &LogRecord) -> Result<()> {
        if let Some(w) = inner.writer.as_mut() {
            serde_json::to_writer(&mut *w, rec)?;
            w.write_all(b"\n")?;
            w.flush()?;
        }
        inner.log_records += 1;
        Ok(())
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Best-effort final flush; errors are ignored per C-DTOR-FAIL.
        if let Some(w) = self.inner.lock().writer.as_mut() {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("autodb-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("store.db")
    }

    #[test]
    fn put_get_roundtrip() {
        let db = Store::in_memory();
        db.put("a", &json!({"x": 1})).unwrap();
        assert_eq!(db.get("a").unwrap().unwrap()["x"], 1);
        assert_eq!(db.get("missing").unwrap(), None);
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
    }

    #[test]
    fn overwrite_keeps_latest() {
        let db = Store::in_memory();
        db.put("k", &json!(1)).unwrap();
        db.put("k", &json!(2)).unwrap();
        assert_eq!(db.get("k").unwrap().unwrap(), json!(2));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn delete_and_tombstone() {
        let db = Store::in_memory();
        db.put("k", &json!(1)).unwrap();
        assert!(db.delete("k").unwrap());
        assert!(!db.delete("k").unwrap());
        assert_eq!(db.get("k").unwrap(), None);
    }

    #[test]
    fn persistence_across_reopen() {
        let path = temp_path("reopen");
        std::fs::remove_file(&path).ok();
        {
            let db = Store::open(&path).unwrap();
            db.put("cluster:1", &json!({"grade": 0.5})).unwrap();
            db.put("cluster:2", &json!({"grade": 0.7})).unwrap();
            db.delete("cluster:1").unwrap();
        }
        let db = Store::open(&path).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.get("cluster:2").unwrap().unwrap()["grade"], 0.7);
        assert_eq!(db.get("cluster:1").unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_shrinks_log() {
        let path = temp_path("compact");
        std::fs::remove_file(&path).ok();
        let db = Store::open(&path).unwrap();
        for i in 0..50 {
            db.put("hot", &json!(i)).unwrap();
        }
        assert_eq!(db.log_records(), 50);
        db.compact().unwrap();
        assert_eq!(db.log_records(), 1);
        assert_eq!(db.get("hot").unwrap().unwrap(), json!(49));
        // Still usable after compaction.
        db.put("other", &json!("v")).unwrap();
        drop(db);
        let db = Store::open(&path).unwrap();
        assert_eq!(db.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn typed_records() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Rec {
            name: String,
            grade: f64,
        }
        let db = Store::in_memory();
        let rec = Rec {
            name: "db".into(),
            grade: 1.45,
        };
        db.put_record("r", &rec).unwrap();
        let got: Rec = db.get_record("r").unwrap().unwrap();
        assert_eq!(got, rec);
        let missing: Option<Rec> = db.get_record("absent").unwrap();
        assert!(missing.is_none());
        // Type mismatch surfaces as a Serde error.
        db.put("bad", &json!("not a rec")).unwrap();
        assert!(db.get_record::<Rec>("bad").is_err());
    }

    #[test]
    fn corrupt_log_is_reported() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{not json}\n").unwrap();
        match Store::open(&path) {
            Err(DbError::Corrupt { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected corrupt error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn keys_sorted() {
        let db = Store::in_memory();
        db.put("b", &json!(1)).unwrap();
        db.put("a", &json!(2)).unwrap();
        assert_eq!(db.keys(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn last_key_with_prefix_picks_the_family_maximum() {
        let db = Store::in_memory();
        assert_eq!(db.last_key_with_prefix("run:"), None);
        db.put("run:Database:000002", &json!(1)).unwrap();
        db.put("run:Database:000010", &json!(2)).unwrap();
        db.put("run:KVStore:000001", &json!(3)).unwrap();
        db.put("sib:zzz", &json!(4)).unwrap();
        assert_eq!(
            db.last_key_with_prefix("run:Database:").as_deref(),
            Some("run:Database:000010")
        );
        assert_eq!(
            db.last_key_with_prefix("run:").as_deref(),
            Some("run:KVStore:000001")
        );
        assert_eq!(db.last_key_with_prefix("zzz"), None);
    }

    #[test]
    fn store_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Store>();
    }
}
