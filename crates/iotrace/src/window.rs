//! Trace windowing and per-window feature extraction (§3.1 of the paper).
//!
//! AutoBlox partitions each block I/O trace into windows of 3,000 entries,
//! normalizes fields relative to the window's starting entry, and reduces
//! each window to a low-dimensional vector before PCA + k-means. The paper
//! feeds normalized raw windows to PCA; this implementation first condenses
//! each window into [`FEATURE_DIM`] access-pattern statistics (computed from
//! the same four fields: timestamp, size, address, operation type), which
//! preserves the information PCA extracts while keeping the covariance
//! eigenproblem small. The substitution is recorded in `DESIGN.md`.

use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Default entries per window (3,000 in the paper).
pub const DEFAULT_WINDOW_LEN: usize = 3000;

/// Dimensionality of the raw per-window feature vector (pre-PCA).
pub const FEATURE_DIM: usize = 12;

/// Human-readable names of the extracted features, index-aligned with the
/// vectors returned by [`window_features`].
pub const FEATURE_NAMES: [&str; FEATURE_DIM] = [
    "read_fraction",
    "mean_log2_size",
    "std_log2_size",
    "mean_log_interarrival",
    "cv_interarrival",
    "sequential_fraction",
    "mean_log_addr_jump",
    "log_addr_span",
    "unique_region_fraction",
    "region_reuse_fraction",
    "write_run_fraction",
    "log_bytes_per_sec",
];

/// Options controlling windowing and feature extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowOptions {
    /// Entries per window; trailing partial windows are dropped.
    pub window_len: usize,
}

impl Default for WindowOptions {
    fn default() -> Self {
        WindowOptions {
            window_len: DEFAULT_WINDOW_LEN,
        }
    }
}

/// Extracts one feature vector per window of `opts.window_len` entries.
///
/// Returns an empty vector when the trace has fewer events than one window.
/// Timestamps and addresses are used *relative to the window's first entry*
/// (the normalization of §3.1), so absolute placement does not leak into the
/// features.
///
/// # Examples
///
/// ```
/// use iotrace::gen::WorkloadKind;
/// use iotrace::window::{window_features, WindowOptions, FEATURE_DIM};
/// let t = WorkloadKind::Database.spec().generate(6_000, 1);
/// let opts = WindowOptions { window_len: 3_000 };
/// let feats = window_features(&t, opts);
/// assert_eq!(feats.len(), 2);
/// assert_eq!(feats[0].len(), FEATURE_DIM);
/// ```
pub fn window_features(trace: &Trace, opts: WindowOptions) -> Vec<Vec<f64>> {
    assert!(opts.window_len >= 2, "window_len must be at least 2");
    let events = trace.events();
    let n_windows = events.len() / opts.window_len;
    let mut out = Vec::with_capacity(n_windows);
    for w in 0..n_windows {
        let slice = &events[w * opts.window_len..(w + 1) * opts.window_len];
        out.push(features_of(slice));
    }
    out
}

fn features_of(events: &[crate::trace::TraceEvent]) -> Vec<f64> {
    let n = events.len() as f64;
    let t0 = events[0].timestamp_ns;
    let lba0 = events.iter().map(|e| e.lba).min().unwrap_or(0);

    let read_fraction = events.iter().filter(|e| e.is_read()).count() as f64 / n;

    let log_sizes: Vec<f64> = events
        .iter()
        .map(|e| f64::from(e.size_bytes).log2())
        .collect();
    let mean_ls = mean(&log_sizes);
    let std_ls = std_dev(&log_sizes, mean_ls);

    let inter: Vec<f64> = events
        .windows(2)
        .map(|w| (w[1].timestamp_ns - w[0].timestamp_ns) as f64)
        .collect();
    let log_inter: Vec<f64> = inter.iter().map(|&d| (d + 1.0).ln()).collect();
    let mean_li = mean(&log_inter);
    let mean_inter = mean(&inter);
    let cv_inter = if mean_inter > 0.0 {
        std_dev(&inter, mean_inter) / mean_inter
    } else {
        0.0
    };

    let seq = events
        .windows(2)
        .filter(|w| w[1].lba == w[0].end_lba())
        .count() as f64
        / (n - 1.0);

    let jumps: Vec<f64> = events
        .windows(2)
        .map(|w| {
            let a = w[0].end_lba() as f64;
            let b = w[1].lba as f64;
            ((a - b).abs() + 1.0).ln()
        })
        .collect();
    let mean_jump = mean(&jumps);

    let max_rel = events.iter().map(|e| e.lba - lba0).max().unwrap_or(0) as f64;
    let span = (max_rel + 1.0).ln();

    // 1 MiB (2048-sector) regions touched, relative to the window base.
    let mut regions: Vec<u64> = events.iter().map(|e| (e.lba - lba0) / 2048).collect();
    let total_accesses = regions.len() as f64;
    regions.sort_unstable();
    let mut unique = 0usize;
    let mut reused_accesses = 0usize;
    let mut i = 0;
    while i < regions.len() {
        let mut j = i + 1;
        while j < regions.len() && regions[j] == regions[i] {
            j += 1;
        }
        unique += 1;
        reused_accesses += (j - i) - 1;
        i = j;
    }
    let unique_fraction = unique as f64 / total_accesses;
    let reuse_fraction = reused_accesses as f64 / total_accesses;

    let write_runs = events
        .windows(2)
        .filter(|w| !w[0].is_read() && !w[1].is_read())
        .count() as f64
        / (n - 1.0);

    let duration_s = ((events.last().expect("nonempty").timestamp_ns - t0) as f64 / 1e9).max(1e-9);
    let bytes: f64 = events.iter().map(|e| f64::from(e.size_bytes)).sum();
    let log_bps = (bytes / duration_s + 1.0).ln();

    vec![
        read_fraction,
        mean_ls,
        std_ls,
        mean_li,
        cv_inter,
        seq,
        mean_jump,
        span,
        unique_fraction,
        reuse_fraction,
        write_runs,
        log_bps,
    ]
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn std_dev(v: &[f64], mean: f64) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkloadKind;
    use crate::trace::{OpKind, TraceEvent};

    #[test]
    fn window_count_drops_partial() {
        let t = WorkloadKind::Recomm.spec().generate(7_500, 1);
        let f = window_features(&t, WindowOptions { window_len: 3000 });
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn empty_trace_yields_no_windows() {
        let t = Trace::new("e");
        assert!(window_features(&t, WindowOptions::default()).is_empty());
    }

    #[test]
    fn features_have_documented_dimension() {
        let t = WorkloadKind::Fiu.spec().generate(3_000, 2);
        let f = window_features(&t, WindowOptions::default());
        assert_eq!(f[0].len(), FEATURE_DIM);
        assert_eq!(FEATURE_NAMES.len(), FEATURE_DIM);
    }

    #[test]
    fn read_fraction_feature_matches_trace() {
        let t = WorkloadKind::WebSearch.spec().generate(3_000, 3);
        let f = window_features(&t, WindowOptions::default());
        assert!((f[0][0] - t.read_ratio()).abs() < 0.02);
    }

    #[test]
    fn sequential_workload_scores_higher_seq_feature() {
        let batch = WorkloadKind::BatchAnalytics.spec().generate(3_000, 4);
        let web = WorkloadKind::WebSearch.spec().generate(3_000, 4);
        let fb = window_features(&batch, WindowOptions::default());
        let fw = window_features(&web, WindowOptions::default());
        assert!(fb[0][5] > fw[0][5]);
    }

    #[test]
    fn normalization_is_translation_invariant() {
        // Shifting all addresses and timestamps must not change features.
        let base = WorkloadKind::Database.spec().generate(3_000, 5);
        let shifted = Trace::from_events(
            "shifted",
            base.events()
                .iter()
                .map(|e| {
                    TraceEvent::new(
                        e.timestamp_ns + 1_000_000,
                        e.lba + 999_999,
                        e.size_bytes,
                        e.op,
                    )
                })
                .collect(),
        );
        let f0 = window_features(&base, WindowOptions::default());
        let f1 = window_features(&shifted, WindowOptions::default());
        for (a, b) in f0[0].iter().zip(&f1[0]) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn all_write_window_has_high_write_run() {
        let events: Vec<TraceEvent> = (0..100)
            .map(|i| TraceEvent::new(i, i * 8, 4096, OpKind::Write))
            .collect();
        let t = Trace::from_events("w", events);
        let f = window_features(&t, WindowOptions { window_len: 100 });
        assert_eq!(f[0][10], 1.0);
        assert_eq!(f[0][0], 0.0);
    }

    #[test]
    #[should_panic(expected = "window_len")]
    fn rejects_tiny_window() {
        let t = Trace::new("x");
        let _ = window_features(&t, WindowOptions { window_len: 1 });
    }
}
