//! Synthetic storage-workload generators.
//!
//! The paper evaluates AutoBlox on production block traces (YCSB/RocksDB,
//! TPCC/SQL Server, UMass WebSearch, MapReduce, cloud storage, LiveMaps,
//! recommendation services, plus six "new" workloads). Those traces are not
//! redistributable, so this module provides seeded generators whose
//! parameters are transcribed from the workload descriptions in the paper
//! (Tables 2 and 3 and §4.2, e.g. WebSearch = 99.9% read, BatchAnalytics =
//! 97.8% read). Each category has a distinct mixture of:
//!
//! - read/write ratio,
//! - sequential-stream versus random-access probability,
//! - request-size distribution,
//! - arrival intensity and burstiness,
//! - working-set size and Zipf skew of the hot set.
//!
//! Distinct mixtures make the categories separable by the clustering front
//! end (Figure 2) and give them different optimal SSD configurations
//! (Table 5), which is all the downstream pipeline observes.

use crate::trace::{OpKind, Trace, TraceEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, LogNormal, Zipf};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The workload categories studied in the paper.
///
/// The first seven are the studied categories of Table 2; the last six are
/// the "new" workloads of Table 3 used to test generality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum WorkloadKind {
    Recomm,
    KvStore,
    Database,
    WebSearch,
    BatchAnalytics,
    CloudStorage,
    LiveMaps,
    // New workloads (Table 3).
    Vdi,
    Fiu,
    RadiusAuth,
    LevelDb,
    MySql,
    Hdfs,
}

impl WorkloadKind {
    /// The seven studied categories of Table 2.
    pub const STUDIED: [WorkloadKind; 7] = [
        WorkloadKind::Recomm,
        WorkloadKind::KvStore,
        WorkloadKind::Database,
        WorkloadKind::WebSearch,
        WorkloadKind::BatchAnalytics,
        WorkloadKind::CloudStorage,
        WorkloadKind::LiveMaps,
    ];

    /// The six new workloads of Table 3.
    pub const NEW: [WorkloadKind; 6] = [
        WorkloadKind::Vdi,
        WorkloadKind::Fiu,
        WorkloadKind::RadiusAuth,
        WorkloadKind::LevelDb,
        WorkloadKind::MySql,
        WorkloadKind::Hdfs,
    ];

    /// Short display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Recomm => "Recomm",
            WorkloadKind::KvStore => "KVStore",
            WorkloadKind::Database => "Database",
            WorkloadKind::WebSearch => "WebSearch",
            WorkloadKind::BatchAnalytics => "BatchAnalytics",
            WorkloadKind::CloudStorage => "CloudStorage",
            WorkloadKind::LiveMaps => "LiveMaps",
            WorkloadKind::Vdi => "VDI",
            WorkloadKind::Fiu => "FIU",
            WorkloadKind::RadiusAuth => "RadiusAuth",
            WorkloadKind::LevelDb => "LevelDB",
            WorkloadKind::MySql => "MySQL",
            WorkloadKind::Hdfs => "HDFS",
        }
    }

    /// The generator specification for this category.
    pub fn spec(self) -> WorkloadSpec {
        match self {
            // Advertisement/recommendation: read-mostly point lookups over a
            // zipf-hot embedding store, medium intensity.
            WorkloadKind::Recomm => WorkloadSpec {
                kind: self,
                read_ratio: 0.85,
                seq_prob: 0.10,
                size_mean_log2: 12.5, // ~6 KiB
                size_sigma: 0.6,
                mean_interarrival_ns: 60_000.0,
                burstiness: 0.3,
                working_set_sectors: 12_000_000, // ~6 GB hot set
                zipf_skew: 1.1,
                hot_fraction: 0.05,
            },
            // YCSB on RocksDB: mixed point ops plus large sequential
            // compaction writes; I/O intensive -> chip-layout sensitive.
            WorkloadKind::KvStore => WorkloadSpec {
                kind: self,
                read_ratio: 0.65,
                seq_prob: 0.35,
                size_mean_log2: 13.0, // ~8 KiB, with seq streams up to MBs
                size_sigma: 1.2,
                mean_interarrival_ns: 45_000.0,
                burstiness: 0.6,
                working_set_sectors: 16_000_000, // ~8 GB hot set
                zipf_skew: 0.99,
                hot_fraction: 0.10,
            },
            // TPCC on SQL Server: 8 KiB random page I/O plus a sequential
            // log stream; throughput-intensive at high queue depth.
            WorkloadKind::Database => WorkloadSpec {
                kind: self,
                read_ratio: 0.70,
                seq_prob: 0.20,
                size_mean_log2: 13.0, // 8 KiB pages
                size_sigma: 0.3,
                mean_interarrival_ns: 40_000.0,
                burstiness: 0.4,
                working_set_sectors: 20_000_000, // ~10 GB hot set
                zipf_skew: 0.9,
                hot_fraction: 0.15,
            },
            // UMass WebSearch: 99.9% read, random, latency critical, modest
            // intensity.
            WorkloadKind::WebSearch => WorkloadSpec {
                kind: self,
                read_ratio: 0.999,
                seq_prob: 0.05,
                size_mean_log2: 13.5, // 8-16 KiB postings reads
                size_sigma: 0.5,
                mean_interarrival_ns: 120_000.0,
                burstiness: 0.15,
                working_set_sectors: 800_000_000,
                zipf_skew: 0.7,
                hot_fraction: 0.30,
            },
            // MapReduce scans: 97.8% read, huge sequential streaming.
            WorkloadKind::BatchAnalytics => WorkloadSpec {
                kind: self,
                read_ratio: 0.978,
                seq_prob: 0.90,
                size_mean_log2: 17.0, // ~128 KiB
                size_sigma: 0.8,
                mean_interarrival_ns: 100_000.0,
                burstiness: 0.2,
                working_set_sectors: 900_000_000,
                zipf_skew: 0.3,
                hot_fraction: 0.50,
            },
            // Cloud storage/object store: large mixed sequential transfers.
            WorkloadKind::CloudStorage => WorkloadSpec {
                kind: self,
                read_ratio: 0.60,
                seq_prob: 0.75,
                size_mean_log2: 16.0, // ~64 KiB
                size_sigma: 1.0,
                mean_interarrival_ns: 250_000.0,
                burstiness: 0.5,
                working_set_sectors: 900_000_000,
                zipf_skew: 0.5,
                hot_fraction: 0.25,
            },
            // LiveMaps tile backend: read-mostly large tiles, bursty
            // ingestion writes; I/O intensive.
            WorkloadKind::LiveMaps => WorkloadSpec {
                kind: self,
                read_ratio: 0.80,
                seq_prob: 0.55,
                size_mean_log2: 15.0, // ~32 KiB tiles
                size_sigma: 0.9,
                mean_interarrival_ns: 120_000.0,
                burstiness: 0.7,
                working_set_sectors: 24_000_000, // ~12 GB hot set
                zipf_skew: 1.0,
                hot_fraction: 0.08,
            },
            // Virtual desktop infrastructure: write-heavy 4 KiB random with
            // boot/login storms.
            WorkloadKind::Vdi => WorkloadSpec {
                kind: self,
                read_ratio: 0.40,
                seq_prob: 0.12,
                size_mean_log2: 12.0, // 4 KiB
                size_sigma: 0.5,
                mean_interarrival_ns: 50_000.0,
                burstiness: 0.85,
                working_set_sectors: 10_000_000, // ~5 GB hot set
                zipf_skew: 0.95,
                hot_fraction: 0.12,
            },
            // FIU departmental servers: strongly write-dominated small
            // random I/O.
            WorkloadKind::Fiu => WorkloadSpec {
                kind: self,
                read_ratio: 0.22,
                seq_prob: 0.08,
                size_mean_log2: 12.0,
                size_sigma: 0.4,
                mean_interarrival_ns: 40_000.0,
                burstiness: 0.35,
                working_set_sectors: 6_000_000, // ~3 GB hot set
                zipf_skew: 1.2,
                hot_fraction: 0.04,
            },
            // RADIUS authentication server: small log appends + lookups,
            // light load.
            WorkloadKind::RadiusAuth => WorkloadSpec {
                kind: self,
                read_ratio: 0.30,
                seq_prob: 0.45,
                size_mean_log2: 11.5, // ~3 KiB
                size_sigma: 0.3,
                mean_interarrival_ns: 50_000.0,
                burstiness: 0.25,
                working_set_sectors: 3_000_000, // ~1.5 GB hot set
                zipf_skew: 1.0,
                hot_fraction: 0.05,
            },
            // YCSB on LevelDB: similar family to KVStore but smaller values
            // and more compaction sequentiality — new trace, same cluster.
            WorkloadKind::LevelDb => WorkloadSpec {
                kind: self,
                read_ratio: 0.60,
                seq_prob: 0.40,
                size_mean_log2: 12.5,
                size_sigma: 1.1,
                mean_interarrival_ns: 60_000.0,
                burstiness: 0.55,
                working_set_sectors: 14_000_000, // ~7 GB hot set
                zipf_skew: 0.99,
                hot_fraction: 0.10,
            },
            // TPCH on MySQL: scan-heavy analytic queries — clusters with
            // Database per the paper.
            WorkloadKind::MySql => WorkloadSpec {
                kind: self,
                read_ratio: 0.75,
                seq_prob: 0.30,
                size_mean_log2: 13.2,
                size_sigma: 0.45,
                mean_interarrival_ns: 70_000.0,
                burstiness: 0.40,
                working_set_sectors: 20_000_000, // ~10 GB hot set
                zipf_skew: 0.85,
                hot_fraction: 0.15,
            },
            // HDFS datanode: large sequential block traffic — clusters with
            // CloudStorage per the paper.
            WorkloadKind::Hdfs => WorkloadSpec {
                kind: self,
                read_ratio: 0.58,
                seq_prob: 0.80,
                size_mean_log2: 16.3,
                size_sigma: 0.9,
                mean_interarrival_ns: 250_000.0,
                burstiness: 0.45,
                working_set_sectors: 950_000_000,
                zipf_skew: 0.45,
                hot_fraction: 0.30,
            },
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`WorkloadKind`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError(String);

impl fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown workload kind {:?}", self.0)
    }
}

impl Error for ParseWorkloadError {}
use std::error::Error;

impl FromStr for WorkloadKind {
    type Err = ParseWorkloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        WorkloadKind::STUDIED
            .iter()
            .chain(WorkloadKind::NEW.iter())
            .copied()
            .find(|k| k.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| ParseWorkloadError(s.to_string()))
    }
}

/// Generator parameters for one workload category.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The category this spec describes.
    pub kind: WorkloadKind,
    /// Probability a request is a read.
    pub read_ratio: f64,
    /// Probability a request continues a sequential stream.
    pub seq_prob: f64,
    /// Mean of log2(request size in bytes) for the lognormal size model.
    pub size_mean_log2: f64,
    /// Sigma of the lognormal size model (in log2 units).
    pub size_sigma: f64,
    /// Mean inter-arrival time in nanoseconds (exponential model).
    pub mean_interarrival_ns: f64,
    /// Burstiness in `[0, 1]`: probability of entering a burst where
    /// arrivals accelerate 10x.
    pub burstiness: f64,
    /// Size of the addressed region in 512-byte sectors.
    pub working_set_sectors: u64,
    /// Zipf exponent of the hot-region popularity distribution.
    pub zipf_skew: f64,
    /// Fraction of the working set that is "hot".
    pub hot_fraction: f64,
}

impl WorkloadSpec {
    /// Generates a deterministic trace with `n_events` requests.
    ///
    /// The same `(spec, n_events, seed)` always yields the same trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use iotrace::gen::WorkloadKind;
    /// let t = WorkloadKind::WebSearch.spec().generate(1_000, 7);
    /// assert_eq!(t.len(), 1_000);
    /// assert!(t.read_ratio() > 0.99);
    /// ```
    pub fn generate(&self, n_events: usize, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ (self.kind as u64).wrapping_mul(0x9E37_79B9));
        let mut trace = Trace::new(self.kind.name());
        let size_dist = LogNormal::new(
            self.size_mean_log2 * std::f64::consts::LN_2,
            self.size_sigma * std::f64::consts::LN_2,
        )
        .expect("valid lognormal parameters");
        let arrival = Exp::new(1.0 / self.mean_interarrival_ns).expect("positive rate");
        // Hot regions are 1 MiB (2048-sector) extents ranked by Zipf.
        let n_hot =
            ((self.working_set_sectors as f64 * self.hot_fraction) / 2048.0).max(1.0) as u64;
        let zipf = Zipf::new(n_hot, self.zipf_skew.max(0.01)).expect("valid zipf");

        let mut now_ns: u64 = 0;
        let mut seq_head: u64 = rng.gen_range(0..self.working_set_sectors);
        let mut in_burst = false;
        for _ in 0..n_events {
            // Arrival process with burst modulation.
            if rng.gen::<f64>() < 0.02 {
                in_burst = rng.gen::<f64>() < self.burstiness;
            }
            let scale = if in_burst { 0.1 } else { 1.0 };
            let dt = (arrival.sample(&mut rng) * scale).max(1.0);
            now_ns += dt as u64;

            // Size: lognormal, clamped to [512 B, 2 MiB], sector aligned.
            let raw = size_dist.sample(&mut rng);
            let size = raw.clamp(512.0, 2.0 * 1024.0 * 1024.0) as u32;
            let size = size.max(512) / 512 * 512;

            // Address: continue a sequential stream or pick a zipf-hot spot.
            let lba = if rng.gen::<f64>() < self.seq_prob {
                let l = seq_head;
                seq_head = (seq_head + u64::from(size / 512)) % self.working_set_sectors;
                l
            } else {
                let region = zipf.sample(&mut rng) as u64 - 1;
                let base = (region * 2048) % self.working_set_sectors;
                let l = base + rng.gen_range(0..2048u64);
                // Occasionally relocate the sequential head to the random
                // spot, modeling interleaved streams.
                if rng.gen::<f64>() < 0.05 {
                    seq_head = l;
                }
                l % self.working_set_sectors
            };

            let op = if rng.gen::<f64>() < self.read_ratio {
                OpKind::Read
            } else {
                OpKind::Write
            };
            trace.push(TraceEvent::new(now_ns, lba, size, op));
        }
        trace
    }
}

/// Generates a trace for a named workload category.
///
/// Shorthand for `kind.spec().generate(n_events, seed)`.
pub fn generate(kind: WorkloadKind, n_events: usize, seed: u64) -> Trace {
    kind.spec().generate(n_events, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = generate(WorkloadKind::Database, 500, 1);
        let b = generate(WorkloadKind::Database, 500, 1);
        assert_eq!(a, b);
        let c = generate(WorkloadKind::Database, 500, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn read_ratios_match_spec() {
        for kind in WorkloadKind::STUDIED {
            let spec = kind.spec();
            let t = generate(kind, 5_000, 11);
            assert!(
                (t.read_ratio() - spec.read_ratio).abs() < 0.05,
                "{kind}: got {}, want {}",
                t.read_ratio(),
                spec.read_ratio
            );
        }
    }

    #[test]
    fn websearch_is_read_dominated() {
        let t = generate(WorkloadKind::WebSearch, 4_000, 3);
        assert!(t.read_ratio() > 0.99);
    }

    #[test]
    fn batch_analytics_is_sequential() {
        let batch = generate(WorkloadKind::BatchAnalytics, 4_000, 3);
        let web = generate(WorkloadKind::WebSearch, 4_000, 3);
        assert!(batch.sequential_ratio() > 3.0 * web.sequential_ratio());
    }

    #[test]
    fn batch_requests_are_larger_than_vdi() {
        let batch = generate(WorkloadKind::BatchAnalytics, 3_000, 5);
        let vdi = generate(WorkloadKind::Vdi, 3_000, 5);
        let mb = batch.total_bytes() as f64 / batch.len() as f64;
        let mv = vdi.total_bytes() as f64 / vdi.len() as f64;
        assert!(mb > 4.0 * mv, "batch {mb} vs vdi {mv}");
    }

    #[test]
    fn timestamps_monotonic_and_sizes_aligned() {
        let t = generate(WorkloadKind::KvStore, 2_000, 9);
        let mut prev = 0;
        for e in &t {
            assert!(e.timestamp_ns >= prev);
            prev = e.timestamp_ns;
            assert_eq!(e.size_bytes % 512, 0);
            assert!(e.size_bytes >= 512);
            assert!(e.lba < t.events().iter().map(|x| x.lba).max().unwrap() + 1);
        }
    }

    #[test]
    fn addresses_stay_in_working_set() {
        for kind in WorkloadKind::NEW {
            let spec = kind.spec();
            let t = generate(kind, 1_000, 13);
            for e in &t {
                assert!(e.lba < spec.working_set_sectors + 2048, "{kind}");
            }
        }
    }

    #[test]
    fn kind_name_roundtrip() {
        for kind in WorkloadKind::STUDIED.iter().chain(WorkloadKind::NEW.iter()) {
            let parsed: WorkloadKind = kind.name().parse().unwrap();
            assert_eq!(parsed, *kind);
        }
        assert!("NotAWorkload".parse::<WorkloadKind>().is_err());
        assert_eq!(WorkloadKind::KvStore.to_string(), "KVStore");
    }
}
