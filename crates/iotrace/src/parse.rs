//! Trace parsers and writers.
//!
//! Two text formats are supported:
//!
//! - **CSV**: `timestamp_ns,lba,size_bytes,op` with `op` in `{R, W}`;
//! - **blkparse**: the whitespace format emitted by `blkparse -f` queues
//!   (`<time_s> <lba> + <sectors> <R|W>`), the collection mechanism the
//!   paper names (§3.5: "AutoBlox supports storage traces collected with
//!   blktrace").

use crate::trace::{OpKind, Trace, TraceEvent};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Error produced while parsing a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl ParseTraceError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseTraceError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number the error occurred on.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseTraceError {}

fn parse_op(token: &str, line: usize) -> Result<OpKind, ParseTraceError> {
    match token {
        "R" | "r" | "RA" | "RM" => Ok(OpKind::Read),
        "W" | "w" | "WS" | "WM" => Ok(OpKind::Write),
        other => Err(ParseTraceError::new(
            line,
            format!("unknown operation {other:?} (expected R or W)"),
        )),
    }
}

/// Parses a CSV trace (`timestamp_ns,lba,size_bytes,op`).
///
/// Lines starting with `#` and blank lines are skipped. A header line
/// beginning with `timestamp` is also skipped.
///
/// # Errors
///
/// Returns [`ParseTraceError`] describing the first malformed line, or an
/// I/O error from the reader.
///
/// # Examples
///
/// ```
/// use iotrace::parse::parse_csv;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = "timestamp_ns,lba,size_bytes,op\n0,100,4096,R\n10,200,512,W\n";
/// let trace = parse_csv("demo", data.as_bytes())?;
/// assert_eq!(trace.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_csv<R: BufRead>(name: &str, reader: R) -> Result<Trace, Box<dyn Error>> {
    let mut trace = Trace::new(name);
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("timestamp") {
            continue;
        }
        let mut parts = line.split(',');
        let mut next = |what: &str| {
            parts
                .next()
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| ParseTraceError::new(lineno, format!("missing field {what}")))
        };
        let ts: u64 = next("timestamp_ns")?
            .parse()
            .map_err(|e| ParseTraceError::new(lineno, format!("bad timestamp: {e}")))?;
        let lba: u64 = next("lba")?
            .parse()
            .map_err(|e| ParseTraceError::new(lineno, format!("bad lba: {e}")))?;
        let size: u32 = next("size_bytes")?
            .parse()
            .map_err(|e| ParseTraceError::new(lineno, format!("bad size: {e}")))?;
        let op = parse_op(next("op")?, lineno)?;
        trace.push(TraceEvent::new(ts, lba, size, op));
    }
    Ok(trace)
}

/// Parses a `blkparse`-style queue trace: `<time_s> <lba> + <sectors> <op>`.
///
/// # Errors
///
/// Returns [`ParseTraceError`] describing the first malformed line, or an
/// I/O error from the reader.
///
/// # Examples
///
/// ```
/// use iotrace::parse::parse_blkparse;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = "0.000001000 2048 + 8 R\n0.000002000 4096 + 16 W\n";
/// let trace = parse_blkparse("demo", data.as_bytes())?;
/// assert_eq!(trace.events()[0].size_bytes, 8 * 512);
/// # Ok(())
/// # }
/// ```
pub fn parse_blkparse<R: BufRead>(name: &str, reader: R) -> Result<Trace, Box<dyn Error>> {
    let mut trace = Trace::new(name);
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() < 5 || tokens[2] != "+" {
            return Err(Box::new(ParseTraceError::new(
                lineno,
                "expected `<time_s> <lba> + <sectors> <op>`",
            )));
        }
        let secs: f64 = tokens[0]
            .parse()
            .map_err(|e| ParseTraceError::new(lineno, format!("bad time: {e}")))?;
        if !(secs.is_finite() && secs >= 0.0) {
            return Err(Box::new(ParseTraceError::new(lineno, "negative time")));
        }
        let lba: u64 = tokens[1]
            .parse()
            .map_err(|e| ParseTraceError::new(lineno, format!("bad lba: {e}")))?;
        let sectors: u32 = tokens[3]
            .parse()
            .map_err(|e| ParseTraceError::new(lineno, format!("bad sector count: {e}")))?;
        let op = parse_op(tokens[4], lineno)?;
        trace.push(TraceEvent::new((secs * 1e9) as u64, lba, sectors * 512, op));
    }
    Ok(trace)
}

/// Parses an MSR-Cambridge-style trace:
/// `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`,
/// where `Timestamp` is a Windows filetime (100 ns ticks), `Type` is
/// `Read`/`Write`, and `Offset`/`Size` are in bytes. This is the format of
/// the enterprise-server traces the paper's workload families draw on.
///
/// Timestamps are rebased so the first record starts at zero.
///
/// # Errors
///
/// Returns [`ParseTraceError`] describing the first malformed line, or an
/// I/O error from the reader.
///
/// # Examples
///
/// ```
/// use iotrace::parse::parse_msr;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = "128166372003061629,web0,0,Read,7014609920,24576,41286\n";
/// let trace = parse_msr("msr", data.as_bytes())?;
/// assert_eq!(trace.events()[0].size_bytes, 24576);
/// assert_eq!(trace.events()[0].timestamp_ns, 0);
/// # Ok(())
/// # }
/// ```
pub fn parse_msr<R: BufRead>(name: &str, reader: R) -> Result<Trace, Box<dyn Error>> {
    let mut events = Vec::new();
    let mut base_ticks: Option<u64> = None;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("Timestamp") {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() < 6 {
            return Err(Box::new(ParseTraceError::new(
                lineno,
                "expected at least 6 comma-separated MSR fields",
            )));
        }
        let ticks: u64 = parts[0]
            .trim()
            .parse()
            .map_err(|e| ParseTraceError::new(lineno, format!("bad timestamp: {e}")))?;
        let op = match parts[3].trim() {
            t if t.eq_ignore_ascii_case("read") => OpKind::Read,
            t if t.eq_ignore_ascii_case("write") => OpKind::Write,
            other => {
                return Err(Box::new(ParseTraceError::new(
                    lineno,
                    format!("unknown MSR operation {other:?}"),
                )))
            }
        };
        let offset: u64 = parts[4]
            .trim()
            .parse()
            .map_err(|e| ParseTraceError::new(lineno, format!("bad offset: {e}")))?;
        let size: u32 = parts[5]
            .trim()
            .parse()
            .map_err(|e| ParseTraceError::new(lineno, format!("bad size: {e}")))?;
        let base = *base_ticks.get_or_insert(ticks);
        // Windows filetime ticks are 100 ns.
        let ts_ns = ticks.saturating_sub(base) * 100;
        events.push(TraceEvent::new(ts_ns, offset / 512, size, op));
    }
    Ok(Trace::from_events(name, events))
}

/// Writes a trace in the CSV format accepted by [`parse_csv`].
///
/// # Errors
///
/// Propagates I/O errors from the writer. A `&mut` writer may be passed.
pub fn write_csv<W: Write>(trace: &Trace, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "timestamp_ns,lba,size_bytes,op")?;
    for e in trace {
        writeln!(
            writer,
            "{},{},{},{}",
            e.timestamp_ns, e.lba, e.size_bytes, e.op
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let t = Trace::from_events(
            "rt",
            vec![
                TraceEvent::new(0, 10, 4096, OpKind::Read),
                TraceEvent::new(5, 20, 512, OpKind::Write),
            ],
        );
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let parsed = parse_csv("rt", buf.as_slice()).unwrap();
        assert_eq!(parsed.events(), t.events());
    }

    #[test]
    fn csv_skips_comments_and_blank() {
        let data = "# comment\n\n0,1,512,R\n";
        let t = parse_csv("c", data.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn csv_reports_line_numbers() {
        let data = "0,1,512,R\nbroken\n";
        let err = parse_csv("c", data.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn csv_rejects_bad_op() {
        let data = "0,1,512,X\n";
        assert!(parse_csv("c", data.as_bytes()).is_err());
    }

    #[test]
    fn msr_format_parses_and_rebases() {
        let data = "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n\
            128166372003061629,web0,0,Read,7014609920,24576,41286\n\
            128166372003061729,web0,0,Write,1048576,4096,100\n";
        let t = parse_msr("m", data.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].timestamp_ns, 0);
        assert_eq!(t.events()[1].timestamp_ns, 100 * 100);
        assert_eq!(t.events()[0].lba, 7014609920 / 512);
        assert_eq!(t.events()[1].op, OpKind::Write);
    }

    #[test]
    fn msr_rejects_malformed() {
        assert!(parse_msr("m", "1,host,0,Frobnicate,0,512,1\n".as_bytes()).is_err());
        assert!(parse_msr("m", "not-a-number,host,0,Read,0,512,1\n".as_bytes()).is_err());
        assert!(parse_msr("m", "1,host,0\n".as_bytes()).is_err());
    }

    #[test]
    fn blkparse_converts_units() {
        let data = "1.5 100 + 8 R\n";
        let t = parse_blkparse("b", data.as_bytes()).unwrap();
        let e = t.events()[0];
        assert_eq!(e.timestamp_ns, 1_500_000_000);
        assert_eq!(e.size_bytes, 4096);
        assert_eq!(e.lba, 100);
        assert_eq!(e.op, OpKind::Read);
    }

    #[test]
    fn blkparse_accepts_rwbs_variants() {
        let data = "0.1 0 + 1 RA\n0.2 8 + 1 WS\n";
        let t = parse_blkparse("b", data.as_bytes()).unwrap();
        assert_eq!(t.events()[0].op, OpKind::Read);
        assert_eq!(t.events()[1].op, OpKind::Write);
    }

    #[test]
    fn blkparse_rejects_malformed() {
        assert!(parse_blkparse("b", "not a trace\n".as_bytes()).is_err());
        assert!(parse_blkparse("b", "-1.0 0 + 1 R\n".as_bytes()).is_err());
        assert!(parse_blkparse("b", "0.0 0 - 1 R\n".as_bytes()).is_err());
    }
}
