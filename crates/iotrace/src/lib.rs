//! # iotrace — block I/O traces and synthetic storage workloads
//!
//! The trace substrate of the AutoBlox reproduction:
//!
//! - [`trace`]: the [`TraceEvent`]/[`Trace`] model with summary statistics;
//! - [`parse`]: CSV and `blkparse`-style readers plus a CSV writer;
//! - [`gen`]: seeded synthetic generators for the paper's 13 workload
//!   categories (Tables 2 and 3);
//! - [`window`]: 3,000-entry windowing and access-pattern feature extraction
//!   feeding AutoBlox's clustering front end (§3.1).
//!
//! # Examples
//!
//! ```
//! use iotrace::gen::WorkloadKind;
//! use iotrace::window::{window_features, WindowOptions};
//!
//! let trace = WorkloadKind::KvStore.spec().generate(3_000, 42);
//! let features = window_features(&trace, WindowOptions::default());
//! assert_eq!(features.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod gen;
pub mod mix;
pub mod parse;
pub mod stats;
pub mod trace;
pub mod window;

pub use gen::{WorkloadKind, WorkloadSpec};
pub use mix::{merge_partitioned, TenantSpec};
pub use trace::{merge_traces, OpKind, Trace, TraceEvent};
