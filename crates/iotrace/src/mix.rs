//! Tenant mixes: multi-tenant trace merging with LBA-space partitioning.
//!
//! The fleet-placement mode consolidates several tenant workloads onto one
//! virtual device. To co-simulate them the tenant traces are interleaved in
//! time order onto a single timeline, with each tenant's address space
//! relocated to a disjoint LBA window (a *lane*) separated by a 1 MiB guard
//! band. Because the windows are disjoint, the pre-modulo LBA of every
//! merged request identifies its tenant — which is what lets the simulator
//! attribute per-tenant latency after the fact.
//!
//! [`TenantSpec`] is the CLI-facing description of one generated tenant
//! (`<workload>:<events>:<seed>`), and [`merge_partitioned`] is the merge
//! that also reports where each tenant's lane begins.

use crate::gen::WorkloadKind;
use crate::trace::{Trace, TraceEvent};
use std::str::FromStr;

/// Guard band between tenant lanes, in 512-byte sectors (1 MiB).
pub const LANE_GUARD_SECTORS: u64 = 2048;

/// One generated tenant in a placement mix: a workload category, an event
/// count, and a generator seed.
///
/// Parses from `<workload>:<events>:<seed>` (workload names are matched
/// case-insensitively), e.g. `Database:3000:7`.
///
/// # Examples
///
/// ```
/// use iotrace::mix::TenantSpec;
/// let spec: TenantSpec = "Database:1000:7".parse().unwrap();
/// assert_eq!(spec.events, 1000);
/// let t = spec.generate("t0:Database");
/// assert_eq!(t.len(), 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpec {
    /// The workload category to generate.
    pub kind: WorkloadKind,
    /// Number of events to generate.
    pub events: usize,
    /// Generator seed.
    pub seed: u64,
}

impl TenantSpec {
    /// Generates the tenant's trace under the given name (tenant names must
    /// be unique within a mix — downstream caches key traces by name).
    pub fn generate(&self, name: impl Into<String>) -> Trace {
        let t = self.kind.spec().generate(self.events, self.seed);
        Trace::from_events(name, t.events().to_vec())
    }
}

impl FromStr for TenantSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(format!(
                "tenant spec {s:?} is not <workload>:<events>:<seed>"
            ));
        }
        let kind = WorkloadKind::from_str(parts[0]).map_err(|e| e.to_string())?;
        let events: usize = parts[1]
            .parse()
            .map_err(|e| format!("bad event count in {s:?}: {e}"))?;
        if events == 0 {
            return Err(format!("tenant spec {s:?} has zero events"));
        }
        let seed: u64 = parts[2]
            .parse()
            .map_err(|e| format!("bad seed in {s:?}: {e}"))?;
        Ok(TenantSpec { kind, events, seed })
    }
}

/// Merges tenant traces onto one timeline with disjoint per-tenant LBA
/// lanes, returning the merged trace and the ascending lane start offsets
/// (one per tenant, in input order).
///
/// Tenant `i`'s events keep their timestamps and sizes; their LBAs are
/// shifted by a cumulative base so tenant address ranges never overlap,
/// with a [`LANE_GUARD_SECTORS`] guard band between neighbours. Feeding the
/// returned starts to the simulator's lane accounting attributes each
/// request back to its tenant.
///
/// # Examples
///
/// ```
/// use iotrace::{OpKind, Trace, TraceEvent};
/// use iotrace::mix::merge_partitioned;
/// let a = Trace::from_events("a", vec![TraceEvent::new(0, 10, 512, OpKind::Read)]);
/// let b = Trace::from_events("b", vec![TraceEvent::new(5, 0, 512, OpKind::Write)]);
/// let (merged, starts) = merge_partitioned("ab", &[&a, &b]);
/// assert_eq!(merged.len(), 2);
/// assert_eq!(starts, vec![0, 10 + 1 + 2048]);
/// ```
pub fn merge_partitioned(name: impl Into<String>, tenants: &[&Trace]) -> (Trace, Vec<u64>) {
    let mut events = Vec::with_capacity(tenants.iter().map(|t| t.len()).sum());
    let mut starts = Vec::with_capacity(tenants.len());
    let mut base = 0u64;
    for t in tenants {
        starts.push(base);
        let span = t
            .events()
            .iter()
            .map(TraceEvent::end_lba)
            .max()
            .unwrap_or(0);
        for e in t.events() {
            events.push(TraceEvent::new(
                e.timestamp_ns,
                base + e.lba,
                e.size_bytes,
                e.op,
            ));
        }
        base += span + LANE_GUARD_SECTORS;
    }
    (Trace::from_events(name, events), starts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::OpKind;

    #[test]
    fn tenant_spec_parses_and_rejects() {
        let s: TenantSpec = "webSEARCH:500:3".parse().unwrap();
        assert_eq!(s.kind, WorkloadKind::WebSearch);
        assert_eq!((s.events, s.seed), (500, 3));
        assert!("Database:500".parse::<TenantSpec>().is_err());
        assert!("NotAWorkload:500:3".parse::<TenantSpec>().is_err());
        assert!("Database:0:3".parse::<TenantSpec>().is_err());
        assert!("Database:x:3".parse::<TenantSpec>().is_err());
        assert!("/tmp/trace.csv".parse::<TenantSpec>().is_err());
    }

    #[test]
    fn generated_tenant_carries_its_name() {
        let spec: TenantSpec = "Database:200:9".parse().unwrap();
        let t = spec.generate("t3:Database");
        assert_eq!(t.name(), "t3:Database");
        assert_eq!(t.len(), 200);
        // Same spec, same events regardless of name.
        let u = spec.generate("other");
        assert_eq!(t.events(), u.events());
    }

    #[test]
    fn partitioned_merge_lanes_are_disjoint() {
        let a = Trace::from_events(
            "a",
            vec![
                TraceEvent::new(0, 100, 4096, OpKind::Read),
                TraceEvent::new(50, 0, 512, OpKind::Write),
            ],
        );
        let b = Trace::from_events("b", vec![TraceEvent::new(25, 7, 1024, OpKind::Read)]);
        let (merged, starts) = merge_partitioned("mix", &[&a, &b]);
        assert_eq!(starts.len(), 2);
        assert_eq!(starts[0], 0);
        // Lane 1 starts past a's max end LBA plus the guard band.
        assert_eq!(starts[1], 100 + 8 + LANE_GUARD_SECTORS);
        // Events interleave in time order.
        let times: Vec<u64> = merged.events().iter().map(|e| e.timestamp_ns).collect();
        assert_eq!(times, vec![0, 25, 50]);
        // Every event's LBA falls inside its tenant's lane.
        assert!(merged.events()[1].lba >= starts[1]);
        assert!(merged.events()[0].lba < starts[1]);
        assert!(merged.events()[2].lba < starts[1]);
    }

    #[test]
    fn single_tenant_merge_is_identity_offsets() {
        let a = Trace::from_events("a", vec![TraceEvent::new(0, 42, 512, OpKind::Read)]);
        let (merged, starts) = merge_partitioned("solo", &[&a]);
        assert_eq!(starts, vec![0]);
        assert_eq!(merged.events()[0].lba, 42);
    }
}
