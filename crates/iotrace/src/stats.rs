//! Trace statistics: summary profiles and histograms for workload
//! characterization reports (the "traditional methods" of §3.1 that
//! AutoBlox's learned clustering is compared against).

use crate::trace::{OpKind, Trace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A log2-bucketed histogram over `u64` values.
///
/// Bucket `i` covers `[2^i, 2^(i+1))`; bucket 0 also absorbs zero.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
    count: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: vec![0; 64],
            count: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The smallest value `v` such that at least `quantile` of recorded
    /// values fall in buckets at or below `v`'s bucket (bucket upper bound).
    pub fn quantile(&self, quantile: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count as f64 * quantile.clamp(0.0, 1.0)).ceil() as u64;
        let mut cum = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
            .collect()
    }
}

/// A workload profile computed with the "traditional" characterization
/// methods: read ratio, sequentiality, size/inter-arrival distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceProfile {
    /// Trace name.
    pub name: String,
    /// Number of requests.
    pub requests: u64,
    /// Fraction of reads.
    pub read_ratio: f64,
    /// Fraction of strictly sequential requests.
    pub sequential_ratio: f64,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Trace duration in nanoseconds.
    pub duration_ns: u64,
    /// Offered load in bytes per second.
    pub offered_bps: f64,
    /// Request-size histogram (bytes, log2 buckets).
    pub size_hist: Log2Histogram,
    /// Inter-arrival-time histogram (ns, log2 buckets).
    pub interarrival_hist: Log2Histogram,
    /// Address-jump histogram (sectors, log2 buckets).
    pub jump_hist: Log2Histogram,
    /// Span of addressed sectors (max - min).
    pub address_span_sectors: u64,
}

impl TraceProfile {
    /// Profiles a trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use iotrace::gen::WorkloadKind;
    /// use iotrace::stats::TraceProfile;
    /// let t = WorkloadKind::WebSearch.spec().generate(1_000, 1);
    /// let p = TraceProfile::of(&t);
    /// assert!(p.read_ratio > 0.99);
    /// assert_eq!(p.requests, 1_000);
    /// ```
    pub fn of(trace: &Trace) -> Self {
        let mut size_hist = Log2Histogram::new();
        let mut interarrival_hist = Log2Histogram::new();
        let mut jump_hist = Log2Histogram::new();
        let mut min_lba = u64::MAX;
        let mut max_lba = 0u64;
        let mut prev: Option<&crate::trace::TraceEvent> = None;
        for e in trace {
            size_hist.record(u64::from(e.size_bytes));
            min_lba = min_lba.min(e.lba);
            max_lba = max_lba.max(e.end_lba());
            if let Some(p) = prev {
                interarrival_hist.record(e.timestamp_ns - p.timestamp_ns);
                jump_hist.record(e.lba.abs_diff(p.end_lba()));
            }
            prev = Some(e);
        }
        let duration_ns = trace.duration_ns();
        let total_bytes = trace.total_bytes();
        TraceProfile {
            name: trace.name().to_string(),
            requests: trace.len() as u64,
            read_ratio: trace.read_ratio(),
            sequential_ratio: trace.sequential_ratio(),
            total_bytes,
            duration_ns,
            offered_bps: if duration_ns > 0 {
                total_bytes as f64 / (duration_ns as f64 / 1e9)
            } else {
                0.0
            },
            size_hist,
            interarrival_hist,
            jump_hist,
            address_span_sectors: max_lba.saturating_sub(min_lba.min(max_lba)),
        }
    }

    /// Per-operation breakdown: `(reads, writes)`.
    pub fn op_counts(trace: &Trace) -> (u64, u64) {
        let reads = trace.iter().filter(|e| e.op == OpKind::Read).count() as u64;
        (reads, trace.len() as u64 - reads)
    }
}

impl fmt::Display for TraceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace {:?}: {} requests", self.name, self.requests)?;
        writeln!(
            f,
            "  reads {:.1}%  sequential {:.1}%  offered {:.1} MiB/s",
            self.read_ratio * 100.0,
            self.sequential_ratio * 100.0,
            self.offered_bps / (1 << 20) as f64
        )?;
        writeln!(
            f,
            "  sizes: p50 <= {} B, p99 <= {} B",
            self.size_hist.quantile(0.5),
            self.size_hist.quantile(0.99)
        )?;
        write!(
            f,
            "  inter-arrival: p50 <= {} ns; span {} sectors",
            self.interarrival_hist.quantile(0.5),
            self.address_span_sectors
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkloadKind;
    use crate::trace::TraceEvent;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 2, 2, 4, 4, 4, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        // p50 falls in the 4-bucket -> upper bound 8.
        assert_eq!(h.quantile(0.5), 8);
        assert!(h.quantile(1.0) >= 2048);
        let nz = h.nonzero_buckets();
        assert_eq!(nz.len(), 4);
        assert_eq!(nz[0], (1, 1));
    }

    #[test]
    fn histogram_zero_and_empty() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.nonzero_buckets()[0].0, 1);
    }

    #[test]
    fn profile_matches_trace_statistics() {
        let t = WorkloadKind::Database.spec().generate(2_000, 7);
        let p = TraceProfile::of(&t);
        assert_eq!(p.requests, 2_000);
        assert!((p.read_ratio - t.read_ratio()).abs() < 1e-12);
        assert_eq!(p.total_bytes, t.total_bytes());
        assert_eq!(p.duration_ns, t.duration_ns());
        assert!(p.offered_bps > 0.0);
        let (r, w) = TraceProfile::op_counts(&t);
        assert_eq!(r + w, 2_000);
    }

    #[test]
    fn profile_of_empty_trace() {
        let t = Trace::new("empty");
        let p = TraceProfile::of(&t);
        assert_eq!(p.requests, 0);
        assert_eq!(p.offered_bps, 0.0);
        assert_eq!(p.address_span_sectors, 0);
    }

    #[test]
    fn display_is_nonempty() {
        let t = Trace::from_events(
            "d",
            vec![
                TraceEvent::new(0, 0, 4096, OpKind::Read),
                TraceEvent::new(100, 8, 4096, OpKind::Write),
            ],
        );
        let s = TraceProfile::of(&t).to_string();
        assert!(s.contains("2 requests"));
    }

    #[test]
    fn sequential_workload_profiles_sequential() {
        let batch = WorkloadKind::BatchAnalytics.spec().generate(2_000, 9);
        let web = WorkloadKind::WebSearch.spec().generate(2_000, 9);
        let pb = TraceProfile::of(&batch);
        let pw = TraceProfile::of(&web);
        assert!(pb.sequential_ratio > pw.sequential_ratio);
        assert!(pb.size_hist.quantile(0.5) > pw.size_hist.quantile(0.5));
    }
}
