//! Core block I/O trace model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Type of a block I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Read request.
    Read,
    /// Write request.
    Write,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => write!(f, "R"),
            OpKind::Write => write!(f, "W"),
        }
    }
}

/// One block I/O request as recorded by a block-layer tracer
/// (e.g. `blktrace`).
///
/// Addresses are in 512-byte sectors, matching Linux block-layer convention;
/// sizes are in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Arrival time in nanoseconds from trace start.
    pub timestamp_ns: u64,
    /// Starting logical block address, in 512-byte sectors.
    pub lba: u64,
    /// Request size in bytes.
    pub size_bytes: u32,
    /// Read or write.
    pub op: OpKind,
}

impl TraceEvent {
    /// Creates an event.
    ///
    /// # Examples
    ///
    /// ```
    /// use iotrace::{OpKind, TraceEvent};
    /// let e = TraceEvent::new(1_000, 2048, 4096, OpKind::Read);
    /// assert_eq!(e.sector_count(), 8);
    /// ```
    pub fn new(timestamp_ns: u64, lba: u64, size_bytes: u32, op: OpKind) -> Self {
        TraceEvent {
            timestamp_ns,
            lba,
            size_bytes,
            op,
        }
    }

    /// Number of 512-byte sectors covered (rounded up).
    pub fn sector_count(&self) -> u64 {
        u64::from(self.size_bytes).div_ceil(512)
    }

    /// First sector past the end of this request.
    pub fn end_lba(&self) -> u64 {
        self.lba + self.sector_count()
    }

    /// `true` for reads.
    pub fn is_read(&self) -> bool {
        self.op == OpKind::Read
    }
}

/// An ordered block I/O trace plus summary statistics.
///
/// Events are kept sorted by timestamp; [`Trace::push`] maintains the
/// invariant by clamping out-of-order arrivals forward.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty, named trace.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            events: Vec::new(),
        }
    }

    /// Builds a trace from pre-sorted events; sorts them if needed.
    pub fn from_events(name: impl Into<String>, mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| e.timestamp_ns);
        Trace {
            name: name.into(),
            events,
        }
    }

    /// Trace name (workload identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an event, clamping its timestamp to maintain ordering.
    pub fn push(&mut self, mut event: TraceEvent) {
        if let Some(last) = self.events.last() {
            if event.timestamp_ns < last.timestamp_ns {
                event.timestamp_ns = last.timestamp_ns;
            }
        }
        self.events.push(event);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// Fraction of read requests, in `[0, 1]`; 0 for an empty trace.
    pub fn read_ratio(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events.iter().filter(|e| e.is_read()).count() as f64 / self.events.len() as f64
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.events.iter().map(|e| u64::from(e.size_bytes)).sum()
    }

    /// Duration between the first and last event, in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        match (self.events.first(), self.events.last()) {
            (Some(f), Some(l)) => l.timestamp_ns - f.timestamp_ns,
            _ => 0,
        }
    }

    /// Fraction of requests whose start sector equals the previous request's
    /// end sector (strict sequentiality).
    pub fn sequential_ratio(&self) -> f64 {
        if self.events.len() < 2 {
            return 0.0;
        }
        let seq = self
            .events
            .windows(2)
            .filter(|w| w[1].lba == w[0].end_lba())
            .count();
        seq as f64 / (self.events.len() - 1) as f64
    }

    /// Rebases all block addresses so the smallest becomes zero — the
    /// "relative address space" normalization of §3.1, which removes the
    /// allocator-dependent absolute placement.
    pub fn rebase_addresses(&mut self) {
        let min = self.events.iter().map(|e| e.lba).min().unwrap_or(0);
        for e in &mut self.events {
            e.lba -= min;
        }
    }

    /// Returns a sub-trace containing events `[start, start+len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, len: usize) -> Trace {
        Trace {
            name: format!("{}[{start}..{}]", self.name, start + len),
            events: self.events[start..start + len].to_vec(),
        }
    }
}

/// Merges multiple traces into one timeline, as a multi-tenant device would
/// observe them. Events keep their timestamps and are interleaved in time
/// order; addresses are offset so tenants occupy disjoint ranges.
///
/// # Examples
///
/// ```
/// use iotrace::{merge_traces, OpKind, Trace, TraceEvent};
/// let a = Trace::from_events("a", vec![TraceEvent::new(0, 0, 512, OpKind::Read)]);
/// let b = Trace::from_events("b", vec![TraceEvent::new(5, 0, 512, OpKind::Write)]);
/// let merged = merge_traces("ab", &[a, b]);
/// assert_eq!(merged.len(), 2);
/// // Tenant b's addresses are offset past tenant a's range.
/// assert!(merged.events()[1].lba > merged.events()[0].lba);
/// ```
pub fn merge_traces(name: impl Into<String>, tenants: &[Trace]) -> Trace {
    let refs: Vec<&Trace> = tenants.iter().collect();
    crate::mix::merge_partitioned(name, &refs).0
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl Extend<TraceEvent> for Trace {
    fn extend<T: IntoIterator<Item = TraceEvent>>(&mut self, iter: T) {
        for e in iter {
            self.push(e);
        }
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceEvent>>(iter: T) -> Self {
        Trace::from_events("unnamed", iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, lba: u64, size: u32, op: OpKind) -> TraceEvent {
        TraceEvent::new(t, lba, size, op)
    }

    #[test]
    fn sector_count_rounds_up() {
        assert_eq!(ev(0, 0, 512, OpKind::Read).sector_count(), 1);
        assert_eq!(ev(0, 0, 513, OpKind::Read).sector_count(), 2);
        assert_eq!(ev(0, 0, 4096, OpKind::Read).sector_count(), 8);
    }

    #[test]
    fn push_maintains_order() {
        let mut t = Trace::new("x");
        t.push(ev(100, 0, 512, OpKind::Read));
        t.push(ev(50, 8, 512, OpKind::Write)); // out of order: clamped
        assert_eq!(t.events()[1].timestamp_ns, 100);
    }

    #[test]
    fn from_events_sorts() {
        let t = Trace::from_events(
            "x",
            vec![ev(200, 0, 512, OpKind::Read), ev(100, 0, 512, OpKind::Read)],
        );
        assert_eq!(t.events()[0].timestamp_ns, 100);
    }

    #[test]
    fn read_ratio_and_bytes() {
        let t = Trace::from_events(
            "x",
            vec![
                ev(0, 0, 4096, OpKind::Read),
                ev(1, 8, 4096, OpKind::Read),
                ev(2, 16, 8192, OpKind::Write),
                ev(3, 32, 4096, OpKind::Read),
            ],
        );
        assert_eq!(t.read_ratio(), 0.75);
        assert_eq!(t.total_bytes(), 20480);
        assert_eq!(t.duration_ns(), 3);
    }

    #[test]
    fn sequential_ratio_detects_streams() {
        // 4 KiB back-to-back requests: fully sequential.
        let seq: Vec<TraceEvent> = (0..10).map(|i| ev(i, i * 8, 4096, OpKind::Read)).collect();
        let t = Trace::from_events("seq", seq);
        assert_eq!(t.sequential_ratio(), 1.0);

        let rnd = Trace::from_events(
            "rnd",
            vec![
                ev(0, 1000, 4096, OpKind::Read),
                ev(1, 5, 4096, OpKind::Read),
                ev(2, 90_000, 4096, OpKind::Read),
            ],
        );
        assert_eq!(rnd.sequential_ratio(), 0.0);
    }

    #[test]
    fn rebase_addresses_zeroes_minimum() {
        let mut t = Trace::from_events(
            "x",
            vec![ev(0, 100, 512, OpKind::Read), ev(1, 50, 512, OpKind::Read)],
        );
        t.rebase_addresses();
        assert_eq!(t.events().iter().map(|e| e.lba).min(), Some(0));
        assert_eq!(t.events().iter().map(|e| e.lba).max(), Some(50));
    }

    #[test]
    fn empty_trace_statistics() {
        let t = Trace::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.read_ratio(), 0.0);
        assert_eq!(t.duration_ns(), 0);
        assert_eq!(t.sequential_ratio(), 0.0);
    }

    #[test]
    fn slice_subsets_events() {
        let t = Trace::from_events("x", (0..10).map(|i| ev(i, i, 512, OpKind::Read)).collect());
        let s = t.slice(2, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.events()[0].timestamp_ns, 2);
    }

    #[test]
    fn merge_interleaves_and_offsets() {
        let a = Trace::from_events(
            "a",
            vec![ev(0, 0, 512, OpKind::Read), ev(100, 8, 512, OpKind::Read)],
        );
        let b = Trace::from_events("b", vec![ev(50, 0, 512, OpKind::Write)]);
        let m = merge_traces("m", &[a.clone(), b.clone()]);
        assert_eq!(m.len(), 3);
        // Time-ordered interleave.
        let ts: Vec<u64> = m.events().iter().map(|e| e.timestamp_ns).collect();
        assert_eq!(ts, vec![0, 50, 100]);
        // Tenant b sits past tenant a's range plus the guard band.
        let b_event = m.events().iter().find(|e| e.op == OpKind::Write).unwrap();
        assert!(b_event.lba >= 9 + 2048);
        // Merging nothing yields an empty trace.
        assert!(merge_traces("e", &[]).is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Trace = (0..5).map(|i| ev(i, i, 512, OpKind::Write)).collect();
        t.extend((5..8).map(|i| ev(i, i, 512, OpKind::Read)));
        assert_eq!(t.len(), 8);
        assert_eq!(t.iter().count(), 8);
        assert_eq!((&t).into_iter().count(), 8);
    }
}
