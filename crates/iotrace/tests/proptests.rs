//! Property-based tests for trace generation, parsing, and windowing.

use iotrace::gen::WorkloadKind;
use iotrace::parse::{parse_blkparse, parse_csv, write_csv};
use iotrace::window::{window_features, WindowOptions, FEATURE_DIM};
use iotrace::{OpKind, Trace, TraceEvent};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = WorkloadKind> {
    prop::sample::select(
        WorkloadKind::STUDIED
            .iter()
            .chain(WorkloadKind::NEW.iter())
            .copied()
            .collect::<Vec<_>>(),
    )
}

fn arb_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    prop::collection::vec(
        (0u64..1_000_000, 0u64..1_000_000, 1u32..=64, prop::bool::ANY),
        0..200,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(t, lba, sectors, read)| {
                TraceEvent::new(
                    t,
                    lba,
                    sectors * 512,
                    if read { OpKind::Read } else { OpKind::Write },
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_traces_satisfy_invariants(kind in arb_kind(), n in 10usize..500, seed in 0u64..1000) {
        let spec = kind.spec();
        let t = spec.generate(n, seed);
        prop_assert_eq!(t.len(), n);
        let mut prev = 0u64;
        for e in &t {
            prop_assert!(e.timestamp_ns >= prev);
            prev = e.timestamp_ns;
            prop_assert!(e.size_bytes >= 512);
            prop_assert_eq!(e.size_bytes % 512, 0);
            prop_assert!(e.lba < spec.working_set_sectors + 2048);
        }
        // Determinism.
        prop_assert_eq!(t, spec.generate(n, seed));
    }

    #[test]
    fn csv_roundtrip_preserves_events(events in arb_events()) {
        let t = Trace::from_events("p", events);
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let parsed = parse_csv("p", buf.as_slice()).unwrap();
        prop_assert_eq!(parsed.events(), t.events());
    }

    #[test]
    fn blkparse_format_roundtrip(events in arb_events()) {
        let t = Trace::from_events("p", events);
        let mut text = String::new();
        for e in &t {
            text.push_str(&format!(
                "{}.{:09} {} + {} {}\n",
                e.timestamp_ns / 1_000_000_000,
                e.timestamp_ns % 1_000_000_000,
                e.lba,
                e.sector_count(),
                e.op
            ));
        }
        let parsed = parse_blkparse("p", text.as_bytes()).unwrap();
        prop_assert_eq!(parsed.len(), t.len());
        for (a, b) in parsed.events().iter().zip(t.events()) {
            prop_assert_eq!(a.lba, b.lba);
            prop_assert_eq!(a.op, b.op);
            prop_assert_eq!(a.size_bytes, b.size_bytes);
            // Timestamps survive within ns rounding.
            prop_assert!(a.timestamp_ns.abs_diff(b.timestamp_ns) <= 1);
        }
    }

    #[test]
    fn window_features_are_finite_and_shaped(events in arb_events(), window_len in 2usize..50) {
        let t = Trace::from_events("p", events);
        let feats = window_features(&t, WindowOptions { window_len });
        prop_assert_eq!(feats.len(), t.len() / window_len);
        for f in &feats {
            prop_assert_eq!(f.len(), FEATURE_DIM);
            for &v in f {
                prop_assert!(v.is_finite());
            }
            // Bounded fraction features.
            prop_assert!((0.0..=1.0).contains(&f[0]), "read fraction {}", f[0]);
            prop_assert!((0.0..=1.0).contains(&f[5]), "seq fraction {}", f[5]);
        }
    }

    #[test]
    fn rebase_preserves_relative_geometry(events in arb_events()) {
        prop_assume!(!events.is_empty());
        let mut t = Trace::from_events("p", events);
        let gaps_before: Vec<i64> = t
            .events()
            .windows(2)
            .map(|w| w[1].lba as i64 - w[0].lba as i64)
            .collect();
        t.rebase_addresses();
        let gaps_after: Vec<i64> = t
            .events()
            .windows(2)
            .map(|w| w[1].lba as i64 - w[0].lba as i64)
            .collect();
        prop_assert_eq!(gaps_before, gaps_after);
        prop_assert_eq!(t.events().iter().map(|e| e.lba).min(), Some(0));
    }

    #[test]
    fn statistics_are_bounded(events in arb_events()) {
        let t = Trace::from_events("p", events);
        prop_assert!((0.0..=1.0).contains(&t.read_ratio()));
        prop_assert!((0.0..=1.0).contains(&t.sequential_ratio()));
        let total: u64 = t.events().iter().map(|e| u64::from(e.size_bytes)).sum();
        prop_assert_eq!(t.total_bytes(), total);
    }
}
