//! Device-family invariants, end to end: a hybrid SLC/QLC tune must be
//! bit-identical across thread counts and speculation widths, the
//! bottleneck attribution must surface SLC-migration stalls on a
//! write-heavy trace, and a checkpoint written under one device family
//! must refuse to resume under another.
//!
//! One test toggles the process-wide telemetry switch, so every test
//! that touches it serializes on one lock (test binaries run their
//! tests on concurrent threads within one process). The determinism
//! test also owns the process-wide thread override while it runs.

use autoblox::checkpoint::Checkpoint;
use autoblox::constraints::Constraints;
use autoblox::explain;
use autoblox::parallel;
use autoblox::telemetry;
use autoblox::tuner::{Tuner, TunerOptions, TuningTarget};
use autoblox::validator::{Validator, ValidatorOptions};
use autoblox::ParamSpace;
use iotrace::gen::WorkloadKind;
use ssdsim::config::{presets, FlashTechnology, Interface, SsdConfig};
use std::sync::Mutex;

// Guards both process-wide switches these tests flip: the telemetry
// switch and the thread-count override. Serializing on one lock keeps a
// concurrently running test from silently changing another's thread
// count mid-fingerprint.
static SWITCH_LOCK: Mutex<()> = Mutex::new(());

fn quick_validator(events: usize) -> Validator {
    Validator::new(ValidatorOptions {
        trace_events: events,
        ..Default::default()
    })
}

/// Constraints that pin the hybrid SLC/QLC family, with the capacity
/// band centered on the preset's *effective* (post-cache-shrink) bytes.
fn hybrid_constraints() -> Constraints {
    let reference = presets::hybrid_slc_qlc();
    Constraints::new(
        reference.effective_capacity_bytes() >> 30,
        Interface::Nvme,
        FlashTechnology::Qlc,
        25.0,
    )
    .with_family(reference.device_family)
}

/// One short hybrid tune over a space that includes every hybrid knob,
/// reduced to comparable JSON (f64s must be bit-identical for the
/// serializations to match) plus the simulator-run count.
fn hybrid_tune_fingerprint(speculate: usize) -> (String, u64) {
    let v = quick_validator(200);
    let opts = TunerOptions {
        max_iterations: 3,
        sgd_iterations: 2,
        convergence_window: 3,
        speculative_batch: speculate,
        non_target: vec![WorkloadKind::WebSearch],
        ..Default::default()
    };
    let space = ParamSpace::with_params(&[
        "channel_count",
        "data_cache_size",
        "slc_cache_pct",
        "slc_migration_threshold_pct",
        "slc_migration_policy",
    ]);
    let tuner = Tuner::new(hybrid_constraints(), &v, opts).with_space(space);
    let out = tuner.tune(WorkloadKind::Fiu, &presets::hybrid_slc_qlc(), &[], None);
    assert!(
        out.best.config.device_family.is_hybrid(),
        "a family-pinned tune must stay in-family"
    );
    (
        serde_json::to_string(&out).expect("outcome serializes"),
        v.simulator_runs(),
    )
}

/// The tentpole acceptance criterion: tuning the hybrid preset produces
/// byte-identical outcomes at threads {1, 4} x speculative batch {1, 4}.
/// Speculation may change how far validation runs ahead of demand, so
/// only the thread axis must preserve the simulator-run count; the
/// outcome bytes must match across all four combinations.
#[test]
fn hybrid_tune_bit_identical_across_threads_and_speculation() {
    let _guard = SWITCH_LOCK.lock().unwrap();
    let mut outcomes: Vec<(usize, usize, String)> = Vec::new();
    let mut runs_by_speculate: Vec<(usize, usize, u64)> = Vec::new();
    for threads in [1, 4] {
        parallel::set_max_threads(threads);
        for speculate in [1, 4] {
            let (fp, runs) = hybrid_tune_fingerprint(speculate);
            outcomes.push((threads, speculate, fp));
            runs_by_speculate.push((threads, speculate, runs));
        }
    }
    parallel::set_max_threads(0); // restore the default

    let (_, _, first) = &outcomes[0];
    for (threads, speculate, fp) in &outcomes[1..] {
        assert_eq!(
            fp, first,
            "hybrid tune diverged at threads={threads} speculate={speculate}"
        );
    }
    for (threads, speculate, runs) in &runs_by_speculate {
        let (_, _, serial_runs) = runs_by_speculate
            .iter()
            .find(|(t, s, _)| *t == 1 && s == speculate)
            .expect("serial run recorded");
        assert_eq!(
            runs, serial_runs,
            "simulator-run count changed with thread count at \
             threads={threads} speculate={speculate}"
        );
    }
}

/// The what-if analysis must hold the same invariant on hybrid devices:
/// goal-driven searches over the hybrid preset are byte-identical at
/// threads {1, 4} x speculative batch {1, 4}.
#[test]
fn hybrid_whatif_bit_identical_across_threads_and_speculation() {
    let _guard = SWITCH_LOCK.lock().unwrap();
    let whatif_fingerprint = |speculate: usize| {
        let v = quick_validator(200);
        let opts = autoblox::whatif::WhatIfOptions {
            tuner: TunerOptions {
                max_iterations: 2,
                sgd_iterations: 2,
                speculative_batch: speculate,
                ..Default::default()
            },
        };
        let out = autoblox::whatif::what_if(
            WorkloadKind::Fiu,
            autoblox::whatif::WhatIfGoal::LatencyReduction(1.5),
            hybrid_constraints(),
            &presets::hybrid_slc_qlc(),
            &v,
            opts,
        );
        assert!(out.tuning.best.config.device_family.is_hybrid());
        serde_json::to_string(&out).expect("outcome serializes")
    };
    let mut fingerprints = Vec::new();
    for threads in [1, 4] {
        parallel::set_max_threads(threads);
        for speculate in [1, 4] {
            fingerprints.push((threads, speculate, whatif_fingerprint(speculate)));
        }
    }
    parallel::set_max_threads(0);
    let (_, _, first) = &fingerprints[0];
    for (threads, speculate, fp) in &fingerprints[1..] {
        assert_eq!(
            fp, first,
            "hybrid whatif diverged at threads={threads} speculate={speculate}"
        );
    }
}

/// `explain` end-to-end on a write-heavy hybrid device: the run report's
/// bottleneck attribution and the rendered fingerprint must both show a
/// non-zero `slc-migration` share. The default hybrid geometry is too
/// large for a short trace to seal cache blocks, so the test shrinks the
/// device the same way the simulator's own hybrid tests do.
#[test]
fn explain_attributes_slc_migration_on_write_heavy_trace() {
    let _guard = SWITCH_LOCK.lock().unwrap();
    // The validator only retains per-run reports (and feeds its simulator
    // aggregate) while the telemetry switch is on.
    telemetry::set_enabled(true);
    autoblox::telemetry::global().clear();

    let cfg = SsdConfig {
        channel_count: 2,
        chips_per_channel: 1,
        dies_per_chip: 1,
        planes_per_die: 1,
        blocks_per_plane: 32,
        pages_per_block: 32,
        ..presets::hybrid_slc_qlc()
    };
    let v = quick_validator(3_000);
    let m = v.evaluate(&cfg, WorkloadKind::Fiu);
    assert!(m.throughput_bps > 0.0, "the hybrid device serves the trace");
    telemetry::set_enabled(false);

    let bottleneck = v.stats().sim.bottleneck();
    assert!(
        bottleneck.slc_migration_ns > 0,
        "folding cache blocks must be attributed to slc_migration"
    );
    assert!((0.0..=1.0).contains(&bottleneck.slc_migration_frac));

    // The same attribution flows through the run report into `explain`.
    let sink = telemetry::TelemetrySink::new();
    let report = sink.report(Some(&v));
    let fp = explain::fingerprint(&report);
    let share = fp
        .shares
        .iter()
        .find(|s| s.resource == "slc-migration")
        .expect("fingerprint carries the slc-migration resource");
    assert!(
        share.frac > 0.0,
        "explain must show a non-zero slc-migration share"
    );
    let rendered = explain::render_fingerprint(&fp);
    assert!(rendered.contains("slc-migration"));
}

/// Satellite bugfix regression: a checkpoint captured under hybrid
/// constraints must refuse to verify against a homogeneous tuner (and
/// vice versa) with a message naming the `--family` flag, before any
/// hash-diff noise.
#[test]
fn family_mismatched_checkpoint_refuses_to_resume() {
    let v = quick_validator(60);
    let opts = TunerOptions {
        max_iterations: 2,
        sgd_iterations: 2,
        convergence_window: 2,
        non_target: vec![WorkloadKind::WebSearch],
        ..Default::default()
    };
    let target = TuningTarget::from(WorkloadKind::Fiu);

    let hybrid_tuner = Tuner::new(hybrid_constraints(), &v, opts.clone());
    let state = hybrid_tuner.init_state(target, &presets::hybrid_slc_qlc(), &[], None);
    let checkpoint = Checkpoint::capture(&hybrid_tuner, target, &v, &state);

    // Same-family verification is clean...
    checkpoint
        .verify(&hybrid_tuner, target, &v)
        .expect("same-family checkpoint verifies");

    // ...but dropping the family flag must be caught with an actionable
    // message, not a bare fingerprint mismatch.
    let reference = presets::hybrid_slc_qlc();
    let homogeneous = Constraints::new(
        reference.effective_capacity_bytes() >> 30,
        Interface::Nvme,
        FlashTechnology::Qlc,
        25.0,
    );
    let homogeneous_tuner = Tuner::new(homogeneous, &v, opts);
    let err = checkpoint
        .verify(&homogeneous_tuner, target, &v)
        .expect_err("family mismatch must be rejected");
    assert!(
        err.contains("--family") && err.contains("hybrid-slc-cache"),
        "error names the flag and the family: {err}"
    );
}
