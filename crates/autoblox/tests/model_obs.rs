//! Model-observatory invariants: with telemetry enabled (so the importance
//! sweep and timings are collected), the serialized tuning trajectory —
//! including every new calibration/provenance field — must stay
//! byte-identical across thread counts and speculation depths once the
//! wall-clock timings are normalized out; the derived calibration and
//! importance summaries must be well-formed for arbitrary records; and the
//! `inspect` CLI must reject malformed input with exit code 2, not a panic.

use autoblox::constraints::Constraints;
use autoblox::model_obs;
use autoblox::parallel;
use autoblox::tuner::{IterationRecord, Tuner, TunerOptions, TuningTarget};
use autoblox::validator::{Validator, ValidatorOptions};
use iotrace::gen::WorkloadKind;
use proptest::prelude::*;
use ssdsim::config::presets;
use std::process::Command;

fn quick_validator() -> Validator {
    Validator::new(ValidatorOptions {
        trace_events: 300,
        ..Default::default()
    })
}

fn opts(k: usize) -> TunerOptions {
    TunerOptions {
        max_iterations: 6,
        sgd_iterations: 3,
        convergence_window: 4,
        non_target: vec![WorkloadKind::WebSearch],
        speculative_batch: k,
        ..Default::default()
    }
}

/// One short step-driven tuning run at batch width `k`, with the two
/// wall-clock timings zeroed (telemetry is on, so they are collected and
/// host-dependent). Everything else in the state — including predicted
/// mean/σ, calibration pairs, explore/exploit shares, decision margins,
/// and the importance sweep — must be bit-identical across the grid.
fn fingerprint(k: usize) -> (String, Vec<IterationRecord>) {
    let v = quick_validator();
    let tuner = Tuner::new(Constraints::paper_default(), &v, opts(k));
    let target = TuningTarget::Category(WorkloadKind::Database);
    let mut state = tuner.init_state(target, &presets::intel_750(), &[], None);
    while tuner.step(target, &mut state) {}
    for r in &mut state.records {
        r.wall_ns = 0;
        r.surrogate_fit_ns = 0;
    }
    let records = state.records.clone();
    (
        serde_json::to_string(&state).expect("state serializes"),
        records,
    )
}

/// The tentpole acceptance criterion: the model-observatory fields are
/// byte-identical at threads {1, 4} x speculation {1, 4}, and they are
/// substantive (real predictions, calibration pairs, normalized importance
/// sweeps) rather than vacuously zero.
///
/// This is the only test in this binary that touches the process-wide
/// thread override and telemetry switch, so it cannot race other tests
/// over them.
#[test]
fn model_records_are_thread_and_speculation_invariant() {
    autoblox::telemetry::set_enabled(true);
    autoblox::telemetry::global().clear();
    parallel::set_max_threads(1);
    let base = fingerprint(1);
    let grid = [
        ("k=4 threads=1", 4, 1),
        ("k=1 threads=4", 1, 4),
        ("k=4 threads=4", 4, 4),
    ];
    for (label, k, threads) in grid {
        parallel::set_max_threads(threads);
        let run = fingerprint(k);
        assert_eq!(base.0, run.0, "model-observatory state diverged at {label}");
    }
    parallel::set_max_threads(0);
    autoblox::telemetry::set_enabled(false);

    // Substance: the invariance above is not an equality of empty runs.
    let records = &base.1;
    assert!(
        records.iter().any(|r| r.calibrated),
        "no iteration ever recorded a calibration pair"
    );
    assert!(
        records.iter().any(|r| r.predicted_std > 0.0),
        "no iteration carried a surrogate prediction"
    );
    assert!(
        records.iter().any(|r| !r.importance.is_empty()),
        "telemetry was on, so the importance sweep must have run"
    );
    for r in records {
        if !r.importance.is_empty() {
            let sum: f64 = r.importance.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "importance must normalize: {sum}");
            assert!(r.importance.iter().all(|&x| x >= 0.0));
            assert!(r.kernel_length_scale > 0.0);
        }
        if r.predicted_std > 0.0 {
            assert!(
                (r.explore_share + r.exploit_share - 1.0).abs() < 1e-9,
                "UCB shares must decompose the decision"
            );
        }
    }
    // The derived calibration summary is coherent with the raw records.
    let cal = model_obs::calibration_of(records);
    assert_eq!(
        cal.points,
        records.iter().filter(|r| r.calibrated).count() as u64
    );
    assert!((0.0..=1.0).contains(&cal.coverage_1s));
    assert!((0.0..=1.0).contains(&cal.coverage_2s));
    assert!(cal.coverage_2s >= cal.coverage_1s);
    assert!(cal.rmse.is_finite() && cal.mean_nlpd.is_finite());
}

fn record(mean: f64, std: f64, realized: f64, calibrated: bool) -> IterationRecord {
    IterationRecord {
        predicted_mean: mean,
        predicted_std: std,
        realized_grade: realized,
        calibrated,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Coverage fractions stay inside [0, 1] (with ±2σ at least ±1σ) for
    /// arbitrary prediction/realization pairs, including degenerate σ = 0.
    #[test]
    fn calibration_coverage_stays_in_unit_interval(
        pairs in prop::collection::vec(
            (-2.0f64..2.0, 0.0f64..0.5, -2.0f64..2.0, any::<bool>()),
            0..24,
        ),
    ) {
        let records: Vec<IterationRecord> = pairs
            .iter()
            .map(|&(m, s, r, c)| record(m, s, r, c))
            .collect();
        let cal = model_obs::calibration_of(&records);
        prop_assert!((0.0..=1.0).contains(&cal.coverage_1s));
        prop_assert!((0.0..=1.0).contains(&cal.coverage_2s));
        prop_assert!(cal.coverage_2s >= cal.coverage_1s);
        prop_assert!(cal.points <= records.len() as u64);
        if cal.points > 0 {
            prop_assert!(cal.rmse.is_finite());
            prop_assert!(cal.mean_nlpd.is_finite());
            prop_assert!(cal.mean_abs_z >= 0.0);
        }
        let (cov, points) = model_obs::coverage_1s(&records);
        prop_assert_eq!(points, cal.points);
        prop_assert!((cov - cal.coverage_1s).abs() < 1e-12);
    }

    /// Averaged importance vectors are a probability distribution: every
    /// weight non-negative, summing to 1 whenever any input sweep was
    /// non-empty.
    #[test]
    fn importance_normalizes_for_arbitrary_sweeps(
        sweeps in prop::collection::vec(
            prop::collection::vec(0.0f64..10.0, 0..6),
            1..8,
        ),
    ) {
        let records: Vec<IterationRecord> = sweeps
            .iter()
            .map(|w| IterationRecord {
                importance: w.clone(),
                ..Default::default()
            })
            .collect();
        let ranked = model_obs::averaged_importance(&records);
        prop_assert!(ranked.iter().all(|p| p.importance >= 0.0));
        let total: f64 = ranked.iter().map(|p| p.importance).sum();
        // Sweeps whose length disagrees with the first non-empty one are
        // skipped by the averager, so only same-length mass must normalize.
        let first_len = sweeps.iter().find(|w| !w.is_empty()).map(Vec::len);
        let any_mass = first_len.is_some_and(|len| {
            sweeps
                .iter()
                .filter(|w| w.len() == len)
                .any(|w| w.iter().sum::<f64>() > 1e-12)
        });
        if any_mass {
            prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
        }
        // Ranking is descending.
        for pair in ranked.windows(2) {
            prop_assert!(pair[0].importance >= pair[1].importance - 1e-12);
        }
    }
}

/// Malformed or missing `inspect` input is a one-line exit-2 error —
/// never a panic — for both the single-report and diff forms.
#[test]
fn malformed_inspect_input_is_a_clean_cli_error() {
    let dir = std::env::temp_dir().join(format!("abx-inspect-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "{ not json").unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_autoblox"))
        .arg("inspect")
        .arg(&garbage)
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");

    let missing = dir.join("does-not-exist.json");
    let out = Command::new(env!("CARGO_BIN_EXE_autoblox"))
        .arg("inspect")
        .arg("diff")
        .arg(&garbage)
        .arg(&missing)
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");

    // No operands at all is a usage error (also exit 2, with guidance).
    let out = Command::new(env!("CARGO_BIN_EXE_autoblox"))
        .arg("inspect")
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(stderr.contains("inspect needs"), "stderr: {stderr}");

    std::fs::remove_dir_all(&dir).ok();
}
