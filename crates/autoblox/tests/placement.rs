//! Fleet-placement invariants: thread count must change wall-clock time
//! only — never the PlacementReport, never the simulator-run count — the
//! local search must never end worse than its greedy seed, and the
//! memoized validator must make repeated placements free.

use std::sync::Arc;

use autoblox::parallel;
use autoblox::place::{degradation_frac, place, PlacementOptions};
use autoblox::validator::{Validator, ValidatorOptions};
use iotrace::gen::{generate, WorkloadKind};
use iotrace::Trace;
use proptest::prelude::*;
use ssdsim::config::presets;

/// A pinned 4-tenant mix, each tenant renamed so the validator's
/// per-trace-name memoization treats them as distinct streams.
fn tenant_mix(events: usize) -> Vec<Arc<Trace>> {
    [
        WorkloadKind::Database,
        WorkloadKind::WebSearch,
        WorkloadKind::KvStore,
        WorkloadKind::BatchAnalytics,
    ]
    .iter()
    .enumerate()
    .map(|(i, &kind)| {
        let t = generate(kind, events, 11);
        Arc::new(Trace::from_events(
            format!("t{i}:{}", kind.name()),
            t.events().to_vec(),
        ))
    })
    .collect()
}

/// Classification is exercised end to end by the CLI smoke stage; the unit
/// tests run with the fallback configuration so they stay fast.
fn quick_opts(devices: usize) -> PlacementOptions {
    PlacementOptions {
        devices,
        classify: false,
        ..Default::default()
    }
}

/// The tentpole acceptance criterion: the serialized PlacementReport and the
/// simulator-run count are identical at 1 thread and at 4 threads.
///
/// This is the only test in this binary that touches the process-wide thread
/// override, so it cannot race other tests over it.
#[test]
fn placement_is_deterministic_across_thread_counts() {
    let run = || {
        let tenants = tenant_mix(600);
        let v = Validator::new(ValidatorOptions {
            trace_events: 600,
            ..Default::default()
        });
        let report = place(&tenants, &presets::intel_750(), None, &v, &quick_opts(2))
            .expect("placement succeeds");
        (
            serde_json::to_string(&report).expect("report serializes"),
            report.simulator_runs,
        )
    };
    parallel::set_max_threads(1);
    let sequential = run();
    parallel::set_max_threads(4);
    let parallel4 = run();
    parallel::set_max_threads(0);
    assert_eq!(
        sequential.0, parallel4.0,
        "PlacementReport must be bit-identical at 1 and 4 threads"
    );
    assert_eq!(
        sequential.1, parallel4.1,
        "simulator-run count must not depend on the thread count"
    );
}

/// Local search starts from the greedy seed and only ever applies strict
/// improvements, so the final cost can never exceed the greedy cost.
#[test]
fn local_search_never_worse_than_greedy() {
    let tenants = tenant_mix(500);
    let v = Validator::new(ValidatorOptions {
        trace_events: 500,
        ..Default::default()
    });
    for devices in [1, 2, 3] {
        let report = place(
            &tenants,
            &presets::intel_750(),
            None,
            &v,
            &quick_opts(devices),
        )
        .expect("placement succeeds");
        assert!(
            report.final_cost <= report.greedy_cost,
            "devices={devices}: final {} must not exceed greedy {}",
            report.final_cost,
            report.greedy_cost
        );
        assert!(report.final_cost.is_finite() && report.greedy_cost.is_finite());
    }
}

/// Exact simulator-run accounting for the smallest non-trivial placement:
/// two tenants on one device cost exactly three runs — one entitled solo
/// run per tenant plus one merged-pair run. The greedy seed's singleton
/// evaluation reuses the entitled measurement through the validator cache,
/// and a second placement on the same validator is served entirely from
/// cache, adding zero runs.
#[test]
fn merged_trace_run_counts_are_exact() {
    let tenants: Vec<Arc<Trace>> = tenant_mix(400).into_iter().take(2).collect();
    let v = Validator::new(ValidatorOptions {
        trace_events: 400,
        ..Default::default()
    });
    let first = place(&tenants, &presets::intel_750(), None, &v, &quick_opts(1))
        .expect("placement succeeds");
    assert_eq!(
        first.simulator_runs, 3,
        "2 tenants on 1 device = 2 entitled runs + 1 merged run"
    );
    let again = place(&tenants, &presets::intel_750(), None, &v, &quick_opts(1))
        .expect("repeat placement succeeds");
    assert_eq!(
        again.simulator_runs, 3,
        "a repeated placement must be served from the validator cache"
    );
    assert_eq!(
        serde_json::to_string(&first.tenants).expect("serializes"),
        serde_json::to_string(&again.tenants).expect("serializes"),
        "cached and fresh placements must agree"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The degradation fraction is total: any pair of f64s — including
    /// NaN, infinities, zeros, and negatives — maps to a finite,
    /// non-negative fraction. The vendored proptest only draws finite
    /// values, so the special cases are spliced in via the selector pair.
    #[test]
    fn degradation_fractions_are_finite_and_non_negative(
        co_raw in any::<f64>(),
        solo_raw in any::<f64>(),
        co_kind in 0usize..6,
        solo_kind in 0usize..6,
    ) {
        let special = |raw: f64, kind: usize| match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            _ => raw,
        };
        let co = special(co_raw, co_kind);
        let solo = special(solo_raw, solo_kind);
        let d = degradation_frac(co, solo);
        prop_assert!(d.is_finite(), "degradation_frac({co}, {solo}) = {d}");
        prop_assert!(d >= 0.0, "degradation_frac({co}, {solo}) = {d}");
    }
}
