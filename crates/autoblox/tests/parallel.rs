//! Parallel-engine invariants: fan-out must change wall-clock time only —
//! never results, and never the number of simulator runs.

use autoblox::constraints::Constraints;
use autoblox::parallel;
use autoblox::pruning::coarse_prune;
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox::validator::{Validator, ValidatorOptions};
use iotrace::gen::WorkloadKind;
use ssdsim::config::{presets, SsdConfig};

fn quick_validator(events: usize) -> Validator {
    Validator::new(ValidatorOptions {
        trace_events: events,
        ..Default::default()
    })
}

/// One full pruning + tuning pass, reduced to comparable JSON (f64s must be
/// bit-identical for the serializations to match).
fn pipeline_fingerprint() -> (String, String, u64) {
    let v = quick_validator(300);
    let space = autoblox::ParamSpace::with_params(&[
        "channel_count",
        "data_cache_size",
        "read_latency",
        "init_delay",
    ]);
    let coarse = coarse_prune(&space, &SsdConfig::default(), WorkloadKind::Database, &v);
    let opts = TunerOptions {
        max_iterations: 4,
        sgd_iterations: 2,
        convergence_window: 3,
        non_target: vec![WorkloadKind::WebSearch, WorkloadKind::Fiu],
        ..Default::default()
    };
    let tuner = Tuner::new(Constraints::paper_default(), &v, opts);
    let out = tuner.tune(WorkloadKind::Database, &presets::intel_750(), &[], None);
    (
        serde_json::to_string(&coarse).expect("coarse serializes"),
        serde_json::to_string(&out).expect("outcome serializes"),
        v.simulator_runs(),
    )
}

/// The tentpole acceptance criterion: coarse pruning and a short tuning run
/// produce identical results — and identical simulator-run counts — at
/// 1 thread and at 4 threads.
///
/// This is the only test in this binary that touches the process-wide thread
/// override, so it cannot race other tests over it.
#[test]
fn pipeline_is_deterministic_across_thread_counts() {
    parallel::set_max_threads(1);
    let sequential = pipeline_fingerprint();
    parallel::set_max_threads(4);
    let parallel4 = pipeline_fingerprint();
    parallel::set_max_threads(0);
    assert_eq!(
        sequential.0, parallel4.0,
        "coarse_prune must not depend on the thread count"
    );
    assert_eq!(
        sequential.1, parallel4.1,
        "Tuner::tune must not depend on the thread count"
    );
    assert_eq!(
        sequential.2, parallel4.2,
        "the simulator-run count must not depend on the thread count"
    );
}

/// Concurrency smoke test: many threads hammering one shared validator over
/// the same working set must agree with a sequential run on every
/// measurement, and the per-key in-flight deduplication must keep the
/// simulator-run count exactly sequential.
#[test]
fn hammered_validator_matches_sequential() {
    let configs: Vec<SsdConfig> = (0..5)
        .map(|i| SsdConfig {
            channel_count: 2 + 2 * i,
            ..SsdConfig::default()
        })
        .collect();
    let kinds = [WorkloadKind::Database, WorkloadKind::WebSearch];

    let sequential = quick_validator(200);
    for cfg in &configs {
        for &k in &kinds {
            sequential.evaluate(cfg, k);
        }
    }
    let expected_runs = sequential.simulator_runs();
    assert_eq!(expected_runs, (configs.len() * kinds.len()) as u64);

    let shared = quick_validator(200);
    std::thread::scope(|scope| {
        for worker in 0..8 {
            let configs = &configs;
            let kinds = &kinds;
            let shared = &shared;
            let sequential = &sequential;
            scope.spawn(move || {
                // Each worker walks the working set from a different offset
                // so cold-cache collisions on the same key are guaranteed.
                for step in 0..configs.len() * kinds.len() {
                    let i = (step + worker) % (configs.len() * kinds.len());
                    let cfg = &configs[i / kinds.len()];
                    let k = kinds[i % kinds.len()];
                    assert_eq!(shared.evaluate(cfg, k), sequential.evaluate(cfg, k));
                }
            });
        }
    });
    assert_eq!(
        shared.simulator_runs(),
        expected_runs,
        "concurrent cache misses on one key must run the simulator once"
    );
}

/// The explicit-thread-count mapper must be order-preserving and agree with
/// its own sequential path when driving real validator work.
#[test]
fn parallel_map_evaluations_match_sequential_order() {
    let v = quick_validator(200);
    let kinds = vec![
        WorkloadKind::Database,
        WorkloadKind::WebSearch,
        WorkloadKind::Fiu,
        WorkloadKind::KvStore,
    ];
    let cfg = SsdConfig::default();
    let par = parallel::parallel_map_with(4, kinds.clone(), |k| v.evaluate(&cfg, k));
    let seq: Vec<_> = kinds.iter().map(|&k| v.evaluate(&cfg, k)).collect();
    assert_eq!(par, seq);
}
