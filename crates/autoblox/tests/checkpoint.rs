//! Checkpoint/resume invariants: `TuneState` JSON round-trips losslessly,
//! a run interrupted at any outer-iteration boundary resumes into a
//! bit-identical final report at any thread count, and the CLI reports a
//! malformed checkpoint as a clean error (exit 2), never a backtrace.

use autoblox::checkpoint::Checkpoint;
use autoblox::constraints::Constraints;
use autoblox::parallel;
use autoblox::tuner::{Observation, TunePhase, Tuner, TunerOptions, TuningTarget};
use autoblox::validator::{Validator, ValidatorOptions};
use iotrace::gen::WorkloadKind;
use proptest::prelude::*;
use ssdsim::config::presets;
use std::cell::RefCell;
use std::process::Command;

fn validator(events: usize) -> Validator {
    Validator::new(ValidatorOptions {
        trace_events: events,
        ..Default::default()
    })
}

fn tuning_opts() -> TunerOptions {
    TunerOptions {
        max_iterations: 5,
        sgd_iterations: 3,
        non_target: vec![WorkloadKind::KvStore],
        ..Default::default()
    }
}

/// Runs the full tune at `threads`, snapshotting a complete checkpoint
/// after every state-machine step, and returns the serialized outcome
/// plus the snapshots.
fn run_with_snapshots(threads: usize) -> (String, Vec<Checkpoint>) {
    parallel::set_max_threads(threads);
    let v = validator(150);
    let tuner = Tuner::new(Constraints::paper_default(), &v, tuning_opts());
    let target = TuningTarget::Category(WorkloadKind::Database);
    let state = tuner.init_state(target, &presets::intel_750(), &[], None);
    let snaps = RefCell::new(Vec::new());
    let outcome = tuner.drive(target, state, |s| {
        snaps
            .borrow_mut()
            .push(Checkpoint::capture(&tuner, target, &v, s));
    });
    parallel::set_max_threads(0);
    (
        serde_json::to_string(&outcome).expect("outcome serializes"),
        snaps.into_inner(),
    )
}

/// Rebuilds the tuning run from `cp` on a completely fresh validator (only
/// the checkpoint's cache is imported) and returns the serialized outcome.
fn resume_from(cp: &Checkpoint, threads: usize) -> String {
    parallel::set_max_threads(threads);
    let v = validator(150);
    v.import_cache(&cp.cache).expect("cache imports");
    let tuner = Tuner::new(Constraints::paper_default(), &v, cp.opts.clone());
    let target = TuningTarget::Category(WorkloadKind::Database);
    cp.verify(&tuner, target, &v)
        .expect("checkpoint compatible");
    let outcome = tuner.drive(target, cp.state.clone(), |_| {});
    parallel::set_max_threads(0);
    serde_json::to_string(&outcome).expect("outcome serializes")
}

/// The headline invariant: interrupting at iteration 1, the midpoint, and
/// last-1, then resuming from the serialized checkpoint on a fresh
/// validator, reproduces the uninterrupted final report byte-for-byte —
/// at one worker thread and at four.
#[test]
fn interrupted_runs_resume_bit_identically() {
    for &threads in &[1usize, 4] {
        let (full, snaps) = run_with_snapshots(threads);
        let last = snaps.last().expect("at least one step").state.iterations;
        assert!(last >= 3, "need enough iterations to interrupt mid-run");
        let mut points = vec![1, (last / 2).max(1), (last - 1).max(1)];
        points.sort_unstable();
        points.dedup();
        for p in points {
            // The first snapshot with this iteration count is the one taken
            // right after iteration `p` completed.
            let cp = snaps
                .iter()
                .find(|c| {
                    c.state.iterations == p
                        && matches!(c.state.phase, TunePhase::Iterating | TunePhase::Done)
                })
                .expect("snapshot at iteration boundary");
            // Round-trip through the serialized form so the resume path
            // exercises parse_checked on a real document.
            let json = serde_json::to_string(cp).expect("checkpoint serializes");
            let cp = Checkpoint::parse_checked(&json).expect("checkpoint parses");
            assert_eq!(
                resume_from(&cp, threads),
                full,
                "resume at iteration {p} with {threads} thread(s) diverged"
            );
        }
    }
}

/// Resuming a snapshot of an already-finished run is a no-op that still
/// yields the identical report.
#[test]
fn resuming_a_done_checkpoint_returns_the_same_report() {
    let (full, snaps) = run_with_snapshots(1);
    let done = snaps.last().expect("at least one step");
    assert!(done.state.done());
    assert_eq!(resume_from(done, 1), full);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `TuneState` (inside its checkpoint document) survives
    /// serialize → parse_checked → serialize byte-identically, for
    /// arbitrary observation sets, RNG states, grades, and counters.
    #[test]
    fn tune_state_json_round_trips_byte_identically(
        obs in prop::collection::vec(
            (
                prop::collection::vec(0usize..16, 1..6),
                -1.0e9f64..1.0e9,
            ),
            0..8,
        ),
        rng_words in prop::collection::vec(any::<u64>(), 4),
        grades in prop::collection::vec(-1.0f64..1.0, 0..10),
        iterations in 0u64..1_000,
        validations in 0u64..100_000,
        phase_pick in 0usize..4,
    ) {
        let v = validator(60);
        let tuner = Tuner::new(Constraints::paper_default(), &v, tuning_opts());
        let target = TuningTarget::Category(WorkloadKind::Database);
        let mut state = tuner.init_state(target, &presets::intel_750(), &[], None);

        // Graft the generated values onto the real skeleton.
        state.phase = [
            TunePhase::Reference,
            TunePhase::InitSet,
            TunePhase::Iterating,
            TunePhase::Done,
        ][phase_pick];
        state.observations = obs
            .iter()
            .map(|(vec, grade)| Observation {
                vector: vec.clone(),
                normalized: vec.iter().map(|&i| i as f64 / 16.0).collect(),
                grade: *grade,
            })
            .collect();
        state.rng = rng_words.iter().map(|w| format!("{w:016x}")).collect();
        state.grade_history = grades;
        state.iterations = iterations;
        state.validations = validations;

        let cp = Checkpoint::capture(&tuner, target, &v, &state);
        let json = serde_json::to_string_pretty(&cp).expect("serializes");
        let back = Checkpoint::parse_checked(&json).expect("parses");
        prop_assert_eq!(&back.state, &state);
        let json2 = serde_json::to_string_pretty(&back).expect("re-serializes");
        prop_assert_eq!(json, json2);
    }
}

/// A truncated checkpoint file must produce a one-line error and exit
/// code 2 from both `checkpoint inspect` and `tune --resume` — not a
/// panic backtrace.
#[test]
fn truncated_checkpoint_is_a_clean_cli_error() {
    let dir = std::env::temp_dir().join(format!("abx-cli-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("checkpoint-Database.json");
    std::fs::write(&path, r#"{"schema": "autoblox.checkpoint.v1", "work"#).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_autoblox"))
        .arg("checkpoint")
        .arg("inspect")
        .arg(&path)
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("error: malformed checkpoint"),
        "stderr: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");

    let out = Command::new(env!("CARGO_BIN_EXE_autoblox"))
        .args(["tune", "database", "--iterations", "1", "--events", "60"])
        .arg("--checkpoint")
        .arg(&dir)
        .arg("--resume")
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("error: malformed checkpoint"),
        "stderr: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");

    std::fs::remove_dir_all(&dir).unwrap();
}
