//! Run-observatory invariants: the `watch --replay` snapshot of a run
//! journal must be a pure function of the work performed (byte-identical
//! at any thread count once timing is excluded), the trend verdict must
//! reproduce exactly from the same registry, the run registry must list
//! in recording order, malformed journal lines must be counted rather
//! than fatal, and placement journals must export cleanly.
//!
//! These tests toggle the process-wide telemetry switch, so every test
//! that touches it serializes on one lock (test binaries run their tests
//! on concurrent threads within one process).

use autoblox::constraints::Constraints;
use autoblox::journal::Journal;
use autoblox::obs::{self, RunSummary, TrendThresholds};
use autoblox::parallel;
use autoblox::telemetry;
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox::validator::{Validator, ValidatorOptions};
use autoblox::WatchState;
use iotrace::gen::WorkloadKind;
use iotrace::Trace;
use ssdsim::config::presets;
use std::sync::Arc;
use std::sync::Mutex;

static SWITCH_LOCK: Mutex<()> = Mutex::new(());

fn quick_validator(events: usize) -> Validator {
    Validator::new(ValidatorOptions {
        trace_events: events,
        ..Default::default()
    })
}

fn smoke_options() -> TunerOptions {
    // speculative_batch stays at the default (1): the speculative
    // prefetcher emits spans for wasted lookahead, so a thread-derived
    // depth would make the journal line multiset thread-dependent.
    TunerOptions {
        max_iterations: 2,
        sgd_iterations: 2,
        convergence_window: 2,
        non_target: vec![WorkloadKind::WebSearch],
        ..Default::default()
    }
}

/// Runs a journaled smoke tune at the given thread count and returns the
/// journal text.
fn journaled_tune(threads: usize) -> String {
    parallel::set_max_threads(threads);
    telemetry::set_enabled(true);
    autoblox::telemetry::global().clear();

    let path = std::env::temp_dir().join(format!(
        "autoblox-test-obsruns-{}-t{threads}.jsonl",
        std::process::id()
    ));
    let path_str = path.to_string_lossy().into_owned();

    let journal = Journal::create(&path_str).expect("journal opens");
    autoblox::telemetry::global().attach_journal(journal.handle());

    let v = quick_validator(200);
    let tuner = Tuner::new(Constraints::paper_default(), &v, smoke_options());
    let outcome = autoblox::telemetry::global().phase("tune", || {
        tuner.tune(WorkloadKind::Database, &presets::intel_750(), &[], None)
    });
    autoblox::telemetry::global().record_outcome(&outcome);

    autoblox::telemetry::global().detach_journal();
    journal.finish(&path_str).expect("journal closes");
    telemetry::set_enabled(false);

    let text = std::fs::read_to_string(&path).expect("journal readable");
    std::fs::remove_file(&path).ok();
    text
}

/// Replays a journal into a watch state and returns the timing-free
/// snapshot rendered to bytes — exactly what `watch --replay --json`
/// prints.
fn replay_snapshot(journal: &str) -> String {
    let mut state = WatchState::new();
    for line in journal.lines() {
        state.ingest(line);
    }
    assert!(state.schema_ok(), "journal schema recognized");
    assert!(state.summary_seen(), "journal is complete");
    serde_json::to_string_pretty(&state.snapshot(false)).expect("snapshot serializes")
}

/// The headline observability invariant: a `watch --replay` snapshot is a
/// fingerprint of the run, not of the machine — one worker and four
/// workers produce byte-identical snapshots.
#[test]
fn watch_replay_snapshot_identical_across_thread_counts() {
    let _guard = SWITCH_LOCK.lock().unwrap();

    let serial = journaled_tune(1);
    let threaded = journaled_tune(4);
    parallel::set_max_threads(0); // restore the default

    let snap_serial = replay_snapshot(&serial);
    let snap_threaded = replay_snapshot(&threaded);
    assert_eq!(
        snap_serial, snap_threaded,
        "replay snapshot must not depend on thread count"
    );
    // The snapshot is substantive, not a vacuous empty object.
    assert!(snap_serial.contains("\"autoblox.watch.v1\""));
    assert!(snap_serial.contains("\"Database\""));
    assert!(snap_serial.contains("\"percent\": 1.0"));
    // Timing fields stay out of the fingerprint entirely.
    assert!(!snap_serial.contains("eta_ns"));
}

fn summary(category: &str, grade: f64, sim_runs: u64, wall_ns: u64, threads: u64) -> RunSummary {
    RunSummary {
        schema: obs::RUNS_SCHEMA.to_string(),
        command: "tune".to_string(),
        category: category.to_string(),
        device_family: "homogeneous".to_string(),
        seed: 7,
        best_grade: grade,
        iterations: 4,
        simulator_runs: sim_runs,
        bottleneck: Default::default(),
        calibration_coverage_1s: 0.7,
        calibration_points: 3,
        threads,
        wall_ns,
    }
}

/// The trend verdict reproduces byte-exactly from the same registry, and
/// host-varying fields (wall time, thread count) cannot influence it.
#[test]
fn trend_verdict_is_deterministic_and_ignores_wall_time() {
    let db = autodb::Store::in_memory();
    for (wall, threads) in [(10, 1), (99, 4), (1234, 8)] {
        obs::record_run(&db, &summary("Database", 0.5, 100, wall, threads)).expect("records");
    }
    let thresholds = TrendThresholds::default();
    let a = serde_json::to_string_pretty(
        &serde_json::to_value(obs::trend(&db, &thresholds, None).expect("trend computes"))
            .expect("to value"),
    )
    .expect("serializes");
    let b = serde_json::to_string_pretty(
        &serde_json::to_value(obs::trend(&db, &thresholds, None).expect("trend computes"))
            .expect("to value"),
    )
    .expect("serializes");
    assert_eq!(a, b, "same registry, same verdict bytes");
    assert!(a.contains("\"pass\": true"), "stable history passes: {a}");
    assert!(
        !a.contains("wall_ns") && !a.contains("\"threads\""),
        "host-varying fields stay out of the verdict"
    );

    // A grade collapse in the newest run flips the verdict.
    obs::record_run(&db, &summary("Database", 0.1, 100, 55, 2)).expect("records");
    let drifted = obs::trend(&db, &thresholds, None).expect("trend computes");
    assert!(!drifted.pass, "grade collapse must be flagged");
    assert!(drifted.drifts.iter().any(|d| d.contains("best_grade")));
}

/// Listing the registry returns recording order (sequence-numbered keys
/// sort lexicographically == numerically), stable across repeated reads,
/// and the fingerprint strips exactly the host-varying fields.
#[test]
fn runs_list_order_is_stable_and_fingerprints_drop_host_fields() {
    let db = autodb::Store::in_memory();
    // Interleave categories — per-category sequences stay independent —
    // and include a category containing the key separator.
    obs::record_run(&db, &summary("Database", 0.5, 10, 1, 1)).expect("records");
    obs::record_run(&db, &summary("place", -0.2, 30, 2, 2)).expect("records");
    obs::record_run(&db, &summary("Database", 0.6, 11, 3, 4)).expect("records");
    obs::record_run(&db, &summary("odd:category", 0.1, 5, 4, 8)).expect("records");

    let first = obs::list_runs(&db).expect("lists");
    let second = obs::list_runs(&db).expect("lists");
    let keys: Vec<&str> = first.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        vec![
            "run:Database:000001",
            "run:Database:000002",
            "run:odd:category:000001",
            "run:place:000001",
        ]
    );
    assert_eq!(first, second, "listing is read-only and stable");

    // Two runs of the same work on different hosts fingerprint the same.
    let fast = summary("Database", 0.5, 10, 1_000, 1).fingerprint();
    let slow = summary("Database", 0.5, 10, 9_999_999, 16).fingerprint();
    assert_eq!(fast, slow, "wall time and thread count are not substance");

    // Malformed keys are rejected before any store I/O happens.
    assert!(obs::parse_run_key("bogus").is_err());
    assert!(obs::parse_run_key("run:Database:12").is_err());
    assert!(obs::parse_run_key("run:odd:category:000001").is_ok());
}

/// Truncated, binary, and untagged journal lines are skipped with a
/// count; the watcher keeps going and still produces a full snapshot.
#[test]
fn garbage_journal_lines_are_counted_not_fatal() {
    let _guard = SWITCH_LOCK.lock().unwrap();

    let mut journal = journaled_tune(1);
    parallel::set_max_threads(0);
    // Simulate a torn tail plus assorted corruption mid-stream.
    journal.push_str("{\"t\":\"iteration\",\"workload\":\"Datab\n");
    journal.push_str("\u{1}\u{2}binary garbage\n");
    journal.push_str("{\"no_tag\":true}\n");

    let mut state = WatchState::new();
    for line in journal.lines() {
        state.ingest(line);
    }
    let counts = state.counts();
    assert_eq!(
        counts.skipped, 3,
        "each malformed line is counted: {counts:?}"
    );
    assert!(state.summary_seen(), "the real stream still parsed");
    let snap = serde_json::to_string_pretty(&state.snapshot(false)).expect("serializes");
    assert!(snap.contains("\"skipped\": 3"), "snapshot reports skips");
}

/// Placement journals — which carry `place.classify` / `place.search` /
/// `place.attribute` phases and placement decision records — export
/// cleanly to both the Chrome trace and CSV formats.
#[test]
fn placement_journal_exports_chrome_and_csv() {
    let _guard = SWITCH_LOCK.lock().unwrap();
    telemetry::set_enabled(true);
    autoblox::telemetry::global().clear();

    let path = std::env::temp_dir().join(format!(
        "autoblox-test-placejournal-{}.jsonl",
        std::process::id()
    ));
    let path_str = path.to_string_lossy().into_owned();
    let journal = Journal::create(&path_str).expect("journal opens");
    autoblox::telemetry::global().attach_journal(journal.handle());

    let tenants: Vec<Arc<Trace>> = [WorkloadKind::Database, WorkloadKind::WebSearch]
        .iter()
        .enumerate()
        .map(|(i, kind)| {
            let raw = kind.spec().generate(200, 7);
            Arc::new(Trace::from_events(
                format!("t{i}:{}", kind.name()),
                raw.events().to_vec(),
            ))
        })
        .collect();
    let validator = Validator::new(ValidatorOptions::default());
    let opts = autoblox::place::PlacementOptions {
        devices: 2,
        max_rounds: 2,
        classify: false,
        ..Default::default()
    };
    let report = autoblox::place::place(&tenants, &presets::intel_750(), None, &validator, &opts)
        .expect("placement succeeds");
    assert!(report.final_cost.is_finite());

    autoblox::telemetry::global().detach_journal();
    journal.finish(&path_str).expect("journal closes");
    telemetry::set_enabled(false);

    let text = std::fs::read_to_string(&path).expect("journal readable");
    std::fs::remove_file(&path).ok();

    for phase in ["place.classify", "place.search", "place.attribute"] {
        assert!(
            text.contains(&format!("\"name\":\"{phase}\"")),
            "journal records the {phase} phase"
        );
    }
    assert!(text.contains("\"t\":\"placement\""), "decisions recorded");

    let chrome = autoblox::journal::export_chrome(&text).expect("chrome export succeeds");
    for phase in ["place.classify", "place.search", "place.attribute"] {
        assert!(
            chrome.contains(phase),
            "chrome trace carries the {phase} phase lane"
        );
    }
    let csv = autoblox::journal::export_csv(&text).expect("csv export succeeds");
    assert!(csv.lines().count() > 1, "csv has device samples");

    // The placement journal also replays through the watcher without a
    // single skipped line.
    let mut state = WatchState::new();
    for line in text.lines() {
        state.ingest(line);
    }
    assert_eq!(state.counts().skipped, 0);
    assert!(state.counts().placements > 0);
    assert!(state.summary_seen());
}
