//! Speculative-batch invariants: batched BO (`speculative_batch > 1`) must
//! be byte-identical to the strictly sequential loop at every combination of
//! batch width and thread count — same `TuneState`, same outcome, same
//! checkpoint, same simulator-run count — and the speculation ledger must
//! balance (every speculative run is either consumed or reported wasted).

use autoblox::checkpoint::Checkpoint;
use autoblox::constraints::Constraints;
use autoblox::parallel;
use autoblox::tuner::{Tuner, TunerOptions, TuningTarget};
use autoblox::validator::{Validator, ValidatorOptions, ValidatorStats};
use iotrace::gen::WorkloadKind;
use ssdsim::config::presets;

fn quick_validator() -> Validator {
    Validator::new(ValidatorOptions {
        trace_events: 300,
        ..Default::default()
    })
}

fn opts(k: usize) -> TunerOptions {
    TunerOptions {
        max_iterations: 6,
        sgd_iterations: 3,
        convergence_window: 4,
        non_target: vec![WorkloadKind::WebSearch],
        speculative_batch: k,
        ..Default::default()
    }
}

/// One short step-driven tuning run at batch width `k`: returns the final
/// state, the outcome, and the end-of-run checkpoint as comparable JSON
/// (f64s must be bit-identical for the serializations to match), plus the
/// simulator-run count and the validator stats.
///
/// The checkpoint's wall-clock stamp and its embedded `speculative_batch`
/// (the one option documented as trajectory-neutral) are normalized; every
/// other byte must match across the grid.
fn fingerprint(k: usize) -> (String, String, String, u64, ValidatorStats) {
    let v = quick_validator();
    let tuner = Tuner::new(Constraints::paper_default(), &v, opts(k));
    let target = TuningTarget::Category(WorkloadKind::Database);
    let mut state = tuner.init_state(target, &presets::intel_750(), &[], None);
    while tuner.step(target, &mut state) {}
    let mut cp = Checkpoint::capture(&tuner, target, &v, &state);
    cp.written_at_unix = 0;
    cp.opts.speculative_batch = 0;
    let outcome = Tuner::outcome(state.clone());
    (
        serde_json::to_string(&state).expect("state serializes"),
        serde_json::to_string(&outcome).expect("outcome serializes"),
        serde_json::to_string(&cp).expect("checkpoint serializes"),
        v.simulator_runs(),
        v.stats(),
    )
}

/// The tentpole acceptance criterion: k=1 vs k=4, at 1 and at 4 threads,
/// produce byte-identical states, outcomes, and checkpoints — speculation
/// only moves simulator work earlier in wall-clock time, never changes it.
///
/// This is the only test in this binary that touches the process-wide
/// thread override, so it cannot race other tests over it.
#[test]
fn batched_tuning_is_byte_identical_to_sequential() {
    parallel::set_max_threads(1);
    let base = fingerprint(1);
    let grid = [
        ("k=4 threads=1", 4, 1),
        ("k=1 threads=4", 1, 4),
        ("k=4 threads=4", 4, 4),
    ];
    for (label, k, threads) in grid {
        parallel::set_max_threads(threads);
        let run = fingerprint(k);
        assert_eq!(base.0, run.0, "TuneState diverged at {label}");
        assert_eq!(base.1, run.1, "TuningOutcome diverged at {label}");
        assert_eq!(base.2, run.2, "Checkpoint diverged at {label}");
        assert_eq!(base.3, run.3, "simulator-run count diverged at {label}");
        // Promoted speculations count as cache misses (the run happened,
        // just earlier), so the demand-side cache counters are exactly
        // sequential too.
        assert_eq!(base.4.cache_hits, run.4.cache_hits, "cache_hits at {label}");
        assert_eq!(
            base.4.cache_misses, run.4.cache_misses,
            "cache_misses at {label}"
        );
        // Ledger balance: every speculative run was consumed, reported
        // wasted, or (never here — no clear_cache) dropped.
        assert_eq!(
            run.4.speculative_runs,
            run.4.speculative_hits + run.4.speculative_wasted,
            "speculation ledger must balance at {label}"
        );
        if k > 1 {
            // The byte-identity above must not be vacuous: batched runs
            // really did speculate (and some prefetches were consumed).
            assert!(
                run.4.speculative_runs > 0,
                "batched run never speculated at {label}"
            );
            assert!(
                run.4.speculative_hits > 0,
                "no prefetch was ever consumed at {label}"
            );
        }
    }
    // The sequential baseline must not have speculated at all.
    assert_eq!(base.4.speculative_runs, 0);
    parallel::set_max_threads(0);
}
