//! Telemetry-layer invariants: counters must be exact under concurrency,
//! a disabled sink must cost nothing and trigger no simulator work, and the
//! structured report must round-trip through JSON.
//!
//! These tests toggle the process-wide telemetry switch, so every test that
//! touches it serializes on one lock (test binaries run their tests on
//! concurrent threads within one process).

use autoblox::constraints::Constraints;
use autoblox::journal::Journal;
use autoblox::parallel;
use autoblox::telemetry::{self, RunReport, TelemetrySink};
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox::validator::{Validator, ValidatorOptions, ValidatorStats};
use iotrace::gen::WorkloadKind;
use ssdsim::config::{presets, SsdConfig};
use std::sync::Mutex;
// The standalone `telemetry` crate (span tracing) vs the `autoblox::telemetry`
// module imported as `telemetry` above — disambiguate with a crate path.
use ::telemetry::span;

static SWITCH_LOCK: Mutex<()> = Mutex::new(());

fn quick_validator(events: usize) -> Validator {
    Validator::new(ValidatorOptions {
        trace_events: events,
        ..Default::default()
    })
}

fn working_set() -> (Vec<SsdConfig>, [WorkloadKind; 2]) {
    let configs: Vec<SsdConfig> = (0..5)
        .map(|i| SsdConfig {
            channel_count: 2 + 2 * i,
            ..SsdConfig::default()
        })
        .collect();
    (configs, [WorkloadKind::Database, WorkloadKind::WebSearch])
}

/// Hammers one shared validator with `workers` threads over the same
/// (config, workload) working set and returns its stats.
fn hammer(workers: usize) -> ValidatorStats {
    let (configs, kinds) = working_set();
    let v = quick_validator(200);
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let configs = &configs;
            let kinds = &kinds;
            let v = &v;
            scope.spawn(move || {
                for step in 0..configs.len() * kinds.len() {
                    let i = (step + worker) % (configs.len() * kinds.len());
                    let cfg = &configs[i / kinds.len()];
                    v.evaluate(cfg, kinds[i % kinds.len()]);
                }
            });
        }
    });
    v.stats()
}

/// The cache-counter exactness criterion: misses are deterministic, and the
/// hit/dedup-wait split — however the race resolves — always sums to the
/// same total, at 1 worker and at 8.
#[test]
fn cache_counters_exact_under_hammering() {
    let _guard = SWITCH_LOCK.lock().unwrap();
    telemetry::set_enabled(true);
    let single = hammer(1);
    let hammered = hammer(8);
    telemetry::set_enabled(false);

    let (configs, kinds) = working_set();
    let unique = (configs.len() * kinds.len()) as u64;

    for (label, stats, workers) in [("single", &single, 1u64), ("hammered", &hammered, 8)] {
        let probes = workers * unique;
        assert_eq!(stats.cache_misses, unique, "{label}: one miss per key");
        assert_eq!(stats.simulator_runs, unique, "{label}: one run per key");
        assert_eq!(
            stats.cache_hits + stats.dedup_waits,
            probes - unique,
            "{label}: every non-miss probe is a hit or a dedup wait"
        );
        assert_eq!(
            stats.shard_probes.iter().sum::<u64>(),
            probes,
            "{label}: shard probes account for every lookup"
        );
        assert_eq!(
            stats.shard_entries.iter().sum::<u64>(),
            unique,
            "{label}: one cache entry per key"
        );
        assert!(stats.simulate_ns > 0, "{label}: simulation time recorded");
        assert_eq!(stats.sim.runs, 2 * unique, "{label}: timed + saturated");
        assert!(stats.sim.flash_reads > 0);
        assert!(stats.sim.latency_buckets.total() > 0);
    }
}

/// Disabled telemetry must leave every gated counter at zero, record
/// nothing into a sink, and trigger no extra simulator work.
#[test]
fn disabled_sink_is_free() {
    let _guard = SWITCH_LOCK.lock().unwrap();
    telemetry::set_enabled(false);

    let v = quick_validator(200);
    let cfg = SsdConfig::default();
    let sink = TelemetrySink::new();
    let m = sink.phase("evaluate", || v.evaluate(&cfg, WorkloadKind::Database));
    assert!(m.latency_ns > 0.0);
    let runs_after_work = v.simulator_runs();

    let report = sink.report(Some(&v));
    assert_eq!(
        v.simulator_runs(),
        runs_after_work,
        "taking a report must not run the simulator"
    );
    assert!(!report.enabled);
    assert!(report.phases.is_empty(), "disabled sink records no phases");
    assert!(report.tuner.is_empty());
    assert_eq!(report.validator.cache_hits, 0);
    assert_eq!(report.validator.cache_misses, 0);
    assert_eq!(report.validator.simulate_ns, 0);
    assert_eq!(report.validator.sim.runs, 0);
    // Always-exact fields still report: the evaluation did happen.
    assert_eq!(report.validator.simulator_runs, runs_after_work);
    assert_eq!(report.validator.shard_entries.iter().sum::<u64>(), 1);
}

/// A fully populated report — tuner records, validator stats, pool counters
/// — must survive serde round-tripping bit-exactly.
#[test]
fn populated_report_round_trips_through_json() {
    let _guard = SWITCH_LOCK.lock().unwrap();
    telemetry::set_enabled(true);
    parallel::reset_pool_stats();

    let v = quick_validator(200);
    let sink = TelemetrySink::new();
    let opts = TunerOptions {
        max_iterations: 3,
        sgd_iterations: 2,
        convergence_window: 2,
        non_target: vec![WorkloadKind::WebSearch],
        ..Default::default()
    };
    let tuner = Tuner::new(Constraints::paper_default(), &v, opts);
    let outcome = sink.phase("tune", || {
        tuner.tune(WorkloadKind::Database, &presets::intel_750(), &[], None)
    });
    sink.record_outcome(&outcome);
    let report = sink.report(Some(&v));
    telemetry::set_enabled(false);

    assert!(report.enabled);
    assert_eq!(report.schema, RunReport::SCHEMA);
    assert_eq!(report.phases.len(), 1);
    assert_eq!(report.phases[0].name, "tune");
    assert!(report.phases[0].wall_ns > 0);
    assert_eq!(report.tuner.len(), 1);
    assert_eq!(report.tuner[0].records.len(), outcome.iterations);
    assert!(report.tuner[0].records.iter().all(|r| r.wall_ns > 0));
    assert!(report.validator.simulator_runs > 0);
    assert!(report.validator.cache_misses > 0);

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let back = RunReport::parse_checked(&json).expect("report parses back");
    assert_eq!(report, back, "JSON round-trip must be lossless");
}

/// Runs a small tuning session with span tracing on and returns the
/// canonical span tree: the sorted, deduplicated set of
/// `(parent, id, name, disc)` edges. Racing duplicate builds collapse under
/// dedup, so two runs that did the same logical work produce the same tree
/// regardless of how the work was scheduled.
fn traced_span_tree(threads: usize) -> Vec<(u64, u64, &'static str, u64)> {
    parallel::set_max_threads(threads);
    span::reset_tracing_state();
    span::set_tracing(true);

    let v = quick_validator(200);
    let opts = TunerOptions {
        max_iterations: 2,
        sgd_iterations: 2,
        convergence_window: 2,
        non_target: vec![WorkloadKind::WebSearch],
        ..Default::default()
    };
    let tuner = Tuner::new(Constraints::paper_default(), &v, opts);
    let _ = tuner.tune(WorkloadKind::Database, &presets::intel_750(), &[], None);

    span::set_tracing(false);
    let mut spans = Vec::new();
    span::drain_spans(&mut spans);
    let mut tree: Vec<_> = spans
        .iter()
        .map(|s| (s.parent, s.id, s.name, s.disc))
        .collect();
    tree.sort_unstable();
    tree.dedup();
    tree
}

/// The span-determinism invariant: the canonical span tree of a run is a
/// pure function of the work performed, not of the thread count that
/// performed it. One worker and four workers must produce identical trees —
/// ids, parents, names, and discriminators all match.
#[test]
fn span_tree_identical_across_thread_counts() {
    let _guard = SWITCH_LOCK.lock().unwrap();
    telemetry::set_enabled(false);

    let serial = traced_span_tree(1);
    let parallel_tree = traced_span_tree(4);
    parallel::set_max_threads(0); // restore the default

    assert!(
        serial.len() > 10,
        "the instrumented tune must produce a real tree, got {} spans",
        serial.len()
    );
    assert_eq!(
        serial, parallel_tree,
        "span tree must not depend on thread count"
    );
    let root = serial.iter().find(|(parent, ..)| *parent == 0);
    assert!(root.is_some(), "tree has a root span");
    assert!(
        serial
            .iter()
            .any(|(_, _, name, _)| *name == "tuner.iteration"),
        "tuner iterations are in the tree"
    );
    assert!(
        serial.iter().any(|(_, _, name, _)| *name == "sim.run"),
        "simulator phases are in the tree"
    );
}

/// End-to-end journal: a tuning run streamed to disk must produce a valid
/// JSONL file (meta first, summary last, zero drops at this scale) that the
/// Chrome exporter accepts.
#[test]
fn journal_streams_run_and_exports_chrome_trace() {
    let _guard = SWITCH_LOCK.lock().unwrap();
    telemetry::set_enabled(true);
    autoblox::telemetry::global().clear();

    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "autoblox-test-journal-{}.jsonl",
        std::process::id()
    ));
    let path_str = path.to_string_lossy().into_owned();

    let journal = Journal::create(&path_str).expect("journal opens");
    autoblox::telemetry::global().attach_journal(journal.handle());

    let v = quick_validator(200);
    let opts = TunerOptions {
        max_iterations: 2,
        sgd_iterations: 2,
        convergence_window: 2,
        non_target: vec![WorkloadKind::WebSearch],
        ..Default::default()
    };
    let tuner = Tuner::new(Constraints::paper_default(), &v, opts);
    let outcome = autoblox::telemetry::global().phase("tune", || {
        tuner.tune(WorkloadKind::Database, &presets::intel_750(), &[], None)
    });

    autoblox::telemetry::global().detach_journal();
    journal.finish(&path_str).expect("journal closes");
    telemetry::set_enabled(false);

    let text = std::fs::read_to_string(&path).expect("journal readable");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 3, "journal has meta + spans + summary");
    assert!(lines[0].contains("\"t\":\"meta\""), "first line is meta");
    assert!(
        lines[0].contains("autoblox.journal.v1"),
        "meta carries the schema"
    );
    let last = lines.last().unwrap();
    assert!(last.contains("\"t\":\"summary\""), "last line is summary");
    assert!(
        last.contains("\"spans_dropped\":0") && last.contains("\"events_dropped\":0"),
        "nothing dropped at this scale: {last}"
    );
    assert!(
        text.contains("\"t\":\"iteration\""),
        "per-iteration records streamed"
    );

    // The drive loop emits one progress line per step: the two warm-up
    // transitions (reference -> init-set -> iterating) plus one per
    // iteration.
    let progress_lines = text.matches("\"t\":\"progress\"").count();
    assert_eq!(
        progress_lines,
        outcome.iterations + 2,
        "one progress line per drive step"
    );

    let chrome = autoblox::journal::export_chrome(&text).expect("chrome export succeeds");
    assert!(chrome.contains("traceEvents"));
    assert!(chrome.contains("tuner.iteration"));
    // Every tuner iteration, progress line, and model line produced one
    // instant event (model lines also emit a counter, not an instant).
    let model_lines = text.matches("\"t\":\"model\"").count();
    let instants = chrome.matches("\"ph\":\"i\"").count();
    assert_eq!(
        instants,
        outcome.iterations + progress_lines + model_lines,
        "one instant per iteration, progress, and model line"
    );

    std::fs::remove_file(&path).ok();
}
