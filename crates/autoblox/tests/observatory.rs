//! Device-observatory invariants: the sampled time series and the
//! bottleneck attribution must be pure functions of (config, trace) —
//! bit-identical at any thread count — the bounded sample buffer must
//! account for every drop, and `explain` fingerprints must reproduce
//! exactly from the same telemetry document.
//!
//! These tests toggle the process-wide telemetry switch, so every test
//! that touches it serializes on one lock (test binaries run their tests
//! on concurrent threads within one process).

use autoblox::constraints::Constraints;
use autoblox::explain;
use autoblox::journal::Journal;
use autoblox::parallel;
use autoblox::telemetry::{self, RunReport};
use autoblox::tuner::{Tuner, TunerOptions};
use autoblox::validator::{Validator, ValidatorOptions};
use iotrace::gen::WorkloadKind;
use ssdsim::config::{presets, SsdConfig};
use ssdsim::Simulator;
use std::sync::Mutex;

static SWITCH_LOCK: Mutex<()> = Mutex::new(());

fn quick_validator(events: usize) -> Validator {
    Validator::new(ValidatorOptions {
        trace_events: events,
        ..Default::default()
    })
}

fn smoke_options() -> TunerOptions {
    TunerOptions {
        max_iterations: 2,
        sgd_iterations: 2,
        convergence_window: 2,
        non_target: vec![WorkloadKind::WebSearch],
        ..Default::default()
    }
}

/// Runs a journaled smoke tune at the given thread count and returns the
/// device-observatory lines (`series` and `bottleneck` records) as a
/// sorted multiset, plus the final run report. Sorting canonicalizes the
/// interleaving: parallel workers may flush in any order, but the set of
/// records they produce must not change.
fn journaled_observatory(threads: usize) -> (Vec<String>, RunReport) {
    parallel::set_max_threads(threads);
    telemetry::set_enabled(true);
    autoblox::telemetry::global().clear();

    let path = std::env::temp_dir().join(format!(
        "autoblox-test-observatory-{}-t{threads}.jsonl",
        std::process::id()
    ));
    let path_str = path.to_string_lossy().into_owned();

    let journal = Journal::create(&path_str).expect("journal opens");
    autoblox::telemetry::global().attach_journal(journal.handle());

    let v = quick_validator(200);
    let tuner = Tuner::new(Constraints::paper_default(), &v, smoke_options());
    let outcome = autoblox::telemetry::global().phase("tune", || {
        tuner.tune(WorkloadKind::Database, &presets::intel_750(), &[], None)
    });
    autoblox::telemetry::global().record_outcome(&outcome);
    let report = autoblox::telemetry::global().report(Some(&v));

    autoblox::telemetry::global().detach_journal();
    journal.finish(&path_str).expect("journal closes");
    telemetry::set_enabled(false);

    let text = std::fs::read_to_string(&path).expect("journal readable");
    std::fs::remove_file(&path).ok();
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| l.contains("\"t\":\"series\"") || l.contains("\"t\":\"bottleneck\""))
        .map(str::to_owned)
        .collect();
    lines.sort_unstable();
    (lines, report)
}

/// The observatory-determinism invariant: the sampled device series and
/// the bottleneck attributions streamed to the journal are pure functions
/// of the work performed, not of the thread count that performed it.
#[test]
fn device_series_identical_across_thread_counts() {
    let _guard = SWITCH_LOCK.lock().unwrap();

    let (serial, serial_report) = journaled_observatory(1);
    let (threaded, threaded_report) = journaled_observatory(4);
    parallel::set_max_threads(0); // restore the default

    assert!(
        !serial.is_empty(),
        "a telemetry-enabled tune must stream device records"
    );
    assert!(
        serial.iter().any(|l| l.contains("\"t\":\"series\"")),
        "series records present"
    );
    assert!(
        serial.iter().any(|l| l.contains("\"t\":\"bottleneck\"")),
        "bottleneck records present"
    );
    assert_eq!(
        serial, threaded,
        "device records must not depend on thread count"
    );

    // The aggregated bottleneck attribution is likewise thread-invariant.
    assert_eq!(serial_report.bottleneck, threaded_report.bottleneck);
    assert!(serial_report.bottleneck.total_latency_ns > 0);

    // The CSV exporter flattens every sample that was journaled.
    let joined = serial.join("\n");
    let csv = autoblox::journal::export_csv(&joined).expect("csv export succeeds");
    let rows = csv.lines().count() - 1; // minus header
    assert!(rows > 0, "csv export produced no sample rows");
    assert_eq!(
        csv,
        autoblox::journal::export_csv(&threaded.join("\n")).expect("csv export succeeds"),
        "csv export is deterministic across thread counts"
    );
}

/// The bounded buffer keeps exactly `max_samples` samples and accounts
/// for everything it had to skip: with a pathologically fine interval the
/// cap is hit and the drop counter is non-zero.
#[test]
fn bounded_buffer_accounts_for_drops() {
    let _guard = SWITCH_LOCK.lock().unwrap();
    telemetry::set_enabled(true);

    let trace = WorkloadKind::Database.spec().generate(500, 7);
    let mut sim = Simulator::new(SsdConfig::default());
    sim.warm_up(0.5);
    sim.set_sampling(100, 8); // 100 ns interval, 8-sample cap: must overflow
    let report = sim.run(&trace);
    telemetry::set_enabled(false);

    assert_eq!(report.device.interval_ns, 100);
    assert_eq!(
        report.device.samples.len(),
        8,
        "buffer holds exactly the cap"
    );
    assert!(
        report.device.dropped > 0,
        "skipped intervals are counted, not silently lost"
    );
    for s in &report.device.samples {
        assert!((0.0..=1.0).contains(&s.channel_busy));
        assert!((0.0..=1.0).contains(&s.plane_busy));
        assert!((0.0..=1.0).contains(&s.gc_activity));
    }
    // Samples are strictly ordered in time.
    for pair in report.device.samples.windows(2) {
        assert!(pair[0].t_ns < pair[1].t_ns);
    }
}

/// With the telemetry switch off, sampling must not run at all — the
/// series stays empty — while the always-on diagnostic counters still
/// attribute latency (they are plain adds, not worth gating).
#[test]
fn sampling_off_leaves_series_empty_but_attribution_live() {
    let _guard = SWITCH_LOCK.lock().unwrap();
    telemetry::set_enabled(false);

    let trace = WorkloadKind::Database.spec().generate(500, 7);
    let mut sim = Simulator::new(SsdConfig::default());
    sim.warm_up(0.5);
    let report = sim.run(&trace);

    assert!(report.device.is_empty(), "no sampling when disabled");
    assert_eq!(report.device.dropped, 0);
    assert!(
        report.bottleneck.total_latency_ns > 0,
        "attribution counters are always on"
    );
    let frac_sum: f64 = report
        .bottleneck
        .fractions()
        .iter()
        .map(|(_, f)| f)
        .sum::<f64>()
        + report.bottleneck.other_frac;
    assert!((frac_sum - 1.0).abs() < 1e-9, "shares cover the latency");
}

/// `explain` end-to-end: a telemetry document from a smoke tune must
/// fingerprint reproducibly — the same document renders the same text,
/// and documents produced at 1 and 4 threads fingerprint bit-identically.
#[test]
fn explain_fingerprint_reproduces_across_thread_counts() {
    let _guard = SWITCH_LOCK.lock().unwrap();

    let (_, serial_report) = journaled_observatory(1);
    let (_, threaded_report) = journaled_observatory(4);
    parallel::set_max_threads(0);

    // Round-trip through the on-disk format, as `autoblox explain` does.
    let json = serde_json::to_string_pretty(&serial_report).expect("report serializes");
    let parsed = RunReport::parse_checked(&json).expect("report parses");
    let fp = explain::fingerprint(&parsed);

    assert!(fp.total_latency_ns > 0);
    assert!(!fp.dominant.is_empty());
    assert_eq!(fp.shares.len(), 7, "six resources + other");
    let share_sum: f64 = fp.shares.iter().map(|s| s.frac).sum();
    assert!(share_sum <= 1.0 + 1e-9, "shares sum to at most 1");

    // Bit-identical fingerprints regardless of thread count.
    let fp_threaded = explain::fingerprint(&threaded_report);
    assert_eq!(
        serde_json::to_string(&fp).unwrap(),
        serde_json::to_string(&fp_threaded).unwrap(),
        "fingerprint must not depend on thread count"
    );

    // Rendering is deterministic and a self-diff is clean.
    assert_eq!(
        explain::render_fingerprint(&fp),
        explain::render_fingerprint(&fp_threaded)
    );
    let diff = explain::explain_diff(&serial_report, &threaded_report);
    assert!(
        !diff.bottleneck_moved,
        "identical runs: bottleneck stays put"
    );
    assert!(diff.deltas.iter().all(|d| d.delta.abs() < 1e-12));
}
