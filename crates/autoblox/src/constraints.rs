//! User-specified configuration constraints (§3.2): SSD capacity, host
//! interface, flash type, and power budget — the `set_cons(capacity,
//! interface, flash_type, power_budget)` interface of §3.5.

use crate::params::ParamSpace;
use serde::{Deserialize, Serialize};
use ssdsim::config::{DeviceFamily, FlashTechnology, Interface, SsdConfig};

/// Minimum capacity of a single flash die in bytes (1 GiB): NAND dies are
/// physical parts with multi-gigabit densities, so a configuration cannot
/// conjure thousands of tiny dies to multiply parallelism for free.
pub const MIN_DIE_CAPACITY_BYTES: u64 = 1 << 30;

/// Relative tolerance on the capacity constraint: discrete layout grids
/// cannot hit an exact byte count, so configurations within ±25% of the
/// target capacity are accepted (the repair step narrows most of them much
/// closer).
pub const CAPACITY_TOLERANCE: f64 = 0.25;

/// Constraints bounding the optimization space.
///
/// # Examples
///
/// ```
/// use autoblox::constraints::Constraints;
/// use ssdsim::config::{DeviceFamily, FlashTechnology, Interface, SsdConfig};
///
/// let cons = Constraints::new(512, Interface::Nvme, FlashTechnology::Mlc, 25.0);
/// assert!(cons.check_structural(&SsdConfig::default()).is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constraints {
    /// Target device capacity in bytes (physical).
    pub capacity_bytes: u64,
    /// Required host interface.
    pub interface: Interface,
    /// Required flash technology.
    pub flash_type: FlashTechnology,
    /// Maximum average power draw in watts.
    pub power_budget_w: f64,
    /// Minimum per-die capacity in bytes. Defaults to
    /// [`MIN_DIE_CAPACITY_BYTES`]; the what-if analysis (§4.5) relaxes it,
    /// since its expanded bounds "may not be realistic today".
    pub min_die_capacity_bytes: u64,
    /// Required device family. Candidates of the other family kind are
    /// rejected structurally; for hybrid families the knob *values*
    /// (cache share, policy, threshold) stay tunable — only the kind is
    /// pinned. `#[serde(default)]` (homogeneous) keeps constraint
    /// documents from before the field parseable.
    #[serde(default)]
    pub family: DeviceFamily,
}

/// A constraint violation, reported by [`Constraints::check_structural`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Violation {
    /// Physical capacity outside the tolerance band.
    Capacity {
        /// Capacity of the checked configuration, bytes.
        actual: u64,
        /// Target capacity, bytes.
        target: u64,
    },
    /// A die smaller than manufacturable NAND densities.
    DieTooSmall {
        /// Per-die capacity of the checked configuration, bytes.
        actual: u64,
    },
    /// Wrong host interface.
    Interface,
    /// Wrong flash technology.
    FlashType,
    /// Wrong device family (homogeneous where hybrid is required, or the
    /// reverse).
    Family,
    /// The configuration is structurally invalid (failed validation).
    Invalid(String),
}

impl Constraints {
    /// Creates constraints; capacity is in gibibytes, mirroring the paper's
    /// `set_cons(capacity, interface, flash_type, power_budget)` API.
    pub fn new(
        capacity_gib: u64,
        interface: Interface,
        flash_type: FlashTechnology,
        power_budget_w: f64,
    ) -> Self {
        Constraints {
            capacity_bytes: capacity_gib << 30,
            interface,
            flash_type,
            power_budget_w,
            min_die_capacity_bytes: MIN_DIE_CAPACITY_BYTES,
            family: DeviceFamily::Homogeneous,
        }
    }

    /// The same constraints restricted to `family` configurations.
    #[must_use]
    pub fn with_family(mut self, family: DeviceFamily) -> Self {
        self.family = family;
        self
    }

    /// The paper's default evaluation constraints: 512 GiB, NVMe, MLC
    /// (§4.2), with a generous 25 W budget.
    pub fn paper_default() -> Self {
        Constraints::new(512, Interface::Nvme, FlashTechnology::Mlc, 25.0)
    }

    /// Checks the statically checkable constraints (capacity band,
    /// interface, flash type, structural validity). The power budget is
    /// enforced later, at efficiency-validation time.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] found.
    pub fn check_structural(&self, cfg: &SsdConfig) -> Result<(), Violation> {
        if let Err(e) = cfg.validate() {
            return Err(Violation::Invalid(e.to_string()));
        }
        if cfg.interface != self.interface {
            return Err(Violation::Interface);
        }
        if cfg.flash_technology != self.flash_type {
            return Err(Violation::FlashType);
        }
        if cfg.device_family.is_hybrid() != self.family.is_hybrid() {
            return Err(Violation::Family);
        }
        let die_capacity = cfg.physical_capacity_bytes() / cfg.total_dies().max(1);
        if die_capacity < self.min_die_capacity_bytes {
            return Err(Violation::DieTooSmall {
                actual: die_capacity,
            });
        }
        // The user buys usable bytes: hybrid SLC cache blocks store one
        // bit per cell, so the band is judged on the effective capacity
        // (identical to physical for homogeneous devices).
        let actual = cfg.effective_capacity_bytes();
        let lo = (self.capacity_bytes as f64 * (1.0 - CAPACITY_TOLERANCE)) as u64;
        let hi = (self.capacity_bytes as f64 * (1.0 + CAPACITY_TOLERANCE)) as u64;
        if actual < lo || actual > hi {
            return Err(Violation::Capacity {
                actual,
                target: self.capacity_bytes,
            });
        }
        Ok(())
    }

    /// `true` if a measured average power satisfies the budget.
    pub fn check_power(&self, average_power_w: f64) -> bool {
        average_power_w <= self.power_budget_w
    }

    /// Forces the constrained categorical parameters (interface, flash
    /// type, and technology-matched latencies) onto a configuration.
    pub fn pin(&self, cfg: &mut SsdConfig) {
        cfg.interface = self.interface;
        // Pin the family *kind* only: overwriting an already-hybrid
        // candidate would clobber its tuned cache/policy/threshold knobs.
        if cfg.device_family.is_hybrid() != self.family.is_hybrid() {
            cfg.device_family = self.family;
        }
        if cfg.flash_technology != self.flash_type {
            cfg.flash_technology = self.flash_type;
            cfg.read_latency_ns = self.flash_type.base_read_ns();
            cfg.program_latency_ns = self.flash_type.base_program_ns();
            cfg.erase_latency_ns = self.flash_type.base_erase_ns();
        }
    }

    /// Repairs a configuration whose capacity drifted out of band by
    /// re-scaling the dependent layout parameters — the "adjust the values
    /// of other parameters" step of §3.4. Returns `false` if no grid
    /// assignment can reach the band.
    pub fn repair_capacity(&self, space: &ParamSpace, cfg: &mut SsdConfig) -> bool {
        if self.capacity_ok(cfg) {
            return true;
        }
        // Adjust blocks_per_plane first (pure capacity knob), then
        // pages_per_block: pick the grid values closest to the target that
        // keep the die above the manufacturable floor.
        for knob in ["block_no_per_plane", "page_no_per_block"] {
            let Some(p) = space.param(knob) else { continue };
            let mut best: Option<(f64, usize)> = None;
            for idx in 0..p.cardinality() {
                let mut trial = cfg.clone();
                (p.set)(&mut trial, idx);
                let die_cap = trial.physical_capacity_bytes() / trial.total_dies().max(1);
                let die_penalty = if die_cap < self.min_die_capacity_bytes {
                    // Strongly discourage sub-floor dies, but still pick the
                    // least-bad index when none is feasible.
                    (self.min_die_capacity_bytes - die_cap) as f64 * 1e3
                } else {
                    0.0
                };
                let err = (trial.effective_capacity_bytes() as f64 - self.capacity_bytes as f64)
                    .abs()
                    + die_penalty;
                if best.is_none_or(|(e, _)| err < e) {
                    best = Some((err, idx));
                }
            }
            if let Some((_, idx)) = best {
                (p.set)(cfg, idx);
            }
            if self.check_structural_layout(cfg) {
                return true;
            }
        }
        self.check_structural_layout(cfg)
    }

    fn capacity_ok(&self, cfg: &SsdConfig) -> bool {
        let actual = cfg.effective_capacity_bytes() as f64;
        let target = self.capacity_bytes as f64;
        actual >= target * (1.0 - CAPACITY_TOLERANCE)
            && actual <= target * (1.0 + CAPACITY_TOLERANCE)
    }

    fn check_structural_layout(&self, cfg: &SsdConfig) -> bool {
        self.capacity_ok(cfg)
            && cfg.physical_capacity_bytes() / cfg.total_dies().max(1)
                >= self.min_die_capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cons_for_default() -> Constraints {
        // Intel 750-like default: 12*5*8*1*512*512*4096 = ~480 GiB.
        let cap_gib = SsdConfig::default().physical_capacity_bytes() >> 30;
        Constraints::new(cap_gib, Interface::Nvme, FlashTechnology::Mlc, 25.0)
    }

    #[test]
    fn default_config_satisfies_matching_constraints() {
        let cons = cons_for_default();
        assert_eq!(cons.check_structural(&SsdConfig::default()), Ok(()));
    }

    #[test]
    fn interface_and_flash_type_enforced() {
        let cons = cons_for_default();
        let sata = SsdConfig {
            interface: Interface::Sata,
            ..SsdConfig::default()
        };
        assert_eq!(cons.check_structural(&sata), Err(Violation::Interface));
        let tlc = SsdConfig {
            flash_technology: FlashTechnology::Tlc,
            ..SsdConfig::default()
        };
        assert_eq!(cons.check_structural(&tlc), Err(Violation::FlashType));
    }

    #[test]
    fn capacity_violation_detected() {
        let cons = cons_for_default();
        let double = SsdConfig {
            channel_count: 24,
            ..SsdConfig::default()
        };
        assert!(matches!(
            cons.check_structural(&double),
            Err(Violation::Capacity { .. })
        ));
    }

    #[test]
    fn invalid_config_reported() {
        let cons = cons_for_default();
        let broken = SsdConfig {
            channel_count: 0,
            ..SsdConfig::default()
        };
        assert!(matches!(
            cons.check_structural(&broken),
            Err(Violation::Invalid(_))
        ));
    }

    #[test]
    fn repair_restores_capacity_after_layout_change() {
        let cons = cons_for_default();
        let space = ParamSpace::new();
        // Doubling pages doubles capacity; repair should re-shrink another
        // knob while honoring the die-capacity floor.
        let mut cfg = SsdConfig {
            pages_per_block: 1024,
            ..SsdConfig::default()
        };
        assert!(cons.repair_capacity(&space, &mut cfg));
        assert_eq!(cons.check_structural(&cfg), Ok(()));
        assert_eq!(cfg.pages_per_block, 1024, "repair must keep the tuned knob");
    }

    #[test]
    fn die_floor_rejects_dust_dies() {
        let cons = cons_for_default();
        // 2560 dies of 64 MiB each: valid capacity math, absurd hardware.
        let cfg = SsdConfig {
            channel_count: 32,
            chips_per_channel: 5,
            dies_per_chip: 16,
            blocks_per_plane: 128,
            pages_per_block: 128,
            page_size_bytes: 16384,
            ..SsdConfig::default()
        };
        assert!(matches!(
            cons.check_structural(&cfg),
            Err(Violation::DieTooSmall { .. })
        ));
    }

    #[test]
    fn repair_cannot_exceed_die_count_physics() {
        let cons = cons_for_default();
        let space = ParamSpace::new();
        // 960 dies x >= 1 GiB > 625 GiB band: genuinely infeasible.
        let mut cfg = SsdConfig {
            channel_count: 24,
            dies_per_chip: 16,
            ..SsdConfig::default()
        };
        assert!(!cons.repair_capacity(&space, &mut cfg));
    }

    #[test]
    fn repair_fails_for_unreachable_capacity() {
        let cons = Constraints::new(4, Interface::Nvme, FlashTechnology::Mlc, 25.0);
        let space = ParamSpace::new();
        let mut cfg = SsdConfig {
            channel_count: 64,
            chips_per_channel: 64,
            ..SsdConfig::default()
        };
        assert!(!cons.repair_capacity(&space, &mut cfg));
    }

    #[test]
    fn power_check() {
        let cons = cons_for_default();
        assert!(cons.check_power(10.0));
        assert!(!cons.check_power(30.0));
    }

    #[test]
    fn family_kind_enforced_and_pinned() {
        use ssdsim::config::MigrationPolicy;
        let hybrid_family = DeviceFamily::HybridSlcCache {
            cache_blocks_pct: 10.0,
            migration_policy: MigrationPolicy::Watermark,
            migration_threshold_pct: 25.0,
        };
        let cons = cons_for_default().with_family(hybrid_family);
        assert_eq!(
            cons.check_structural(&SsdConfig::default()),
            Err(Violation::Family),
            "hybrid constraints must reject homogeneous candidates"
        );
        let hybrid_cfg = SsdConfig {
            device_family: hybrid_family,
            ..SsdConfig::default()
        };
        assert_eq!(
            cons_for_default().check_structural(&hybrid_cfg),
            Err(Violation::Family),
            "homogeneous constraints must reject hybrid candidates"
        );
        // Pinning converts the family *kind* but must not clobber the
        // tuned knob values of an already-hybrid candidate.
        let tuned = DeviceFamily::HybridSlcCache {
            cache_blocks_pct: 30.0,
            migration_policy: MigrationPolicy::Idle,
            migration_threshold_pct: 60.0,
        };
        let mut cfg = SsdConfig {
            device_family: tuned,
            ..SsdConfig::default()
        };
        cons.pin(&mut cfg);
        assert_eq!(cfg.device_family, tuned);
        let mut homo = SsdConfig::default();
        cons.pin(&mut homo);
        assert_eq!(homo.device_family, hybrid_family);
    }

    #[test]
    fn hybrid_capacity_judged_on_effective_bytes() {
        use ssdsim::config::MigrationPolicy;
        // QLC with half the blocks in SLC mode loses 3/8 of the physical
        // bytes: effective capacity 0.625x falls out of the +/-25% band
        // even though the physical capacity is exactly on target.
        let cap_gib = SsdConfig::default().physical_capacity_bytes() >> 30;
        let family = |pct| DeviceFamily::HybridSlcCache {
            cache_blocks_pct: pct,
            migration_policy: MigrationPolicy::Watermark,
            migration_threshold_pct: 25.0,
        };
        let cons = Constraints::new(cap_gib, Interface::Nvme, FlashTechnology::Qlc, 25.0)
            .with_family(family(50.0));
        let big_cache = SsdConfig {
            flash_technology: FlashTechnology::Qlc,
            device_family: family(50.0),
            ..SsdConfig::default()
        };
        assert!(matches!(
            cons.check_structural(&big_cache),
            Err(Violation::Capacity { .. })
        ));
        // A modest cache keeps the effective capacity in band.
        let small_cache = SsdConfig {
            device_family: family(5.0),
            ..big_cache
        };
        assert_eq!(
            cons.with_family(family(5.0)).check_structural(&small_cache),
            Ok(())
        );
    }

    #[test]
    fn pin_sets_technology_latencies() {
        let cons = Constraints::new(512, Interface::Sata, FlashTechnology::Slc, 10.0);
        let mut cfg = SsdConfig::default();
        cons.pin(&mut cfg);
        assert_eq!(cfg.interface, Interface::Sata);
        assert_eq!(cfg.flash_technology, FlashTechnology::Slc);
        assert_eq!(cfg.read_latency_ns, FlashTechnology::Slc.base_read_ns());
    }
}
