//! Run observatory: persistent multi-run history and the trend gate.
//!
//! One tuning (or what-if, or placement) invocation is ephemeral; the
//! paper's pipeline is a fleet activity that runs per workload category,
//! per cluster, per placement round, again and again. This module gives
//! those runs a durable, queryable history:
//!
//! - [`RunSummary`] is the compact, schema-versioned record one invocation
//!   leaves behind: command, seed, category, converged grade, simulator-run
//!   count, iteration count, and the bottleneck attribution shares. Wall
//!   time and the thread limit are carried for humans but excluded from
//!   [`RunSummary::fingerprint`], so two byte-identical runs on different
//!   hosts summarize identically.
//! - [`record_run`] appends a summary to an [`autodb::Store`] under
//!   `run:<category>:<seq>` keys with fixed-width, zero-padded sequence
//!   numbers — lexicographic key order *is* recording order, so every
//!   consumer (listing, trending) reads history oldest-first for free.
//! - [`trend`] is the multi-run generalization of `report diff`: it takes
//!   the last N summaries per category, computes median and EWMA baselines
//!   over all but the newest, and flags the newest run for grade drop,
//!   simulator-run inflation, or bottleneck-share shift against
//!   [`TrendThresholds`]. CI runs it so a slow three-PR regression cannot
//!   hide under the pairwise diff threshold.
//!
//! Everything here is deterministic: summaries carry no host-varying field
//! in their fingerprint, aggregation is pure arithmetic over stored values,
//! and the serialized [`TrendReport`] for a given store content is
//! byte-stable (the vendored JSON shim sorts object keys).

use crate::report_diff::relative;
use autodb::Store;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use ssdsim::BottleneckReport;

/// Schema identifier carried by every recorded [`RunSummary`].
pub const RUNS_SCHEMA: &str = "autoblox.runs.v1";

/// Schema identifier of the serialized [`TrendReport`].
pub const TREND_SCHEMA: &str = "autoblox.trend.v1";

/// Fixed width of the zero-padded per-category sequence number; wide
/// enough that lexicographic and numeric key order agree for any
/// realistic history length.
const SEQ_WIDTH: usize = 6;

/// The compact history record one `tune`/`whatif`/`place` invocation
/// registers (schema [`RUNS_SCHEMA`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Always [`RUNS_SCHEMA`].
    pub schema: String,
    /// The command that produced the run (`tune`, `whatif`, `place`, or
    /// `framework.tune`).
    pub command: String,
    /// History family: the workload category for tuning runs, `place` for
    /// placement rounds.
    pub category: String,
    /// Device-family label of the configuration space the run explored
    /// (`homogeneous` or `hybrid-slc-cache`). Records written before the
    /// field existed deserialize as empty, which trend gating treats as
    /// `homogeneous`.
    #[serde(default)]
    pub device_family: String,
    /// Tuner seed the run was pinned to.
    pub seed: u64,
    /// Converged best grade (for placement: the negated final interference
    /// cost, so "higher is better" holds for every category).
    pub best_grade: f64,
    /// Outer iterations (for placement: search rounds) executed.
    pub iterations: u64,
    /// Charged simulator runs the invocation performed.
    pub simulator_runs: u64,
    /// Bottleneck attribution aggregated over every simulator run.
    pub bottleneck: BottleneckReport,
    /// Fraction of the run's surrogate calibration pairs whose realized
    /// grade fell within ±1σ of the prediction (0.0 when the run produced
    /// no pairs). Deterministic, so it stays in the fingerprint.
    #[serde(default)]
    pub calibration_coverage_1s: f64,
    /// Calibration pairs the coverage fraction was computed over.
    #[serde(default)]
    pub calibration_points: u64,
    /// Worker-pool thread limit in effect. Informational: excluded from
    /// the fingerprint, since the run's results are thread-invariant.
    #[serde(default)]
    pub threads: u64,
    /// Wall-clock duration of the invocation, ns. Informational: excluded
    /// from the fingerprint (host-dependent).
    #[serde(default)]
    pub wall_ns: u64,
}

impl RunSummary {
    /// The deterministic identity of a run: every field except the
    /// host-varying `threads` and `wall_ns`. Two runs of the same pinned
    /// command produce equal fingerprints on any machine at any thread
    /// count, which is what the trend gate and CI byte-compares rely on.
    pub fn fingerprint(&self) -> Value {
        let mut v = serde_json::to_value(self).expect("summary serializes");
        if let Value::Object(map) = &mut v {
            map.remove("threads");
            map.remove("wall_ns");
        }
        v
    }
}

/// Formats the registry key for `category`'s run number `seq`.
fn run_key(category: &str, seq: u64) -> String {
    format!("run:{category}:{seq:0SEQ_WIDTH$}")
}

/// Splits a `run:<category>:<seq>` key into its parts.
///
/// # Errors
///
/// Returns a description of the malformation (missing prefix, empty
/// category, or a sequence field that is not exactly `SEQ_WIDTH`
/// digits); the CLI maps this onto usage errors (exit 2).
pub fn parse_run_key(key: &str) -> Result<(String, u64), String> {
    let rest = key
        .strip_prefix("run:")
        .ok_or_else(|| format!("malformed run key `{key}`: expected `run:<category>:<seq>`"))?;
    let (category, seq) = rest
        .rsplit_once(':')
        .ok_or_else(|| format!("malformed run key `{key}`: expected `run:<category>:<seq>`"))?;
    if category.is_empty() {
        return Err(format!("malformed run key `{key}`: empty category"));
    }
    if seq.len() != SEQ_WIDTH || !seq.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!(
            "malformed run key `{key}`: sequence must be {SEQ_WIDTH} digits"
        ));
    }
    let n: u64 = seq
        .parse()
        .map_err(|e| format!("malformed run key `{key}`: {e}"))?;
    Ok((category.to_string(), n))
}

/// Registers `summary` in `db` under the next free sequence number of its
/// category and returns the assigned key.
///
/// # Errors
///
/// Returns a description of a store write failure, or of an existing
/// malformed key shadowing the sequence counter.
pub fn record_run(db: &Store, summary: &RunSummary) -> Result<String, String> {
    let prefix = format!("run:{}:", summary.category);
    let next = match db.last_key_with_prefix(&prefix) {
        Some(last) => parse_run_key(&last)?.1 + 1,
        None => 1,
    };
    let key = run_key(&summary.category, next);
    db.put_record(&key, summary)
        .map_err(|e| format!("cannot record run under `{key}`: {e}"))?;
    Ok(key)
}

/// Every recorded run, oldest first per category, categories in
/// lexicographic order (the storage order of the keys).
///
/// # Errors
///
/// Returns a description of the first summary that fails to deserialize.
pub fn list_runs(db: &Store) -> Result<Vec<(String, RunSummary)>, String> {
    let mut runs = Vec::new();
    for key in db.keys_with_prefix("run:") {
        let summary: RunSummary = db
            .get_record(&key)
            .map_err(|e| format!("cannot read run `{key}`: {e}"))?
            .ok_or_else(|| format!("run `{key}` vanished mid-listing"))?;
        runs.push((key, summary));
    }
    Ok(runs)
}

/// Drift thresholds for [`trend`]. Relative thresholds are fractions
/// (0.05 = 5%); the bottleneck threshold is an absolute shift of a 0..=1
/// share.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrendThresholds {
    /// How many most-recent runs per category enter the window (the newest
    /// is judged against the rest).
    pub window: u64,
    /// Maximum tolerated relative drop of the best grade below the
    /// baseline median.
    pub max_grade_drop: f64,
    /// Maximum tolerated relative increase of the simulator-run count over
    /// the baseline median.
    pub max_run_inflation: f64,
    /// Maximum tolerated absolute shift (either direction) of any
    /// bottleneck-attribution share against the baseline median.
    pub max_bottleneck_shift: f64,
    /// Minimum tolerated ±1σ calibration coverage of the newest run — an
    /// absolute floor, not a relative drift (a well-calibrated Gaussian
    /// surrogate covers ~68%). Judged only when the run recorded
    /// calibration pairs; `#[serde(default)]` keeps older serialized
    /// thresholds parsing (their floor deserializes as 0.0 = disabled).
    #[serde(default)]
    pub min_calibration_coverage: f64,
}

impl Default for TrendThresholds {
    fn default() -> Self {
        TrendThresholds {
            window: 8,
            max_grade_drop: 0.05,
            max_run_inflation: 0.25,
            max_bottleneck_shift: 0.15,
            min_calibration_coverage: 0.45,
        }
    }
}

/// One judged metric of one category's trend window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendMetric {
    /// Metric name (`best_grade`, `simulator_runs`, `iterations`, or
    /// `bottleneck.<share>`).
    pub metric: String,
    /// Median over the baseline (window minus the newest run).
    pub median: f64,
    /// EWMA (alpha 0.3, oldest first) over the baseline — an advisory
    /// smoothed trajectory; the verdict judges against the median.
    pub ewma: f64,
    /// The newest run's value.
    pub latest: f64,
    /// `latest - median`.
    pub delta: f64,
    /// Delta relative to the median's magnitude (0 for a ~0 median).
    pub relative: f64,
    /// The threshold the metric was judged against (0 = advisory).
    pub threshold: f64,
    /// Whether the metric was judged at all (needs >= 2 runs in window).
    pub checked: bool,
    /// Whether the metric drifted past its threshold.
    pub drifted: bool,
}

/// One category's aggregated trend verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryTrend {
    /// The history family (workload name or `place`).
    pub category: String,
    /// Total runs recorded for the category.
    pub runs: u64,
    /// Runs that entered the window (<= `thresholds.window`).
    pub window_used: u64,
    /// Registry key of the newest (judged) run.
    pub latest_key: String,
    /// Per-metric rows, fixed order.
    pub metrics: Vec<TrendMetric>,
    /// Names of drifted metrics, in row order.
    pub drifts: Vec<String>,
    /// `drifts.is_empty()`.
    pub pass: bool,
}

/// The machine-readable verdict of [`trend`] (schema [`TREND_SCHEMA`]);
/// what `autoblox report trend` prints and CI's `trend-smoke` stage acts
/// on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendReport {
    /// Always [`TREND_SCHEMA`].
    pub schema: String,
    /// The thresholds the verdict was computed against.
    pub thresholds: TrendThresholds,
    /// Per-category trends, category order = key order.
    pub categories: Vec<CategoryTrend>,
    /// Every drift as `category/metric`, in category order.
    pub drifts: Vec<String>,
    /// Overall verdict: no category drifted.
    pub pass: bool,
}

/// The device-family label a summary is judged under: records from before
/// the field existed are homogeneous by construction.
fn family_of(s: &RunSummary) -> &str {
    if s.device_family.is_empty() {
        "homogeneous"
    } else {
        &s.device_family
    }
}

/// Median of a non-empty, unsorted slice (mean of the middle pair for even
/// lengths).
fn median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite metric values"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// EWMA with alpha 0.3, oldest value first.
fn ewma(values: &[f64]) -> f64 {
    const ALPHA: f64 = 0.3;
    let mut acc = values.first().copied().unwrap_or(0.0);
    for &v in &values[1..] {
        acc = ALPHA * v + (1.0 - ALPHA) * acc;
    }
    acc
}

/// Builds one trend row. `drift` decides from `(delta, relative)` and is
/// only consulted when the row is checked.
fn trend_metric(
    name: &str,
    baseline: &[f64],
    latest: f64,
    threshold: f64,
    checked: bool,
    drift: impl Fn(f64, f64) -> bool,
) -> TrendMetric {
    let (med, smooth) = if baseline.is_empty() {
        (latest, latest)
    } else {
        (median(baseline), ewma(baseline))
    };
    let delta = latest - med;
    let rel = relative(med, delta);
    TrendMetric {
        metric: name.to_string(),
        median: med,
        ewma: smooth,
        latest,
        delta,
        relative: rel,
        threshold,
        checked,
        drifted: checked && drift(delta, rel),
    }
}

/// Computes the trend verdict over the recorded history in `db`,
/// optionally restricted to one category.
///
/// # Errors
///
/// Returns a description of an unreadable summary, or of a requested
/// category with no recorded runs.
pub fn trend(
    db: &Store,
    thresholds: &TrendThresholds,
    category: Option<&str>,
) -> Result<TrendReport, String> {
    let all = list_runs(db)?;
    // Group by category, preserving key (= recording) order.
    let mut groups: Vec<(String, Vec<(String, RunSummary)>)> = Vec::new();
    for (key, summary) in all {
        if let Some(want) = category {
            if summary.category != want {
                continue;
            }
        }
        match groups.last_mut() {
            Some((cat, members)) if *cat == summary.category => members.push((key, summary)),
            _ => groups.push((summary.category.clone(), vec![(key, summary)])),
        }
    }
    if let Some(want) = category {
        if groups.is_empty() {
            return Err(format!("no recorded runs for category `{want}`"));
        }
    }
    let window = thresholds.window.max(1) as usize;
    let mut categories = Vec::new();
    let mut drifts = Vec::new();
    for (cat, members) in groups {
        let total = members.len() as u64;
        let windowed = &members[members.len().saturating_sub(window)..];
        let (latest_key, latest) = windowed.last().expect("group is non-empty");
        // Runs of a different device family are never comparable: a hybrid
        // device legitimately grades and bottlenecks nothing like a
        // homogeneous one, so they are dropped from the baseline rather
        // than reported as drift.
        let baseline: Vec<&RunSummary> = windowed[..windowed.len() - 1]
            .iter()
            .map(|(_, s)| s)
            .filter(|s| family_of(s) == family_of(latest))
            .collect();
        let checked = !baseline.is_empty();
        let series = |f: &dyn Fn(&RunSummary) -> f64| -> Vec<f64> {
            baseline.iter().map(|s| f(s)).collect()
        };
        let mut metrics = vec![
            trend_metric(
                "best_grade",
                &series(&|s| s.best_grade),
                latest.best_grade,
                thresholds.max_grade_drop,
                checked,
                |_, rel| rel < -thresholds.max_grade_drop,
            ),
            trend_metric(
                "simulator_runs",
                &series(&|s| s.simulator_runs as f64),
                latest.simulator_runs as f64,
                thresholds.max_run_inflation,
                checked,
                |_, rel| rel > thresholds.max_run_inflation,
            ),
            // Iteration count is advisory: convergence speed varies
            // legitimately with the recorded history's iteration caps.
            trend_metric(
                "iterations",
                &series(&|s| s.iterations as f64),
                latest.iterations as f64,
                0.0,
                false,
                |_, _| false,
            ),
            // Calibration coverage is judged against an absolute floor (a
            // drifting surrogate under-covers regardless of history), and
            // only when the newest run actually recorded calibration pairs
            // (placement rounds and surrogate-off runs record none).
            trend_metric(
                "calibration.coverage_1s",
                &series(&|s| s.calibration_coverage_1s),
                latest.calibration_coverage_1s,
                thresholds.min_calibration_coverage,
                checked && latest.calibration_points > 0,
                |_, _| latest.calibration_coverage_1s < thresholds.min_calibration_coverage,
            ),
        ];
        for (i, (share, _)) in latest.bottleneck.fractions().iter().enumerate() {
            metrics.push(trend_metric(
                &format!("bottleneck.{share}"),
                &series(&|s| s.bottleneck.fractions()[i].1),
                latest.bottleneck.fractions()[i].1,
                thresholds.max_bottleneck_shift,
                checked,
                |delta, _| delta.abs() > thresholds.max_bottleneck_shift,
            ));
        }
        let cat_drifts: Vec<String> = metrics
            .iter()
            .filter(|m| m.drifted)
            .map(|m| m.metric.clone())
            .collect();
        drifts.extend(cat_drifts.iter().map(|m| format!("{cat}/{m}")));
        categories.push(CategoryTrend {
            category: cat,
            runs: total,
            window_used: windowed.len() as u64,
            latest_key: latest_key.clone(),
            pass: cat_drifts.is_empty(),
            drifts: cat_drifts,
            metrics,
        });
    }
    Ok(TrendReport {
        schema: TREND_SCHEMA.to_string(),
        thresholds: *thresholds,
        categories,
        pass: drifts.is_empty(),
        drifts,
    })
}

/// Renders a run listing as an aligned human-readable table.
pub fn render_runs(runs: &[(String, RunSummary)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>8} {:<18} {:>12} {:>10} {:>6} {:>10}  {}\n",
        "key", "command", "family", "best_grade", "sim_runs", "iters", "wall_ms", "dominant"
    ));
    for (key, s) in runs {
        out.push_str(&format!(
            "{:<28} {:>8} {:<18} {:>12.6} {:>10} {:>6} {:>10.1}  {}\n",
            key,
            s.command,
            family_of(s),
            s.best_grade,
            s.simulator_runs,
            s.iterations,
            s.wall_ns as f64 / 1e6,
            s.bottleneck.dominant(),
        ));
    }
    out
}

/// Renders a trend verdict as an aligned human-readable table (what
/// `report trend` writes to stderr next to the JSON verdict on stdout).
pub fn render_trend(report: &TrendReport) -> String {
    let mut out = String::new();
    for cat in &report.categories {
        out.push_str(&format!(
            "category {} — {} run(s), window {}, latest {}\n",
            cat.category, cat.runs, cat.window_used, cat.latest_key
        ));
        out.push_str(&format!(
            "  {:<24} {:>12} {:>12} {:>12} {:>9}  verdict\n",
            "metric", "median", "ewma", "latest", "delta"
        ));
        for m in &cat.metrics {
            let verdict = if !m.checked {
                "advisory"
            } else if m.drifted {
                "DRIFT"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "  {:<24} {:>12.6} {:>12.6} {:>12.6} {:>+9.4}  {}\n",
                m.metric, m.median, m.ewma, m.latest, m.delta, verdict
            ));
        }
    }
    out.push_str(&format!(
        "trend: {} ({} drift(s))\n",
        if report.pass { "PASS" } else { "DRIFT" },
        report.drifts.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(category: &str, grade: f64, runs: u64) -> RunSummary {
        RunSummary {
            schema: RUNS_SCHEMA.to_string(),
            command: "tune".to_string(),
            category: category.to_string(),
            device_family: "homogeneous".to_string(),
            seed: 0xA070,
            best_grade: grade,
            iterations: 4,
            simulator_runs: runs,
            bottleneck: BottleneckReport::from_totals(1000, 400, 200, 100, 100, 100, 0),
            calibration_coverage_1s: 0.7,
            calibration_points: 3,
            threads: 1,
            wall_ns: 123_456_789,
        }
    }

    #[test]
    fn run_keys_round_trip_and_reject_malformations() {
        assert_eq!(run_key("Database", 7), "run:Database:000007");
        assert_eq!(
            parse_run_key("run:Database:000007").unwrap(),
            ("Database".to_string(), 7)
        );
        for bad in [
            "cluster:Database:000007",
            "run:Database",
            "run::000007",
            "run:Database:7",
            "run:Database:00000x",
            "run:Database:0000007",
        ] {
            assert!(parse_run_key(bad).is_err(), "`{bad}` must be rejected");
        }
        // Categories containing `:` still round-trip (rsplit).
        let (cat, seq) = parse_run_key("run:a:b:000002").unwrap();
        assert_eq!((cat.as_str(), seq), ("a:b", 2));
    }

    #[test]
    fn record_run_assigns_monotonic_sequences_per_category() {
        let db = Store::in_memory();
        assert_eq!(
            record_run(&db, &summary("Database", 0.5, 100)).unwrap(),
            "run:Database:000001"
        );
        assert_eq!(
            record_run(&db, &summary("KVStore", 0.4, 90)).unwrap(),
            "run:KVStore:000001"
        );
        assert_eq!(
            record_run(&db, &summary("Database", 0.51, 100)).unwrap(),
            "run:Database:000002"
        );
        let runs = list_runs(&db).unwrap();
        let keys: Vec<&str> = runs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "run:Database:000001",
                "run:Database:000002",
                "run:KVStore:000001"
            ],
            "listing order is key order: per-category oldest-first"
        );
    }

    #[test]
    fn fingerprint_excludes_wall_clock_and_threads() {
        let mut a = summary("Database", 0.5, 100);
        let mut b = a.clone();
        a.wall_ns = 1;
        a.threads = 1;
        b.wall_ns = 999_999;
        b.threads = 16;
        assert_eq!(a.fingerprint(), b.fingerprint());
        let json = serde_json::to_string(&a.fingerprint()).unwrap();
        assert!(!json.contains("wall_ns"));
        assert!(!json.contains("threads"));
        b.best_grade = 0.6;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn trend_is_deterministic_and_passes_on_stable_history() {
        let db = Store::in_memory();
        for _ in 0..5 {
            record_run(&db, &summary("Database", 0.5, 100)).unwrap();
        }
        let t = TrendThresholds::default();
        let a = trend(&db, &t, None).unwrap();
        let b = trend(&db, &t, None).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        assert!(a.pass, "{:?}", a.drifts);
        assert_eq!(a.categories.len(), 1);
        assert_eq!(a.categories[0].window_used, 5);
    }

    #[test]
    fn trend_flags_grade_drop_and_run_inflation() {
        let db = Store::in_memory();
        for _ in 0..4 {
            record_run(&db, &summary("Database", 0.5, 100)).unwrap();
        }
        record_run(&db, &summary("Database", 0.2, 300)).unwrap();
        let report = trend(&db, &TrendThresholds::default(), None).unwrap();
        assert!(!report.pass);
        assert!(report.drifts.contains(&"Database/best_grade".to_string()));
        assert!(report
            .drifts
            .contains(&"Database/simulator_runs".to_string()));
    }

    #[test]
    fn trend_flags_calibration_coverage_below_floor() {
        let db = Store::in_memory();
        for _ in 0..4 {
            record_run(&db, &summary("Database", 0.5, 100)).unwrap();
        }
        let mut drifted = summary("Database", 0.5, 100);
        drifted.calibration_coverage_1s = 0.2;
        record_run(&db, &drifted).unwrap();
        let report = trend(&db, &TrendThresholds::default(), None).unwrap();
        assert!(!report.pass);
        assert_eq!(
            report.drifts,
            vec!["Database/calibration.coverage_1s".to_string()]
        );
        // Runs without calibration pairs are never judged by the floor.
        let db2 = Store::in_memory();
        for _ in 0..2 {
            let mut s = summary("place", -0.1, 50);
            s.calibration_coverage_1s = 0.0;
            s.calibration_points = 0;
            record_run(&db2, &s).unwrap();
        }
        let report2 = trend(&db2, &TrendThresholds::default(), None).unwrap();
        assert!(report2.pass, "{:?}", report2.drifts);
    }

    #[test]
    fn trend_never_compares_across_device_families() {
        let db = Store::in_memory();
        // A healthy homogeneous history, then a first hybrid run whose grade
        // would read as a catastrophic drop if families were compared.
        for _ in 0..4 {
            record_run(&db, &summary("Database", 0.5, 100)).unwrap();
        }
        let mut hybrid = summary("Database", 0.1, 250);
        hybrid.device_family = "hybrid-slc-cache".to_string();
        record_run(&db, &hybrid).unwrap();
        let report = trend(&db, &TrendThresholds::default(), None).unwrap();
        assert!(report.pass, "{:?}", report.drifts);
        // With no same-family baseline, every metric stays advisory.
        assert!(report.categories[0].metrics.iter().all(|m| !m.drifted));
        // Pre-field records (empty family) still baseline homogeneous runs.
        let mut legacy = summary("Database", 0.5, 100);
        legacy.device_family = String::new();
        assert_eq!(family_of(&legacy), "homogeneous");
    }

    #[test]
    fn trend_single_run_is_advisory_and_missing_category_errors() {
        let db = Store::in_memory();
        record_run(&db, &summary("Database", 0.5, 100)).unwrap();
        let report = trend(&db, &TrendThresholds::default(), None).unwrap();
        assert!(report.pass);
        assert!(report.categories[0].metrics.iter().all(|m| !m.checked));
        assert!(trend(&db, &TrendThresholds::default(), Some("KVStore")).is_err());
        let only = trend(&db, &TrendThresholds::default(), Some("Database")).unwrap();
        assert_eq!(only.categories.len(), 1);
    }

    #[test]
    fn trend_window_drops_ancient_history() {
        let db = Store::in_memory();
        // Ancient bad runs that a windowed baseline must ignore.
        for _ in 0..10 {
            record_run(&db, &summary("Database", -5.0, 10_000)).unwrap();
        }
        for _ in 0..8 {
            record_run(&db, &summary("Database", 0.5, 100)).unwrap();
        }
        let t = TrendThresholds {
            window: 8,
            ..TrendThresholds::default()
        };
        let report = trend(&db, &t, None).unwrap();
        assert!(report.pass, "{:?}", report.drifts);
        assert_eq!(report.categories[0].window_used, 8);
        assert_eq!(report.categories[0].runs, 18);
    }

    #[test]
    fn median_and_ewma_are_exact() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!((ewma(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // 0.3 * 2 + 0.7 * 1 = 1.3
        assert!((ewma(&[1.0, 2.0]) - 1.3).abs() < 1e-12);
    }
}
