//! Cross-run regression diffing of telemetry [`RunReport`]s.
//!
//! [`diff_reports`] compares a baseline and a candidate report metric by
//! metric — grade, validation count, cache hit rate, simulator time, and
//! the histogram-derived tail-latency percentiles — against configurable
//! [`DiffThresholds`], producing a machine-readable [`ReportDiff`] with a
//! single `pass` verdict. This is what `autoblox report diff` prints and
//! what the `regression-gate` CI stage acts on: a pinned-seed smoke tune
//! diffed against a checked-in golden report catches behavioural drift
//! (more simulator runs, a worse converged grade, a fatter latency tail)
//! the unit-test suite cannot see.
//!
//! Wall-clock metrics vary by host, so the gate runs with
//! `ignore_time = true`; deterministic metrics (grades, validation counts)
//! use tight-ish relative thresholds and time-based ones stay advisory.

use crate::telemetry::RunReport;
use serde::{Deserialize, Serialize};

/// Regression thresholds for [`diff_reports`]. Relative thresholds are
/// fractions (0.05 = 5%); the hit-rate threshold is an absolute delta of a
/// 0..=1 rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiffThresholds {
    /// Maximum tolerated relative drop of the best grade.
    pub max_grade_drop: f64,
    /// Maximum tolerated relative increase in simulator validations.
    pub max_validation_increase: f64,
    /// Maximum tolerated absolute drop of the validator cache hit rate.
    pub max_hit_rate_drop: f64,
    /// Maximum tolerated relative increase in total simulate time.
    pub max_sim_time_increase: f64,
    /// Maximum tolerated relative shift (either direction) of the
    /// histogram-derived p95/p99 latency.
    pub max_tail_latency_shift: f64,
    /// Maximum tolerated absolute shift (either direction) of any
    /// bottleneck-attribution fraction — a 0..=1 share of request time.
    /// New in v2 reports; the serde default (0, meaning "judge exactly")
    /// keeps diff documents written before the field existed parseable.
    #[serde(default)]
    pub max_bottleneck_shift: f64,
    /// When `true`, wall-clock-derived metrics (simulate time) are reported
    /// but never fail the diff — the right setting when baseline and
    /// candidate ran on different machines.
    pub ignore_time: bool,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds {
            max_grade_drop: 0.05,
            max_validation_increase: 0.25,
            max_hit_rate_drop: 0.10,
            max_sim_time_increase: 0.50,
            max_tail_latency_shift: 0.25,
            max_bottleneck_shift: 0.15,
            ignore_time: false,
        }
    }
}

/// One compared metric in a [`ReportDiff`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDelta {
    /// Metric name (e.g. `best_grade`, `validations`, `p95_latency_ns`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// `candidate - baseline`.
    pub delta: f64,
    /// Delta relative to the baseline magnitude (0 when the baseline is 0).
    pub relative: f64,
    /// The threshold this metric was judged against.
    pub threshold: f64,
    /// Whether this metric can fail the diff (informational metrics and
    /// time metrics under `ignore_time` report `false`).
    pub checked: bool,
    /// Whether this metric regressed beyond its threshold.
    pub regressed: bool,
}

/// Machine-readable verdict of one report comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportDiff {
    /// Schema identifier; always [`ReportDiff::SCHEMA`].
    pub schema: String,
    /// The thresholds the diff ran with.
    pub thresholds: DiffThresholds,
    /// Every compared metric, in a stable order.
    pub metrics: Vec<MetricDelta>,
    /// Names of the metrics that regressed (subset of `metrics`).
    pub regressions: Vec<String>,
    /// Metric names excluded from judgement via `--ignore` (they still
    /// appear in `metrics`, unchecked).
    #[serde(default)]
    pub ignored: Vec<String>,
    /// `true` when no checked metric regressed.
    pub pass: bool,
}

impl ReportDiff {
    /// The schema identifier written into every diff document.
    pub const SCHEMA: &'static str = "autoblox.diff.v1";
}

/// Relative delta against a baseline, zero-safe. Shared with the multi-run
/// trend gate (`crate::obs`), which generalizes this pairwise diff.
pub(crate) fn relative(baseline: f64, delta: f64) -> f64 {
    if baseline.abs() < 1e-12 {
        0.0
    } else {
        delta / baseline.abs()
    }
}

/// Builds one metric row; `fails` decides regression from (delta, relative).
fn metric(
    name: &str,
    baseline: f64,
    candidate: f64,
    threshold: f64,
    checked: bool,
    fails: impl Fn(f64, f64) -> bool,
) -> MetricDelta {
    let delta = candidate - baseline;
    let rel = relative(baseline, delta);
    MetricDelta {
        metric: name.to_string(),
        baseline,
        candidate,
        delta,
        relative: rel,
        threshold,
        checked,
        regressed: checked && fails(delta, rel),
    }
}

fn best_grade(r: &RunReport) -> f64 {
    r.tuner
        .iter()
        .map(|t| t.best_grade)
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Maximum absolute divergence of the two grade trajectories over their
/// common prefix (0 when either report has no iteration records).
fn trajectory_divergence(a: &RunReport, b: &RunReport) -> f64 {
    let series = |r: &RunReport| -> Vec<f64> {
        r.tuner
            .iter()
            .flat_map(|t| t.records.iter().map(|i| i.best_grade))
            .collect()
    };
    let (sa, sb) = (series(a), series(b));
    sa.iter()
        .zip(&sb)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn hit_rate(r: &RunReport) -> f64 {
    let v = &r.validator;
    let total = v.cache_hits + v.cache_misses + v.dedup_waits;
    if total == 0 {
        0.0
    } else {
        v.cache_hits as f64 / total as f64
    }
}

/// Compares `candidate` against `baseline` and judges every metric against
/// `t`. Metrics absent from both reports (all-zero) are reported unchecked
/// so a smoke run without tuner records cannot fail on them. Metric names
/// in `ignore` (the CLI's repeatable `--ignore <metric>`) are reported but
/// excluded from judgement.
pub fn diff_reports(
    baseline: &RunReport,
    candidate: &RunReport,
    t: &DiffThresholds,
    ignore: &[String],
) -> ReportDiff {
    let mut metrics = Vec::new();

    // Grade: lower is worse; only a drop beyond the threshold fails.
    let (gb, gc) = (best_grade(baseline), best_grade(candidate));
    let have_grades = gb.is_finite() && gc.is_finite();
    metrics.push(metric(
        "best_grade",
        if have_grades { gb } else { 0.0 },
        if have_grades { gc } else { 0.0 },
        t.max_grade_drop,
        have_grades,
        |_d, rel| rel < -t.max_grade_drop,
    ));

    // Trajectory divergence is informational: it localizes where two runs
    // drifted apart, but convergence order may legitimately differ.
    let div = trajectory_divergence(baseline, candidate);
    // Threshold 0.0 = "no threshold" (JSON has no infinity); the metric is
    // unchecked so the value is advisory either way.
    metrics.push(metric(
        "grade_trajectory_divergence",
        0.0,
        div,
        0.0,
        false,
        |_, _| false,
    ));

    // Validations: more simulator runs for the same problem is a cost
    // regression (a cache or pruning mechanism stopped working).
    let (vb, vc) = (
        baseline.validator.simulator_runs as f64,
        candidate.validator.simulator_runs as f64,
    );
    metrics.push(metric(
        "validations",
        vb,
        vc,
        t.max_validation_increase,
        vb > 0.0 || vc > 0.0,
        |_d, rel| rel > t.max_validation_increase,
    ));

    // Cache hit rate: judged on the absolute delta of the 0..=1 rate.
    let (hb, hc) = (hit_rate(baseline), hit_rate(candidate));
    metrics.push(metric(
        "cache_hit_rate",
        hb,
        hc,
        t.max_hit_rate_drop,
        hb > 0.0 || hc > 0.0,
        |d, _rel| -d > t.max_hit_rate_drop,
    ));

    // Simulate time: wall-clock, so only checked when times are comparable.
    let (sb, sc) = (
        baseline.validator.simulate_ns as f64,
        candidate.validator.simulate_ns as f64,
    );
    metrics.push(metric(
        "simulate_ns",
        sb,
        sc,
        t.max_sim_time_increase,
        !t.ignore_time && sb > 0.0,
        |_d, rel| rel > t.max_sim_time_increase,
    ));

    // Histogram-derived latency percentiles: simulated time, deterministic,
    // so they are checked even under `ignore_time`. p50 stays informational
    // (median shifts are usually intentional retuning); the tail is judged.
    for (name, pb, pc, checked) in [
        (
            "p50_latency_ns",
            baseline.latency_percentiles.p50_ns as f64,
            candidate.latency_percentiles.p50_ns as f64,
            false,
        ),
        (
            "p95_latency_ns",
            baseline.latency_percentiles.p95_ns as f64,
            candidate.latency_percentiles.p95_ns as f64,
            true,
        ),
        (
            "p99_latency_ns",
            baseline.latency_percentiles.p99_ns as f64,
            candidate.latency_percentiles.p99_ns as f64,
            true,
        ),
    ] {
        metrics.push(metric(
            name,
            pb,
            pc,
            t.max_tail_latency_shift,
            checked && pb > 0.0,
            |_d, rel| rel.abs() > t.max_tail_latency_shift,
        ));
    }

    // Bottleneck fingerprint: the observatory's latency attribution is a
    // pure function of (configuration, trace), so a shifted share means the
    // device's behaviour changed, not just its speed. Judged on the
    // absolute delta of each 0..=1 share; only meaningful when at least one
    // report attributed anything.
    let attributed =
        baseline.bottleneck.total_latency_ns > 0 || candidate.bottleneck.total_latency_ns > 0;
    for (name, fb, fc) in [
        (
            "bottleneck_channel_wait_frac",
            baseline.bottleneck.channel_wait_frac,
            candidate.bottleneck.channel_wait_frac,
        ),
        (
            "bottleneck_plane_busy_frac",
            baseline.bottleneck.plane_wait_frac,
            candidate.bottleneck.plane_wait_frac,
        ),
        (
            "bottleneck_gc_stall_frac",
            baseline.bottleneck.gc_stall_frac,
            candidate.bottleneck.gc_stall_frac,
        ),
        (
            "bottleneck_cache_miss_frac",
            baseline.bottleneck.cache_miss_frac,
            candidate.bottleneck.cache_miss_frac,
        ),
        (
            "bottleneck_host_queue_frac",
            baseline.bottleneck.host_queue_frac,
            candidate.bottleneck.host_queue_frac,
        ),
        (
            "bottleneck_slc_migration_frac",
            baseline.bottleneck.slc_migration_frac,
            candidate.bottleneck.slc_migration_frac,
        ),
    ] {
        metrics.push(metric(
            name,
            fb,
            fc,
            t.max_bottleneck_shift,
            attributed,
            |d, _rel| d.abs() > t.max_bottleneck_shift,
        ));
    }

    let mut ignored: Vec<String> = Vec::new();
    for m in &mut metrics {
        if ignore.iter().any(|i| i == &m.metric) {
            m.checked = false;
            m.regressed = false;
            ignored.push(m.metric.clone());
        }
    }

    let regressions: Vec<String> = metrics
        .iter()
        .filter(|m| m.regressed)
        .map(|m| m.metric.clone())
        .collect();
    ReportDiff {
        schema: ReportDiff::SCHEMA.to_string(),
        thresholds: *t,
        pass: regressions.is_empty(),
        regressions,
        ignored,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TunerRunTelemetry;
    use crate::tuner::IterationRecord;

    fn report_with(grade: f64, runs: u64, hits: u64, misses: u64, p95: u64) -> RunReport {
        let mut r = RunReport {
            schema: RunReport::SCHEMA.to_string(),
            ..Default::default()
        };
        r.tuner.push(TunerRunTelemetry {
            workload: "database".into(),
            best_grade: grade,
            records: vec![IterationRecord {
                iteration: 1,
                best_grade: grade,
                ..Default::default()
            }],
            ..Default::default()
        });
        r.validator.simulator_runs = runs;
        r.validator.cache_hits = hits;
        r.validator.cache_misses = misses;
        r.latency_percentiles.p50_ns = p95 / 2;
        r.latency_percentiles.p95_ns = p95;
        r.latency_percentiles.p99_ns = p95 * 2;
        r
    }

    #[test]
    fn identical_reports_pass() {
        let a = report_with(0.5, 20, 10, 10, 8_000);
        let d = diff_reports(&a, &a.clone(), &DiffThresholds::default(), &[]);
        assert!(d.pass, "regressions: {:?}", d.regressions);
        assert!(d.regressions.is_empty());
        assert_eq!(d.schema, ReportDiff::SCHEMA);
    }

    #[test]
    fn grade_drop_beyond_threshold_fails() {
        let a = report_with(0.50, 20, 10, 10, 8_000);
        let b = report_with(0.40, 20, 10, 10, 8_000); // -20% > 5%
        let d = diff_reports(&a, &b, &DiffThresholds::default(), &[]);
        assert!(!d.pass);
        assert!(d.regressions.contains(&"best_grade".to_string()));
    }

    #[test]
    fn small_grade_drop_within_threshold_passes() {
        let a = report_with(0.500, 20, 10, 10, 8_000);
        let b = report_with(0.495, 20, 10, 10, 8_000); // -1% < 5%
        let d = diff_reports(&a, &b, &DiffThresholds::default(), &[]);
        assert!(d.pass, "regressions: {:?}", d.regressions);
    }

    #[test]
    fn validation_explosion_fails() {
        let a = report_with(0.5, 20, 10, 10, 8_000);
        let b = report_with(0.5, 40, 10, 10, 8_000); // +100% > 25%
        let d = diff_reports(&a, &b, &DiffThresholds::default(), &[]);
        assert!(!d.pass);
        assert!(d.regressions.contains(&"validations".to_string()));
    }

    #[test]
    fn hit_rate_collapse_fails() {
        let a = report_with(0.5, 20, 30, 10, 8_000); // 75% hit rate
        let b = report_with(0.5, 20, 10, 30, 8_000); // 25% hit rate
        let d = diff_reports(&a, &b, &DiffThresholds::default(), &[]);
        assert!(!d.pass);
        assert!(d.regressions.contains(&"cache_hit_rate".to_string()));
    }

    #[test]
    fn tail_latency_shift_fails_in_both_directions() {
        let base = report_with(0.5, 20, 10, 10, 8_000);
        for p95 in [16_000u64, 4_000] {
            let b = report_with(0.5, 20, 10, 10, p95);
            let d = diff_reports(&base, &b, &DiffThresholds::default(), &[]);
            assert!(!d.pass, "p95 {p95} must trip the diff");
            assert!(d.regressions.contains(&"p95_latency_ns".to_string()));
        }
    }

    #[test]
    fn ignore_time_unchecks_simulate_ns() {
        let mut a = report_with(0.5, 20, 10, 10, 8_000);
        let mut b = report_with(0.5, 20, 10, 10, 8_000);
        a.validator.simulate_ns = 1_000_000;
        b.validator.simulate_ns = 100_000_000; // 100x slower
        let strict = diff_reports(&a, &b, &DiffThresholds::default(), &[]);
        assert!(!strict.pass);
        let lenient = diff_reports(
            &a,
            &b,
            &DiffThresholds {
                ignore_time: true,
                ..Default::default()
            },
            &[],
        );
        assert!(lenient.pass, "regressions: {:?}", lenient.regressions);
        let sim = lenient
            .metrics
            .iter()
            .find(|m| m.metric == "simulate_ns")
            .expect("metric present");
        assert!(!sim.checked);
    }

    #[test]
    fn empty_reports_pass_with_nothing_checked() {
        let a = RunReport::default();
        let d = diff_reports(&a, &a.clone(), &DiffThresholds::default(), &[]);
        assert!(d.pass);
        assert!(d.metrics.iter().all(|m| !m.regressed));
    }

    #[test]
    fn bottleneck_shift_beyond_threshold_fails() {
        use ssdsim::BottleneckReport;
        let mut a = report_with(0.5, 20, 10, 10, 8_000);
        let mut b = report_with(0.5, 20, 10, 10, 8_000);
        a.bottleneck = BottleneckReport::from_totals(1_000, 500, 100, 0, 0, 0, 0);
        b.bottleneck = BottleneckReport::from_totals(1_000, 100, 100, 400, 0, 0, 0);
        let d = diff_reports(&a, &b, &DiffThresholds::default(), &[]);
        assert!(!d.pass);
        assert!(d
            .regressions
            .contains(&"bottleneck_channel_wait_frac".to_string()));
        assert!(d
            .regressions
            .contains(&"bottleneck_gc_stall_frac".to_string()));
        // Same shift with a generous threshold passes.
        let lenient = DiffThresholds {
            max_bottleneck_shift: 0.5,
            ..Default::default()
        };
        let d = diff_reports(&a, &b, &lenient, &[]);
        assert!(d.pass, "regressions: {:?}", d.regressions);
    }

    #[test]
    fn bottleneck_unchecked_when_nothing_attributed() {
        let a = report_with(0.5, 20, 10, 10, 8_000);
        let d = diff_reports(&a, &a.clone(), &DiffThresholds::default(), &[]);
        let m = d
            .metrics
            .iter()
            .find(|m| m.metric == "bottleneck_gc_stall_frac")
            .expect("metric present");
        assert!(!m.checked, "all-zero bottlenecks must stay advisory");
    }

    #[test]
    fn ignore_excludes_named_metrics_from_judgement() {
        let a = report_with(0.50, 20, 10, 10, 8_000);
        let b = report_with(0.40, 40, 10, 10, 8_000); // grade + validations fail
        let strict = diff_reports(&a, &b, &DiffThresholds::default(), &[]);
        assert!(!strict.pass);
        let ignore = vec!["best_grade".to_string(), "validations".to_string()];
        let d = diff_reports(&a, &b, &DiffThresholds::default(), &ignore);
        assert!(d.pass, "regressions: {:?}", d.regressions);
        assert_eq!(d.ignored, ignore);
        for name in &ignore {
            let m = d.metrics.iter().find(|m| &m.metric == name).unwrap();
            assert!(!m.checked);
            assert!(!m.regressed);
        }
    }

    #[test]
    fn diff_serializes_round_trip() {
        let a = report_with(0.5, 20, 10, 10, 8_000);
        let b = report_with(0.4, 30, 10, 10, 16_000);
        let d = diff_reports(&a, &b, &DiffThresholds::default(), &[]);
        let json = serde_json::to_string(&d).expect("serializes");
        let back: ReportDiff = serde_json::from_str(&json).expect("parses");
        assert_eq!(d, back);
    }
}
