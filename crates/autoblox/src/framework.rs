//! The AutoBlox framework facade (Figure 3): workload clustering at the
//! front, AutoDB recall in the middle, pruning + automated tuning at the
//! back.

use crate::checkpoint::Checkpoint;
use crate::clustering::{ClusterDecision, WorkloadClusterer};
use crate::constraints::Constraints;
use crate::pruning::{coarse_prune, fine_prune, CoarseReport, FineOptions, FineReport};
use crate::tuner::{Tuner, TunerOptions, TuningOutcome, TuningTarget};
use crate::validator::Validator;
use autodb::Store;
use iotrace::gen::WorkloadKind;
use iotrace::window::WindowOptions;
use iotrace::Trace;
use mlkit::Result as MlResult;
use serde::{Deserialize, Serialize};
use ssdsim::config::SsdConfig;
use std::collections::HashMap;

/// A learned configuration as persisted in AutoDB (the JSON value format of
/// §3.5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredConfig {
    /// The workload the configuration was learned for.
    pub workload: String,
    /// The configuration itself.
    pub config: SsdConfig,
    /// Its Formula-2 grade at learning time.
    pub grade: f64,
}

/// Outcome of asking AutoBlox for a configuration for a new workload.
#[derive(Debug)]
pub enum Recommendation {
    /// A similar workload was found in AutoDB; its stored configuration is
    /// returned directly ("utilize the previously learned experience").
    Recalled {
        /// The matched cluster.
        cluster: usize,
        /// Distance to the cluster centroid.
        distance: f64,
        /// The stored configuration.
        stored: StoredConfig,
    },
    /// No match: a new configuration was learned (and stored).
    Learned {
        /// The cluster the workload was filed under (new or nearest).
        cluster: usize,
        /// Whether a brand-new cluster was created for it.
        new_cluster: bool,
        /// The tuning result.
        outcome: TuningOutcome,
    },
}

impl Recommendation {
    /// The recommended configuration, however it was obtained.
    pub fn config(&self) -> &SsdConfig {
        match self {
            Recommendation::Recalled { stored, .. } => &stored.config,
            Recommendation::Learned { outcome, .. } => &outcome.best.config,
        }
    }
}

/// Options for the framework facade.
#[derive(Debug, Clone)]
pub struct AutoBloxOptions {
    /// Tuning-loop options.
    pub tuner: TunerOptions,
    /// Fine-pruning options.
    pub fine: FineOptions,
    /// Trace windowing options for clustering.
    pub window: WindowOptions,
    /// Number of outlier workloads near the same cluster required before a
    /// new category is created (§3.1: "As AutoBlox receives a certain
    /// number (e.g., 20 by default) of such applications, AutoBlox will
    /// create a new category"). Until then an outlier is served as a member
    /// of its nearest category.
    pub outlier_threshold: usize,
    /// Clustering seed.
    pub seed: u64,
    /// When `Some(n)`, every tuning run snapshots a resumable
    /// [`Checkpoint`] into AutoDB every `n` outer iterations (keyed
    /// `checkpoint:category:<name>` / `checkpoint:cluster:<id>`); the key
    /// is deleted once the run completes. `None` (the default) disables
    /// snapshotting entirely — no serialization on the hot path.
    pub checkpoint_every: Option<u64>,
    /// When `true`, a tuning run first looks for a compatible checkpoint
    /// under its AutoDB key and continues from it instead of starting
    /// over. Incompatible or absent checkpoints fall back to a cold
    /// start.
    pub resume: bool,
    /// When `true`, every completed tuning run registers a compact
    /// [`crate::obs::RunSummary`] in AutoDB under `run:<category>:<seq>`
    /// keys — the persistent history `autoblox runs list` and the trend
    /// gate read. Off by default. Callers who want populated bottleneck
    /// shares in the history must also enable the telemetry switch (the
    /// simulator-run count is always exact).
    pub record_runs: bool,
}

impl Default for AutoBloxOptions {
    fn default() -> Self {
        AutoBloxOptions {
            tuner: TunerOptions::default(),
            fine: FineOptions::default(),
            window: WindowOptions::default(),
            outlier_threshold: 1,
            seed: 0xB10C,
            checkpoint_every: None,
            resume: false,
            record_runs: false,
        }
    }
}

/// The assembled AutoBlox framework.
#[derive(Debug)]
pub struct AutoBlox<'v> {
    constraints: Constraints,
    validator: &'v Validator,
    db: Store,
    clusterer: Option<WorkloadClusterer>,
    outlier_counts: HashMap<usize, usize>,
    opts: AutoBloxOptions,
}

impl<'v> AutoBlox<'v> {
    /// Assembles the framework around a validator and an AutoDB store.
    pub fn new(
        constraints: Constraints,
        validator: &'v Validator,
        db: Store,
        opts: AutoBloxOptions,
    ) -> Self {
        AutoBlox {
            constraints,
            validator,
            db,
            clusterer: None,
            outlier_counts: HashMap::new(),
            opts,
        }
    }

    /// The AutoDB store.
    pub fn db(&self) -> &Store {
        &self.db
    }

    /// The fitted clustering model, if trained.
    pub fn clusterer(&self) -> Option<&WorkloadClusterer> {
        self.clusterer.as_ref()
    }

    /// Trains the clustering front end on labeled traces with `k` clusters.
    ///
    /// # Errors
    ///
    /// Propagates `mlkit` errors (e.g. too few windows for `k`).
    pub fn train_clustering(&mut self, traces: &[Trace], k: usize) -> MlResult<()> {
        self.clusterer = Some(WorkloadClusterer::fit(
            traces,
            k,
            self.opts.window,
            self.opts.seed,
        )?);
        Ok(())
    }

    /// Runs both pruning stages for a workload category and returns the
    /// coarse report plus the fine report (whose order drives tuning).
    pub fn prune(&self, kind: WorkloadKind, base: &SsdConfig) -> (CoarseReport, FineReport) {
        let sink = crate::telemetry::global();
        let space = crate::params::ParamSpace::new();
        let coarse = sink.phase("coarse_prune", || {
            coarse_prune(&space, base, kind, self.validator)
        });
        sink.record_coarse(&coarse);
        let sensitive = coarse.sensitive();
        let fine = sink.phase("fine_prune", || {
            fine_prune(
                &space,
                base,
                kind,
                &sensitive,
                self.validator,
                self.opts.fine,
            )
        });
        sink.record_fine(&fine);
        (coarse, fine)
    }

    /// Learns (or recalls) an optimized configuration for a workload
    /// category and records it in AutoDB under `category:<name>`.
    pub fn tune_category(
        &self,
        kind: WorkloadKind,
        reference: &SsdConfig,
        tuning_order: Option<&[&str]>,
    ) -> TuningOutcome {
        let initial: Vec<SsdConfig> = self
            .stored_configs(&Self::category_key(kind))
            .iter()
            .map(|s| s.config.clone())
            .collect();
        let ckpt_key = format!("checkpoint:{}", Self::category_key(kind));
        let outcome = self.run_tuner(kind.into(), reference, &initial, tuning_order, &ckpt_key);
        self.store(&Self::category_key(kind), kind.name(), &outcome);
        outcome
    }

    /// Runs one tuning pass for `target`, layering the checkpoint/resume
    /// policy from [`AutoBloxOptions`] over the tuner's step-driven state
    /// machine. Snapshots are persisted in AutoDB under `ckpt_key` and
    /// removed once the run completes; resume is best-effort — a missing
    /// or incompatible checkpoint means a cold start, never an error.
    fn run_tuner(
        &self,
        target: TuningTarget<'_>,
        reference: &SsdConfig,
        initial: &[SsdConfig],
        tuning_order: Option<&[&str]>,
        ckpt_key: &str,
    ) -> TuningOutcome {
        let sink = crate::telemetry::global();
        let tuner = Tuner::new(self.constraints, self.validator, self.opts.tuner.clone());
        let resumed = if self.opts.resume {
            self.load_checkpoint(&tuner, target, ckpt_key)
        } else {
            None
        };
        if let Some(state) = &resumed {
            sink.record_checkpoint(&state.workload, "resumed", state.iterations, ckpt_key);
        }
        let state =
            resumed.unwrap_or_else(|| tuner.init_state(target, reference, initial, tuning_order));
        let every = self.opts.checkpoint_every.filter(|&n| n > 0);
        let outcome = sink.phase("tune", || {
            tuner.drive(target, state, |s| {
                let Some(n) = every else { return };
                if s.done() || s.iterations % n != 0 {
                    return;
                }
                let cp = Checkpoint::capture(&tuner, target, self.validator, s);
                if self.db.put_record(ckpt_key, &cp).is_ok() {
                    sink.record_checkpoint(&s.workload, "written", s.iterations, ckpt_key);
                }
            })
        });
        sink.record_outcome(&outcome);
        if every.is_some() || self.opts.resume {
            let _ = self.db.delete(ckpt_key);
        }
        if self.opts.record_runs {
            let stats = self.validator.stats();
            let (calibration_coverage_1s, calibration_points) =
                crate::model_obs::coverage_1s(&outcome.iteration_records);
            let summary = crate::obs::RunSummary {
                schema: crate::obs::RUNS_SCHEMA.to_string(),
                command: "framework.tune".to_string(),
                category: outcome.workload.clone(),
                device_family: reference.device_family.label().to_string(),
                seed: self.opts.tuner.seed,
                best_grade: outcome.best.grade,
                iterations: outcome.iterations as u64,
                simulator_runs: self.validator.simulator_runs(),
                bottleneck: stats.sim.bottleneck(),
                calibration_coverage_1s,
                calibration_points,
                threads: mlkit::parallel::max_threads() as u64,
                // Wall time of the executed iterations (zero with the
                // telemetry switch off); excluded from the fingerprint
                // either way.
                wall_ns: outcome.iteration_records.iter().map(|r| r.wall_ns).sum(),
            };
            if let Err(e) = crate::obs::record_run(&self.db, &summary) {
                eprintln!("warning: run registry write failed: {e}");
            }
        }
        outcome
    }

    /// Fetches, verifies, and rehydrates the checkpoint under `ckpt_key`,
    /// importing its measurement cache into the validator. Returns `None`
    /// when there is nothing usable to resume from.
    fn load_checkpoint(
        &self,
        tuner: &Tuner<'_>,
        target: TuningTarget<'_>,
        ckpt_key: &str,
    ) -> Option<crate::tuner::TuneState> {
        let cp = self.db.get_record::<Checkpoint>(ckpt_key).ok().flatten()?;
        cp.verify(tuner, target, self.validator).ok()?;
        self.validator.import_cache(&cp.cache).ok()?;
        Some(cp.state)
    }

    /// The full new-workload flow of Figure 3: classify the trace; recall a
    /// stored configuration on a cluster hit, otherwise learn a new
    /// configuration (creating a new cluster when the trace matches none)
    /// and store it for future recalls.
    ///
    /// # Panics
    ///
    /// Panics if [`AutoBlox::train_clustering`] has not been called.
    pub fn recommend(&mut self, trace: &Trace, reference: &SsdConfig) -> Recommendation {
        let clusterer = self
            .clusterer
            .as_ref()
            .expect("train_clustering must run before recommend");
        let decision = clusterer
            .classify(trace)
            .expect("trace must have at least one full window");
        match decision {
            ClusterDecision::Existing { cluster, distance } => {
                let key = Self::cluster_key(cluster);
                if let Some(stored) = self.best_stored(&key) {
                    return Recommendation::Recalled {
                        cluster,
                        distance,
                        stored,
                    };
                }
                // Known cluster but nothing learned yet: learn now.
                let outcome = self.tune_trace(trace, reference, cluster);
                self.store(&key, trace.name(), &outcome);
                Recommendation::Learned {
                    cluster,
                    new_cluster: false,
                    outcome,
                }
            }
            ClusterDecision::New { nearest, .. } => {
                // Outlier policy (§3.1): a new category is only created
                // once enough outliers accumulated near the same cluster;
                // until then the workload is served as a member of its
                // nearest category.
                let count = self.outlier_counts.entry(nearest).or_insert(0);
                *count += 1;
                if *count < self.opts.outlier_threshold {
                    let key = Self::cluster_key(nearest);
                    if let Some(stored) = self.best_stored(&key) {
                        return Recommendation::Recalled {
                            cluster: nearest,
                            distance: f64::NAN,
                            stored,
                        };
                    }
                    let outcome = self.tune_trace(trace, reference, nearest);
                    self.store(&key, trace.name(), &outcome);
                    return Recommendation::Learned {
                        cluster: nearest,
                        new_cluster: false,
                        outcome,
                    };
                }
                self.outlier_counts.remove(&nearest);
                let cluster = self
                    .clusterer
                    .as_mut()
                    .expect("trained")
                    .learn_new_cluster(trace)
                    .expect("retraining succeeds");
                let outcome = self.tune_trace(trace, reference, cluster);
                self.store(&Self::cluster_key(cluster), trace.name(), &outcome);
                Recommendation::Learned {
                    cluster,
                    new_cluster: true,
                    outcome,
                }
            }
        }
    }

    fn tune_trace(&self, trace: &Trace, reference: &SsdConfig, cluster: usize) -> TuningOutcome {
        let ckpt_key = format!("checkpoint:{}", Self::cluster_key(cluster));
        self.run_tuner(TuningTarget::Trace(trace), reference, &[], None, &ckpt_key)
    }

    fn category_key(kind: WorkloadKind) -> String {
        format!("category:{}", kind.name())
    }

    fn cluster_key(cluster: usize) -> String {
        format!("cluster:{cluster}")
    }

    fn stored_configs(&self, key: &str) -> Vec<StoredConfig> {
        self.db
            .get_record::<Vec<StoredConfig>>(key)
            .ok()
            .flatten()
            .unwrap_or_default()
    }

    fn best_stored(&self, key: &str) -> Option<StoredConfig> {
        self.stored_configs(key)
            .into_iter()
            .max_by(|a, b| a.grade.partial_cmp(&b.grade).expect("finite grades"))
    }

    fn store(&self, key: &str, workload: &str, outcome: &TuningOutcome) {
        let mut configs = self.stored_configs(key);
        configs.push(StoredConfig {
            workload: workload.to_string(),
            config: outcome.best.config.clone(),
            grade: outcome.best.grade,
        });
        // Keep the records bounded: retain the best eight.
        configs.sort_by(|a, b| b.grade.partial_cmp(&a.grade).expect("finite grades"));
        configs.truncate(8);
        let _ = self.db.put_record(key, &configs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::ValidatorOptions;
    use ssdsim::config::presets;

    fn quick_framework(v: &Validator) -> AutoBlox<'_> {
        let opts = AutoBloxOptions {
            tuner: TunerOptions {
                max_iterations: 4,
                sgd_iterations: 2,
                non_target: vec![],
                ..TunerOptions::default()
            },
            window: WindowOptions { window_len: 500 },
            ..Default::default()
        };
        AutoBlox::new(Constraints::paper_default(), v, Store::in_memory(), opts)
    }

    fn validator() -> Validator {
        Validator::new(ValidatorOptions {
            trace_events: 300,
            ..Default::default()
        })
    }

    #[test]
    fn tune_category_stores_result() {
        let v = validator();
        let fw = quick_framework(&v);
        let out = fw.tune_category(WorkloadKind::Database, &presets::intel_750(), None);
        assert!(out.best.grade >= 0.0);
        let stored: Vec<StoredConfig> = fw
            .db()
            .get_record("category:Database")
            .unwrap()
            .expect("stored");
        assert_eq!(stored.len(), 1);
        assert_eq!(stored[0].workload, "Database");
    }

    #[test]
    fn second_category_tuning_reuses_stored_seeds() {
        let v = validator();
        let fw = quick_framework(&v);
        fw.tune_category(WorkloadKind::KvStore, &presets::intel_750(), None);
        let out2 = fw.tune_category(WorkloadKind::KvStore, &presets::intel_750(), None);
        // With a seeded store the second run cannot be worse.
        assert!(out2.best.grade >= 0.0);
        let stored: Vec<StoredConfig> = fw.db().get_record("category:KVStore").unwrap().unwrap();
        assert!(stored.len() >= 2);
    }

    #[test]
    fn recommend_recalls_after_learning() {
        let v = validator();
        let mut fw = quick_framework(&v);
        let kinds = [WorkloadKind::WebSearch, WorkloadKind::Fiu];
        let train: Vec<Trace> = kinds.iter().map(|k| k.spec().generate(3_000, 5)).collect();
        fw.train_clustering(&train, 2).unwrap();

        // First encounter with a WebSearch-like trace: learned.
        let t1 = WorkloadKind::WebSearch.spec().generate(2_000, 99);
        let r1 = fw.recommend(&t1, &presets::intel_750());
        let cluster1 = match &r1 {
            Recommendation::Learned {
                cluster,
                new_cluster,
                ..
            } => {
                assert!(!new_cluster);
                *cluster
            }
            other => panic!("expected Learned, got {other:?}"),
        };

        // Second encounter: recalled from AutoDB, no tuning.
        let runs_before = v.simulator_runs();
        let t2 = WorkloadKind::WebSearch.spec().generate(2_000, 123);
        let r2 = fw.recommend(&t2, &presets::intel_750());
        match &r2 {
            Recommendation::Recalled { cluster, .. } => assert_eq!(*cluster, cluster1),
            other => panic!("expected Recalled, got {other:?}"),
        }
        assert_eq!(
            v.simulator_runs(),
            runs_before,
            "recall must not run the simulator"
        );
    }

    #[test]
    fn recommend_creates_new_cluster_for_novel_workload() {
        let v = validator();
        let mut fw = quick_framework(&v);
        let kinds = [WorkloadKind::WebSearch, WorkloadKind::BatchAnalytics];
        let train: Vec<Trace> = kinds.iter().map(|k| k.spec().generate(3_000, 5)).collect();
        fw.train_clustering(&train, 2).unwrap();
        let k_before = fw.clusterer().unwrap().k();

        // FIU is write-dominated small-random: unlike either cluster.
        let novel = WorkloadKind::Fiu.spec().generate(2_500, 9);
        let r = fw.recommend(&novel, &presets::intel_750());
        match r {
            Recommendation::Learned { new_cluster, .. } => {
                assert!(new_cluster, "FIU should not match read-heavy clusters");
                assert_eq!(fw.clusterer().unwrap().k(), k_before + 1);
            }
            Recommendation::Recalled { .. } => {
                panic!("novel workload cannot be recalled from an empty store")
            }
        }
    }

    #[test]
    fn outlier_threshold_defers_new_clusters() {
        let v = validator();
        let mut fw = quick_framework(&v);
        // Require two outliers before a new category forms.
        fw.opts.outlier_threshold = 2;
        let kinds = [WorkloadKind::WebSearch, WorkloadKind::BatchAnalytics];
        let train: Vec<Trace> = kinds.iter().map(|k| k.spec().generate(3_000, 5)).collect();
        fw.train_clustering(&train, 2).unwrap();
        let k0 = fw.clusterer().unwrap().k();

        // First FIU outlier: served by the nearest category, no new cluster.
        let novel1 = WorkloadKind::Fiu.spec().generate(2_500, 9);
        match fw.recommend(&novel1, &presets::intel_750()) {
            Recommendation::Learned { new_cluster, .. } => assert!(!new_cluster),
            Recommendation::Recalled { .. } => {}
        }
        assert_eq!(fw.clusterer().unwrap().k(), k0);

        // Second FIU outlier near the same cluster: new category created.
        let novel2 = WorkloadKind::Fiu.spec().generate(2_500, 77);
        match fw.recommend(&novel2, &presets::intel_750()) {
            Recommendation::Learned { new_cluster, .. } => assert!(new_cluster),
            other => panic!("expected a learned new cluster, got {other:?}"),
        }
        assert_eq!(fw.clusterer().unwrap().k(), k0 + 1);
    }

    #[test]
    fn resume_from_stored_checkpoint_matches_uninterrupted_run() {
        // Uninterrupted baseline.
        let v1 = validator();
        let fw1 = quick_framework(&v1);
        let full = fw1.tune_category(WorkloadKind::Database, &presets::intel_750(), None);

        // Interrupted run: drive the same problem two steps by hand, snapshot
        // it into the store under the framework's key, then let a resume-
        // enabled framework (fresh validator, so nothing is cached) continue.
        let v2 = validator();
        let fw2 = quick_framework(&v2);
        let tuner = Tuner::new(Constraints::paper_default(), &v2, fw2.opts.tuner.clone());
        let target = TuningTarget::Category(WorkloadKind::Database);
        let mut state = tuner.init_state(target, &presets::intel_750(), &[], None);
        tuner.step(target, &mut state);
        tuner.step(target, &mut state);
        let cp = Checkpoint::capture(&tuner, target, &v2, &state);

        let v3 = validator();
        let mut fw3 = quick_framework(&v3);
        fw3.opts.resume = true;
        fw3.db()
            .put_record("checkpoint:category:Database", &cp)
            .unwrap();
        let resumed = fw3.tune_category(WorkloadKind::Database, &presets::intel_750(), None);

        assert_eq!(
            serde_json::to_string(&resumed).unwrap(),
            serde_json::to_string(&full).unwrap(),
            "resumed run must reproduce the uninterrupted outcome bit-identically"
        );
        // The checkpoint key is cleaned up once the run completes.
        assert!(fw3
            .db()
            .get_record::<Checkpoint>("checkpoint:category:Database")
            .unwrap()
            .is_none());
    }

    #[test]
    #[should_panic(expected = "train_clustering")]
    fn recommend_requires_training() {
        let v = validator();
        let mut fw = quick_framework(&v);
        let t = WorkloadKind::Vdi.spec().generate(1_000, 1);
        let _ = fw.recommend(&t, &presets::intel_750());
    }
}
