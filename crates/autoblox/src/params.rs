//! The tunable SSD parameter space (§3.2 of the paper).
//!
//! Every hardware parameter is formulated as one of four ML parameter kinds
//! — *continuous* (a range divided into N endpoints), *discrete* (an explicit
//! value list), *boolean*, or *categorical* — and a configuration is
//! vectorized as one grid index per parameter. The catalog below covers the
//! 48 device specifications the paper's model tunes — plus the three
//! device-family knobs of the hybrid SLC/QLC mode (51 total) — including the
//! deliberately performance-inert ones its coarse pruning discovers.

use serde::{Deserialize, Serialize};
use ssdsim::config::{
    CacheMode, DeviceFamily, FlashTechnology, GcPolicy, Interface, MigrationPolicy,
    PlaneAllocationScheme, SsdConfig,
};
use std::fmt;

/// The four ML parameter kinds of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamKind {
    /// A numeric range divided uniformly into endpoints.
    Continuous,
    /// An explicit list of legal numeric values (e.g. PCIe widths).
    Discrete,
    /// An on/off feature flag.
    Boolean,
    /// An unordered choice (e.g. the plane-allocation scheme).
    Categorical,
}

/// Definition of one tunable parameter.
pub struct ParamDef {
    /// Stable snake_case name (used in reports and Figures 4/5).
    pub name: &'static str,
    /// ML kind.
    pub kind: ParamKind,
    /// The value grid as display numbers (grid index -> value). Booleans use
    /// `[0, 1]`; categoricals use `0..k`.
    pub grid: Vec<f64>,
    /// Reads the current grid index out of a configuration.
    pub get: fn(&SsdConfig) -> usize,
    /// Writes the value at a grid index into a configuration.
    pub set: fn(&mut SsdConfig, usize),
}

impl fmt::Debug for ParamDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParamDef")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("grid_len", &self.grid.len())
            .finish()
    }
}

impl ParamDef {
    /// Number of grid points.
    pub fn cardinality(&self) -> usize {
        self.grid.len()
    }

    /// Nearest grid index for a raw value.
    pub fn nearest_index(&self, value: f64) -> usize {
        self.grid
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (*a - value)
                    .abs()
                    .partial_cmp(&(*b - value).abs())
                    .expect("finite grid")
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

macro_rules! numeric_param {
    ($name:literal, $kind:expr, $grid:expr, $field:ident, $ty:ty) => {
        ParamDef {
            name: $name,
            kind: $kind,
            grid: $grid,
            get: |c| {
                let grid = param_grid($name);
                let v = c.$field as f64;
                nearest(&grid, v)
            },
            set: |c, i| {
                let grid = param_grid($name);
                c.$field = grid[i.min(grid.len() - 1)] as $ty;
            },
        }
    };
}

fn nearest(grid: &[f64], value: f64) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, &g) in grid.iter().enumerate() {
        let d = (g - value).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

fn lin_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2);
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// The value grid for a named parameter (panics on unknown names).
///
/// # Panics
///
/// Panics if `name` is not in the catalog.
pub fn param_grid(name: &str) -> Vec<f64> {
    match name {
        "channel_count" => vec![1., 2., 4., 6., 8., 10., 12., 16., 20., 24., 32., 48., 64.],
        "chip_no_per_channel" => vec![1., 2., 3., 4., 5., 6., 8., 10., 12., 16., 24., 32., 64.],
        "die_no_per_chip" => vec![1., 2., 4., 8., 16.],
        "plane_no_per_die" => vec![1., 2., 3., 4., 8., 16.],
        "block_no_per_plane" => vec![128., 256., 512., 1024., 2048., 4096.],
        "page_no_per_block" => vec![128., 256., 384., 512., 768., 1024.],
        "page_capacity" => vec![2048., 4096., 8192., 16384.],
        // Flash timing parameters are expressed as factors of the flash
        // technology's baseline latency (Table 7 bounds e.g. MLC reads to
        // 41-83 us, i.e. factors ~0.5-1.0 of the 83 us baseline).
        "read_latency" => lin_grid(0.5, 1.0, 43),
        "program_latency" => lin_grid(0.5, 1.0, 40),
        "erase_latency" => lin_grid(0.5, 1.0, 17),
        "channel_transfer_rate" => {
            vec![
                67., 100., 133., 166., 200., 266., 333., 400., 533., 667., 800., 1066., 1200.,
            ]
        }
        "channel_width" => vec![8., 16., 32.],
        "flash_cmd_overhead" => lin_grid(100., 2_000., 20),
        "suspend_program_time" => lin_grid(1_000., 20_000., 20),
        "suspend_erase_time" => lin_grid(2_000., 40_000., 20),
        "data_cache_size" => lin_grid(64., 2048., 32),
        "cmt_capacity" => lin_grid(64., 2048., 32),
        "dram_data_rate" => vec![800., 1066., 1333., 1600., 1866., 2133., 2400.],
        "dram_burst_size" => vec![16., 32., 64., 128.],
        "cmt_entry_size" => vec![4., 8., 16.],
        "overprovisioning_ratio" => lin_grid(0.03, 0.40, 20),
        "gc_threshold" => lin_grid(0.01, 0.30, 20),
        "gc_hard_threshold" => lin_grid(0.001, 0.01, 10),
        "static_wearleveling_threshold" => lin_grid(10., 2_000., 20),
        "io_queue_depth" => vec![1., 2., 4., 8., 16., 32., 64., 128., 256.],
        "queue_count" => vec![1., 2., 4., 8., 16.],
        "pcie_lane_count" => vec![1., 2., 4., 8., 16.],
        "pcie_lane_bandwidth" => vec![2., 5., 8., 16., 32.],
        "host_cmd_overhead" => lin_grid(500., 20_000., 20),
        "page_metadata_capacity" => lin_grid(64., 2048., 16),
        "ecc_engine_count" => vec![1., 2., 4., 8., 16., 32.],
        "read_retry_limit" => lin_grid(1., 16., 16),
        "background_scan_interval" => lin_grid(100., 10_000., 16),
        "init_delay" => lin_grid(100., 5_000., 16),
        "firmware_sram_size" => vec![128., 256., 512., 1024., 2048.],
        "thermal_throttle_threshold" => lin_grid(50., 110., 13),
        "pfail_flush_budget" => lin_grid(500., 10_000., 16),
        "dram_refresh_interval" => vec![16., 32., 64., 128., 256.],
        "nand_vcc" => lin_grid(2500., 3600., 12),
        "slc_cache_pct" => lin_grid(5., 50., 10),
        "slc_migration_threshold_pct" => lin_grid(10., 80., 8),
        other => panic!("unknown parameter {other:?}"),
    }
}

/// Builds the full 51-parameter catalog.
pub fn catalog() -> Vec<ParamDef> {
    use ParamKind::*;
    let mut params = vec![
        // ---- Layout (7) ----
        numeric_param!(
            "channel_count",
            Discrete,
            param_grid("channel_count"),
            channel_count,
            u32
        ),
        numeric_param!(
            "chip_no_per_channel",
            Discrete,
            param_grid("chip_no_per_channel"),
            chips_per_channel,
            u32
        ),
        numeric_param!(
            "die_no_per_chip",
            Discrete,
            param_grid("die_no_per_chip"),
            dies_per_chip,
            u32
        ),
        numeric_param!(
            "plane_no_per_die",
            Discrete,
            param_grid("plane_no_per_die"),
            planes_per_die,
            u32
        ),
        numeric_param!(
            "block_no_per_plane",
            Discrete,
            param_grid("block_no_per_plane"),
            blocks_per_plane,
            u32
        ),
        numeric_param!(
            "page_no_per_block",
            Discrete,
            param_grid("page_no_per_block"),
            pages_per_block,
            u32
        ),
        numeric_param!(
            "page_capacity",
            Discrete,
            param_grid("page_capacity"),
            page_size_bytes,
            u32
        ),
        // ---- Flash timing (factors of the technology baseline) ----
        ParamDef {
            name: "read_latency",
            kind: Continuous,
            grid: param_grid("read_latency"),
            get: |c| {
                let base = c.flash_technology.base_read_ns() as f64;
                nearest(&param_grid("read_latency"), c.read_latency_ns as f64 / base)
            },
            set: |c, i| {
                let g = param_grid("read_latency");
                let base = c.flash_technology.base_read_ns() as f64;
                c.read_latency_ns = (g[i.min(g.len() - 1)] * base) as u64;
            },
        },
        ParamDef {
            name: "program_latency",
            kind: Continuous,
            grid: param_grid("program_latency"),
            get: |c| {
                let base = c.flash_technology.base_program_ns() as f64;
                nearest(
                    &param_grid("program_latency"),
                    c.program_latency_ns as f64 / base,
                )
            },
            set: |c, i| {
                let g = param_grid("program_latency");
                let base = c.flash_technology.base_program_ns() as f64;
                c.program_latency_ns = (g[i.min(g.len() - 1)] * base) as u64;
            },
        },
        ParamDef {
            name: "erase_latency",
            kind: Continuous,
            grid: param_grid("erase_latency"),
            get: |c| {
                let base = c.flash_technology.base_erase_ns() as f64;
                nearest(
                    &param_grid("erase_latency"),
                    c.erase_latency_ns as f64 / base,
                )
            },
            set: |c, i| {
                let g = param_grid("erase_latency");
                let base = c.flash_technology.base_erase_ns() as f64;
                c.erase_latency_ns = (g[i.min(g.len() - 1)] * base) as u64;
            },
        },
        numeric_param!(
            "channel_transfer_rate",
            Discrete,
            param_grid("channel_transfer_rate"),
            channel_transfer_rate_mts,
            u32
        ),
        numeric_param!(
            "channel_width",
            Discrete,
            param_grid("channel_width"),
            channel_width_bits,
            u32
        ),
        numeric_param!(
            "flash_cmd_overhead",
            Continuous,
            param_grid("flash_cmd_overhead"),
            flash_cmd_overhead_ns,
            u64
        ),
        numeric_param!(
            "suspend_program_time",
            Continuous,
            param_grid("suspend_program_time"),
            suspend_program_ns,
            u64
        ),
        numeric_param!(
            "suspend_erase_time",
            Continuous,
            param_grid("suspend_erase_time"),
            suspend_erase_ns,
            u64
        ),
        // ---- Controller DRAM ----
        numeric_param!(
            "data_cache_size",
            Continuous,
            param_grid("data_cache_size"),
            data_cache_mb,
            u32
        ),
        numeric_param!(
            "cmt_capacity",
            Continuous,
            param_grid("cmt_capacity"),
            cmt_capacity_mb,
            u32
        ),
        numeric_param!(
            "dram_data_rate",
            Discrete,
            param_grid("dram_data_rate"),
            dram_data_rate_mts,
            u32
        ),
        numeric_param!(
            "dram_burst_size",
            Discrete,
            param_grid("dram_burst_size"),
            dram_burst_bytes,
            u32
        ),
        numeric_param!(
            "cmt_entry_size",
            Discrete,
            param_grid("cmt_entry_size"),
            cmt_entry_bytes,
            u32
        ),
        // ---- FTL / GC ----
        ParamDef {
            name: "overprovisioning_ratio",
            kind: Continuous,
            grid: param_grid("overprovisioning_ratio"),
            get: |c| {
                nearest(
                    &param_grid("overprovisioning_ratio"),
                    c.overprovisioning_ratio,
                )
            },
            set: |c, i| {
                let g = param_grid("overprovisioning_ratio");
                c.overprovisioning_ratio = g[i.min(g.len() - 1)];
            },
        },
        ParamDef {
            name: "gc_threshold",
            kind: Continuous,
            grid: param_grid("gc_threshold"),
            get: |c| nearest(&param_grid("gc_threshold"), c.gc_threshold),
            set: |c, i| {
                let g = param_grid("gc_threshold");
                c.gc_threshold = g[i.min(g.len() - 1)];
                // Maintain the validation invariant.
                c.gc_hard_threshold = c.gc_hard_threshold.min(c.gc_threshold);
            },
        },
        ParamDef {
            name: "gc_hard_threshold",
            kind: Continuous,
            grid: param_grid("gc_hard_threshold"),
            get: |c| nearest(&param_grid("gc_hard_threshold"), c.gc_hard_threshold),
            set: |c, i| {
                let g = param_grid("gc_hard_threshold");
                c.gc_hard_threshold = g[i.min(g.len() - 1)].min(c.gc_threshold);
            },
        },
        numeric_param!(
            "static_wearleveling_threshold",
            Continuous,
            param_grid("static_wearleveling_threshold"),
            static_wearleveling_threshold,
            u32
        ),
        // ---- Host interface ----
        numeric_param!(
            "io_queue_depth",
            Discrete,
            param_grid("io_queue_depth"),
            io_queue_depth,
            u32
        ),
        numeric_param!(
            "queue_count",
            Discrete,
            param_grid("queue_count"),
            queue_count,
            u32
        ),
        numeric_param!(
            "pcie_lane_count",
            Discrete,
            param_grid("pcie_lane_count"),
            pcie_lane_count,
            u32
        ),
        numeric_param!(
            "pcie_lane_bandwidth",
            Discrete,
            param_grid("pcie_lane_bandwidth"),
            pcie_lane_gtps,
            u32
        ),
        numeric_param!(
            "host_cmd_overhead",
            Continuous,
            param_grid("host_cmd_overhead"),
            host_cmd_overhead_ns,
            u64
        ),
        // ---- Performance-inert numerics ----
        numeric_param!(
            "page_metadata_capacity",
            Continuous,
            param_grid("page_metadata_capacity"),
            page_metadata_bytes,
            u32
        ),
        numeric_param!(
            "ecc_engine_count",
            Discrete,
            param_grid("ecc_engine_count"),
            ecc_engine_count,
            u32
        ),
        numeric_param!(
            "read_retry_limit",
            Continuous,
            param_grid("read_retry_limit"),
            read_retry_limit,
            u32
        ),
        numeric_param!(
            "background_scan_interval",
            Continuous,
            param_grid("background_scan_interval"),
            background_scan_interval_ms,
            u32
        ),
        numeric_param!(
            "init_delay",
            Continuous,
            param_grid("init_delay"),
            init_delay_us,
            u32
        ),
        numeric_param!(
            "firmware_sram_size",
            Discrete,
            param_grid("firmware_sram_size"),
            firmware_sram_kb,
            u32
        ),
        numeric_param!(
            "thermal_throttle_threshold",
            Continuous,
            param_grid("thermal_throttle_threshold"),
            thermal_throttle_c,
            u32
        ),
        numeric_param!(
            "pfail_flush_budget",
            Continuous,
            param_grid("pfail_flush_budget"),
            pfail_flush_budget_uj,
            u32
        ),
        numeric_param!(
            "dram_refresh_interval",
            Discrete,
            param_grid("dram_refresh_interval"),
            dram_refresh_interval_us,
            u32
        ),
        numeric_param!(
            "nand_vcc",
            Continuous,
            param_grid("nand_vcc"),
            nand_vcc_mv,
            u32
        ),
    ];

    // ---- Booleans (5) ----
    params.push(ParamDef {
        name: "greedy_gc",
        kind: Boolean,
        grid: vec![0., 1.],
        get: |c| (c.gc_policy == GcPolicy::Greedy) as usize,
        set: |c, i| {
            c.gc_policy = if i > 0 {
                GcPolicy::Greedy
            } else {
                GcPolicy::Random
            };
        },
    });
    params.push(ParamDef {
        name: "preemptible_gc",
        kind: Boolean,
        grid: vec![0., 1.],
        get: |c| c.preemptible_gc as usize,
        set: |c, i| c.preemptible_gc = i > 0,
    });
    params.push(ParamDef {
        name: "static_wearleveling",
        kind: Boolean,
        grid: vec![0., 1.],
        get: |c| c.static_wearleveling_enabled as usize,
        set: |c, i| c.static_wearleveling_enabled = i > 0,
    });
    params.push(ParamDef {
        name: "program_suspension",
        kind: Boolean,
        grid: vec![0., 1.],
        get: |c| c.program_suspension_enabled as usize,
        set: |c, i| c.program_suspension_enabled = i > 0,
    });
    params.push(ParamDef {
        name: "erase_suspension",
        kind: Boolean,
        grid: vec![0., 1.],
        get: |c| c.erase_suspension_enabled as usize,
        set: |c, i| c.erase_suspension_enabled = i > 0,
    });

    // ---- Categoricals ----
    params.push(ParamDef {
        name: "plane_allocation_scheme",
        kind: Categorical,
        grid: (0..16).map(|i| i as f64).collect(),
        get: |c| c.plane_allocation_scheme.index(),
        set: |c, i| c.plane_allocation_scheme = PlaneAllocationScheme::ALL[i.min(15)],
    });
    params.push(ParamDef {
        name: "write_back_cache",
        kind: Boolean,
        grid: vec![0., 1.],
        get: |c| (c.cache_mode == CacheMode::WriteBack) as usize,
        set: |c, i| {
            c.cache_mode = if i > 0 {
                CacheMode::WriteBack
            } else {
                CacheMode::WriteThrough
            };
        },
    });
    params.push(ParamDef {
        name: "flash_technology",
        kind: Categorical,
        grid: vec![0., 1., 2., 3.],
        get: |c| match c.flash_technology {
            FlashTechnology::Slc => 0,
            FlashTechnology::Mlc => 1,
            FlashTechnology::Tlc => 2,
            FlashTechnology::Qlc => 3,
        },
        set: |c, i| {
            c.flash_technology = match i {
                0 => FlashTechnology::Slc,
                1 => FlashTechnology::Mlc,
                2 => FlashTechnology::Tlc,
                _ => FlashTechnology::Qlc,
            };
        },
    });
    params.push(ParamDef {
        name: "interface",
        kind: Categorical,
        grid: vec![0., 1.],
        get: |c| match c.interface {
            Interface::Nvme => 0,
            Interface::Sata => 1,
        },
        set: |c, i| {
            c.interface = if i == 0 {
                Interface::Nvme
            } else {
                Interface::Sata
            };
        },
    });

    // ---- Device family (hybrid SLC cache) ----
    // These knobs only act on hybrid configurations: on a homogeneous
    // device `get` reads index 0 and `set` is a no-op, so the enlarged
    // space never flips a family mid-search (the family is pinned by the
    // constraints, not tuned).
    params.push(ParamDef {
        name: "slc_cache_pct",
        kind: Continuous,
        grid: param_grid("slc_cache_pct"),
        get: |c| match c.device_family {
            DeviceFamily::HybridSlcCache {
                cache_blocks_pct, ..
            } => nearest(&param_grid("slc_cache_pct"), cache_blocks_pct),
            DeviceFamily::Homogeneous => 0,
        },
        set: |c, i| {
            if let DeviceFamily::HybridSlcCache {
                cache_blocks_pct, ..
            } = &mut c.device_family
            {
                let g = param_grid("slc_cache_pct");
                *cache_blocks_pct = g[i.min(g.len() - 1)];
            }
        },
    });
    params.push(ParamDef {
        name: "slc_migration_threshold_pct",
        kind: Continuous,
        grid: param_grid("slc_migration_threshold_pct"),
        get: |c| match c.device_family {
            DeviceFamily::HybridSlcCache {
                migration_threshold_pct,
                ..
            } => nearest(
                &param_grid("slc_migration_threshold_pct"),
                migration_threshold_pct,
            ),
            DeviceFamily::Homogeneous => 0,
        },
        set: |c, i| {
            if let DeviceFamily::HybridSlcCache {
                migration_threshold_pct,
                ..
            } = &mut c.device_family
            {
                let g = param_grid("slc_migration_threshold_pct");
                *migration_threshold_pct = g[i.min(g.len() - 1)];
            }
        },
    });
    params.push(ParamDef {
        name: "slc_migration_policy",
        kind: Categorical,
        grid: vec![0., 1.],
        get: |c| match c.device_family {
            DeviceFamily::HybridSlcCache {
                migration_policy, ..
            } => migration_policy.index(),
            DeviceFamily::Homogeneous => 0,
        },
        set: |c, i| {
            if let DeviceFamily::HybridSlcCache {
                migration_policy, ..
            } = &mut c.device_family
            {
                *migration_policy = MigrationPolicy::ALL[i.min(1)];
            }
        },
    });
    params
}

/// The parameter space: the catalog plus vectorization and neighbor moves.
#[derive(Debug)]
pub struct ParamSpace {
    params: Vec<ParamDef>,
}

impl Default for ParamSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl ParamSpace {
    /// Builds the full catalog.
    pub fn new() -> Self {
        ParamSpace { params: catalog() }
    }

    /// Builds a space restricted to the named parameters (used after
    /// pruning). Unknown names are ignored.
    pub fn with_params(names: &[&str]) -> Self {
        let params = catalog()
            .into_iter()
            .filter(|p| names.contains(&p.name))
            .collect();
        ParamSpace { params }
    }

    /// All parameter definitions.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` for an empty space.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Looks up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&ParamDef> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Index of a parameter by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// Vectorizes a configuration as one grid index per parameter.
    pub fn vectorize(&self, cfg: &SsdConfig) -> Vec<usize> {
        self.params.iter().map(|p| (p.get)(cfg)).collect()
    }

    /// Vectorizes as normalized floats in `[0, 1]` (GPR feature space).
    pub fn vectorize_normalized(&self, cfg: &SsdConfig) -> Vec<f64> {
        self.params
            .iter()
            .map(|p| {
                let idx = (p.get)(cfg);
                if p.cardinality() > 1 {
                    idx as f64 / (p.cardinality() - 1) as f64
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Applies a grid-index vector onto a base configuration.
    ///
    /// # Panics
    ///
    /// Panics if `vec.len()` differs from the parameter count.
    pub fn apply(&self, base: &SsdConfig, vec: &[usize]) -> SsdConfig {
        assert_eq!(vec.len(), self.params.len(), "vector length mismatch");
        let mut cfg = base.clone();
        for (p, &idx) in self.params.iter().zip(vec) {
            (p.set)(&mut cfg, idx);
        }
        cfg
    }

    /// Manhattan distance between two grid-index vectors (the exploration
    /// bound of §3.4). Categorical mismatches count 1.
    ///
    /// # Panics
    ///
    /// Panics if the vectors' lengths differ from the parameter count.
    pub fn manhattan(&self, a: &[usize], b: &[usize]) -> u64 {
        assert_eq!(a.len(), self.params.len());
        assert_eq!(b.len(), self.params.len());
        self.params
            .iter()
            .zip(a.iter().zip(b))
            .map(|(p, (&x, &y))| match p.kind {
                ParamKind::Categorical => u64::from(x != y),
                _ => (x as i64 - y as i64).unsigned_abs(),
            })
            .sum()
    }

    /// Enumerates the single-step neighbor moves of `vec` for parameter
    /// `param_idx`: ±1 for ordered kinds, every other category for
    /// categoricals. Returns full neighbor vectors.
    pub fn neighbors_of_param(&self, vec: &[usize], param_idx: usize) -> Vec<Vec<usize>> {
        let p = &self.params[param_idx];
        let cur = vec[param_idx];
        let mut out = Vec::new();
        match p.kind {
            ParamKind::Categorical => {
                for alt in 0..p.cardinality() {
                    if alt != cur {
                        let mut v = vec.to_vec();
                        v[param_idx] = alt;
                        out.push(v);
                    }
                }
            }
            _ => {
                if cur + 1 < p.cardinality() {
                    let mut v = vec.to_vec();
                    v[param_idx] = cur + 1;
                    out.push(v);
                }
                if cur > 0 {
                    let mut v = vec.to_vec();
                    v[param_idx] = cur - 1;
                    out.push(v);
                }
            }
        }
        out
    }

    /// Total size of the search space (product of cardinalities), saturating.
    pub fn search_space_size(&self) -> f64 {
        self.params.iter().map(|p| p.cardinality() as f64).product()
    }

    /// Names of all parameters with a numeric (continuous/discrete) kind.
    pub fn numeric_names(&self) -> Vec<&'static str> {
        self.params
            .iter()
            .filter(|p| matches!(p.kind, ParamKind::Continuous | ParamKind::Discrete))
            .map(|p| p.name)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_51_parameters() {
        let space = ParamSpace::new();
        assert_eq!(
            space.len(),
            51,
            "paper models 48 device specifications; the hybrid SLC/QLC mode adds 3"
        );
        assert!(!space.is_empty());
    }

    #[test]
    fn names_are_unique() {
        let space = ParamSpace::new();
        let mut names: Vec<_> = space.params().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), space.len());
    }

    #[test]
    fn vectorize_apply_roundtrip() {
        let space = ParamSpace::new();
        let cfg = SsdConfig::default();
        let vec = space.vectorize(&cfg);
        let cfg2 = space.apply(&cfg, &vec);
        let vec2 = space.vectorize(&cfg2);
        assert_eq!(vec, vec2, "apply(vectorize(c)) must be a fixed point");
    }

    #[test]
    fn apply_changes_fields() {
        let space = ParamSpace::new();
        let cfg = SsdConfig::default();
        let mut vec = space.vectorize(&cfg);
        let ch = space.index_of("channel_count").unwrap();
        vec[ch] = 0; // 1 channel
        let cfg2 = space.apply(&cfg, &vec);
        assert_eq!(cfg2.channel_count, 1);
    }

    #[test]
    fn normalized_vector_in_unit_cube() {
        let space = ParamSpace::new();
        let v = space.vectorize_normalized(&SsdConfig::default());
        assert_eq!(v.len(), space.len());
        assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn manhattan_distance_counts_steps() {
        let space = ParamSpace::new();
        let cfg = SsdConfig::default();
        let a = space.vectorize(&cfg);
        let mut b = a.clone();
        let qd = space.index_of("io_queue_depth").unwrap();
        b[qd] = a[qd] + 2;
        assert_eq!(space.manhattan(&a, &b), 2);
        // Categorical counts 1 regardless of index distance.
        let pas = space.index_of("plane_allocation_scheme").unwrap();
        b[pas] = (a[pas] + 7) % 16;
        assert_eq!(space.manhattan(&a, &b), 3);
    }

    #[test]
    fn neighbors_respect_bounds() {
        let space = ParamSpace::new();
        let cfg = SsdConfig::default();
        let mut vec = space.vectorize(&cfg);
        let qd = space.index_of("io_queue_depth").unwrap();
        vec[qd] = 0;
        let ns = space.neighbors_of_param(&vec, qd);
        assert_eq!(ns.len(), 1); // only +1 possible at the lower edge
        assert_eq!(ns[0][qd], 1);
    }

    #[test]
    fn categorical_neighbors_enumerate_all_alternatives() {
        let space = ParamSpace::new();
        let vec = space.vectorize(&SsdConfig::default());
        let pas = space.index_of("plane_allocation_scheme").unwrap();
        let ns = space.neighbors_of_param(&vec, pas);
        assert_eq!(ns.len(), 15);
    }

    #[test]
    fn search_space_is_astronomical() {
        let space = ParamSpace::new();
        // The paper reports "a search space of billions of possible
        // configurations" — ours is much larger before pruning.
        assert!(space.search_space_size() > 1e9);
    }

    #[test]
    fn restricted_space() {
        let space = ParamSpace::with_params(&["channel_count", "data_cache_size", "bogus"]);
        assert_eq!(space.len(), 2);
        assert!(space.param("channel_count").is_some());
        assert!(space.param("bogus").is_none());
    }

    #[test]
    fn numeric_names_excludes_flags() {
        let space = ParamSpace::new();
        let names = space.numeric_names();
        assert!(names.contains(&"channel_count"));
        assert!(!names.contains(&"greedy_gc"));
        assert!(!names.contains(&"plane_allocation_scheme"));
        // The paper's Figure 4 sweeps the numeric parameters.
        assert!(names.len() >= 35);
    }

    #[test]
    fn setting_gc_threshold_maintains_invariant() {
        let space = ParamSpace::new();
        let mut cfg = SsdConfig::default();
        let p = space.param("gc_threshold").unwrap();
        (p.set)(&mut cfg, 0); // smallest threshold
        assert!(cfg.gc_hard_threshold <= cfg.gc_threshold);
        cfg.validate().unwrap();
    }

    #[test]
    fn nearest_index_snaps() {
        let space = ParamSpace::new();
        let p = space.param("channel_count").unwrap();
        assert_eq!(p.grid[p.nearest_index(13.0)], 12.0);
        assert_eq!(p.grid[p.nearest_index(0.0)], 1.0);
        assert_eq!(p.grid[p.nearest_index(1e9)], 64.0);
    }
}
