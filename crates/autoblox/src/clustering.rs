//! Learning-based workload clustering (§3.1).
//!
//! Block I/O traces are windowed (3,000 entries), each window is reduced to
//! an access-pattern feature vector, features are standardized and projected
//! to 5 dimensions with PCA, and k-means groups the projected windows. A new
//! workload joins the cluster whose centroid is nearest to the mean of its
//! projected windows; if that distance exceeds the new-cluster threshold,
//! the model is retrained with one more cluster — exactly the workflow in
//! the paper.

use iotrace::window::{window_features, WindowOptions};
use iotrace::Trace;
use mlkit::kmeans::KMeans;
use mlkit::linalg::Matrix;
use mlkit::pca::Pca;
use mlkit::scale::StandardScaler;
use mlkit::{MlError, Result};
use serde::{Deserialize, Serialize};

/// PCA output dimensionality (5 in the paper, capturing ~70% of variance).
pub const PCA_DIMS: usize = 5;

/// Outcome of classifying a new workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClusterDecision {
    /// The workload belongs to an existing cluster.
    Existing {
        /// Cluster id.
        cluster: usize,
        /// Euclidean distance from the workload's center to the centroid.
        distance: f64,
    },
    /// The workload is farther than the threshold from every centroid and
    /// should seed a new cluster.
    New {
        /// Nearest existing cluster (for reference).
        nearest: usize,
        /// Distance to that nearest centroid.
        distance: f64,
    },
}

impl ClusterDecision {
    /// The cluster id when the decision is `Existing`.
    pub fn existing(self) -> Option<usize> {
        match self {
            ClusterDecision::Existing { cluster, .. } => Some(cluster),
            ClusterDecision::New { .. } => None,
        }
    }
}

/// A fitted workload clustering model.
#[derive(Debug)]
pub struct WorkloadClusterer {
    scaler: StandardScaler,
    pca: Pca,
    kmeans: KMeans,
    window: WindowOptions,
    threshold: f64,
    training: Matrix,
    seed: u64,
}

impl WorkloadClusterer {
    /// Fits the pipeline on training traces with `k` clusters.
    ///
    /// The new-cluster threshold is derived from the fitted model as the
    /// minimum distance between existing centroids (the paper's rule: "this
    /// threshold corresponds to the minimum distance between existing
    /// clusters").
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InsufficientData`] if the traces yield fewer
    /// windows than `k`, or other `mlkit` errors from the underlying models.
    pub fn fit(traces: &[Trace], k: usize, window: WindowOptions, seed: u64) -> Result<Self> {
        Self::fit_with_dims(traces, k, window, seed, PCA_DIMS)
    }

    /// Fits the pipeline choosing `k` automatically within `k_range` by
    /// maximizing the silhouette score of the projected windows — useful
    /// when the number of workload categories is unknown (the paper sets k
    /// to the known category count; this is the natural extension).
    ///
    /// Returns the fitted model and the chosen `k`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidArgument`] for an empty range, and
    /// propagates fitting errors if no candidate `k` fits.
    pub fn fit_auto_k(
        traces: &[Trace],
        k_range: std::ops::RangeInclusive<usize>,
        window: WindowOptions,
        seed: u64,
    ) -> Result<(Self, usize)> {
        if k_range.is_empty() {
            return Err(MlError::InvalidArgument("empty k range".into()));
        }
        let mut best: Option<(Self, usize, f64)> = None;
        let mut last_err = None;
        for k in k_range {
            match Self::fit(traces, k, window, seed) {
                Ok(model) => {
                    let labels = match model.kmeans.predict(&model.training) {
                        Ok(l) => l,
                        Err(e) => {
                            last_err = Some(e);
                            continue;
                        }
                    };
                    let score = mlkit::metrics::silhouette_score(&model.training, &labels)
                        .unwrap_or(f64::NEG_INFINITY);
                    if best.as_ref().is_none_or(|(_, _, s)| score > *s) {
                        best = Some((model, k, score));
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        match best {
            Some((model, k, _)) => Ok((model, k)),
            None => Err(last_err.unwrap_or_else(|| {
                MlError::InsufficientData("no k in range could be fitted".into())
            })),
        }
    }

    /// Like [`WorkloadClusterer::fit`] but with an explicit PCA output
    /// dimensionality (used by the clustering-parameter ablation).
    ///
    /// # Errors
    ///
    /// Same as [`WorkloadClusterer::fit`].
    pub fn fit_with_dims(
        traces: &[Trace],
        k: usize,
        window: WindowOptions,
        seed: u64,
        pca_dims: usize,
    ) -> Result<Self> {
        let _span = telemetry::span::Span::enter_keyed("cluster.fit", k as u64);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for t in traces {
            rows.extend(window_features(t, window));
        }
        if rows.len() < k.max(2) {
            return Err(MlError::InsufficientData(format!(
                "clustering needs at least {} windows, got {}",
                k.max(2),
                rows.len()
            )));
        }
        let raw = Matrix::from_rows(&rows);
        let scaler = StandardScaler::fit(&raw)?;
        let scaled = scaler.transform(&raw)?;
        let dims = pca_dims.clamp(1, scaled.cols());
        let pca = Pca::fit(&scaled, dims)?;
        let projected = pca.transform(&scaled)?;
        let kmeans = KMeans::fit(&projected, k, seed)?;
        let threshold = Self::min_centroid_distance(&kmeans);
        Ok(WorkloadClusterer {
            scaler,
            pca,
            kmeans,
            window,
            threshold,
            training: projected,
            seed,
        })
    }

    fn min_centroid_distance(kmeans: &KMeans) -> f64 {
        let c = kmeans.centroids();
        let mut min = f64::INFINITY;
        for i in 0..c.rows() {
            for j in (i + 1)..c.rows() {
                let d = mlkit::linalg::sq_dist(c.row(i), c.row(j)).sqrt();
                min = min.min(d);
            }
        }
        if min.is_finite() {
            min
        } else {
            // Single cluster: accept anything within a generous radius.
            f64::MAX
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.kmeans.k()
    }

    /// The new-cluster distance threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Overrides the new-cluster threshold.
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// Fraction of total variance captured by the PCA projection.
    pub fn explained_variance(&self) -> f64 {
        self.pca.explained_variance_ratio().iter().sum()
    }

    /// Projects a trace's windows into PCA space (rows = windows). Used to
    /// regenerate Figure 2.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InsufficientData`] if the trace has fewer events
    /// than one window.
    pub fn project(&self, trace: &Trace) -> Result<Matrix> {
        let rows = window_features(trace, self.window);
        if rows.is_empty() {
            return Err(MlError::InsufficientData(format!(
                "trace {:?} has no complete windows",
                trace.name()
            )));
        }
        let raw = Matrix::from_rows(&rows);
        let scaled = self.scaler.transform(&raw)?;
        self.pca.transform(&scaled)
    }

    /// Mean PCA-space position of a trace (the "center of the examined data
    /// points" of §3.1).
    ///
    /// # Errors
    ///
    /// Propagates [`WorkloadClusterer::project`] errors.
    pub fn center(&self, trace: &Trace) -> Result<Vec<f64>> {
        let p = self.project(trace)?;
        let mut center = vec![0.0; p.cols()];
        for r in 0..p.rows() {
            for (c, v) in center.iter_mut().enumerate() {
                *v += p[(r, c)];
            }
        }
        for v in &mut center {
            *v /= p.rows() as f64;
        }
        Ok(center)
    }

    /// Classifies a new workload: nearest cluster, or `New` when the
    /// distance exceeds the threshold.
    ///
    /// # Errors
    ///
    /// Propagates [`WorkloadClusterer::project`] errors.
    pub fn classify(&self, trace: &Trace) -> Result<ClusterDecision> {
        let _span = telemetry::span::Span::enter_keyed(
            "cluster.classify",
            telemetry::span::key_str(trace.name()),
        );
        let center = self.center(trace)?;
        let cluster = self.kmeans.predict_row(&center)?;
        let distance = self.kmeans.distance_to_nearest(&center)?;
        if distance <= self.threshold {
            Ok(ClusterDecision::Existing { cluster, distance })
        } else {
            Ok(ClusterDecision::New {
                nearest: cluster,
                distance,
            })
        }
    }

    /// Per-window cluster assignments for a trace.
    ///
    /// # Errors
    ///
    /// Propagates [`WorkloadClusterer::project`] errors.
    pub fn classify_windows(&self, trace: &Trace) -> Result<Vec<usize>> {
        let p = self.project(trace)?;
        self.kmeans.predict(&p)
    }

    /// Retrains the k-means stage with one extra cluster, seeding it with
    /// the windows of `trace` — the paper's response to an unmatched
    /// workload.
    ///
    /// Returns the id of the new cluster.
    ///
    /// # Errors
    ///
    /// Propagates fitting errors from the underlying models.
    pub fn learn_new_cluster(&mut self, trace: &Trace) -> Result<usize> {
        let projected_new = self.project(trace)?;
        // Append new windows to the training set and refit k-means with k+1.
        let mut rows: Vec<Vec<f64>> = (0..self.training.rows())
            .map(|r| self.training.row(r).to_vec())
            .collect();
        for r in 0..projected_new.rows() {
            rows.push(projected_new.row(r).to_vec());
        }
        let all = Matrix::from_rows(&rows);
        let k = self.kmeans.k() + 1;
        self.kmeans = KMeans::fit(&all, k, self.seed)?;
        self.training = all;
        self.threshold = Self::min_centroid_distance(&self.kmeans);
        // The new workload's cluster id under the refreshed model.
        let center = self.center(trace)?;
        self.kmeans.predict_row(&center)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace::gen::WorkloadKind;

    fn small_window() -> WindowOptions {
        WindowOptions { window_len: 500 }
    }

    fn train_traces(kinds: &[WorkloadKind], events: usize) -> Vec<Trace> {
        kinds
            .iter()
            .map(|k| k.spec().generate(events, 100))
            .collect()
    }

    #[test]
    fn fit_produces_k_clusters() {
        let kinds = [
            WorkloadKind::WebSearch,
            WorkloadKind::BatchAnalytics,
            WorkloadKind::Fiu,
        ];
        let traces = train_traces(&kinds, 3_000);
        let model = WorkloadClusterer::fit(&traces, 3, small_window(), 1).unwrap();
        assert_eq!(model.k(), 3);
        assert!(model.threshold() > 0.0);
    }

    #[test]
    fn same_kind_maps_to_same_cluster() {
        let kinds = [
            WorkloadKind::WebSearch,
            WorkloadKind::BatchAnalytics,
            WorkloadKind::Fiu,
        ];
        let traces = train_traces(&kinds, 4_000);
        let model = WorkloadClusterer::fit(&traces, 3, small_window(), 1).unwrap();
        // A fresh trace of a studied kind lands in the same cluster as the
        // training trace of that kind.
        for kind in kinds {
            let train_c = model.classify(&kind.spec().generate(2_000, 100)).unwrap();
            let fresh_c = model.classify(&kind.spec().generate(2_000, 777)).unwrap();
            match (train_c, fresh_c) {
                (
                    ClusterDecision::Existing { cluster: a, .. },
                    ClusterDecision::Existing { cluster: b, .. },
                ) => assert_eq!(a, b, "{kind} drifted between clusters"),
                other => panic!("{kind} unexpectedly classified as {other:?}"),
            }
        }
    }

    #[test]
    fn different_kinds_map_to_different_clusters() {
        let kinds = [WorkloadKind::WebSearch, WorkloadKind::Fiu];
        let traces = train_traces(&kinds, 4_000);
        let model = WorkloadClusterer::fit(&traces, 2, small_window(), 3).unwrap();
        let a = model
            .classify(&WorkloadKind::WebSearch.spec().generate(2_000, 55))
            .unwrap()
            .existing()
            .expect("existing");
        let b = model
            .classify(&WorkloadKind::Fiu.spec().generate(2_000, 55))
            .unwrap()
            .existing()
            .expect("existing");
        assert_ne!(a, b);
    }

    #[test]
    fn pca_captures_majority_of_variance() {
        let traces = train_traces(&WorkloadKind::STUDIED, 3_000);
        let model = WorkloadClusterer::fit(&traces, 7, small_window(), 2).unwrap();
        // The paper reports 70.4% for 5 dims on its dataset.
        assert!(
            model.explained_variance() > 0.6,
            "explained variance {}",
            model.explained_variance()
        );
    }

    #[test]
    fn learn_new_cluster_extends_k() {
        let kinds = [WorkloadKind::WebSearch, WorkloadKind::BatchAnalytics];
        let traces = train_traces(&kinds, 3_000);
        let mut model = WorkloadClusterer::fit(&traces, 2, small_window(), 4).unwrap();
        let novel = WorkloadKind::Fiu.spec().generate(3_000, 9);
        let id = model.learn_new_cluster(&novel).unwrap();
        assert_eq!(model.k(), 3);
        assert!(id < 3);
        // The novel workload now classifies into its own cluster.
        let d = model.classify(&novel).unwrap();
        assert_eq!(d.existing(), Some(id));
    }

    #[test]
    fn short_trace_is_an_error() {
        let traces = train_traces(&[WorkloadKind::Vdi, WorkloadKind::Hdfs], 3_000);
        let model = WorkloadClusterer::fit(&traces, 2, small_window(), 5).unwrap();
        let tiny = WorkloadKind::Vdi.spec().generate(100, 1);
        assert!(model.classify(&tiny).is_err());
    }

    #[test]
    fn fit_rejects_insufficient_windows() {
        let traces = vec![WorkloadKind::Vdi.spec().generate(600, 1)];
        assert!(WorkloadClusterer::fit(&traces, 3, small_window(), 0).is_err());
    }

    #[test]
    fn auto_k_recovers_category_count() {
        let kinds = [
            WorkloadKind::WebSearch,
            WorkloadKind::BatchAnalytics,
            WorkloadKind::Fiu,
        ];
        let traces = train_traces(&kinds, 4_000);
        let (model, k) = WorkloadClusterer::fit_auto_k(&traces, 2..=6, small_window(), 11).unwrap();
        // Three well-separated categories: silhouette should pick ~3.
        assert!((2..=4).contains(&k), "picked k={k}");
        assert_eq!(model.k(), k);
        // An intentionally empty k range must error, not panic.
        #[allow(clippy::reversed_empty_ranges)]
        let empty = 9..=8;
        assert!(WorkloadClusterer::fit_auto_k(&traces, empty, small_window(), 1).is_err());
    }

    #[test]
    fn threshold_override() {
        let traces = train_traces(&[WorkloadKind::WebSearch, WorkloadKind::Fiu], 3_000);
        let mut model = WorkloadClusterer::fit(&traces, 2, small_window(), 6).unwrap();
        model.set_threshold(1e-12);
        // With an absurdly tight threshold everything is "new".
        let d = model
            .classify(&WorkloadKind::WebSearch.spec().generate(2_000, 321))
            .unwrap();
        assert!(matches!(d, ClusterDecision::New { .. }));
    }
}
