//! Streaming run journal: line-buffered JSONL of spans, iteration records,
//! and pipeline phases, written while a run executes.
//!
//! A [`Journal`] owns a background writer thread that periodically drains
//! the span ring buffer (`telemetry::span`) and the journal's own bounded
//! event queue to a JSONL file, so the instrumented hot path never blocks
//! on file I/O: producers push into in-memory buffers (dropping, with a
//! count, on overflow) and only the writer thread touches the disk.
//!
//! Every line is one JSON object tagged by `"t"`:
//!
//! - `meta` — first line; schema [`JOURNAL_SCHEMA`], thread limit, argv.
//! - `span` — one completed span (ids as 16-hex-digit strings, since the
//!   vendored JSON shim carries integers as `i64`).
//! - `iteration` — one tuner [`IterationRecord`], streamed as it happens.
//! - `model` — one iteration's model-observatory view: the surrogate's
//!   prediction for the chosen candidate, explore/exploit shares, decision
//!   margin, and the calibration pair once validation realized a grade.
//! - `phase` — one completed pipeline stage.
//! - `series` — one simulator run's sampled [`ssdsim::DeviceSeries`]
//!   (samples embedded, one line per run — never one line per sample, so
//!   queue pressure cannot drop part of a series nondeterministically).
//! - `bottleneck` — one simulator run's [`ssdsim::BottleneckReport`].
//! - `checkpoint` — one tuner snapshot write or resume event.
//! - `progress` — one driver progress estimate (phase, iteration, percent
//!   complete, ETA); consumed by `autoblox watch` and, later, by a serving
//!   daemon streaming the same records over a socket.
//! - `summary` — last line; totals and drop counters.
//!
//! [`export_chrome`] converts a journal into the Chrome `about://tracing` /
//! Perfetto JSON format (`trace export --chrome`); [`export_csv`] flattens
//! the `series` lines into a spreadsheet-friendly table
//! (`trace export --csv`), and [`export_calibration_csv`] does the same for
//! `model` lines when a journal carries calibration records but no device
//! series.

use crate::tuner::IterationRecord;
use serde_json::Value;
use ssdsim::{BottleneckReport, DeviceSeries};
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use telemetry::Counter;

/// Schema identifier written into every journal's `meta` line.
pub const JOURNAL_SCHEMA: &str = "autoblox.journal.v1";

/// Maximum buffered (not yet written) non-span events.
const EVENT_QUEUE_CAP: usize = 1 << 14;

/// How often the writer thread drains the buffers.
const FLUSH_INTERVAL: Duration = Duration::from_millis(25);

/// Process-wide toggle for `progress` journal lines (default on). Exists so
/// the journal-tail benchmark can measure the marginal cost of progress
/// records against an otherwise identical journaled run.
static PROGRESS_RECORDS: AtomicBool = AtomicBool::new(true);

/// Enables or disables `progress` journal lines process-wide.
pub fn set_progress_records(enabled: bool) {
    PROGRESS_RECORDS.store(enabled, Ordering::Relaxed);
}

/// Whether `progress` journal lines are currently enabled.
pub fn progress_records_enabled() -> bool {
    PROGRESS_RECORDS.load(Ordering::Relaxed)
}

/// The producer-facing half of a journal: a bounded in-memory event queue
/// shared (via `Arc`) between the telemetry sink and the writer thread.
///
/// Pushes never block on I/O and never grow without bound — when the queue
/// is full the event is dropped and counted, mirroring the span ring.
#[derive(Debug, Default)]
pub struct JournalHandle {
    queue: Mutex<VecDeque<Value>>,
    dropped: Counter,
}

impl JournalHandle {
    fn push(&self, event: Value) {
        let mut q = lock(&self.queue);
        if q.len() >= EVENT_QUEUE_CAP {
            self.dropped.inc();
        } else {
            q.push_back(event);
        }
    }

    /// Streams one tuner iteration record.
    pub fn record_iteration(&self, workload: &str, r: &IterationRecord) {
        self.push(serde_json::json!({
            "t": "iteration",
            "workload": workload,
            "iteration": r.iteration,
            "candidates_considered": r.candidates_considered,
            "sgd_steps": r.sgd_steps,
            "surrogate_fit_ns": r.surrogate_fit_ns,
            "exploration_distance": r.exploration_distance,
            "best_grade": r.best_grade,
            "convergence_delta": r.convergence_delta,
            "validations": r.validations,
            "wall_ns": r.wall_ns,
            "bottleneck": r.bottleneck,
        }));
    }

    /// Streams one iteration's model-observatory record: the surrogate's
    /// prediction for the chosen candidate, the UCB decomposition, and the
    /// calibration pair (`calibrated` / `realized_grade`) once validation
    /// landed an observation. Per-parameter importance vectors stay in the
    /// telemetry report — they are too bulky for a per-iteration line.
    pub fn record_model(&self, workload: &str, r: &IterationRecord) {
        self.push(serde_json::json!({
            "t": "model",
            "workload": workload,
            "iteration": r.iteration,
            "predicted_mean": r.predicted_mean,
            "predicted_std": r.predicted_std,
            "calibrated": r.calibrated,
            "realized_grade": r.realized_grade,
            "explore_share": r.explore_share,
            "exploit_share": r.exploit_share,
            "decision_margin": r.decision_margin,
            "kernel_length_scale": r.kernel_length_scale,
        }));
    }

    /// Streams one simulator run's sampled device series as a single line
    /// (samples embedded), keyed by the trace it ran and which replay
    /// (`timed` or `saturated`) produced it.
    pub fn record_series(&self, trace: &str, replay: &str, series: &DeviceSeries) {
        self.push(serde_json::json!({
            "t": "series",
            "trace": trace,
            "replay": replay,
            "interval_ns": series.interval_ns,
            "dropped": series.dropped,
            "samples": series.samples,
        }));
    }

    /// Streams one simulator run's bottleneck attribution.
    pub fn record_bottleneck(&self, trace: &str, replay: &str, b: &BottleneckReport) {
        self.push(serde_json::json!({
            "t": "bottleneck",
            "trace": trace,
            "replay": replay,
            "report": b,
        }));
    }

    /// Streams one placement decision: which tenants share `device`, the
    /// device's interference cost, and where its compromise configuration
    /// came from. Exporters that predate this line kind skip it (unknown
    /// `"t"` tags are ignored).
    pub fn record_placement(
        &self,
        device: u64,
        tenants: &[String],
        cost: f64,
        config_source: &str,
    ) {
        self.push(serde_json::json!({
            "t": "placement",
            "device": device,
            "tenants": tenants,
            "cost": cost,
            "config_source": config_source,
        }));
    }

    /// Streams one checkpoint event: `event` is `written` or `resumed`,
    /// `iteration` the snapshot's outer-iteration counter, and `location`
    /// where the snapshot lives (a file path or an AutoDB key).
    pub fn record_checkpoint(&self, workload: &str, event: &str, iteration: u64, location: &str) {
        self.push(serde_json::json!({
            "t": "checkpoint",
            "workload": workload,
            "event": event,
            "iteration": iteration,
            "location": location,
        }));
    }

    /// Streams one driver progress estimate. `percent` is a deterministic
    /// function of the tuner phase and iteration counters (0.0 ..= 1.0);
    /// `eta_ns` is a wall-clock extrapolation and therefore the one field
    /// consumers must exclude from determinism fingerprints (it is zero
    /// when the telemetry switch is off, since iteration timing is then
    /// not collected).
    pub fn record_progress(
        &self,
        workload: &str,
        phase: &str,
        iteration: u64,
        total: u64,
        percent: f64,
        eta_ns: u64,
    ) {
        if !progress_records_enabled() {
            return;
        }
        self.push(serde_json::json!({
            "t": "progress",
            "workload": workload,
            "phase": phase,
            "iteration": iteration,
            "total": total,
            "percent": percent,
            "eta_ns": eta_ns,
        }));
    }

    /// Streams one completed pipeline phase.
    pub fn record_phase(&self, name: &str, wall_ns: u64) {
        self.push(serde_json::json!({
            "t": "phase",
            "name": name,
            "wall_ns": wall_ns,
        }));
    }

    /// Events dropped because the queue was full.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.get()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn hex(id: u64) -> String {
    format!("{id:016x}")
}

fn span_line(s: &telemetry::span::SpanRecord) -> Value {
    serde_json::json!({
        "t": "span",
        "id": hex(s.id),
        "parent": hex(s.parent),
        "name": s.name,
        "disc": hex(s.disc),
        "start_ns": s.start_ns,
        "dur_ns": s.dur_ns,
        "thread": s.thread,
    })
}

/// A live run journal; create with [`Journal::create`], close with
/// [`Journal::finish`] (dropping without finishing still stops the writer
/// but skips the `summary` line).
#[derive(Debug)]
pub struct Journal {
    handle: Arc<JournalHandle>,
    stop: Arc<AtomicBool>,
    writer: Option<std::thread::JoinHandle<std::io::Result<JournalTotals>>>,
}

#[derive(Debug, Default, Clone, Copy)]
struct JournalTotals {
    spans: u64,
    events: u64,
}

impl Journal {
    /// Opens `path`, writes the `meta` line, **arms span tracing** (clearing
    /// any previously buffered spans so the journal covers exactly this
    /// run), and starts the writer thread.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O failure if the file cannot be
    /// created or the meta line cannot be written.
    pub fn create(path: &str) -> Result<Journal, String> {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create journal `{path}`: {e}"))?;
        // Line buffering: every completed line is written promptly, so a
        // tail -f (or a crash) sees whole JSON objects only.
        let mut out = std::io::LineWriter::new(file);
        let meta = serde_json::json!({
            "t": "meta",
            "schema": JOURNAL_SCHEMA,
            "threads": mlkit::parallel::max_threads() as u64,
            "argv": std::env::args().collect::<Vec<String>>(),
        });
        writeln!(
            out,
            "{}",
            serde_json::to_string(&meta).expect("meta serializes")
        )
        .map_err(|e| format!("cannot write journal `{path}`: {e}"))?;

        telemetry::span::reset_tracing_state();
        telemetry::span::set_tracing(true);

        let handle = Arc::new(JournalHandle::default());
        let stop = Arc::new(AtomicBool::new(false));
        let writer_handle = Arc::clone(&handle);
        let writer_stop = Arc::clone(&stop);
        let writer = std::thread::spawn(move || -> std::io::Result<JournalTotals> {
            let mut totals = JournalTotals::default();
            let mut spans: Vec<telemetry::span::SpanRecord> = Vec::new();
            loop {
                let stopping = writer_stop.load(Ordering::Relaxed);
                spans.clear();
                telemetry::span::drain_spans(&mut spans);
                for s in &spans {
                    writeln!(
                        out,
                        "{}",
                        serde_json::to_string(&span_line(s)).expect("span")
                    )?;
                    totals.spans += 1;
                }
                let events: Vec<Value> = {
                    let mut q = lock(&writer_handle.queue);
                    q.drain(..).collect()
                };
                for e in &events {
                    writeln!(out, "{}", serde_json::to_string(e).expect("event"))?;
                    totals.events += 1;
                }
                if stopping {
                    out.flush()?;
                    return Ok(totals);
                }
                std::thread::sleep(FLUSH_INTERVAL);
            }
        });
        Ok(Journal {
            handle,
            stop,
            writer: Some(writer),
        })
    }

    /// The producer handle to share with the telemetry sink.
    pub fn handle(&self) -> Arc<JournalHandle> {
        Arc::clone(&self.handle)
    }

    /// Disarms tracing, drains everything still buffered, appends the
    /// `summary` line, and closes the file.
    ///
    /// # Errors
    ///
    /// Returns a description of any I/O failure the writer thread hit.
    pub fn finish(mut self, path: &str) -> Result<(), String> {
        telemetry::span::set_tracing(false);
        self.stop.store(true, Ordering::Relaxed);
        let totals = match self.writer.take() {
            Some(w) => w
                .join()
                .map_err(|_| "journal writer thread panicked".to_string())?
                .map_err(|e| format!("journal write failed: {e}"))?,
            None => JournalTotals::default(),
        };
        let summary = serde_json::json!({
            "t": "summary",
            "spans_written": totals.spans,
            "events_written": totals.events,
            "spans_dropped": telemetry::span::dropped_spans(),
            "events_dropped": self.handle.dropped_events(),
        });
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot reopen journal `{path}`: {e}"))?;
        writeln!(
            file,
            "{}",
            serde_json::to_string(&summary).expect("summary serializes")
        )
        .map_err(|e| format!("cannot write journal summary: {e}"))?;
        Ok(())
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        // finish() already joined; otherwise stop the writer so the thread
        // does not outlive the journal (no summary line in that case).
        self.stop.store(true, Ordering::Relaxed);
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
    }
}

fn get_u64(obj: &Value, key: &str) -> u64 {
    match obj.get(key) {
        Some(Value::Int(i)) => *i as u64,
        Some(Value::Float(f)) => *f as u64,
        Some(Value::Str(s)) => u64::from_str_radix(s, 16).unwrap_or(0),
        _ => 0,
    }
}

fn get_str<'v>(obj: &'v Value, key: &str) -> &'v str {
    match obj.get(key) {
        Some(Value::Str(s)) => s,
        _ => "",
    }
}

/// Converts a JSONL run journal into Chrome `about://tracing` / Perfetto
/// trace JSON: spans and pipeline phases become complete (`"X"`) duration
/// events (phases laid end-to-end on the pipeline track, so placement
/// journals export their classify/search/attribute stages cleanly),
/// iteration and progress records become instant (`"i"`) events on the
/// tuner track.
///
/// # Errors
///
/// Returns a description of the first malformed line; unknown `"t"` tags
/// are ignored so newer journals still export.
pub fn export_chrome(journal: &str) -> Result<String, String> {
    let mut events: Vec<Value> = Vec::new();
    // Pipeline phases carry a duration but no start timestamp; lay them
    // end-to-end on their own track so `place.classify` / `place.search` /
    // `place.attribute` (and `tune`) render as a contiguous timeline.
    let mut phase_clock_us = 0.0f64;
    for (lineno, line) in journal.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("journal line {}: invalid JSON: {e}", lineno + 1))?;
        match get_str(&v, "t") {
            "meta" => {
                let schema = get_str(&v, "schema");
                if !schema.starts_with("autoblox.journal.v") {
                    return Err(format!(
                        "journal line {}: unknown schema `{schema}`",
                        lineno + 1
                    ));
                }
                events.push(serde_json::json!({
                    "name": "process_name",
                    "ph": "M",
                    "pid": 1,
                    "args": serde_json::json!({"name": "autoblox"}),
                }));
            }
            "span" => {
                let start_us = get_u64(&v, "start_ns") as f64 / 1_000.0;
                let dur_us = get_u64(&v, "dur_ns") as f64 / 1_000.0;
                events.push(serde_json::json!({
                    "name": get_str(&v, "name"),
                    "cat": "span",
                    "ph": "X",
                    "ts": start_us,
                    "dur": dur_us,
                    "pid": 1,
                    "tid": get_u64(&v, "thread"),
                    "args": serde_json::json!({
                        "id": get_str(&v, "id"),
                        "parent": get_str(&v, "parent"),
                        "disc": get_str(&v, "disc"),
                    }),
                }));
            }
            "iteration" => {
                // Instant event on a dedicated tuner track; the journal
                // does not timestamp iterations, so anchor them at the
                // iteration index (milliseconds) to preserve ordering.
                let iter = get_u64(&v, "iteration");
                events.push(serde_json::json!({
                    "name": "tuner.iteration_record",
                    "cat": "iteration",
                    "ph": "i",
                    "s": "g",
                    "ts": iter as f64 * 1_000.0,
                    "pid": 1,
                    "tid": 0,
                    "args": serde_json::json!({
                        "workload": get_str(&v, "workload"),
                        "iteration": iter,
                        "best_grade": match v.get("best_grade") {
                            Some(Value::Float(f)) => *f,
                            Some(Value::Int(i)) => *i as f64,
                            _ => 0.0,
                        },
                        "validations": get_u64(&v, "validations"),
                    }),
                }));
            }
            "model" => {
                // Two events per model line, anchored a quarter-tick after
                // the iteration record that produced them: a counter lane
                // charting explore-vs-exploit share over time, and an
                // instant carrying the prediction and calibration detail.
                let iter = get_u64(&v, "iteration");
                let ts = iter as f64 * 1_000.0 + 250.0;
                events.push(serde_json::json!({
                    "name": "tuner.model.shares",
                    "cat": "model",
                    "ph": "C",
                    "ts": ts,
                    "pid": 1,
                    "tid": 0,
                    "args": serde_json::json!({
                        "explore": get_f64(&v, "explore_share"),
                        "exploit": get_f64(&v, "exploit_share"),
                    }),
                }));
                events.push(serde_json::json!({
                    "name": "tuner.model",
                    "cat": "model",
                    "ph": "i",
                    "s": "g",
                    "ts": ts,
                    "pid": 1,
                    "tid": 0,
                    "args": serde_json::json!({
                        "workload": get_str(&v, "workload"),
                        "iteration": iter,
                        "predicted_mean": get_f64(&v, "predicted_mean"),
                        "predicted_std": get_f64(&v, "predicted_std"),
                        "calibrated": matches!(v.get("calibrated"), Some(Value::Bool(true))),
                        "realized_grade": get_f64(&v, "realized_grade"),
                        "decision_margin": get_f64(&v, "decision_margin"),
                        "kernel_length_scale": get_f64(&v, "kernel_length_scale"),
                    }),
                }));
            }
            "phase" => {
                let dur_us = get_u64(&v, "wall_ns") as f64 / 1_000.0;
                events.push(serde_json::json!({
                    "name": get_str(&v, "name"),
                    "cat": "phase",
                    "ph": "X",
                    "ts": phase_clock_us,
                    "dur": dur_us,
                    "pid": 1,
                    "tid": 0,
                    "args": serde_json::json!({"wall_ns": get_u64(&v, "wall_ns")}),
                }));
                phase_clock_us += dur_us;
            }
            "progress" => {
                // Same iteration-index anchoring as iteration records, offset
                // half a tick so a progress marker sorts after the iteration
                // that produced it.
                let iter = get_u64(&v, "iteration");
                events.push(serde_json::json!({
                    "name": "tuner.progress",
                    "cat": "progress",
                    "ph": "i",
                    "s": "g",
                    "ts": iter as f64 * 1_000.0 + 500.0,
                    "pid": 1,
                    "tid": 0,
                    "args": serde_json::json!({
                        "workload": get_str(&v, "workload"),
                        "phase": get_str(&v, "phase"),
                        "iteration": iter,
                        "total": get_u64(&v, "total"),
                        "percent": get_f64(&v, "percent"),
                    }),
                }));
            }
            // summary/unknown tags carry no timeline position.
            _ => {}
        }
    }
    if events.is_empty() {
        return Err("journal contains no convertible events".to_string());
    }
    let doc = serde_json::json!({
        "displayTimeUnit": "ms",
        "traceEvents": events,
    });
    serde_json::to_string(&doc).map_err(|e| format!("cannot serialize trace: {e}"))
}

fn get_f64(obj: &Value, key: &str) -> f64 {
    match obj.get(key) {
        Some(Value::Float(f)) => *f,
        Some(Value::Int(i)) => *i as f64,
        _ => 0.0,
    }
}

/// Flattens the `series` lines of a JSONL run journal into CSV: one row per
/// device sample, keyed by the trace and replay that produced it.
///
/// # Errors
///
/// Returns a description of the first malformed line, or an error when the
/// journal contains no `series` lines at all (e.g. it was recorded with the
/// telemetry switch off).
pub fn export_csv(journal: &str) -> Result<String, String> {
    let mut out = String::from(
        "trace,replay,sample,t_ns,channel_busy,plane_busy,gc_activity,queue_depth,\
         data_cache_occupancy,data_cache_hit_rate,cmt_occupancy,cmt_hit_rate,\
         gc_backlog_pages,write_amplification\n",
    );
    let mut rows = 0u64;
    for (lineno, line) in journal.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("journal line {}: invalid JSON: {e}", lineno + 1))?;
        if get_str(&v, "t") != "series" {
            continue;
        }
        let trace = get_str(&v, "trace").to_string();
        let replay = get_str(&v, "replay").to_string();
        let Some(Value::Array(samples)) = v.get("samples") else {
            return Err(format!(
                "journal line {}: series without samples array",
                lineno + 1
            ));
        };
        for (i, s) in samples.iter().enumerate() {
            out.push_str(&format!(
                "{trace},{replay},{i},{},{},{},{},{},{},{},{},{},{},{}\n",
                get_u64(s, "t_ns"),
                get_f64(s, "channel_busy"),
                get_f64(s, "plane_busy"),
                get_f64(s, "gc_activity"),
                get_u64(s, "queue_depth"),
                get_f64(s, "data_cache_occupancy"),
                get_f64(s, "data_cache_hit_rate"),
                get_f64(s, "cmt_occupancy"),
                get_f64(s, "cmt_hit_rate"),
                get_u64(s, "gc_backlog_pages"),
                get_f64(s, "write_amplification"),
            ));
            rows += 1;
        }
    }
    if rows == 0 {
        return Err(
            "journal contains no device series (was the run recorded with --telemetry \
             and the sampler enabled?)"
                .to_string(),
        );
    }
    Ok(out)
}

/// Flattens the `model` lines of a JSONL run journal into CSV: one row per
/// iteration's surrogate prediction/calibration record. Used by
/// `trace export --csv` as a fallback when a journal carries model
/// observatory records but no device series.
///
/// # Errors
///
/// Returns a description of the first malformed line, or an error when the
/// journal contains no `model` lines at all.
pub fn export_calibration_csv(journal: &str) -> Result<String, String> {
    let mut out = String::from(
        "workload,iteration,predicted_mean,predicted_std,calibrated,realized_grade,\
         explore_share,exploit_share,decision_margin,kernel_length_scale\n",
    );
    let mut rows = 0u64;
    for (lineno, line) in journal.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("journal line {}: invalid JSON: {e}", lineno + 1))?;
        if get_str(&v, "t") != "model" {
            continue;
        }
        let calibrated = matches!(v.get("calibrated"), Some(Value::Bool(true)));
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            get_str(&v, "workload"),
            get_u64(&v, "iteration"),
            get_f64(&v, "predicted_mean"),
            get_f64(&v, "predicted_std"),
            calibrated,
            get_f64(&v, "realized_grade"),
            get_f64(&v, "explore_share"),
            get_f64(&v, "exploit_share"),
            get_f64(&v, "decision_margin"),
            get_f64(&v, "kernel_length_scale"),
        ));
        rows += 1;
    }
    if rows == 0 {
        return Err(
            "journal contains no model lines (was the run recorded by a build with \
             the model observatory?)"
                .to_string(),
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_queue_is_bounded() {
        let h = JournalHandle::default();
        for i in 0..(EVENT_QUEUE_CAP as u64 + 10) {
            h.record_phase("p", i);
        }
        assert_eq!(h.dropped_events(), 10);
        assert_eq!(lock(&h.queue).len(), EVENT_QUEUE_CAP);
    }

    #[test]
    fn export_rejects_garbage_and_accepts_minimal_journal() {
        assert!(export_chrome("not json").is_err());
        assert!(export_chrome("").is_err());
        let journal = concat!(
            r#"{"t":"meta","schema":"autoblox.journal.v1","threads":1,"argv":[]}"#,
            "\n",
            r#"{"t":"span","id":"00000000000000aa","parent":"0000000000000000","name":"sim.run","disc":"0000000000000000","start_ns":1000,"dur_ns":5000,"thread":1}"#,
            "\n",
            r#"{"t":"iteration","workload":"database","iteration":1,"best_grade":0.5,"validations":2}"#,
            "\n",
            r#"{"t":"summary","spans_written":1,"events_written":1,"spans_dropped":0,"events_dropped":0}"#,
            "\n",
        );
        let chrome = export_chrome(journal).expect("valid journal");
        let doc: Value = serde_json::from_str(&chrome).expect("chrome JSON parses");
        let Some(Value::Array(events)) = doc.get("traceEvents") else {
            panic!("traceEvents array expected");
        };
        // meta + span + iteration.
        assert_eq!(events.len(), 3);
        let span = &events[1];
        assert_eq!(get_str(span, "ph"), "X");
        assert_eq!(get_str(span, "name"), "sim.run");
        assert_eq!(events[2].get("ph"), Some(&Value::Str("i".to_string())));
    }

    #[test]
    fn export_chrome_lays_phases_end_to_end_and_anchors_progress() {
        let journal = concat!(
            r#"{"t":"meta","schema":"autoblox.journal.v1","threads":1,"argv":[]}"#,
            "\n",
            r#"{"t":"phase","name":"place.classify","wall_ns":2000}"#,
            "\n",
            r#"{"t":"phase","name":"place.search","wall_ns":3000}"#,
            "\n",
            r#"{"t":"progress","workload":"Database","phase":"iterating","iteration":3,"total":8,"percent":0.4375,"eta_ns":0}"#,
            "\n",
        );
        let chrome = export_chrome(journal).expect("valid journal");
        let doc: Value = serde_json::from_str(&chrome).expect("chrome JSON parses");
        let Some(Value::Array(events)) = doc.get("traceEvents") else {
            panic!("traceEvents array expected");
        };
        assert_eq!(events.len(), 4);
        assert_eq!(get_str(&events[1], "name"), "place.classify");
        assert_eq!(get_f64(&events[1], "ts"), 0.0);
        assert_eq!(get_str(&events[2], "name"), "place.search");
        // Second phase starts where the first ended (2000 ns = 2 us).
        assert_eq!(get_f64(&events[2], "ts"), 2.0);
        assert_eq!(get_str(&events[3], "name"), "tuner.progress");
        assert_eq!(get_str(&events[3], "ph"), "i");
    }

    #[test]
    fn progress_toggle_gates_progress_lines_only() {
        let h = JournalHandle::default();
        set_progress_records(false);
        h.record_progress("Database", "iterating", 1, 4, 0.25, 0);
        set_progress_records(true);
        h.record_progress("Database", "iterating", 2, 4, 0.5, 0);
        h.record_phase("tune", 1);
        assert_eq!(lock(&h.queue).len(), 2, "only the enabled push lands");
    }

    #[test]
    fn model_lines_export_as_counter_and_instant() {
        let journal = concat!(
            r#"{"t":"meta","schema":"autoblox.journal.v1","threads":1,"argv":[]}"#,
            "\n",
            r#"{"t":"model","workload":"Database","iteration":2,"predicted_mean":0.8,"predicted_std":0.1,"calibrated":true,"realized_grade":0.75,"explore_share":0.2,"exploit_share":0.8,"decision_margin":0.05,"kernel_length_scale":1.5}"#,
            "\n",
        );
        let chrome = export_chrome(journal).expect("valid journal");
        let doc: Value = serde_json::from_str(&chrome).expect("chrome JSON parses");
        let Some(Value::Array(events)) = doc.get("traceEvents") else {
            panic!("traceEvents array expected");
        };
        // meta + counter + instant.
        assert_eq!(events.len(), 3);
        assert_eq!(get_str(&events[1], "name"), "tuner.model.shares");
        assert_eq!(get_str(&events[1], "ph"), "C");
        assert_eq!(get_f64(&events[1], "ts"), 2_250.0);
        assert_eq!(get_str(&events[2], "name"), "tuner.model");
        assert_eq!(get_str(&events[2], "ph"), "i");
        let args = events[2].get("args").expect("instant args");
        assert_eq!(get_f64(args, "realized_grade"), 0.75);
        assert_eq!(args.get("calibrated"), Some(&Value::Bool(true)));
    }

    #[test]
    fn calibration_csv_flattens_model_lines_only() {
        let journal = concat!(
            r#"{"t":"meta","schema":"autoblox.journal.v1","threads":1,"argv":[]}"#,
            "\n",
            r#"{"t":"model","workload":"Database","iteration":2,"predicted_mean":0.8,"predicted_std":0.1,"calibrated":true,"realized_grade":0.75,"explore_share":0.2,"exploit_share":0.8,"decision_margin":0.05,"kernel_length_scale":1.5}"#,
            "\n",
            r#"{"t":"iteration","workload":"Database","iteration":2,"best_grade":0.75,"validations":1}"#,
            "\n",
        );
        let csv = export_calibration_csv(journal).expect("model lines present");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2, "header + one model row");
        assert!(lines[0].starts_with("workload,iteration,predicted_mean"));
        assert!(
            lines[1].starts_with("Database,2,0.8,0.1,true,0.75"),
            "{}",
            lines[1]
        );
        // A journal without model lines is an explicit error, not empty CSV.
        let err = export_calibration_csv(r#"{"t":"phase","name":"tune","wall_ns":1}"#).unwrap_err();
        assert!(err.contains("no model lines"), "{err}");
    }

    #[test]
    fn export_rejects_unknown_schema() {
        let journal = r#"{"t":"meta","schema":"somethingelse.v9"}"#;
        let err = export_chrome(journal).unwrap_err();
        assert!(err.contains("unknown schema"), "{err}");
    }
}
