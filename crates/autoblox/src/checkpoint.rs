//! Crash-safe snapshots of an in-flight tuning run.
//!
//! A [`Checkpoint`] is a versioned JSON document (schema
//! [`Checkpoint::SCHEMA`]) bundling the tuner's serializable
//! [`TuneState`], the exact [`TunerOptions`] it runs under, the
//! validator's measurement cache, and fingerprints of everything the
//! search trajectory depends on — the parameter space, the tuning target,
//! and the reference configuration. Resuming from a checkpoint whose
//! fingerprints match replays the run bit-identically: the outer loop is
//! sequential and every stochastic draw flows from the RNG state embedded
//! in `TuneState`, so a run interrupted at any iteration boundary and
//! resumed produces the same final report as an uninterrupted one, at any
//! thread count.
//!
//! Files are written atomically (temp file + rename in the destination
//! directory) so a crash mid-write never leaves a truncated checkpoint in
//! place of a good one. [`Checkpoint::parse_checked`] follows the same
//! validation ladder as telemetry reports: JSON well-formedness, required
//! top-level keys, schema identifier, then a typed deserialize — every
//! failure is a human-readable message, never a panic.
//!
//! The vendored JSON layer stores `u64` lossily above `i64::MAX`, so the
//! two places that need full 64-bit fidelity route around it: the RNG
//! state lives in `TuneState` as hex strings, and the tuner seed is
//! carried redundantly in [`Checkpoint::seed_hex`] and restored into
//! `opts.seed` on load.

use crate::params::{ParamKind, ParamSpace};
use crate::tuner::{TunePhase, TuneState, Tuner, TunerOptions, TuningTarget};
use crate::validator::{CacheEntry, Validator, ValidatorOptions};
use serde::{Deserialize, Serialize};
use ssdsim::SsdConfig;
use std::fs;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// A complete, resumable snapshot of one tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Schema identifier; always [`Checkpoint::SCHEMA`].
    pub schema: String,
    /// Display name of the tuning target (workload category or trace).
    pub workload: String,
    /// FNV-1a fingerprint (16 hex digits) of the parameter space: names,
    /// kinds, and grids of every tunable parameter, in order.
    pub space_fingerprint: String,
    /// Fingerprint of the tuning target and validator options: target
    /// name, trace-generation settings, and (for trace targets) the full
    /// event content.
    pub target_fingerprint: String,
    /// Fingerprint of the reference configuration's canonical words.
    pub reference_fingerprint: String,
    /// Unix timestamp (seconds) when the snapshot was captured.
    pub written_at_unix: u64,
    /// The tuner seed as 16 hex digits; authoritative over `opts.seed`,
    /// which the JSON layer may have stored lossily.
    pub seed_hex: String,
    /// The exact options the interrupted run used. Resume refuses to
    /// proceed under different options — the trajectory depends on all of
    /// them.
    pub opts: TunerOptions,
    /// The serialized tuner state machine, including RNG state.
    pub state: TuneState,
    /// The validator's measurement cache at snapshot time; re-imported on
    /// resume so replayed validations are cache hits, not re-simulations.
    pub cache: Vec<CacheEntry>,
}

impl Checkpoint {
    /// The schema identifier written into every checkpoint.
    pub const SCHEMA: &'static str = "autoblox.checkpoint.v1";

    /// Top-level keys every serialized checkpoint must carry.
    pub const REQUIRED_KEYS: [&'static str; 10] = [
        "schema",
        "workload",
        "space_fingerprint",
        "target_fingerprint",
        "reference_fingerprint",
        "written_at_unix",
        "seed_hex",
        "opts",
        "state",
        "cache",
    ];

    /// Captures a snapshot of `state` mid-run, fingerprinting the tuner's
    /// space and options, the target, and the validator's settings and
    /// cache so [`Checkpoint::verify`] can detect any drift at resume
    /// time.
    pub fn capture(
        tuner: &Tuner<'_>,
        target: TuningTarget<'_>,
        validator: &Validator,
        state: &TuneState,
    ) -> Checkpoint {
        let written_at_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Checkpoint {
            schema: Self::SCHEMA.to_string(),
            workload: target.name().to_string(),
            space_fingerprint: fingerprint_space(tuner.space()),
            target_fingerprint: fingerprint_target(target, &validator.options()),
            reference_fingerprint: fingerprint_config(&state.reference),
            written_at_unix,
            seed_hex: format!("{:016x}", tuner.options().seed),
            opts: tuner.options().clone(),
            state: state.clone(),
            cache: validator.export_cache(),
        }
    }

    /// Parses and validates a serialized checkpoint: the JSON must parse,
    /// carry every required top-level key, match the schema identifier,
    /// deserialize into a [`Checkpoint`], and hold a well-formed RNG
    /// state. The authoritative `seed_hex` is folded back into
    /// `opts.seed` before returning.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn parse_checked(json: &str) -> Result<Checkpoint, String> {
        let value: serde_json::Value =
            serde_json::from_str(json).map_err(|e| format!("invalid JSON: {e}"))?;
        let obj = match &value {
            serde_json::Value::Object(map) => map,
            _ => return Err("checkpoint must be a JSON object".to_string()),
        };
        for key in Self::REQUIRED_KEYS {
            if !obj.contains_key(key) {
                return Err(format!("missing required key `{key}`"));
            }
        }
        let schema = value["schema"].as_str().unwrap_or("");
        if schema != Self::SCHEMA {
            return Err(format!(
                "unknown schema `{schema}` (expected `{}`)",
                Self::SCHEMA
            ));
        }
        let mut cp: Checkpoint =
            serde_json::from_str(json).map_err(|e| format!("schema mismatch: {e}"))?;
        cp.opts.seed = parse_hex_word(&cp.seed_hex)
            .ok_or_else(|| format!("`seed_hex` is not 16 hex digits: `{}`", cp.seed_hex))?;
        if cp.state.rng.len() != 4 {
            return Err(format!(
                "`state.rng` must hold 4 hex words, found {}",
                cp.state.rng.len()
            ));
        }
        for word in &cp.state.rng {
            if parse_hex_word(word).is_none() {
                return Err(format!("`state.rng` word is not 16 hex digits: `{word}`"));
            }
        }
        Ok(cp)
    }

    /// Reads and validates the checkpoint at `path`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the path for unreadable files and the
    /// first validation failure for malformed ones.
    pub fn read(path: impl AsRef<Path>) -> Result<Checkpoint, String> {
        let path = path.as_ref();
        let json = fs::read_to_string(path)
            .map_err(|e| format!("cannot read checkpoint `{}`: {e}", path.display()))?;
        Self::parse_checked(&json)
            .map_err(|e| format!("malformed checkpoint `{}`: {e}", path.display()))
    }

    /// Writes the checkpoint to `path` atomically: the document is
    /// serialized to a temp file in the destination directory, flushed,
    /// and renamed over the target, so a crash mid-write cannot leave a
    /// truncated file where a good checkpoint (or none) should be.
    ///
    /// # Errors
    ///
    /// Returns a message naming the path on any I/O failure.
    pub fn write_atomic(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let path = path.as_ref();
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| format!("cannot serialize checkpoint: {e}"))?;
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, json)
            .map_err(|e| format!("cannot write checkpoint `{}`: {e}", tmp.display()))?;
        fs::rename(&tmp, path).map_err(|e| {
            format!(
                "cannot move checkpoint into place at `{}`: {e}",
                path.display()
            )
        })
    }

    /// Checks that this checkpoint was produced by the same tuning
    /// problem the caller is about to resume: same target, parameter
    /// space, reference configuration (including its device family),
    /// validator settings, and tuner options.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first mismatch; resuming anyway would
    /// silently change the search trajectory.
    pub fn verify(
        &self,
        tuner: &Tuner<'_>,
        target: TuningTarget<'_>,
        validator: &Validator,
    ) -> Result<(), String> {
        if self.workload != target.name() {
            return Err(format!(
                "checkpoint is for workload `{}`, not `{}`",
                self.workload,
                target.name()
            ));
        }
        let space = fingerprint_space(tuner.space());
        if self.space_fingerprint != space {
            return Err(format!(
                "parameter space changed since the checkpoint was written \
                 (fingerprint {} != {space})",
                self.space_fingerprint
            ));
        }
        let target_fp = fingerprint_target(target, &validator.options());
        if self.target_fingerprint != target_fp {
            return Err(format!(
                "tuning target or validator settings changed since the \
                 checkpoint was written (fingerprint {} != {target_fp})",
                self.target_fingerprint
            ));
        }
        // The device family is part of the reference's canonical words, so
        // the fingerprint below already binds it; this explicit check turns
        // an honest flag mismatch (checkpoint written under a different
        // `--family`) into an actionable message instead of a hash diff.
        let want = tuner.constraints().family;
        let have = self.state.reference.device_family;
        if want.is_hybrid() != have.is_hybrid() {
            return Err(format!(
                "checkpoint tuned a {} device but these constraints require \
                 {}; re-run with the original --family to resume",
                have.label(),
                want.label()
            ));
        }
        let reference = fingerprint_config(&self.state.reference);
        if self.reference_fingerprint != reference {
            return Err(format!(
                "checkpoint is internally inconsistent: reference \
                 fingerprint {} does not match the embedded state \
                 ({reference})",
                self.reference_fingerprint
            ));
        }
        // `speculative_batch` is explicitly trajectory-neutral (any k yields
        // byte-identical results), so a resume may pick a different width —
        // e.g. auto-sizing to a different machine's thread count — without
        // changing the search the checkpoint captured.
        let mut resumable = self.opts.clone();
        resumable.speculative_batch = tuner.options().speculative_batch;
        if *tuner.options() != resumable {
            return Err(
                "tuner options differ from the checkpoint's; re-run with the \
                 original flags to resume"
                    .to_string(),
            );
        }
        Ok(())
    }

    /// Condenses the checkpoint into the fields `checkpoint inspect`
    /// prints.
    pub fn summary(&self) -> CheckpointSummary {
        CheckpointSummary {
            schema: self.schema.clone(),
            workload: self.workload.clone(),
            phase: phase_name(self.state.phase).to_string(),
            iteration: self.state.iterations,
            max_iterations: self.opts.max_iterations as u64,
            observations: self.state.observations.len() as u64,
            best_grade: self.state.best.as_ref().map(|b| b.grade),
            validations: self.state.validations,
            cache_entries: self.cache.len() as u64,
            written_at_unix: self.written_at_unix,
        }
    }
}

/// The human-facing digest of a checkpoint, also emitted as JSON by
/// `checkpoint inspect --json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointSummary {
    /// Schema identifier of the inspected file.
    pub schema: String,
    /// Tuning target the run was optimizing.
    pub workload: String,
    /// Phase the state machine was in (`reference`, `init-set`,
    /// `iterating`, or `done`).
    pub phase: String,
    /// Outer iterations completed when the snapshot was taken.
    pub iteration: u64,
    /// Iteration cap the run was configured with.
    pub max_iterations: u64,
    /// Validated configurations observed so far.
    pub observations: u64,
    /// Best Formula-2 grade so far, if any configuration was validated.
    pub best_grade: Option<f64>,
    /// Simulator validations the run had performed.
    pub validations: u64,
    /// Measurement-cache entries embedded in the snapshot.
    pub cache_entries: u64,
    /// Unix timestamp (seconds) when the snapshot was captured.
    pub written_at_unix: u64,
}

impl CheckpointSummary {
    /// Renders the multi-line human summary, computing the snapshot's age
    /// against `now_unix` (pass 0 to omit the age).
    pub fn render(&self, now_unix: u64) -> String {
        let mut out = String::new();
        out.push_str(&format!("workload:      {}\n", self.workload));
        out.push_str(&format!(
            "phase:         {} (iteration {}/{})\n",
            self.phase, self.iteration, self.max_iterations
        ));
        out.push_str(&format!("observations:  {}\n", self.observations));
        match self.best_grade {
            Some(g) => out.push_str(&format!("best grade:    {g:.6}\n")),
            None => out.push_str("best grade:    (none yet)\n"),
        }
        out.push_str(&format!("validations:   {}\n", self.validations));
        out.push_str(&format!("cache entries: {}\n", self.cache_entries));
        if now_unix > 0 && self.written_at_unix > 0 && now_unix >= self.written_at_unix {
            out.push_str(&format!(
                "snapshot age:  {}\n",
                render_age(now_unix - self.written_at_unix)
            ));
        }
        out
    }
}

/// Formats an age in seconds as the largest sensible unit pair.
fn render_age(secs: u64) -> String {
    if secs < 60 {
        format!("{secs}s")
    } else if secs < 3600 {
        format!("{}m {}s", secs / 60, secs % 60)
    } else if secs < 86_400 {
        format!("{}h {}m", secs / 3600, (secs % 3600) / 60)
    } else {
        format!("{}d {}h", secs / 86_400, (secs % 86_400) / 3600)
    }
}

/// Human-readable name for a tuner phase.
fn phase_name(phase: TunePhase) -> &'static str {
    match phase {
        TunePhase::Reference => "reference",
        TunePhase::InitSet => "init-set",
        TunePhase::Iterating => "iterating",
        TunePhase::Done => "done",
    }
}

/// Parses a 16-digit lowercase/uppercase hex word.
fn parse_hex_word(word: &str) -> Option<u64> {
    if word.len() != 16 {
        return None;
    }
    u64::from_str_radix(word, 16).ok()
}

/// 64-bit FNV-1a over a stream of words (each folded byte-wise).
#[derive(Debug)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.byte(b);
        }
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Fingerprints the parameter space: every parameter's name, kind, and
/// grid, in order. Any change here redefines what a state vector means.
pub fn fingerprint_space(space: &ParamSpace) -> String {
    let mut h = Fnv::new();
    h.word(space.len() as u64);
    for p in space.params() {
        h.bytes(p.name.as_bytes());
        h.byte(0xff);
        h.byte(match p.kind {
            ParamKind::Continuous => 0,
            ParamKind::Discrete => 1,
            ParamKind::Boolean => 2,
            ParamKind::Categorical => 3,
        });
        h.word(p.grid.len() as u64);
        for &g in &p.grid {
            h.word(g.to_bits());
        }
    }
    h.hex()
}

/// Fingerprints the tuning problem's inputs outside the parameter space:
/// the validator's trace-generation settings and the target itself. For
/// trace targets the full event content is folded in — two traces with
/// the same name but different events must not resume each other.
pub fn fingerprint_target(target: TuningTarget<'_>, vopts: &ValidatorOptions) -> String {
    let mut h = Fnv::new();
    h.word(vopts.trace_events as u64);
    h.word(vopts.warm_fill.to_bits());
    h.word(vopts.seed);
    match target {
        TuningTarget::Category(kind) => {
            h.byte(0);
            h.bytes(kind.name().as_bytes());
        }
        TuningTarget::Trace(trace) => {
            h.byte(1);
            h.bytes(trace.name().as_bytes());
            h.byte(0xff);
            h.word(trace.events().len() as u64);
            for e in trace.events() {
                h.word(e.timestamp_ns);
                h.word(e.lba);
                h.word(u64::from(e.size_bytes));
                h.byte(match e.op {
                    iotrace::OpKind::Read => 0,
                    iotrace::OpKind::Write => 1,
                });
            }
        }
    }
    h.hex()
}

/// Fingerprints a configuration via its canonical word encoding.
pub fn fingerprint_config(cfg: &SsdConfig) -> String {
    let mut h = Fnv::new();
    for w in cfg.canonical_words() {
        h.word(w);
    }
    h.hex()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraints;
    use ssdsim::config::presets;

    fn small_validator() -> Validator {
        Validator::new(ValidatorOptions {
            trace_events: 60,
            ..Default::default()
        })
    }

    fn tuner_for(validator: &Validator) -> Tuner<'_> {
        Tuner::new(
            Constraints::paper_default(),
            validator,
            TunerOptions {
                max_iterations: 2,
                non_target: Vec::new(),
                ..Default::default()
            },
        )
    }

    #[test]
    fn capture_round_trips_through_parse_checked() {
        let validator = small_validator();
        let tuner = tuner_for(&validator);
        let target = TuningTarget::Category(iotrace::WorkloadKind::Database);
        let state = tuner.init_state(target, &presets::intel_750(), &[], None);
        let cp = Checkpoint::capture(&tuner, target, &validator, &state);
        let json = serde_json::to_string_pretty(&cp).unwrap();
        let back = Checkpoint::parse_checked(&json).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.opts.seed, tuner.options().seed);
        back.verify(&tuner, target, &validator).unwrap();
    }

    #[test]
    fn parse_checked_rejects_bad_documents() {
        assert!(Checkpoint::parse_checked("{ nope")
            .unwrap_err()
            .contains("invalid JSON"));
        assert!(Checkpoint::parse_checked("[1,2]")
            .unwrap_err()
            .contains("must be a JSON object"));
        assert!(Checkpoint::parse_checked("{}")
            .unwrap_err()
            .contains("missing required key"));

        let validator = small_validator();
        let tuner = tuner_for(&validator);
        let target = TuningTarget::Category(iotrace::WorkloadKind::Database);
        let state = tuner.init_state(target, &presets::intel_750(), &[], None);
        let cp = Checkpoint::capture(&tuner, target, &validator, &state);

        let mut wrong_schema = cp.clone();
        wrong_schema.schema = "autoblox.checkpoint.v9".to_string();
        let json = serde_json::to_string(&wrong_schema).unwrap();
        assert!(Checkpoint::parse_checked(&json)
            .unwrap_err()
            .contains("unknown schema"));

        let mut bad_seed = cp.clone();
        bad_seed.seed_hex = "xyz".to_string();
        let json = serde_json::to_string(&bad_seed).unwrap();
        assert!(Checkpoint::parse_checked(&json)
            .unwrap_err()
            .contains("seed_hex"));

        let mut bad_rng = cp;
        bad_rng.state.rng = vec!["00".to_string(); 4];
        let json = serde_json::to_string(&bad_rng).unwrap();
        assert!(Checkpoint::parse_checked(&json)
            .unwrap_err()
            .contains("state.rng"));
    }

    #[test]
    fn verify_detects_drift() {
        let validator = small_validator();
        let tuner = tuner_for(&validator);
        let target = TuningTarget::Category(iotrace::WorkloadKind::Database);
        let state = tuner.init_state(target, &presets::intel_750(), &[], None);
        let cp = Checkpoint::capture(&tuner, target, &validator, &state);

        let other_target = TuningTarget::Category(iotrace::WorkloadKind::KvStore);
        assert!(cp
            .verify(&tuner, other_target, &validator)
            .unwrap_err()
            .contains("workload"));

        let other_validator = Validator::new(ValidatorOptions {
            trace_events: 61,
            ..Default::default()
        });
        let same_target_tuner = tuner_for(&other_validator);
        assert!(cp
            .verify(&same_target_tuner, target, &other_validator)
            .unwrap_err()
            .contains("validator settings"));

        let mut changed_opts = cp.clone();
        changed_opts.opts.max_iterations += 1;
        assert!(changed_opts
            .verify(&tuner, target, &validator)
            .unwrap_err()
            .contains("options differ"));
    }

    #[test]
    fn write_atomic_leaves_no_temp_file() {
        let validator = small_validator();
        let tuner = tuner_for(&validator);
        let target = TuningTarget::Category(iotrace::WorkloadKind::Database);
        let state = tuner.init_state(target, &presets::intel_750(), &[], None);
        let cp = Checkpoint::capture(&tuner, target, &validator, &state);

        let dir = std::env::temp_dir().join(format!("abx-ckpt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint-Database.json");
        cp.write_atomic(&path).unwrap();
        assert!(path.exists());
        assert!(!path.with_extension("json.tmp").exists());
        let back = Checkpoint::read(&path).unwrap();
        assert_eq!(back, cp);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summary_reports_phase_and_counts() {
        let validator = small_validator();
        let tuner = tuner_for(&validator);
        let target = TuningTarget::Category(iotrace::WorkloadKind::Database);
        let mut state = tuner.init_state(target, &presets::intel_750(), &[], None);
        tuner.step(target, &mut state);
        assert_eq!(
            Checkpoint::capture(&tuner, target, &validator, &state)
                .summary()
                .phase,
            "init-set"
        );
        tuner.step(target, &mut state);
        let cp = Checkpoint::capture(&tuner, target, &validator, &state);
        let s = cp.summary();
        assert_eq!(s.workload, "Database");
        assert_eq!(s.phase, "iterating");
        assert!(s.best_grade.is_some());
        assert!(s.validations > 0);
        let text = s.render(cp.written_at_unix + 90);
        assert!(text.contains("iterating"));
        assert!(text.contains("snapshot age:  1m 30s"));
    }
}
