//! Automated tuning of SSD configurations (§3.4): the customized Bayesian
//! optimization loop combining discrete SGD-style neighborhood search, GPR
//! grade prediction, constraint repair, and simulator validation.
//!
//! The loop is an explicit state machine: [`Tuner::init_state`] builds a
//! [`TuneState`], [`Tuner::step`] advances it by one phase transition (one
//! simulator-validated outer iteration once the search is running), and
//! [`Tuner::outcome`] folds a finished state into a [`TuningOutcome`].
//! `TuneState` is fully serializable — everything the loop carries between
//! iterations, including the RNG stream position — which is what makes
//! crash-safe checkpoint/resume (`autoblox::checkpoint`) possible: a run
//! resumed from a snapshot replays the exact remaining iterations and
//! produces a bit-identical outcome.

use crate::constraints::Constraints;
use crate::metrics::{grade, performance, Measurement};
use crate::params::ParamSpace;
use crate::validator::Validator;
use iotrace::gen::WorkloadKind;
use iotrace::Trace;
use mlkit::gpr::{Gpr, GprBuilder};
use mlkit::kernel::{Kernel as _, Rbf, SumKernel, White};
use mlkit::linalg::Matrix;
use mlkit::nn::{Mlp, TrainOptions};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use ssdsim::config::SsdConfig;
use std::collections::BTreeMap;

/// The surrogate model predicting configuration grades in the search loop.
///
/// The paper's customized BO uses Gaussian-process regression and argues it
/// matches deep-neural-network surrogates at lower cost (§3.2); `Neural`
/// provides that comparison point and `Random` removes the surrogate
/// entirely (see the `ablation_surrogates` experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SurrogateKind {
    /// Gaussian-process regression (the paper's choice).
    #[default]
    Gpr,
    /// A small MLP regressor retrained each iteration (DQN-style value
    /// network stand-in).
    Neural,
    /// No model: candidates are proposed pseudo-randomly.
    Random,
}

/// Options controlling the tuning loop; defaults mirror the paper.
///
/// Serializable so a checkpoint can embed the exact options it was produced
/// under and refuse to resume with different ones (the search trajectory is
/// a function of every field here). Note the vendored JSON layer stores
/// `u64` lossily above `i64::MAX`; `autoblox::checkpoint` therefore carries
/// `seed` redundantly as a hex string and restores it on load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunerOptions {
    /// Latency/throughput balance (Formula 1).
    pub alpha: f64,
    /// Target/non-target penalty balance (Formula 2).
    pub beta: f64,
    /// Maximum outer search iterations (each ends in one validation).
    pub max_iterations: usize,
    /// Maximum SGD moves per outer iteration (10 in the paper).
    pub sgd_iterations: usize,
    /// Manhattan-distance exploration bound from the validated set (5).
    pub manhattan_limit: u64,
    /// Size of the elite set the search root is sampled from (3).
    pub top_k: usize,
    /// Convergence: stop when the best grade moved less than
    /// `convergence_epsilon` (relative) over this many iterations.
    pub convergence_window: usize,
    /// Relative grade-change bound for convergence (±1%).
    pub convergence_epsilon: f64,
    /// When `true`, neighbor moves follow the pruning-derived tuning order
    /// and only the leading parameters are explored per step (§3.3/Fig. 9).
    pub use_tuning_order: bool,
    /// When `true`, skip non-target validation for configurations whose
    /// target-only grade cannot beat the current elite set (§3.4).
    pub validation_pruning: bool,
    /// Which surrogate predicts candidate grades during the SGD walk.
    pub surrogate: SurrogateKind,
    /// When `true`, the flash timing parameters (read/program/erase
    /// latency) may be tuned within their technology-relative bounds. Off
    /// by default: normal tuning treats chip timings as fixed by the flash
    /// type; the what-if analysis of §4.5 unlocks them.
    pub explore_flash_timing: bool,
    /// Non-target workload clusters graded alongside the target.
    pub non_target: Vec<WorkloadKind>,
    /// RNG seed for root selection.
    pub seed: u64,
    /// Speculative batch width `k`: besides validating the walk's chosen
    /// candidate, prefetch the `k - 1` next-best scored candidates on the
    /// worker pool. Prefetched measurements sit in the validator's side
    /// store without touching any sequential-visible accounting, so the
    /// search trajectory, checkpoints, and fingerprints are byte-identical
    /// at every `k` — later iterations that would re-simulate one of them
    /// hit the warm cache instead. `0` and `1` both disable speculation
    /// (`0` is what checkpoints written before this field existed
    /// deserialize to via `#[serde(default)]`; the vendored serde has no
    /// custom field defaults).
    #[serde(default)]
    pub speculative_batch: usize,
}

impl Default for TunerOptions {
    fn default() -> Self {
        TunerOptions {
            alpha: crate::metrics::DEFAULT_ALPHA,
            beta: crate::metrics::DEFAULT_BETA,
            max_iterations: 40,
            sgd_iterations: 10,
            manhattan_limit: 5,
            top_k: 3,
            convergence_window: 6,
            convergence_epsilon: 0.01,
            use_tuning_order: true,
            validation_pruning: true,
            surrogate: SurrogateKind::default(),
            explore_flash_timing: false,
            non_target: Vec::new(),
            seed: 0xA070,
            speculative_batch: 1,
        }
    }
}

/// A validated configuration with its grade.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradedConfig {
    /// The configuration.
    pub config: SsdConfig,
    /// Formula-2 grade relative to the reference.
    pub grade: f64,
    /// Formula-1 target-workload performance component.
    pub target_performance: f64,
    /// Measurement on the target workload.
    pub measurement: Measurement,
}

/// Per-iteration diagnostics from the outer BO loop.
///
/// Every field except the two timings and the importance sweep is
/// deterministic for a given tuning problem (identical at any thread count
/// and speculation depth); `surrogate_fit_ns` and `wall_ns` are collected
/// only while telemetry is enabled and are `0` otherwise, and `importance`
/// (plus `kernel_length_scale`) is swept only while model observability is
/// wanted (telemetry enabled or a journal attached) and is empty otherwise
/// — so serialized outcomes stay byte-identical across thread counts at
/// either setting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// 1-based outer-iteration index.
    pub iteration: u64,
    /// Neighbor candidates scored by the surrogate across the SGD walk.
    pub candidates_considered: u64,
    /// SGD steps taken before the walk stopped.
    pub sgd_steps: u64,
    /// Time spent fitting the surrogate, ns (0 when telemetry is off).
    pub surrogate_fit_ns: u64,
    /// Manhattan distance from the search root to the validated candidate.
    pub exploration_distance: u64,
    /// Best grade in the validated set after this iteration.
    pub best_grade: f64,
    /// Relative grade spread over the convergence window, or `-1.0` while
    /// the window has not filled yet.
    pub convergence_delta: f64,
    /// Simulator runs this iteration triggered (0 on a full cache hit).
    pub validations: u64,
    /// Wall-clock time of the iteration, ns (0 when telemetry is off).
    pub wall_ns: u64,
    /// Bottleneck fingerprint of the simulator work this iteration performed
    /// (all zeros when telemetry is off or the iteration was a full cache
    /// hit). Deterministic for a given tuning problem at any thread count.
    #[serde(default)]
    pub bottleneck: ssdsim::BottleneckReport,
    /// Surrogate's predicted grade mean for the chosen candidate, read
    /// before validation (0 when no surrogate scored it). New in schema v3;
    /// the defaults keep v2 reports parseable.
    #[serde(default)]
    pub predicted_mean: f64,
    /// Surrogate's predicted grade standard deviation for the chosen
    /// candidate (0 for the variance-free surrogates).
    #[serde(default)]
    pub predicted_std: f64,
    /// Whether this iteration produced a calibration pair: a surrogate
    /// prediction for the chosen candidate *and* a realized grade from its
    /// validation (power-rejected or already-seen candidates realize none).
    #[serde(default)]
    pub calibrated: bool,
    /// Grade validation realized for the chosen candidate (meaningful only
    /// when `calibrated`).
    #[serde(default)]
    pub realized_grade: f64,
    /// Exploration share of the chosen UCB: `σ / (|μ| + σ)` at β = 1
    /// (0 when nothing was predicted).
    #[serde(default)]
    pub explore_share: f64,
    /// Exploitation share of the chosen UCB: `|μ| / (|μ| + σ)`.
    #[serde(default)]
    pub exploit_share: f64,
    /// Chosen candidate's UCB minus the runner-up's (0 without one).
    #[serde(default)]
    pub decision_margin: f64,
    /// Lengthscale of the fitted GPR kernel (`exp` of its first
    /// log-parameter; 0 when no GPR was fitted or the sweep was skipped).
    #[serde(default)]
    pub kernel_length_scale: f64,
    /// Normalized per-parameter sensitivity of the surrogate around the
    /// incumbent (sums to 1; empty when model observability was off or no
    /// surrogate was fitted).
    #[serde(default)]
    pub importance: Vec<f64>,
}

/// Result of one tuning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuningOutcome {
    /// The target workload.
    pub workload: String,
    /// Best configuration found.
    pub best: GradedConfig,
    /// Reference measurement of the target workload on the baseline.
    pub reference: Measurement,
    /// Best-so-far grade after each outer iteration (Figure 10's curve).
    pub grade_history: Vec<f64>,
    /// Outer iterations executed before convergence or cap.
    pub iterations: usize,
    /// Simulator validations actually performed.
    pub validations: u64,
    /// Per-iteration diagnostics (one entry per outer iteration).
    pub iteration_records: Vec<IterationRecord>,
}

/// Where a [`TuneState`] stands in the tuning workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TunePhase {
    /// The reference configuration has not been measured yet.
    Reference,
    /// Reference measured; the initial configuration set awaits validation.
    InitSet,
    /// The outer BO loop is running.
    Iterating,
    /// Converged or hit the iteration cap; [`Tuner::step`] is a no-op.
    Done,
}

impl TunePhase {
    /// Stable lower-case name used in `progress` journal lines and the
    /// watch display.
    pub fn as_str(self) -> &'static str {
        match self {
            TunePhase::Reference => "reference",
            TunePhase::InitSet => "init_set",
            TunePhase::Iterating => "iterating",
            TunePhase::Done => "done",
        }
    }
}

/// One validated point of the search: a grid vector, its normalized
/// (surrogate-input) form, and the Formula-2 grade.
///
/// A named struct rather than the former `(Vec<usize>, Vec<f64>, f64)`
/// triple so the observation set serializes through the vendored serde
/// (which only implements tuples up to arity 2) and reads clearly in
/// checkpoint files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Grid-index vector over the parameter space.
    pub vector: Vec<usize>,
    /// The vector normalized to `[0, 1]` per parameter (GPR input).
    pub normalized: Vec<f64>,
    /// Formula-2 grade relative to the reference.
    pub grade: f64,
}

/// Reference measurement of one non-target workload on the baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NonTargetReference {
    /// The non-target workload cluster.
    pub kind: WorkloadKind,
    /// Its measurement on the pinned reference configuration.
    pub measurement: Measurement,
}

/// Everything the tuning loop carries between iterations, fully
/// serializable.
///
/// Invariants the serialization preserves exactly:
/// - `rng` holds the xoshiro256++ state as four 16-digit hex words (the
///   vendored JSON number type is lossy above `i64::MAX`, strings are not),
///   so a resumed run draws the identical random stream.
/// - `seen` is a sorted vector probed by binary search — deterministic
///   order on disk, and membership-only semantics identical to the
///   `HashSet` it replaced.
/// - `validations` accumulates the simulator-run delta of every executed
///   step, so a resumed run reports the same total as an uninterrupted one
///   even though its validator's own counter only saw the tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneState {
    /// Display name of the tuning target.
    pub workload: String,
    /// Current phase of the workflow.
    pub phase: TunePhase,
    /// The pinned, constraint-checked reference configuration.
    pub reference: SsdConfig,
    /// Initial configuration set: the reference plus any AutoDB recalls.
    pub init_set: Vec<SsdConfig>,
    /// Reference measurement on the target workload (set after the
    /// `Reference` phase).
    pub ref_target: Option<Measurement>,
    /// Reference measurements of the non-target workloads.
    pub ref_non: Vec<NonTargetReference>,
    /// Validated observations, in validation order (GPR training set).
    pub observations: Vec<Observation>,
    /// Grid vectors already validated or rejected, sorted (dedup set).
    pub seen: Vec<Vec<usize>>,
    /// Best configuration found so far.
    pub best: Option<GradedConfig>,
    /// Resolved parameter exploration order (indices into the space).
    pub order_indices: Vec<usize>,
    /// Whether an explicit pruning-derived order is in effect.
    pub explicit_order: bool,
    /// xoshiro256++ state as four hex words (see type-level docs).
    pub rng: Vec<String>,
    /// Best-so-far grade after the init set and after each iteration.
    pub grade_history: Vec<f64>,
    /// Outer iterations executed so far.
    pub iterations: u64,
    /// Per-iteration diagnostics accumulated so far.
    pub records: Vec<IterationRecord>,
    /// Simulator runs performed by the executed steps (survives resume).
    pub validations: u64,
}

impl TuneState {
    /// Whether the run has finished (converged or hit the iteration cap).
    pub fn done(&self) -> bool {
        self.phase == TunePhase::Done
    }

    /// Best grade over the validated set so far.
    pub fn best_grade(&self) -> f64 {
        self.observations
            .iter()
            .map(|o| o.grade)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    fn seen_contains(&self, vec: &[usize]) -> bool {
        self.seen
            .binary_search_by(|s| s.as_slice().cmp(vec))
            .is_ok()
    }

    fn seen_insert(&mut self, vec: Vec<usize>) {
        if let Err(i) = self.seen.binary_search(&vec) {
            self.seen.insert(i, vec);
        }
    }

    /// Indices of the top-`k` observations by grade (stable order on ties).
    fn elite(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.observations.len()).collect();
        idx.sort_by(|&a, &b| {
            self.observations[b]
                .grade
                .partial_cmp(&self.observations[a].grade)
                .expect("finite grades")
        });
        idx.truncate(k);
        idx
    }

    fn worst_elite_grade(&self, k: usize) -> f64 {
        let elite = self.elite(k);
        elite
            .last()
            .map(|&i| self.observations[i].grade)
            .unwrap_or(f64::NEG_INFINITY)
    }

    fn min_manhattan(&self, space: &ParamSpace, vec: &[usize]) -> u64 {
        self.observations
            .iter()
            .map(|o| space.manhattan(&o.vector, vec))
            .min()
            .unwrap_or(0)
    }

    /// Rebuilds the RNG from the stored hex words.
    ///
    /// # Panics
    ///
    /// Panics if the stored state is not four 16-digit hex words; states
    /// written by [`TuneState::store_rng`] always are, and the checkpoint
    /// layer validates files before they reach the tuner.
    fn rng(&self) -> StdRng {
        assert_eq!(self.rng.len(), 4, "RNG state must be four hex words");
        let mut s = [0u64; 4];
        for (slot, word) in s.iter_mut().zip(&self.rng) {
            *slot = u64::from_str_radix(word, 16).expect("RNG state word must be hex");
        }
        StdRng::from_state(s)
    }

    fn store_rng(&mut self, rng: &StdRng) {
        self.rng = rng.state().iter().map(|w| format!("{w:016x}")).collect();
    }
}

/// What the tuner optimizes for: a named workload category (validation
/// traces are generated) or a concrete trace (e.g. a new workload that did
/// not match any cluster).
#[derive(Debug, Clone, Copy)]
pub enum TuningTarget<'t> {
    /// A studied workload category.
    Category(WorkloadKind),
    /// A caller-supplied block I/O trace.
    Trace(&'t Trace),
}

impl TuningTarget<'_> {
    /// Display name of the target.
    pub fn name(&self) -> &str {
        match self {
            TuningTarget::Category(k) => k.name(),
            TuningTarget::Trace(t) => t.name(),
        }
    }
}

impl From<WorkloadKind> for TuningTarget<'static> {
    fn from(k: WorkloadKind) -> Self {
        TuningTarget::Category(k)
    }
}

/// How often the GPR surrogate's hyperparameters are re-tuned from scratch.
///
/// Between scheduled full fits the model is grown by one rank-1
/// [`Gpr::extend`] per new observation — O(n²) instead of the O(n³)
/// refactorization — keeping the hyperparameters frozen at the last
/// scheduled fit. The schedule is a pure function of the observation count,
/// so a resumed run (whose in-memory chain is gone) rebuilds the identical
/// chain: full fit on the last scheduled prefix, then the same extends.
const GPR_RETUNE_EVERY: usize = 16;

/// The incrementally grown GPR chain: the model fitted on the first
/// `count` observations, plus a prefix hash guarding against feeding it a
/// different observation stream (a different tuning target sharing the
/// tuner, or a state object rebuilt by checkpoint resume).
#[derive(Debug)]
struct SurrogateCache {
    hash: u64,
    count: usize,
    gpr: Gpr,
}

/// FNV-1a over the bit patterns of each observation's normalized vector and
/// grade — the exact inputs the surrogate trains on.
fn observation_prefix_hash(obs: &[Observation]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mix = |h: &mut u64, w: u64| *h = (*h ^ w).wrapping_mul(0x0000_0100_0000_01b3);
    for o in obs {
        for &x in &o.normalized {
            mix(&mut h, x.to_bits());
        }
        mix(&mut h, o.grade.to_bits());
    }
    h
}

/// A fitted grade surrogate used inside one search iteration.
#[derive(Debug)]
enum FittedSurrogate {
    Gpr(Gpr),
    Neural(Mlp),
}

impl FittedSurrogate {
    /// Returns `(acquisition_value, predicted_mean, predicted_std)`.
    fn predict(&self, point: &[f64]) -> (f64, f64, f64) {
        match self {
            FittedSurrogate::Gpr(g) => g
                .predict(point)
                .map(|p| (p.ucb(1.0), p.mean, p.std_dev()))
                .unwrap_or((f64::NEG_INFINITY, f64::NEG_INFINITY, 0.0)),
            // The MLP has no predictive variance: acquisition = mean.
            FittedSurrogate::Neural(net) => {
                let mean = net.predict(point).unwrap_or(f64::NEG_INFINITY);
                (mean, mean, 0.0)
            }
        }
    }

    /// Lengthscale of the fitted GPR kernel (`exp` of its first
    /// log-parameter); 0 for the variance-free surrogates.
    fn length_scale(&self) -> f64 {
        match self {
            FittedSurrogate::Gpr(g) => g.kernel().params().first().map(|&p| p.exp()).unwrap_or(0.0),
            FittedSurrogate::Neural(_) => 0.0,
        }
    }
}

/// The automated configuration tuner.
#[derive(Debug)]
pub struct Tuner<'a> {
    space: ParamSpace,
    constraints: Constraints,
    validator: &'a Validator,
    opts: TunerOptions,
    /// Incrementally grown GPR chain (see [`GPR_RETUNE_EVERY`]). Purely a
    /// memoization of a deterministic computation: dropping it at any point
    /// (or resuming in a fresh process) replays the identical chain.
    gpr_cache: Mutex<Option<SurrogateCache>>,
}

impl<'a> Tuner<'a> {
    /// Creates a tuner over the full parameter space.
    pub fn new(constraints: Constraints, validator: &'a Validator, opts: TunerOptions) -> Self {
        Tuner {
            space: ParamSpace::new(),
            constraints,
            validator,
            opts,
            gpr_cache: Mutex::new(None),
        }
    }

    /// Replaces the parameter space (e.g. a pruned one).
    pub fn with_space(mut self, space: ParamSpace) -> Self {
        self.space = space;
        self
    }

    /// The parameter space in use.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// The options the tuner runs with.
    pub fn options(&self) -> &TunerOptions {
        &self.opts
    }

    /// The constraints the tuner searches under.
    pub fn constraints(&self) -> &Constraints {
        &self.constraints
    }

    /// Runs the full tuning workflow for `target`, starting from the
    /// `reference` commodity configuration plus any `initial` configurations
    /// recalled from AutoDB, optionally following a pruning-derived
    /// `tuning_order` (parameter names, most important first).
    ///
    /// Equivalent to [`Tuner::init_state`] followed by [`Tuner::drive`]
    /// with a no-op observer: the step-driven state machine on the hot
    /// path, zero serialization.
    ///
    /// # Panics
    ///
    /// Panics if the reference configuration violates the constraints — the
    /// caller must pass a baseline consistent with `set_cons`.
    pub fn tune<'t>(
        &self,
        target: impl Into<TuningTarget<'t>>,
        reference: &SsdConfig,
        initial: &[SsdConfig],
        tuning_order: Option<&[&str]>,
    ) -> TuningOutcome {
        let target = target.into();
        let state = self.init_state(target, reference, initial, tuning_order);
        self.drive(target, state, |_| {})
    }

    /// Builds the initial [`TuneState`] for `target`: pins and checks the
    /// reference, resolves the exploration order, and seeds the RNG. Does
    /// no simulator work — the first [`Tuner::step`] measures the
    /// reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference configuration violates the constraints.
    pub fn init_state<'t>(
        &self,
        target: impl Into<TuningTarget<'t>>,
        reference: &SsdConfig,
        initial: &[SsdConfig],
        tuning_order: Option<&[&str]>,
    ) -> TuneState {
        let target = target.into();
        let mut reference = reference.clone();
        self.constraints.pin(&mut reference);
        self.constraints
            .check_structural(&reference)
            .expect("reference configuration must satisfy the constraints");
        let (order_indices, explicit_order) = self.order_indices(tuning_order);
        let rng = StdRng::seed_from_u64(
            self.opts.seed ^ target.name().bytes().map(u64::from).sum::<u64>(),
        );
        // Initialize with the reference and any AutoDB recalls (step 1).
        let mut init_set: Vec<SsdConfig> = vec![reference.clone()];
        init_set.extend(initial.iter().cloned());
        let mut state = TuneState {
            workload: target.name().to_string(),
            phase: TunePhase::Reference,
            reference,
            init_set,
            ref_target: None,
            ref_non: Vec::new(),
            observations: Vec::new(),
            seen: Vec::new(),
            best: None,
            order_indices,
            explicit_order,
            rng: Vec::new(),
            grade_history: Vec::new(),
            iterations: 0,
            records: Vec::new(),
            validations: 0,
        };
        state.store_rng(&rng);
        state
    }

    /// Advances `state` by one transition: measure the reference, validate
    /// the initial set, or run one outer BO iteration. Returns `false` once
    /// the state is [`TunePhase::Done`] (the call is then a no-op).
    ///
    /// Each step is a pure `TuneState -> TuneState` transition plus
    /// simulator calls: the identical sequence of steps from the identical
    /// state produces the identical result, at any thread count, which is
    /// the invariant checkpoint/resume relies on.
    pub fn step<'t>(&self, target: impl Into<TuningTarget<'t>>, state: &mut TuneState) -> bool {
        let target = target.into();
        match state.phase {
            TunePhase::Reference => {
                self.step_reference(target, state);
                true
            }
            TunePhase::InitSet => {
                self.step_init_set(target, state);
                true
            }
            TunePhase::Iterating => {
                self.step_iterate(target, state);
                true
            }
            TunePhase::Done => false,
        }
    }

    /// Steps `state` to completion under the `tuner.tune` span, invoking
    /// `after_step` after every transition (the checkpoint layer's hook),
    /// and folds the final state into a [`TuningOutcome`].
    pub fn drive<'t>(
        &self,
        target: impl Into<TuningTarget<'t>>,
        mut state: TuneState,
        mut after_step: impl FnMut(&TuneState),
    ) -> TuningOutcome {
        let target = target.into();
        let _tune_span = telemetry::span::Span::enter_keyed(
            "tuner.tune",
            telemetry::span::key_str(target.name()),
        );
        while self.step(target, &mut state) {
            self.record_progress(&state);
            after_step(&state);
        }
        Self::outcome(state)
    }

    /// Streams one `progress` journal line for the state just produced by a
    /// step. The percent-complete estimate is a pure function of the phase
    /// and iteration counters — deterministic at any thread count — while
    /// the ETA extrapolates from per-iteration wall-clock timing (zero with
    /// telemetry off) and is therefore excluded from determinism
    /// fingerprints by consumers.
    fn record_progress(&self, state: &TuneState) {
        let total = self.opts.max_iterations.max(1) as u64;
        let percent = match state.phase {
            TunePhase::Reference => 0.0,
            // Both warm-up phases are flat-rate estimates; the BO loop owns
            // the 0.10..1.00 band proportionally to its iteration counter.
            TunePhase::InitSet => 0.05,
            TunePhase::Iterating => 0.10 + 0.90 * (state.iterations as f64 / total as f64).min(1.0),
            TunePhase::Done => 1.0,
        };
        let eta_ns = if state.done() {
            0
        } else {
            let timed: Vec<u64> = state
                .records
                .iter()
                .map(|r| r.wall_ns)
                .filter(|&ns| ns > 0)
                .collect();
            if timed.is_empty() {
                0
            } else {
                let mean = timed.iter().sum::<u64>() / timed.len() as u64;
                mean * total.saturating_sub(state.iterations)
            }
        };
        crate::telemetry::global().record_progress(
            &state.workload,
            state.phase.as_str(),
            state.iterations,
            total,
            percent,
            eta_ns,
        );
    }

    /// Folds a finished (or abandoned) state into a [`TuningOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if no configuration was validated yet (the state never got
    /// past its `InitSet` phase with a within-budget reference).
    pub fn outcome(state: TuneState) -> TuningOutcome {
        TuningOutcome {
            workload: state.workload,
            best: state.best.expect("at least the reference was validated"),
            reference: state.ref_target.expect("reference was measured"),
            grade_history: state.grade_history,
            iterations: state.iterations as usize,
            validations: state.validations,
            iteration_records: state.records,
        }
    }

    /// Phase 1: measure the reference on the target and every non-target
    /// workload.
    fn step_reference(&self, target: TuningTarget<'_>, state: &mut TuneState) {
        let runs_before = self.validator.simulator_runs();
        let ref_span = telemetry::span::Span::enter("tuner.reference");
        // Reference measurements: the target and every non-target workload
        // are independent simulator runs, evaluated on the worker pool. The
        // validator memoizes deterministically and `parallel_map` preserves
        // order, so the outcome is identical to the sequential loop.
        let non_kinds: Vec<WorkloadKind> = self
            .opts
            .non_target
            .iter()
            .filter(|&&w| !matches!(target, TuningTarget::Category(k) if k == w))
            .copied()
            .collect();
        let mut ref_jobs: Vec<Option<WorkloadKind>> = vec![None];
        ref_jobs.extend(non_kinds.iter().copied().map(Some));
        let reference = state.reference.clone();
        let mut ref_meas = mlkit::parallel::parallel_map(ref_jobs, |w| match w {
            None => self.eval_target(&reference, target),
            Some(k) => self.validator.evaluate(&reference, k),
        })
        .into_iter();
        state.ref_target = Some(ref_meas.next().expect("target measurement"));
        state.ref_non = non_kinds
            .into_iter()
            .zip(ref_meas)
            .map(|(kind, measurement)| NonTargetReference { kind, measurement })
            .collect();
        drop(ref_span);
        state.validations += self.validator.simulator_runs() - runs_before;
        state.phase = TunePhase::InitSet;
    }

    /// Phase 2: validate the initial configuration set.
    fn step_init_set(&self, target: TuningTarget<'_>, state: &mut TuneState) {
        let runs_before = self.validator.simulator_runs();
        let init_span = telemetry::span::Span::enter("tuner.init_set");
        let prepared: Vec<SsdConfig> = state
            .init_set
            .iter()
            .filter_map(|cfg| {
                let mut cfg = cfg.clone();
                self.constraints.pin(&mut cfg);
                self.constraints
                    .check_structural(&cfg)
                    .is_ok()
                    .then_some(cfg)
            })
            .collect();
        // Warm the measurement cache for the whole init set in parallel —
        // exactly the evaluations the sequential validation below performs
        // (non-targets only for configurations inside the power budget), so
        // the simulator-run count and every grade match a sequential run.
        let init_meas =
            mlkit::parallel::parallel_map(prepared.clone(), |cfg| self.eval_target(&cfg, target));
        let mut non_jobs: Vec<(SsdConfig, WorkloadKind)> = Vec::new();
        for (cfg, m) in prepared.iter().zip(&init_meas) {
            if self.constraints.check_power(m.power_w) {
                non_jobs.extend(state.ref_non.iter().map(|r| (cfg.clone(), r.kind)));
            }
        }
        mlkit::parallel::parallel_map(non_jobs, |(cfg, w)| self.validator.evaluate(&cfg, w));
        for cfg in &prepared {
            self.validate_into(cfg, target, state, false);
        }
        drop(init_span);
        state.grade_history.push(state.best_grade());
        state.validations += self.validator.simulator_runs() - runs_before;
        state.phase = if self.opts.max_iterations == 0 {
            TunePhase::Done
        } else {
            TunePhase::Iterating
        };
    }

    /// Phase 3: one outer BO iteration — pick a root, fit the surrogate,
    /// walk, speculate, validate, check convergence.
    ///
    /// The outer loop stays logically sequential: iteration N's surrogate
    /// is fitted on every validation from iterations 0..N-1, a strict data
    /// dependency — identical results at any thread count is a design
    /// invariant. Speculation (`speculative_batch > 1`) respects it by
    /// construction: extra candidates are simulated ahead of time into the
    /// validator's uncharged side store, and a result only becomes visible
    /// (counted, aggregated, journaled, exported) at the exact point a
    /// sequential execution would have computed it.
    fn step_iterate(&self, target: TuningTarget<'_>, state: &mut TuneState) {
        state.iterations += 1;
        // Keyed by the iteration index: the loop is sequential, but a
        // content key keeps the id independent of any earlier spans.
        let _iter_span = telemetry::span::Span::enter_keyed("tuner.iteration", state.iterations);
        let iter_start = telemetry::start();
        let runs_at_iter_start = self.validator.simulator_runs();
        let agg_at_iter_start = telemetry::enabled().then(|| self.validator.sim_aggregate());
        let mut rng = state.rng();
        // Step 3: pick the search root among the top-k elite at random.
        let elite = state.elite(self.opts.top_k);
        let root_i = elite[rng.gen_range(0..elite.len())];
        let root_vec = state.observations[root_i].vector.clone();
        let mut cur = root_vec.clone();
        let mut cur_pred = state.observations[root_i].grade;

        // Step 4: the surrogate fitted on the validated set predicts
        // candidate grades.
        let fit_start = telemetry::start();
        let fit_span = telemetry::span::Span::enter("tuner.fit_surrogate");
        let surrogate = self.fit_surrogate(state);
        drop(fit_span);
        let surrogate_fit_ns = telemetry::elapsed_ns(fit_start);

        // The SGD walk keeps moving while the predicted mean improves;
        // whatever candidate it last considered gets validated, so every
        // outer iteration contributes one new measurement (exploration
        // never stalls on a pessimistic surrogate).
        let mut chosen: Option<Vec<usize>> = None;
        let mut sgd_steps: u64 = 0;
        let mut candidates_considered: u64 = 0;
        // Surrogate scores memoized across the walk: neighbor sets of
        // consecutive positions overlap heavily, and a revisited candidate
        // costs one map probe instead of a second GPR prediction.
        // `candidates_considered` counts unique configurations accordingly.
        let mut scored: BTreeMap<Vec<usize>, (f64, f64, f64)> = BTreeMap::new();
        let sgd_span = telemetry::span::Span::enter("tuner.sgd_walk");
        for _ in 0..self.opts.sgd_iterations {
            sgd_steps += 1;
            let candidates = self.candidates(state, &cur);
            if candidates.is_empty() {
                break;
            }
            let mut best_cand: Option<(Vec<usize>, f64, f64)> = None;
            match &surrogate {
                Some(model) => {
                    for cand in candidates {
                        let (ucb, mean, _std) = match scored.get(&cand) {
                            Some(&s) => s,
                            None => {
                                candidates_considered += 1;
                                let s = model.predict(&self.normalize(&cand));
                                scored.insert(cand.clone(), s);
                                s
                            }
                        };
                        if best_cand.as_ref().is_none_or(|(_, u, _)| ucb > *u) {
                            best_cand = Some((cand, ucb, mean));
                        }
                    }
                }
                None => {
                    // Random-proposal ablation: no surrogate guidance. The
                    // pick still consumes exactly one RNG draw per step;
                    // only the unique-candidate accounting is shared with
                    // the surrogate branch.
                    for cand in &candidates {
                        if !scored.contains_key(cand) {
                            candidates_considered += 1;
                            scored.insert(cand.clone(), (0.0, f64::NEG_INFINITY, 0.0));
                        }
                    }
                    let pick = rng.gen_range(0..candidates.len());
                    best_cand = Some((candidates[pick].clone(), 0.0, f64::NEG_INFINITY));
                }
            }
            let Some((cand, _ucb, mean)) = best_cand else {
                break;
            };
            chosen = Some(cand.clone());
            if mean <= cur_pred {
                break;
            }
            cur = cand;
            cur_pred = mean;
            // Heuristic exploration bound (minimum Manhattan distance).
            if state.min_manhattan(&self.space, &cur) >= self.opts.manhattan_limit {
                break;
            }
        }
        drop(sgd_span);

        // Model observatory: read the surrogate's beliefs about the chosen
        // candidate *before* `store_rng` seals the trajectory. Every value
        // here is a pure function of the deterministic observation stream
        // (no RNG, no clocks), so fingerprints stay bit-identical at any
        // thread count and speculation depth.
        let mut predicted_mean = 0.0;
        let mut predicted_std = 0.0;
        let mut explore_share = 0.0;
        let mut exploit_share = 0.0;
        let mut decision_margin = 0.0;
        let mut has_prediction = false;
        if surrogate.is_some() {
            if let Some(c) = chosen.as_ref() {
                if let Some(&(ucb, mean, std)) = scored.get(c) {
                    if mean.is_finite() {
                        has_prediction = true;
                        predicted_mean = mean;
                        predicted_std = std;
                        // Decompose UCB = μ + β·σ (β = 1) into shares.
                        let denom = mean.abs() + std;
                        if denom > 1e-12 {
                            exploit_share = mean.abs() / denom;
                            explore_share = std / denom;
                        }
                        let runner_up = scored
                            .iter()
                            .filter(|(v, _)| *v != c)
                            .map(|(_, &(u, _, _))| u)
                            .fold(f64::NEG_INFINITY, f64::max);
                        if runner_up.is_finite() {
                            decision_margin = ucb - runner_up;
                        }
                    }
                }
            }
        }
        // The per-parameter sensitivity sweep costs ~one surrogate
        // prediction per neighbor; it runs only while someone is watching
        // (telemetry on or a journal attached), like the gated timings.
        let (importance, kernel_length_scale) =
            if telemetry::enabled() || crate::telemetry::global().has_journal() {
                self.model_importance(state, surrogate.as_ref())
            } else {
                (Vec::new(), 0.0)
            };

        // All random draws for this iteration happened; persist the stream
        // position so a resume continues it exactly.
        state.store_rng(&rng);

        // Speculative batch (k > 1): while the chosen candidate is about to
        // be validated anyway, prefetch it together with the k-1 next-best
        // scored candidates on the worker pool. Prefetches land in the
        // validator's side store and charge nothing until demanded, so the
        // trajectory is byte-identical at every k; extras the search later
        // validates become warm cache hits. The extras ranking needs real
        // acquisition scores, so the Random ablation never speculates.
        let k = self.opts.speculative_batch.max(1);
        if k > 1 && surrogate.is_some() {
            if let Some(best_vec) = chosen.as_ref().filter(|v| !state.seen_contains(v)) {
                let mut batch: Vec<SsdConfig> = Vec::with_capacity(k);
                batch.extend(self.materialize(&state.reference, best_vec));
                let mut extras: Vec<(f64, &Vec<usize>)> = scored
                    .iter()
                    .filter(|(v, _)| *v != best_vec && !state.seen_contains(v))
                    .map(|(v, &(ucb, _, _))| (ucb, v))
                    .collect();
                // Highest acquisition value first; the BTreeMap iteration
                // order makes ascending vector order the deterministic
                // tiebreak (sort_by is stable).
                extras.sort_by(|a, b| b.0.total_cmp(&a.0));
                for (_, v) in extras.into_iter().take(k - 1) {
                    batch.extend(self.materialize(&state.reference, v));
                }
                if batch.len() > 1 {
                    let _spec_span = telemetry::span::Span::enter("tuner.speculate");
                    mlkit::parallel::parallel_map(batch, |cfg| self.prefetch_target(&cfg, target));
                }
            }
        }

        // Step 5: validate the explored configuration.
        let exploration_distance = chosen
            .as_ref()
            .map(|c| self.space.manhattan(&root_vec, c))
            .unwrap_or(0);
        let obs_before = state.observations.len();
        if let Some(vec) = chosen {
            if !state.seen_contains(&vec) {
                if let Some(cfg) = self.materialize(&state.reference, &vec) {
                    let _validate_span = telemetry::span::Span::enter("tuner.validate");
                    self.validate_into(&cfg, target, state, self.opts.validation_pruning);
                }
            }
        }
        // A calibration pair needs both a prediction and a realization;
        // power-rejected or already-seen candidates push no observation.
        let calibrated = has_prediction && state.observations.len() > obs_before;
        let realized_grade = if calibrated {
            state
                .observations
                .last()
                .expect("an observation was just pushed")
                .grade
        } else {
            0.0
        };

        let g = state.best_grade();
        state.grade_history.push(g);
        // Convergence: the elite grade barely moved over the window.
        let mut converged = false;
        let mut convergence_delta = -1.0;
        let history = &state.grade_history;
        if history.len() > self.opts.convergence_window {
            let w = &history[history.len() - 1 - self.opts.convergence_window..];
            let lo = w.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let scale = hi.abs().max(1e-6);
            convergence_delta = (hi - lo) / scale;
            converged = convergence_delta <= self.opts.convergence_epsilon;
        }
        let validations = self.validator.simulator_runs() - runs_at_iter_start;
        let record = IterationRecord {
            iteration: state.iterations,
            candidates_considered,
            sgd_steps,
            surrogate_fit_ns,
            exploration_distance,
            best_grade: g,
            convergence_delta,
            validations,
            wall_ns: telemetry::elapsed_ns(iter_start),
            bottleneck: agg_at_iter_start
                .map(|earlier| self.validator.sim_aggregate().bottleneck_delta(&earlier))
                .unwrap_or_default(),
            predicted_mean,
            predicted_std,
            calibrated,
            realized_grade,
            explore_share,
            exploit_share,
            decision_margin,
            kernel_length_scale,
            importance,
        };
        // Stream the record to an attached run journal (no-op without
        // one) so a live tuning run is observable before it finishes.
        crate::telemetry::global().record_iteration(target.name(), &record);
        if has_prediction {
            crate::telemetry::global().record_model(target.name(), &record);
        }
        state.records.push(record);
        state.validations += validations;
        if converged || state.iterations as usize >= self.opts.max_iterations {
            state.phase = TunePhase::Done;
        }
    }

    fn eval_target(&self, cfg: &SsdConfig, target: TuningTarget<'_>) -> Measurement {
        match target {
            TuningTarget::Category(k) => self.validator.evaluate(cfg, k),
            TuningTarget::Trace(t) => self.validator.evaluate_trace(cfg, t),
        }
    }

    /// Speculative twin of [`Tuner::eval_target`]: simulate now, charge on
    /// first demand (see [`Validator::prefetch_trace`]).
    fn prefetch_target(&self, cfg: &SsdConfig, target: TuningTarget<'_>) {
        match target {
            TuningTarget::Category(k) => self.validator.prefetch(cfg, k),
            TuningTarget::Trace(t) => self.validator.prefetch_trace(cfg, t),
        }
    }

    /// Resolves the exploration order; the boolean reports whether an
    /// explicit pruning-derived order is in effect.
    fn order_indices(&self, tuning_order: Option<&[&str]>) -> (Vec<usize>, bool) {
        match tuning_order {
            Some(names) if self.opts.use_tuning_order => {
                let idx: Vec<usize> = names
                    .iter()
                    .filter_map(|n| self.space.index_of(n))
                    .collect();
                if idx.is_empty() {
                    ((0..self.space.len()).collect(), false)
                } else {
                    (idx, true)
                }
            }
            _ => ((0..self.space.len()).collect(), false),
        }
    }

    /// Generates constraint-respecting neighbor vectors of `cur`, exploring
    /// parameters in order (and only the leading ones when an order is
    /// enforced).
    fn candidates(&self, state: &TuneState, cur: &[usize]) -> Vec<Vec<usize>> {
        let mut pinned: Vec<usize> = ["interface", "flash_technology"]
            .iter()
            .filter_map(|n| self.space.index_of(n))
            .collect();
        if !self.opts.explore_flash_timing {
            pinned.extend(
                ["read_latency", "program_latency", "erase_latency"]
                    .iter()
                    .filter_map(|n| self.space.index_of(n)),
            );
        }
        // With a pruning-derived order, focus the walk on the leading
        // parameters (Fig. 9's efficiency mechanism). Without one, every
        // parameter — numeric, boolean, and categorical — is explorable.
        let order = &state.order_indices;
        let limit = if state.explicit_order && self.opts.use_tuning_order {
            order.len().min(12)
        } else {
            order.len()
        };
        let mut out = Vec::new();
        for &pi in order.iter().take(limit) {
            if pinned.contains(&pi) {
                continue;
            }
            for mut cand in self.space.neighbors_of_param(cur, pi) {
                // Repair dependent parameters to hold the capacity
                // constraint, then re-vectorize.
                let Some(cfg) = self.materialize_vec(&state.reference, &cand) else {
                    continue;
                };
                cand = self.space.vectorize(&cfg);
                if state.seen_contains(&cand) || cand == cur {
                    continue;
                }
                if state.min_manhattan(&self.space, &cand) > self.opts.manhattan_limit {
                    continue;
                }
                out.push(cand);
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Applies a vector onto the reference base (so parameters outside a
    /// pruned space keep the reference values) and repairs constraints;
    /// `None` if the result cannot satisfy them.
    fn materialize_vec(&self, base: &SsdConfig, vec: &[usize]) -> Option<SsdConfig> {
        let mut cfg = self.space.apply(base, vec);
        self.constraints.pin(&mut cfg);
        if !self.constraints.repair_capacity(&self.space, &mut cfg) {
            return None;
        }
        self.constraints.check_structural(&cfg).ok()?;
        Some(cfg)
    }

    fn materialize(&self, base: &SsdConfig, vec: &[usize]) -> Option<SsdConfig> {
        self.materialize_vec(base, vec)
    }

    fn normalize(&self, vec: &[usize]) -> Vec<f64> {
        vec.iter()
            .zip(self.space.params())
            .map(|(&i, p)| {
                if p.cardinality() > 1 {
                    i as f64 / (p.cardinality() - 1) as f64
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Deterministic per-parameter sensitivity sweep around the incumbent
    /// (the best validated observation), using surrogate predictions only —
    /// no extra simulator runs. Each parameter's raw importance is the mean
    /// absolute change in predicted grade across its single-step neighbor
    /// moves; the vector is normalized to sum 1. Returns the normalized
    /// importances plus the fitted GPR kernel's lengthscale (0 without
    /// one). Empty when no surrogate is fitted or the sweep degenerates.
    fn model_importance(
        &self,
        state: &TuneState,
        surrogate: Option<&FittedSurrogate>,
    ) -> (Vec<f64>, f64) {
        let Some(model) = surrogate else {
            return (Vec::new(), 0.0);
        };
        let length_scale = model.length_scale();
        let elite = state.elite(1);
        let Some(&best_i) = elite.first() else {
            return (Vec::new(), length_scale);
        };
        let incumbent = state.observations[best_i].vector.clone();
        let (_, center, _) = model.predict(&self.normalize(&incumbent));
        if !center.is_finite() {
            return (Vec::new(), length_scale);
        }
        let mut raw = Vec::with_capacity(self.space.len());
        for pi in 0..self.space.len() {
            let neighbors = self.space.neighbors_of_param(&incumbent, pi);
            let mut acc = 0.0;
            let mut n = 0usize;
            for nb in &neighbors {
                let (_, mean, _) = model.predict(&self.normalize(nb));
                if mean.is_finite() {
                    acc += (mean - center).abs();
                    n += 1;
                }
            }
            raw.push(if n > 0 { acc / n as f64 } else { 0.0 });
        }
        let total: f64 = raw.iter().sum();
        if total <= 1e-12 {
            return (Vec::new(), length_scale);
        }
        for r in &mut raw {
            *r /= total;
        }
        (raw, length_scale)
    }

    fn fit_surrogate(&self, state: &TuneState) -> Option<FittedSurrogate> {
        if state.observations.len() < 2 || self.opts.surrogate == SurrogateKind::Random {
            return None;
        }
        let rows: Vec<Vec<f64>> = state
            .observations
            .iter()
            .map(|o| o.normalized.clone())
            .collect();
        let ys: Vec<f64> = state.observations.iter().map(|o| o.grade).collect();
        let x = Matrix::from_rows(&rows);
        match self.opts.surrogate {
            SurrogateKind::Gpr => self.fit_gpr(state, &x, &ys).map(FittedSurrogate::Gpr),
            SurrogateKind::Neural => {
                let mut net = Mlp::new(&[x.cols(), 32, 16, 1], self.opts.seed).ok()?;
                net.fit(
                    &x,
                    &ys,
                    TrainOptions {
                        epochs: 150,
                        learning_rate: 0.02,
                        batch_size: 8,
                        ..TrainOptions::default()
                    },
                )
                .ok()?;
                Some(FittedSurrogate::Neural(net))
            }
            SurrogateKind::Random => None,
        }
    }

    /// Fits the GPR surrogate, growing the cached chain incrementally
    /// between scheduled hyperparameter refits (see [`GPR_RETUNE_EVERY`]).
    ///
    /// `x`/`ys` are the full observation design matrix and grades; the
    /// incremental path only touches the rows the cache has not absorbed
    /// yet. Every branch is a deterministic function of the observation
    /// stream alone, so the fitted model — and with it the whole search
    /// trajectory — is identical whether the chain was kept in memory or
    /// rebuilt after a checkpoint resume.
    fn fit_gpr(&self, state: &TuneState, x: &Matrix, ys: &[f64]) -> Option<Gpr> {
        let paper_kernel = || {
            SumKernel::new(vec![
                Box::new(Rbf::new(0.5, 1.0)) as Box<dyn mlkit::kernel::Kernel>,
                Box::new(White::new(1e-4)),
            ])
        };
        let n = state.observations.len();
        if n < GPR_RETUNE_EVERY || n.is_multiple_of(GPR_RETUNE_EVERY) {
            // Scheduled full fit: re-tune hyperparameters from scratch and
            // restart the chain from here.
            let g = GprBuilder::new()
                .kernel(paper_kernel())
                .optimize_rounds(1)
                .fit(x, ys)
                .ok()?;
            *self.gpr_cache.lock() = Some(SurrogateCache {
                hash: observation_prefix_hash(&state.observations),
                count: n,
                gpr: g.clone(),
            });
            return Some(g);
        }
        let base = n - n % GPR_RETUNE_EVERY;
        let frozen_refit = |kernel: SumKernel, count: usize| {
            let rows: Vec<Vec<f64>> = state.observations[..count]
                .iter()
                .map(|o| o.normalized.clone())
                .collect();
            let yb: Vec<f64> = state.observations[..count]
                .iter()
                .map(|o| o.grade)
                .collect();
            GprBuilder::new()
                .kernel(kernel)
                .optimize_rounds(0)
                .fit(&Matrix::from_rows(&rows), &yb)
                .ok()
        };
        let mut cache = self.gpr_cache.lock();
        let usable = cache.as_ref().is_some_and(|c| {
            c.count >= base
                && c.count <= n
                && c.hash == observation_prefix_hash(&state.observations[..c.count])
        });
        if !usable {
            // Cache miss (fresh process after a resume, or a different
            // observation stream): replay the chain from its last scheduled
            // refit — bit-identical to having kept it in memory.
            let rows: Vec<Vec<f64>> = state.observations[..base]
                .iter()
                .map(|o| o.normalized.clone())
                .collect();
            let yb: Vec<f64> = state.observations[..base].iter().map(|o| o.grade).collect();
            let g = GprBuilder::new()
                .kernel(paper_kernel())
                .optimize_rounds(1)
                .fit(&Matrix::from_rows(&rows), &yb)
                .ok()?;
            *cache = Some(SurrogateCache {
                hash: observation_prefix_hash(&state.observations[..base]),
                count: base,
                gpr: g,
            });
        }
        let c = cache.as_mut().expect("chain was just (re)built");
        while c.count < n {
            let o = &state.observations[c.count];
            c.gpr = match c.gpr.extend(&o.normalized, o.grade) {
                Ok(g) => g,
                // Numerically degenerate extension: refit from scratch with
                // the chain's frozen hyperparameters — still a deterministic
                // function of the observation stream.
                Err(_) => frozen_refit(c.gpr.kernel().clone(), c.count + 1)?,
            };
            c.count += 1;
            c.hash = observation_prefix_hash(&state.observations[..c.count]);
        }
        Some(c.gpr.clone())
    }

    /// Validates `cfg` (steps 5-6): measures the target workload, optionally
    /// prunes the non-target runs, enforces the power budget, and records
    /// the grade.
    fn validate_into(
        &self,
        cfg: &SsdConfig,
        target: TuningTarget<'_>,
        state: &mut TuneState,
        allow_pruned_validation: bool,
    ) {
        let vec = self.space.vectorize(cfg);
        if state.seen_contains(&vec) {
            return;
        }
        state.seen_insert(vec.clone());

        let ref_target = state.ref_target.expect("reference was measured");
        let m = self.eval_target(cfg, target);
        // Power-budget constraint is enforced at validation time (§3.4).
        if !self.constraints.check_power(m.power_w) {
            return;
        }
        let perf_t = performance(&m, &ref_target, self.opts.alpha);

        // Validation-pruning optimization: if even a perfect non-target
        // score cannot lift this configuration above the current elite
        // floor, skip the expensive non-target runs.
        let target_only_grade = (1.0 - self.opts.beta) * perf_t;
        let g = if allow_pruned_validation
            && !state.ref_non.is_empty()
            && target_only_grade < state.worst_elite_grade(self.opts.top_k)
            && state.observations.len() >= self.opts.top_k
        {
            target_only_grade
        } else {
            // Independent per-workload simulator runs: fan out, grade in
            // order (deterministic — see `mlkit::parallel`).
            let kinds: Vec<WorkloadKind> = state.ref_non.iter().map(|r| r.kind).collect();
            let non_meas =
                mlkit::parallel::parallel_map(kinds, |w| self.validator.evaluate(cfg, w));
            let non_perfs: Vec<f64> = state
                .ref_non
                .iter()
                .zip(non_meas)
                .map(|(r, mw)| performance(&mw, &r.measurement, self.opts.alpha))
                .collect();
            grade(perf_t, &non_perfs, self.opts.beta)
        };

        let norm = self.normalize(&vec);
        state.observations.push(Observation {
            vector: vec,
            normalized: norm,
            grade: g,
        });
        if state.best.as_ref().is_none_or(|b| g > b.grade) {
            state.best = Some(GradedConfig {
                config: cfg.clone(),
                grade: g,
                target_performance: perf_t,
                measurement: m,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::ValidatorOptions;
    use ssdsim::config::presets;

    fn quick_validator() -> Validator {
        Validator::new(ValidatorOptions {
            trace_events: 300,
            ..Default::default()
        })
    }

    fn quick_opts() -> TunerOptions {
        TunerOptions {
            max_iterations: 6,
            sgd_iterations: 3,
            convergence_window: 4,
            non_target: vec![WorkloadKind::WebSearch],
            ..Default::default()
        }
    }

    fn cons() -> Constraints {
        Constraints::paper_default()
    }

    #[test]
    fn tuning_never_regresses_below_reference() {
        let v = quick_validator();
        let tuner = Tuner::new(cons(), &v, quick_opts());
        let out = tuner.tune(WorkloadKind::Database, &presets::intel_750(), &[], None);
        // The reference itself grades 0; the best must be at least that.
        assert!(out.best.grade >= 0.0, "grade {}", out.best.grade);
        assert!(!out.grade_history.is_empty());
        assert!(out.iterations >= 1);
        assert!(out.validations >= 1);
    }

    #[test]
    fn grade_history_is_monotone_nondecreasing() {
        let v = quick_validator();
        let tuner = Tuner::new(cons(), &v, quick_opts());
        let out = tuner.tune(WorkloadKind::KvStore, &presets::intel_750(), &[], None);
        for w in out.grade_history.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn iteration_records_track_the_loop() {
        let v = quick_validator();
        let tuner = Tuner::new(cons(), &v, quick_opts());
        let out = tuner.tune(WorkloadKind::Database, &presets::intel_750(), &[], None);
        assert_eq!(out.iteration_records.len(), out.iterations);
        for (i, r) in out.iteration_records.iter().enumerate() {
            assert_eq!(r.iteration, i as u64 + 1);
            // Telemetry is off by default, so gated timings must be zero —
            // this keeps serialized outcomes thread-count invariant.
            assert_eq!(r.surrogate_fit_ns, 0);
            assert_eq!(r.wall_ns, 0);
            assert!(r.convergence_delta >= -1.0);
        }
        let last = out
            .iteration_records
            .last()
            .expect("at least one iteration");
        assert_eq!(last.best_grade, *out.grade_history.last().expect("history"));
        let recorded: u64 = out.iteration_records.iter().map(|r| r.validations).sum();
        assert!(recorded <= out.validations);
    }

    #[test]
    fn best_config_satisfies_constraints() {
        let v = quick_validator();
        let tuner = Tuner::new(cons(), &v, quick_opts());
        let out = tuner.tune(WorkloadKind::CloudStorage, &presets::intel_750(), &[], None);
        assert_eq!(cons().check_structural(&out.best.config), Ok(()));
    }

    #[test]
    fn tuning_order_restricts_exploration() {
        let v = quick_validator();
        let tuner = Tuner::new(cons(), &v, quick_opts());
        let order = ["channel_count", "data_cache_size"];
        let out = tuner.tune(
            WorkloadKind::Database,
            &presets::intel_750(),
            &[],
            Some(&order),
        );
        assert!(out.best.grade >= 0.0);
    }

    #[test]
    fn initial_configs_participate() {
        let v = quick_validator();
        let tuner = Tuner::new(cons(), &v, quick_opts());
        // Seed with a deliberately different configuration.
        let seeded = SsdConfig {
            channel_count: 16,
            chips_per_channel: 4,
            ..presets::intel_750()
        };
        let out = tuner.tune(
            WorkloadKind::Database,
            &presets::intel_750(),
            &[seeded],
            None,
        );
        assert!(out.best.grade >= 0.0);
    }

    #[test]
    fn flash_timing_stays_pinned_without_whatif() {
        let v = quick_validator();
        let tuner = Tuner::new(cons(), &v, quick_opts());
        let reference = presets::intel_750();
        let out = tuner.tune(WorkloadKind::WebSearch, &reference, &[], None);
        assert_eq!(out.best.config.read_latency_ns, reference.read_latency_ns);
        assert_eq!(
            out.best.config.program_latency_ns,
            reference.program_latency_ns
        );
        assert_eq!(out.best.config.erase_latency_ns, reference.erase_latency_ns);
    }

    #[test]
    fn random_proposals_still_converge() {
        let v = quick_validator();
        let opts = TunerOptions {
            surrogate: SurrogateKind::Random,
            ..quick_opts()
        };
        let tuner = Tuner::new(cons(), &v, opts);
        let out = tuner.tune(WorkloadKind::Fiu, &presets::intel_750(), &[], None);
        assert!(out.best.grade >= 0.0);
        assert!(out.validations >= 1);
    }

    #[test]
    fn neural_surrogate_still_converges() {
        let v = quick_validator();
        let opts = TunerOptions {
            surrogate: SurrogateKind::Neural,
            ..quick_opts()
        };
        let tuner = Tuner::new(cons(), &v, opts);
        let out = tuner.tune(WorkloadKind::Database, &presets::intel_750(), &[], None);
        assert!(out.best.grade >= 0.0);
    }

    #[test]
    fn interface_and_flash_type_never_drift() {
        let v = quick_validator();
        let tuner = Tuner::new(cons(), &v, quick_opts());
        let out = tuner.tune(WorkloadKind::Vdi, &presets::intel_750(), &[], None);
        assert_eq!(out.best.config.interface, ssdsim::Interface::Nvme);
        assert_eq!(
            out.best.config.flash_technology,
            ssdsim::FlashTechnology::Mlc
        );
    }

    #[test]
    #[should_panic(expected = "constraints")]
    fn mismatched_reference_panics() {
        let v = quick_validator();
        let tuner = Tuner::new(
            Constraints::new(
                64,
                ssdsim::Interface::Nvme,
                ssdsim::FlashTechnology::Mlc,
                25.0,
            ),
            &v,
            quick_opts(),
        );
        // Intel 750 is ~480 GiB; a 64 GiB constraint cannot hold it.
        let _ = tuner.tune(WorkloadKind::Database, &presets::intel_750(), &[], None);
    }

    #[test]
    fn phases_progress_in_order() {
        let v = quick_validator();
        let tuner = Tuner::new(cons(), &v, quick_opts());
        let mut state = tuner.init_state(WorkloadKind::Database, &presets::intel_750(), &[], None);
        assert_eq!(state.phase, TunePhase::Reference);
        assert_eq!(state.validations, 0);
        assert!(state.ref_target.is_none());

        assert!(tuner.step(WorkloadKind::Database, &mut state));
        assert_eq!(state.phase, TunePhase::InitSet);
        assert!(state.ref_target.is_some());
        assert!(state.observations.is_empty());

        assert!(tuner.step(WorkloadKind::Database, &mut state));
        assert_eq!(state.phase, TunePhase::Iterating);
        assert!(!state.observations.is_empty());
        assert_eq!(state.grade_history.len(), 1);
        assert_eq!(state.iterations, 0);

        while !state.done() {
            tuner.step(WorkloadKind::Database, &mut state);
        }
        assert!(state.iterations >= 1);
        // A finished state ignores further steps.
        let before = state.clone();
        assert!(!tuner.step(WorkloadKind::Database, &mut state));
        assert_eq!(state, before);
    }

    #[test]
    fn step_driven_loop_matches_tune() {
        let v1 = quick_validator();
        let tuner1 = Tuner::new(cons(), &v1, quick_opts());
        let whole = tuner1.tune(WorkloadKind::KvStore, &presets::intel_750(), &[], None);

        let v2 = quick_validator();
        let tuner2 = Tuner::new(cons(), &v2, quick_opts());
        let mut state = tuner2.init_state(WorkloadKind::KvStore, &presets::intel_750(), &[], None);
        while tuner2.step(WorkloadKind::KvStore, &mut state) {}
        let stepped = Tuner::outcome(state);

        assert_eq!(
            serde_json::to_string(&whole).expect("json"),
            serde_json::to_string(&stepped).expect("json"),
        );
    }

    #[test]
    fn rng_state_round_trips_through_hex() {
        let mut rng = StdRng::seed_from_u64(0xDEAD_BEEF_DEAD_BEEF);
        // Advance so the state words exercise the full u64 range.
        for _ in 0..17 {
            let _ = rng.gen::<u64>();
        }
        let mut state = TuneState {
            workload: String::new(),
            phase: TunePhase::Iterating,
            reference: presets::intel_750(),
            init_set: Vec::new(),
            ref_target: None,
            ref_non: Vec::new(),
            observations: Vec::new(),
            seen: Vec::new(),
            best: None,
            order_indices: Vec::new(),
            explicit_order: false,
            rng: Vec::new(),
            grade_history: Vec::new(),
            iterations: 0,
            records: Vec::new(),
            validations: 0,
        };
        state.store_rng(&rng);
        let mut restored = state.rng();
        assert_eq!(restored.gen::<u64>(), rng.gen::<u64>());
    }
}
