//! # autoblox — learning to drive software-defined solid-state drives
//!
//! A Rust reproduction of **AutoBlox** (Li, Sun, Huang — MICRO 2023), the
//! automated learning-based SSD hardware-configuration framework. Given a
//! target storage workload and user constraints (capacity, interface, flash
//! type, power budget), AutoBlox recommends an SSD configuration that
//! optimizes the workload's latency and throughput while bounding the impact
//! on non-target workloads.
//!
//! The pipeline (Figure 3 of the paper):
//!
//! 1. [`clustering`] — block I/O traces are windowed, reduced with PCA, and
//!    clustered with k-means; known clusters recall configurations from
//!    AutoDB directly.
//! 2. [`params`] / [`constraints`] — the 48 SSD hardware parameters are
//!    formulated as continuous/discrete/boolean/categorical ML parameters
//!    bounded by `set_cons`-style constraints.
//! 3. [`pruning`] — coarse (16x sweeps) and fine (Ridge coefficients)
//!    pruning find the performance-critical parameters and the tuning order.
//! 4. [`tuner`] — a customized Bayesian-optimization loop (discrete SGD
//!    neighborhood search + Gaussian-process grade prediction) explores the
//!    space, validating candidates on the [`ssdsim`] simulator.
//! 5. [`metrics`] — Formula 1 unifies latency/throughput (α); Formula 2
//!    blends target and non-target performance (β).
//! 6. [`whatif`] — what-if analysis finds configurations meeting an explicit
//!    performance target (§4.5).
//! 7. [`framework`] — the assembled facade with AutoDB persistence.
//!
//! # Examples
//!
//! Learn an optimized configuration for the Database workload:
//!
//! ```
//! use autoblox::constraints::Constraints;
//! use autoblox::tuner::{Tuner, TunerOptions};
//! use autoblox::validator::{Validator, ValidatorOptions};
//! use iotrace::gen::WorkloadKind;
//! use ssdsim::config::presets;
//!
//! let validator = Validator::new(ValidatorOptions { trace_events: 300, ..Default::default() });
//! let opts = TunerOptions { max_iterations: 3, sgd_iterations: 2, ..Default::default() };
//! let tuner = Tuner::new(Constraints::paper_default(), &validator, opts);
//! let outcome = tuner.tune(WorkloadKind::Database, &presets::intel_750(), &[], None);
//! assert!(outcome.best.grade >= 0.0);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod clustering;
pub mod constraints;
pub mod explain;
pub mod framework;
pub mod journal;
pub mod metrics;
pub mod model_obs;
pub mod obs;
pub mod params;
pub mod place;
pub mod pruning;
pub mod report_diff;
pub mod telemetry;
pub mod tuner;
pub mod validator;
pub mod watch;
pub mod whatif;

pub use checkpoint::{Checkpoint, CheckpointSummary};
pub use constraints::Constraints;
pub use framework::{AutoBlox, AutoBloxOptions, Recommendation};
pub use metrics::{grade, performance, Measurement};
pub use mlkit::parallel;
pub use obs::{record_run, trend, RunSummary, TrendReport, TrendThresholds};
pub use params::ParamSpace;
pub use place::{place, PlacementOptions, PlacementReport};
pub use tuner::{SurrogateKind, Tuner, TunerOptions, TuningOutcome, TuningTarget};
pub use validator::{Validator, ValidatorOptions};
pub use watch::WatchState;
