//! Learning-based parameter pruning (§3.3).
//!
//! Two stages: **coarse-grained** pruning sweeps each numeric parameter with
//! a large stride (up to 16x its baseline) and drops parameters whose sweep
//! leaves performance flat (Figure 4); **fine-grained** pruning fits a Ridge
//! regression from normalized parameter vectors to the unified performance
//! metric and drops parameters whose coefficient magnitude falls below a
//! threshold, ordering the survivors by |coefficient| to drive the tuning
//! order (Figure 5, Figure 9).

use crate::metrics::{performance, DEFAULT_ALPHA};
use crate::params::{ParamKind, ParamSpace};
use crate::validator::Validator;
use iotrace::gen::WorkloadKind;
use mlkit::linalg::Matrix;
use mlkit::ridge::Ridge;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use ssdsim::config::SsdConfig;

/// Relative performance deviation below which a parameter counts as
/// insensitive in the coarse stage.
pub const COARSE_SENSITIVITY_EPSILON: f64 = 0.02;

/// Default coefficient-magnitude threshold of the fine stage (the paper
/// uses ±0.001 on its score scale).
pub const FINE_COEF_THRESHOLD: f64 = 0.001;

/// Sweep multipliers applied to each numeric parameter's baseline value
/// ("we increase the values ... from their baseline setting to 16x").
pub const COARSE_MULTIPLIERS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// One parameter's coarse sweep result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoarseSweep {
    /// Parameter name.
    pub name: String,
    /// Unified performance score at each sweep multiplier, relative to the
    /// baseline configuration (index-aligned with [`COARSE_MULTIPLIERS`]).
    pub scores: Vec<f64>,
    /// Scores at the two extremes of the parameter's legal grid, probed in
    /// addition to the multiplier sweep so parameters bounded above by
    /// their baseline (e.g. technology-relative flash timings) still
    /// register their sensitivity.
    pub extreme_scores: [f64; 2],
    /// Maximum |score| deviation over the sweep and the extremes.
    pub sensitivity: f64,
    /// `true` if the parameter is flat (insensitive) for this workload.
    pub insensitive: bool,
    /// Simulator probes this parameter's sweep issued (after dedup).
    #[serde(default)]
    pub probes: u64,
    /// Summed probe time for this parameter, ns (0 when telemetry is off).
    #[serde(default)]
    pub sweep_ns: u64,
}

/// Result of the coarse-grained pruning stage for one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoarseReport {
    /// Workload the sweep was run against.
    pub workload: String,
    /// Per-parameter sweeps (Figure 4's lines).
    pub sweeps: Vec<CoarseSweep>,
    /// Total deduplicated probes fanned out across all parameters.
    #[serde(default)]
    pub probe_count: u64,
    /// Wall-clock time of the whole stage, ns (0 when telemetry is off).
    #[serde(default)]
    pub wall_ns: u64,
}

impl CoarseReport {
    /// Names of the insensitive parameters.
    pub fn insensitive(&self) -> Vec<&str> {
        self.sweeps
            .iter()
            .filter(|s| s.insensitive)
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Names of the surviving (sensitive) parameters.
    pub fn sensitive(&self) -> Vec<&str> {
        self.sweeps
            .iter()
            .filter(|s| !s.insensitive)
            .map(|s| s.name.as_str())
            .collect()
    }
}

/// Sweeps every numeric parameter and classifies it as sensitive or
/// insensitive for `workload`.
///
/// Constraint violations are deliberately ignored here, per the paper: "we
/// only prune parameters that have almost no impact on the performance even
/// if they break the configuration constraints".
pub fn coarse_prune(
    space: &ParamSpace,
    base: &SsdConfig,
    workload: WorkloadKind,
    validator: &Validator,
) -> CoarseReport {
    let _span = telemetry::span::Span::enter_keyed(
        "prune.coarse",
        telemetry::span::key_str(workload.name()),
    );
    let stage_start = telemetry::start();
    let baseline = validator.evaluate(base, workload);
    // Score of any probe whose grid index reproduces the baseline value
    // (always the 1.0 multiplier; often grid extremes too): known without
    // touching the simulator. Probes on invalid configurations score 0.
    let base_score = if base.validate().is_ok() {
        performance(&baseline, &baseline, DEFAULT_ALPHA)
    } else {
        0.0
    };

    // Plan every probe up front so the whole sweep fans out as one flat
    // (parameter, grid-index) work list, with duplicates — multipliers
    // aliasing on coarse grids, extremes coinciding with swept points,
    // probes landing back on the baseline index — resolved once.
    struct SweepPlan<'p> {
        param: &'p crate::params::ParamDef,
        base_idx: usize,
        reusable_base: bool,
        mult_idx: Vec<usize>,
        ext_idx: [usize; 2],
    }
    let mut plans: Vec<SweepPlan<'_>> = Vec::new();
    let mut jobs: Vec<(usize, usize)> = Vec::new();
    for p in space.params() {
        if !matches!(p.kind, ParamKind::Continuous | ParamKind::Discrete) {
            continue;
        }
        let base_idx = (p.get)(base);
        let base_value = p.grid[base_idx].max(1e-9);
        let mult_idx: Vec<usize> = COARSE_MULTIPLIERS
            .iter()
            .map(|&m| p.nearest_index(base_value * m))
            .collect();
        let ext_idx = [0, p.cardinality() - 1];
        // `get` snaps off-grid values to the nearest grid point; only reuse
        // the baseline score when setting `base_idx` actually reproduces the
        // baseline configuration.
        let reusable_base = {
            let mut snap = base.clone();
            (p.set)(&mut snap, base_idx);
            snap == *base
        };
        let pi = plans.len();
        let mut unique: Vec<usize> = Vec::new();
        for &idx in mult_idx.iter().chain(ext_idx.iter()) {
            if !(unique.contains(&idx) || (reusable_base && idx == base_idx)) {
                unique.push(idx);
            }
        }
        jobs.extend(unique.into_iter().map(|idx| (pi, idx)));
        plans.push(SweepPlan {
            param: p,
            base_idx,
            reusable_base,
            mult_idx,
            ext_idx,
        });
    }

    // Fan out: each probe touches its own configuration, and the validator
    // memoizes deterministically, so the scores are order-independent. Each
    // probe also reports its own duration (zero when telemetry is off) so
    // per-parameter sweep cost can be attributed without any shared state.
    let probe_count = jobs.len() as u64;
    let probed = mlkit::parallel::parallel_map(jobs.clone(), |(pi, idx)| {
        let probe_start = telemetry::start();
        let p = plans[pi].param;
        let mut cfg = base.clone();
        (p.set)(&mut cfg, idx);
        let score = if cfg.validate().is_ok() {
            let meas = validator.evaluate(&cfg, workload);
            performance(&meas, &baseline, DEFAULT_ALPHA)
        } else {
            0.0
        };
        (score, telemetry::elapsed_ns(probe_start))
    });
    let mut probes_of = vec![0u64; plans.len()];
    let mut sweep_ns_of = vec![0u64; plans.len()];
    for (&(pi, _), &(_, ns)) in jobs.iter().zip(probed.iter()) {
        probes_of[pi] += 1;
        sweep_ns_of[pi] += ns;
    }
    let score_of: std::collections::HashMap<(usize, usize), f64> = jobs
        .into_iter()
        .zip(probed.into_iter().map(|(s, _)| s))
        .collect();

    let sweeps = plans
        .iter()
        .enumerate()
        .map(|(pi, plan)| {
            let lookup = |idx: usize| {
                if plan.reusable_base && idx == plan.base_idx {
                    base_score
                } else {
                    score_of[&(pi, idx)]
                }
            };
            let scores: Vec<f64> = plan.mult_idx.iter().map(|&i| lookup(i)).collect();
            let extreme_scores = [lookup(plan.ext_idx[0]), lookup(plan.ext_idx[1])];
            let sensitivity = scores
                .iter()
                .chain(extreme_scores.iter())
                .fold(0.0f64, |acc, s| acc.max(s.abs()));
            CoarseSweep {
                name: plan.param.name.to_string(),
                insensitive: sensitivity < COARSE_SENSITIVITY_EPSILON,
                sensitivity,
                scores,
                extreme_scores,
                probes: probes_of[pi],
                sweep_ns: sweep_ns_of[pi],
            }
        })
        .collect();
    CoarseReport {
        workload: workload.name().to_string(),
        sweeps,
        probe_count,
        wall_ns: telemetry::elapsed_ns(stage_start),
    }
}

/// One parameter's fine-grained regression result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FineCoefficient {
    /// Parameter name.
    pub name: String,
    /// Ridge coefficient on the normalized (0..1) parameter value.
    pub coefficient: f64,
    /// `true` if |coefficient| falls below the pruning threshold.
    pub pruned: bool,
}

/// Result of the fine-grained pruning stage for one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FineReport {
    /// Workload the regression was fitted for.
    pub workload: String,
    /// Per-parameter coefficients (Figure 5's cells), regression order.
    pub coefficients: Vec<FineCoefficient>,
    /// R² of the fitted regression on its training samples.
    pub r_squared: f64,
    /// Valid samples the regression was fitted on.
    #[serde(default)]
    pub samples_used: u64,
    /// Sampling attempts, including constraint-rejected draws.
    #[serde(default)]
    pub attempts: u64,
    /// Time spent fitting the Ridge model, ns (0 when telemetry is off).
    #[serde(default)]
    pub fit_ns: u64,
    /// Wall-clock time of the whole stage, ns (0 when telemetry is off).
    #[serde(default)]
    pub wall_ns: u64,
}

impl FineReport {
    /// Surviving parameter names ordered by |coefficient| descending — the
    /// tuning order AutoBlox enforces (§3.4, Figure 9).
    pub fn tuning_order(&self) -> Vec<&str> {
        let mut v: Vec<&FineCoefficient> = self.coefficients.iter().filter(|c| !c.pruned).collect();
        v.sort_by(|a, b| {
            b.coefficient
                .abs()
                .partial_cmp(&a.coefficient.abs())
                .expect("finite coefficients")
        });
        v.into_iter().map(|c| c.name.as_str()).collect()
    }

    /// The coefficient for a named parameter, if present.
    pub fn coefficient(&self, name: &str) -> Option<f64> {
        self.coefficients
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.coefficient)
    }
}

/// Options for the fine-grained stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FineOptions {
    /// Number of random configurations sampled for the regression.
    pub samples: usize,
    /// Ridge regularization strength.
    pub ridge_alpha: f64,
    /// Coefficient-magnitude pruning threshold.
    pub coef_threshold: f64,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for FineOptions {
    fn default() -> Self {
        FineOptions {
            samples: 64,
            ridge_alpha: 1e-3,
            coef_threshold: FINE_COEF_THRESHOLD,
            seed: 0xF13E,
        }
    }
}

/// Fits the Ridge regression over randomly perturbed configurations of the
/// parameters named in `names` ("we set a regression space by maintaining
/// the constraints" — samples are drawn around the baseline and kept
/// structurally valid).
///
/// # Panics
///
/// Panics if `names` resolves to an empty parameter set.
pub fn fine_prune(
    space: &ParamSpace,
    base: &SsdConfig,
    workload: WorkloadKind,
    names: &[&str],
    validator: &Validator,
    opts: FineOptions,
) -> FineReport {
    let _span =
        telemetry::span::Span::enter_keyed("prune.fine", telemetry::span::key_str(workload.name()));
    let stage_start = telemetry::start();
    let indices: Vec<usize> = names.iter().filter_map(|n| space.index_of(n)).collect();
    assert!(
        !indices.is_empty(),
        "fine_prune needs at least one parameter"
    );
    let baseline = validator.evaluate(base, workload);
    let base_vec = space.vectorize(base);
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let mut xs: Vec<Vec<f64>> = Vec::with_capacity(opts.samples);
    let mut ys: Vec<f64> = Vec::with_capacity(opts.samples);
    let mut attempts = 0;
    while xs.len() < opts.samples && attempts < opts.samples * 10 {
        attempts += 1;
        let mut vec = base_vec.clone();
        // Perturb a random subset of the regression parameters.
        for &pi in &indices {
            if rng.gen::<f64>() < 0.5 {
                let card = space.params()[pi].cardinality();
                vec[pi] = rng.gen_range(0..card);
            }
        }
        let cfg = space.apply(base, &vec);
        if cfg.validate().is_err() {
            continue;
        }
        let meas = validator.evaluate(&cfg, workload);
        let score = performance(&meas, &baseline, DEFAULT_ALPHA);
        let features: Vec<f64> = indices
            .iter()
            .map(|&pi| {
                let card = space.params()[pi].cardinality();
                if card > 1 {
                    vec[pi] as f64 / (card - 1) as f64
                } else {
                    0.0
                }
            })
            .collect();
        xs.push(features);
        ys.push(score);
    }

    let x = Matrix::from_rows(&xs);
    let fit_start = telemetry::start();
    let model = Ridge::fit(&x, &ys, opts.ridge_alpha).expect("regression fits");
    let fit_ns = telemetry::elapsed_ns(fit_start);
    let r_squared = model.score(&x, &ys).unwrap_or(0.0);
    let coefficients = indices
        .iter()
        .zip(model.coefficients())
        .map(|(&pi, &coef)| FineCoefficient {
            name: space.params()[pi].name.to_string(),
            coefficient: coef,
            pruned: coef.abs() < opts.coef_threshold,
        })
        .collect();
    FineReport {
        workload: workload.name().to_string(),
        coefficients,
        r_squared,
        samples_used: xs.len() as u64,
        attempts: attempts as u64,
        fit_ns,
        wall_ns: telemetry::elapsed_ns(stage_start),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::ValidatorOptions;

    fn quick_validator() -> Validator {
        Validator::new(ValidatorOptions {
            trace_events: 400,
            ..Default::default()
        })
    }

    fn small_space() -> ParamSpace {
        ParamSpace::with_params(&[
            "channel_count",
            "data_cache_size",
            "read_latency",
            "page_metadata_capacity",
            "init_delay",
        ])
    }

    #[test]
    fn coarse_identifies_inert_parameters() {
        let space = small_space();
        let v = quick_validator();
        let report = coarse_prune(&space, &SsdConfig::default(), WorkloadKind::Database, &v);
        let insensitive = report.insensitive();
        assert!(
            insensitive.contains(&"page_metadata_capacity"),
            "inert parameter must be pruned, got insensitive={insensitive:?}"
        );
        assert!(insensitive.contains(&"init_delay"));
    }

    #[test]
    fn coarse_keeps_read_latency_sensitive() {
        let space = small_space();
        let v = quick_validator();
        let report = coarse_prune(&space, &SsdConfig::default(), WorkloadKind::WebSearch, &v);
        assert!(
            report.sensitive().contains(&"read_latency"),
            "read latency must matter for a read-dominated workload: {:?}",
            report.sweeps
        );
    }

    #[test]
    fn coarse_sweep_shape() {
        let space = ParamSpace::with_params(&["channel_count"]);
        let v = quick_validator();
        let report = coarse_prune(&space, &SsdConfig::default(), WorkloadKind::KvStore, &v);
        assert_eq!(report.sweeps.len(), 1);
        assert_eq!(report.sweeps[0].scores.len(), COARSE_MULTIPLIERS.len());
        // Multiplier 1.0 is the baseline: score must be ~0.
        assert!(report.sweeps[0].scores[0].abs() < 1e-9);
    }

    #[test]
    fn fine_orders_by_coefficient_magnitude() {
        let space = small_space();
        let v = quick_validator();
        let report = fine_prune(
            &space,
            &SsdConfig::default(),
            WorkloadKind::WebSearch,
            &["channel_count", "read_latency", "init_delay"],
            &v,
            FineOptions {
                samples: 24,
                ..Default::default()
            },
        );
        assert_eq!(report.coefficients.len(), 3);
        let order = report.tuning_order();
        // read_latency dominates a 99.9%-read workload; the inert
        // init_delay must not outrank it.
        let rl = order.iter().position(|&n| n == "read_latency");
        let id = order.iter().position(|&n| n == "init_delay");
        match (rl, id) {
            (Some(a), Some(b)) => assert!(a < b),
            (Some(_), None) => {} // init_delay pruned entirely: fine
            other => panic!("unexpected ordering {other:?} in {order:?}"),
        }
        assert!(report.coefficient("read_latency").unwrap().abs() > 0.0);
        assert!(report.coefficient("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "at least one parameter")]
    fn fine_rejects_empty_names() {
        let space = small_space();
        let v = quick_validator();
        let _ = fine_prune(
            &space,
            &SsdConfig::default(),
            WorkloadKind::Vdi,
            &["nonexistent"],
            &v,
            FineOptions::default(),
        );
    }
}
