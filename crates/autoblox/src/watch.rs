//! Live journal tailing: the state machine behind `autoblox watch`.
//!
//! A [`WatchState`] ingests `autoblox.journal.v1` JSONL lines one at a
//! time — from a finished file (`--replay`) or from a polling tail of a
//! file another process is still writing — and maintains the run's
//! current picture: per-workload phase/iteration/best-grade/ETA (from
//! `progress` and `iteration` lines), aggregated bottleneck shares (from
//! `bottleneck` lines), completed pipeline phases, and per-kind line
//! counts. Malformed or truncated lines are counted and skipped, never
//! fatal: a tail may legitimately observe a half-written line, and a
//! crashed producer leaves one behind.
//!
//! Determinism contract: [`WatchState::snapshot`] with timing excluded is
//! a pure function of the journal's thread-invariant content. The fields
//! that vary by host or thread count — the meta line's `threads` and
//! `argv`, every `wall_ns`, and the `eta_ns` extrapolations — are either
//! never ingested into the snapshot or gated behind `include_timing`, so
//! two journals of the same pinned run taken at different thread counts
//! snapshot byte-identically (the vendored JSON shim sorts object keys).

use serde_json::Value;
use ssdsim::BottleneckReport;
use std::collections::BTreeMap;

/// Schema identifier of the serialized [`WatchState::snapshot`].
pub const WATCH_SCHEMA: &str = "autoblox.watch.v1";

/// Live picture of one workload's tuning run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkloadWatch {
    /// Tuner phase from the newest `progress` line.
    pub phase: String,
    /// Outer iteration counter (newest line wins).
    pub iteration: u64,
    /// Iteration cap from the newest `progress` line.
    pub total: u64,
    /// Percent-complete estimate, 0.0 ..= 1.0.
    pub percent: f64,
    /// ETA extrapolation, ns (wall-clock; excluded from snapshots unless
    /// timing is requested).
    pub eta_ns: u64,
    /// Best grade from the newest `iteration` line.
    pub best_grade: f64,
    /// Maximum best grade over every `iteration` line seen.
    pub best_grade_max: f64,
    /// Convergence delta from the newest `iteration` line.
    pub convergence_delta: f64,
    /// Simulator validations summed over every `iteration` line.
    pub validations: u64,
    /// `iteration` lines seen.
    pub iteration_lines: u64,
    /// `model` lines seen.
    pub model_lines: u64,
    /// `model` lines carrying a realized calibration pair.
    pub calibration_points: u64,
    /// Calibration pairs whose realized grade fell within ±1σ of the
    /// surrogate's prediction.
    pub calibration_covered_1s: u64,
    /// Sum of explore shares over every `model` line (sums, not latest, so
    /// the aggregate is order-insensitive).
    pub explore_share_sum: f64,
}

impl WorkloadWatch {
    /// Fraction of calibration pairs within ±1σ (0.0 with no pairs yet).
    pub fn calibration_coverage_1s(&self) -> f64 {
        if self.calibration_points == 0 {
            0.0
        } else {
            self.calibration_covered_1s as f64 / self.calibration_points as f64
        }
    }

    /// Mean explore share over every `model` line (0.0 with none yet).
    pub fn mean_explore_share(&self) -> f64 {
        if self.model_lines == 0 {
            0.0
        } else {
            self.explore_share_sum / self.model_lines as f64
        }
    }
}

/// Per-kind line counters (every ingested line lands in exactly one).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LineCounts {
    /// `meta` lines.
    pub meta: u64,
    /// `span` lines.
    pub spans: u64,
    /// `iteration` lines.
    pub iterations: u64,
    /// `model` lines.
    pub models: u64,
    /// `progress` lines.
    pub progress: u64,
    /// `phase` lines.
    pub phases: u64,
    /// `series` lines.
    pub series: u64,
    /// `bottleneck` lines.
    pub bottlenecks: u64,
    /// `checkpoint` lines.
    pub checkpoints: u64,
    /// `placement` lines.
    pub placements: u64,
    /// `summary` lines.
    pub summary: u64,
    /// Parsed lines with an unrecognized `"t"` tag (newer producers).
    pub unknown: u64,
    /// Unparseable (truncated/garbage) lines, skipped with this count as
    /// the warning.
    pub skipped: u64,
}

impl LineCounts {
    /// Every line ingested, whatever became of it.
    pub fn total(&self) -> u64 {
        self.meta
            + self.spans
            + self.iterations
            + self.models
            + self.progress
            + self.phases
            + self.series
            + self.bottlenecks
            + self.checkpoints
            + self.placements
            + self.summary
            + self.unknown
            + self.skipped
    }
}

fn get_u64(obj: &Value, key: &str) -> u64 {
    match obj.get(key) {
        Some(Value::Int(i)) => *i as u64,
        Some(Value::Float(f)) => *f as u64,
        _ => 0,
    }
}

fn get_f64(obj: &Value, key: &str) -> f64 {
    match obj.get(key) {
        Some(Value::Float(f)) => *f,
        Some(Value::Int(i)) => *i as f64,
        _ => 0.0,
    }
}

fn get_str<'v>(obj: &'v Value, key: &str) -> &'v str {
    match obj.get(key) {
        Some(Value::Str(s)) => s,
        _ => "",
    }
}

/// Incremental consumer of journal lines; see the module docs.
#[derive(Debug, Default)]
pub struct WatchState {
    /// Schema string from the `meta` line (empty until seen).
    journal_schema: String,
    workloads: BTreeMap<String, WorkloadWatch>,
    /// Raw bottleneck nanosecond totals summed over every `bottleneck`
    /// line: `[total, channel, plane, gc, cache_miss, queue, slc]`. Sums are
    /// order-insensitive, so the aggregate is identical however the
    /// concurrent producers interleaved their lines.
    bottleneck_ns: [u64; 7],
    /// Completed pipeline phases, in completion order.
    phase_names: Vec<String>,
    counts: LineCounts,
    summary_seen: bool,
    spans_dropped: u64,
    events_dropped: u64,
}

impl WatchState {
    /// An empty state (no lines ingested).
    pub fn new() -> Self {
        WatchState::default()
    }

    /// Ingests one journal line. Returns `true` when the line advanced the
    /// state (parsed as a known kind), `false` when it was counted as
    /// unknown or skipped. Never fails: garbage is the tail's normal diet.
    pub fn ingest(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return false;
        }
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            self.counts.skipped += 1;
            return false;
        };
        match get_str(&v, "t") {
            "meta" => {
                self.counts.meta += 1;
                self.journal_schema = get_str(&v, "schema").to_string();
            }
            "span" => self.counts.spans += 1,
            "iteration" => {
                self.counts.iterations += 1;
                let w = self
                    .workloads
                    .entry(get_str(&v, "workload").to_string())
                    .or_default();
                w.iteration = get_u64(&v, "iteration");
                w.best_grade = get_f64(&v, "best_grade");
                w.best_grade_max = w.best_grade_max.max(w.best_grade);
                w.convergence_delta = get_f64(&v, "convergence_delta");
                w.validations += get_u64(&v, "validations");
                w.iteration_lines += 1;
            }
            "model" => {
                self.counts.models += 1;
                let w = self
                    .workloads
                    .entry(get_str(&v, "workload").to_string())
                    .or_default();
                w.model_lines += 1;
                w.explore_share_sum += get_f64(&v, "explore_share");
                if matches!(v.get("calibrated"), Some(Value::Bool(true))) {
                    w.calibration_points += 1;
                    // Mirror of model_obs: z with a 1e-6 standard-deviation
                    // floor so degenerate predictions stay finite.
                    let sd = get_f64(&v, "predicted_std").max(1e-6);
                    let z = (get_f64(&v, "realized_grade") - get_f64(&v, "predicted_mean")) / sd;
                    if z.abs() <= 1.0 {
                        w.calibration_covered_1s += 1;
                    }
                }
            }
            "progress" => {
                self.counts.progress += 1;
                let w = self
                    .workloads
                    .entry(get_str(&v, "workload").to_string())
                    .or_default();
                w.phase = get_str(&v, "phase").to_string();
                w.iteration = get_u64(&v, "iteration");
                w.total = get_u64(&v, "total");
                w.percent = get_f64(&v, "percent");
                w.eta_ns = get_u64(&v, "eta_ns");
            }
            "phase" => {
                self.counts.phases += 1;
                self.phase_names.push(get_str(&v, "name").to_string());
            }
            "series" => self.counts.series += 1,
            "bottleneck" => {
                self.counts.bottlenecks += 1;
                if let Some(r) = v.get("report") {
                    for (slot, key) in [
                        "total_latency_ns",
                        "channel_wait_ns",
                        "plane_wait_ns",
                        "gc_stall_ns",
                        "cache_miss_ns",
                        "queue_wait_ns",
                        "slc_migration_ns",
                    ]
                    .iter()
                    .enumerate()
                    {
                        self.bottleneck_ns[slot] += get_u64(r, key);
                    }
                }
            }
            "checkpoint" => self.counts.checkpoints += 1,
            "placement" => self.counts.placements += 1,
            "summary" => {
                self.counts.summary += 1;
                self.summary_seen = true;
                self.spans_dropped = get_u64(&v, "spans_dropped");
                self.events_dropped = get_u64(&v, "events_dropped");
            }
            "" => {
                self.counts.skipped += 1;
                return false;
            }
            _ => {
                self.counts.unknown += 1;
                return false;
            }
        }
        true
    }

    /// The per-kind line counters.
    pub fn counts(&self) -> LineCounts {
        self.counts
    }

    /// Whether the terminal `summary` line has been seen (the producer
    /// finished the journal).
    pub fn summary_seen(&self) -> bool {
        self.summary_seen
    }

    /// The `meta` line's schema string, empty until a `meta` line was
    /// ingested.
    pub fn journal_schema(&self) -> &str {
        &self.journal_schema
    }

    /// Whether the journal identified itself with a schema this consumer
    /// understands (a missing meta line — e.g. a tail that attached late —
    /// is tolerated).
    pub fn schema_ok(&self) -> bool {
        self.journal_schema.is_empty() || self.journal_schema.starts_with("autoblox.journal.v")
    }

    /// The bottleneck attribution aggregated over every `bottleneck` line.
    pub fn bottleneck(&self) -> BottleneckReport {
        let [total, channel, plane, gc, cache, queue, slc] = self.bottleneck_ns;
        BottleneckReport::from_totals(total, channel, plane, gc, cache, queue, slc)
    }

    /// The current status as a JSON document (schema [`WATCH_SCHEMA`]).
    ///
    /// With `include_timing` false the snapshot contains only
    /// thread-invariant fields (see the module docs); with it true the
    /// per-workload `eta_ns` wall-clock extrapolations are added (live
    /// ticks want them, determinism fingerprints must not).
    pub fn snapshot(&self, include_timing: bool) -> Value {
        let workloads: Vec<Value> = self
            .workloads
            .iter()
            .map(|(name, w)| {
                let mut obj = serde_json::json!({
                    "workload": name,
                    "phase": w.phase,
                    "iteration": w.iteration,
                    "total": w.total,
                    "percent": w.percent,
                    "best_grade": w.best_grade,
                    "best_grade_max": w.best_grade_max,
                    "convergence_delta": w.convergence_delta,
                    "validations": w.validations,
                    "iteration_lines": w.iteration_lines,
                    "model_lines": w.model_lines,
                    "calibration_points": w.calibration_points,
                    "calibration_coverage_1s": w.calibration_coverage_1s(),
                    "mean_explore_share": w.mean_explore_share(),
                });
                if include_timing {
                    if let Value::Object(map) = &mut obj {
                        map.insert("eta_ns".to_string(), serde_json::json!(w.eta_ns));
                    }
                }
                obj
            })
            .collect();
        let b = self.bottleneck();
        let c = self.counts;
        serde_json::json!({
            "schema": WATCH_SCHEMA,
            "journal_schema": self.journal_schema,
            "workloads": workloads,
            "bottleneck": b,
            "phases": self.phase_names,
            "lines": serde_json::json!({
                "meta": c.meta,
                "spans": c.spans,
                "iterations": c.iterations,
                "models": c.models,
                "progress": c.progress,
                "phases": c.phases,
                "series": c.series,
                "bottlenecks": c.bottlenecks,
                "checkpoints": c.checkpoints,
                "placements": c.placements,
                "summary": c.summary,
                "unknown": c.unknown,
                "skipped": c.skipped,
                "total": c.total(),
            }),
            "summary_seen": self.summary_seen,
            "spans_dropped": self.spans_dropped,
            "events_dropped": self.events_dropped,
        })
    }

    /// A compact one-line status for live terminal ticks (carriage-return
    /// friendly: no newline, fixed field order).
    pub fn status_line(&self) -> String {
        let mut out = String::new();
        match self.workloads.iter().next_back() {
            Some((name, w)) => {
                out.push_str(&format!(
                    "{name} {} {}/{} {:5.1}% best {:+.4}",
                    if w.phase.is_empty() { "?" } else { &w.phase },
                    w.iteration,
                    w.total,
                    w.percent * 100.0,
                    w.best_grade,
                ));
                if w.eta_ns > 0 {
                    out.push_str(&format!(" eta {:.0}s", w.eta_ns as f64 / 1e9));
                }
                if w.calibration_points > 0 {
                    out.push_str(&format!(" cal {:.0}%", w.calibration_coverage_1s() * 100.0));
                }
                if w.model_lines > 0 {
                    out.push_str(&format!(" xpl {:.0}%", w.mean_explore_share() * 100.0));
                }
            }
            None => out.push_str("waiting for journal lines"),
        }
        let b = self.bottleneck();
        if b.total_latency_ns > 0 {
            out.push_str(&format!(" | {}", bars(&b)));
        }
        out.push_str(&format!(
            " | {} lines ({} skipped)",
            self.counts.total(),
            self.counts.skipped
        ));
        if self.summary_seen {
            out.push_str(" | done");
        }
        out
    }

    /// A multi-line human dashboard (what `watch --replay` prints without
    /// `--json`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, w) in &self.workloads {
            out.push_str(&format!(
                "{name}: {} {}/{} ({:.1}%), best {:+.6} (max {:+.6}), delta {:.6}, \
                 {} validation(s) over {} iteration line(s)\n",
                if w.phase.is_empty() { "?" } else { &w.phase },
                w.iteration,
                w.total,
                w.percent * 100.0,
                w.best_grade,
                w.best_grade_max,
                w.convergence_delta,
                w.validations,
                w.iteration_lines,
            ));
            if w.model_lines > 0 {
                out.push_str(&format!(
                    "  model: coverage(1s) {:20} {:5.1}% over {} pair(s), \
                     explore share {:20} {:5.1}%\n",
                    bar(w.calibration_coverage_1s()),
                    w.calibration_coverage_1s() * 100.0,
                    w.calibration_points,
                    bar(w.mean_explore_share()),
                    w.mean_explore_share() * 100.0,
                ));
            }
        }
        let b = self.bottleneck();
        if b.total_latency_ns > 0 {
            out.push_str("bottleneck shares:\n");
            for (name, frac) in b.fractions() {
                out.push_str(&format!(
                    "  {name:<12} {:24} {:5.1}%\n",
                    bar(frac),
                    frac * 100.0
                ));
            }
            out.push_str(&format!("  dominant: {}\n", b.dominant()));
        }
        if !self.phase_names.is_empty() {
            out.push_str(&format!("phases: {}\n", self.phase_names.join(" -> ")));
        }
        let c = self.counts;
        out.push_str(&format!(
            "lines: {} total ({} spans, {} iterations, {} models, {} progress, {} series, \
             {} bottlenecks, {} placements, {} unknown, {} skipped)\n",
            c.total(),
            c.spans,
            c.iterations,
            c.models,
            c.progress,
            c.series,
            c.bottlenecks,
            c.placements,
            c.unknown,
            c.skipped,
        ));
        if self.summary_seen {
            out.push_str(&format!(
                "journal finished (dropped: {} spans, {} events)\n",
                self.spans_dropped, self.events_dropped
            ));
        } else {
            out.push_str("journal still open (no summary line)\n");
        }
        out
    }
}

/// A 20-cell bar for a 0..=1 fraction.
fn bar(frac: f64) -> String {
    let cells = (frac.clamp(0.0, 1.0) * 20.0).round() as usize;
    format!("[{:<20}]", "#".repeat(cells))
}

/// Compact per-share bars for the status line (`ch`, `pl`, `gc`, `cm`,
/// `hq`, 0-4 marks each).
fn bars(b: &BottleneckReport) -> String {
    let shares = [
        ("ch", b.channel_wait_frac),
        ("pl", b.plane_wait_frac),
        ("gc", b.gc_stall_frac),
        ("cm", b.cache_miss_frac),
        ("hq", b.host_queue_frac),
    ];
    shares
        .iter()
        .map(|(tag, frac)| {
            let marks = (frac.clamp(0.0, 1.0) * 4.0).round() as usize;
            format!("{tag}{}", "▮".repeat(marks))
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: &str = r#"{"t":"meta","schema":"autoblox.journal.v1","threads":4,"argv":["x"]}"#;

    #[test]
    fn ingest_builds_the_picture_and_skips_garbage() {
        let mut w = WatchState::new();
        assert!(w.ingest(META));
        assert!(w.ingest(
            r#"{"t":"iteration","workload":"Database","iteration":1,"best_grade":0.4,"convergence_delta":0.4,"validations":7,"wall_ns":0}"#
        ));
        assert!(w.ingest(
            r#"{"t":"iteration","workload":"Database","iteration":2,"best_grade":0.3,"convergence_delta":0.1,"validations":5,"wall_ns":0}"#
        ));
        assert!(w.ingest(
            r#"{"t":"progress","workload":"Database","phase":"iterating","iteration":2,"total":8,"percent":0.325,"eta_ns":5000}"#
        ));
        assert!(w.ingest(
            r#"{"t":"bottleneck","trace":"Database","replay":"timed","report":{"total_latency_ns":1000,"channel_wait_ns":400,"plane_wait_ns":200,"gc_stall_ns":100,"cache_miss_ns":100,"queue_wait_ns":100}}"#
        ));
        assert!(!w.ingest("this is not json"));
        assert!(!w.ingest(r#"{"t":"span","id":"trunca"#)); // torn tail write
        assert!(!w.ingest(r#"{"t":"hologram","x":1}"#)); // newer producer
        assert!(!w.ingest(r#"{"no_tag":true}"#));
        assert!(w.ingest(
            r#"{"t":"summary","spans_written":1,"events_written":4,"spans_dropped":0,"events_dropped":2}"#
        ));

        let ww = &w.workloads["Database"];
        assert_eq!(ww.iteration, 2);
        assert_eq!(ww.best_grade, 0.3);
        assert_eq!(ww.best_grade_max, 0.4, "max survives a later dip");
        assert_eq!(ww.validations, 12, "validations sum across lines");
        assert_eq!(ww.phase, "iterating");
        assert_eq!(ww.total, 8);
        let c = w.counts();
        assert_eq!((c.skipped, c.unknown), (3, 1));
        assert_eq!(c.total(), 10);
        assert!(w.summary_seen());
        assert_eq!(w.events_dropped, 2);
        assert!(w.schema_ok());
        let b = w.bottleneck();
        assert_eq!(b.total_latency_ns, 1000);
        assert!((b.channel_wait_frac - 0.4).abs() < 1e-12);
    }

    #[test]
    fn model_lines_feed_coverage_and_explore_share() {
        let mut w = WatchState::new();
        w.ingest(META);
        // Covered pair: realized within 1σ of the prediction.
        assert!(w.ingest(
            r#"{"t":"model","workload":"Database","iteration":1,"predicted_mean":0.5,"predicted_std":0.1,"calibrated":true,"realized_grade":0.55,"explore_share":0.4,"exploit_share":0.6,"decision_margin":0.01,"kernel_length_scale":1.0}"#
        ));
        // Missed pair: realized 3σ away.
        assert!(w.ingest(
            r#"{"t":"model","workload":"Database","iteration":2,"predicted_mean":0.5,"predicted_std":0.1,"calibrated":true,"realized_grade":0.8,"explore_share":0.2,"exploit_share":0.8,"decision_margin":0.02,"kernel_length_scale":1.0}"#
        ));
        // Uncalibrated line (validation rejected): counts toward explore
        // share only.
        assert!(w.ingest(
            r#"{"t":"model","workload":"Database","iteration":3,"predicted_mean":0.5,"predicted_std":0.1,"calibrated":false,"realized_grade":0.0,"explore_share":0.6,"exploit_share":0.4,"decision_margin":0.03,"kernel_length_scale":1.0}"#
        ));
        let ww = &w.workloads["Database"];
        assert_eq!(ww.model_lines, 3);
        assert_eq!(ww.calibration_points, 2);
        assert_eq!(ww.calibration_covered_1s, 1);
        assert!((ww.calibration_coverage_1s() - 0.5).abs() < 1e-12);
        assert!((ww.mean_explore_share() - 0.4).abs() < 1e-12);
        assert_eq!(w.counts().models, 3);
        let line = w.status_line();
        assert!(line.contains("cal 50%"), "{line}");
        assert!(line.contains("xpl 40%"), "{line}");
        let dash = w.render();
        assert!(dash.contains("coverage(1s)"), "{dash}");
        let snap = serde_json::to_string(&w.snapshot(false)).unwrap();
        assert!(snap.contains("\"calibration_coverage_1s\":0.5"), "{snap}");
    }

    #[test]
    fn snapshot_excludes_timing_unless_asked() {
        let mut w = WatchState::new();
        w.ingest(META);
        w.ingest(
            r#"{"t":"progress","workload":"Database","phase":"iterating","iteration":1,"total":4,"percent":0.325,"eta_ns":123456}"#,
        );
        let bare = serde_json::to_string(&w.snapshot(false)).unwrap();
        assert!(!bare.contains("eta_ns"), "{bare}");
        assert!(!bare.contains("123456"), "{bare}");
        assert!(
            !bare.contains("\"threads\""),
            "meta threads must not leak: {bare}"
        );
        let timed = serde_json::to_string(&w.snapshot(true)).unwrap();
        assert!(timed.contains("\"eta_ns\":123456"), "{timed}");
    }

    #[test]
    fn snapshot_is_identical_however_concurrent_lines_interleave() {
        let lines = [
            META,
            r#"{"t":"span","id":"aa","parent":"00","name":"sim.run","disc":"00","start_ns":5,"dur_ns":9,"thread":2}"#,
            r#"{"t":"bottleneck","trace":"Database","replay":"timed","report":{"total_latency_ns":600,"channel_wait_ns":100,"plane_wait_ns":50,"gc_stall_ns":25,"cache_miss_ns":25,"queue_wait_ns":0}}"#,
            r#"{"t":"bottleneck","trace":"Database","replay":"saturated","report":{"total_latency_ns":400,"channel_wait_ns":300,"plane_wait_ns":50,"gc_stall_ns":25,"cache_miss_ns":25,"queue_wait_ns":0}}"#,
            r#"{"t":"series","trace":"Database","replay":"timed","interval_ns":100,"dropped":0,"samples":[]}"#,
        ];
        // The concurrent producers (spans, series, bottlenecks) may land in
        // any order; the driver lines (meta first) are fixed. Compare the
        // original order against a reversed concurrent suffix.
        let mut a = WatchState::new();
        for l in lines {
            a.ingest(l);
        }
        let mut b = WatchState::new();
        b.ingest(lines[0]);
        for l in lines[1..].iter().rev() {
            b.ingest(l);
        }
        assert_eq!(
            serde_json::to_string(&a.snapshot(false)).unwrap(),
            serde_json::to_string(&b.snapshot(false)).unwrap()
        );
    }

    #[test]
    fn renderers_cover_the_populated_state() {
        let mut w = WatchState::new();
        w.ingest(META);
        w.ingest(r#"{"t":"phase","name":"tune","wall_ns":500}"#);
        w.ingest(
            r#"{"t":"progress","workload":"Database","phase":"done","iteration":4,"total":4,"percent":1.0,"eta_ns":0}"#,
        );
        w.ingest(
            r#"{"t":"bottleneck","trace":"Database","replay":"timed","report":{"total_latency_ns":100,"channel_wait_ns":80,"plane_wait_ns":0,"gc_stall_ns":0,"cache_miss_ns":0,"queue_wait_ns":0}}"#,
        );
        let line = w.status_line();
        assert!(line.contains("Database done 4/4"), "{line}");
        let dash = w.render();
        assert!(dash.contains("channel-wait"), "{dash}");
        assert!(dash.contains("phases: tune"), "{dash}");
        assert!(dash.contains("journal still open"), "{dash}");
        let empty = WatchState::new().status_line();
        assert!(empty.contains("waiting"), "{empty}");
    }

    #[test]
    fn unknown_schema_is_reported_not_fatal() {
        let mut w = WatchState::new();
        assert!(w.ingest(r#"{"t":"meta","schema":"somethingelse.v9","threads":1,"argv":[]}"#));
        assert!(!w.schema_ok());
        assert_eq!(w.journal_schema(), "somethingelse.v9");
    }
}
