//! `autoblox` — command-line front end for the framework.
//!
//! ```text
//! autoblox generate <workload> <events> <seed> [out.csv]
//! autoblox profile <trace-file> [csv|blkparse|msr]
//! autoblox classify <trace-file> [csv|blkparse|msr]
//! autoblox simulate <workload|trace-file> [config.json]
//! autoblox tune <workload> [--iterations N] [--events N] [--capacity GIB]
//!               [--interface nvme|sata] [--flash slc|mlc|tlc|qlc] [--power W]
//!               [--family homogeneous|hybrid] [--speculate K]
//!               [--telemetry out.json] [--journal out.jsonl]
//!               [--checkpoint dir/] [--checkpoint-every N] [--resume]
//!               [--stop-after-iter N] [--db store.db] [--record]
//! autoblox whatif <workload> --goal latency|throughput --factor F
//!               [--telemetry out.json] [--journal out.jsonl]
//!               [--db store.db] [--record]
//! autoblox place --devices M --traces <spec|file>[,...] [--db store.db]
//!               [--record] [--json out.json] [--alpha F] [--rounds N]
//!               [--no-classify] [--capacity GIB] [--interface nvme|sata]
//!               [--flash slc|mlc|tlc|qlc] [--family homogeneous|hybrid]
//!               [--power W] [--telemetry out.json]
//!               [--journal out.jsonl]
//! autoblox runs list [--db store.db] [--json] [--category <name>] [--limit N]
//! autoblox runs show <run-key> [--db store.db] [--json]
//! autoblox watch <journal.jsonl> [--replay] [--json] [--interval-ms N]
//! autoblox telemetry-check <report.json>
//! autoblox checkpoint inspect <checkpoint.json> [--json]
//! autoblox explain <telemetry.json> [--json]
//! autoblox explain diff <baseline.json> <candidate.json> [--json]
//! autoblox inspect <telemetry.json> [--json]
//! autoblox inspect diff <baseline.json> <candidate.json> [--json]
//! autoblox trace export --chrome|--csv <journal.jsonl> <out-file>
//! autoblox report diff <baseline.json> <candidate.json> [--ignore-time]
//!               [--max-grade-drop F] [--max-validation-increase F]
//!               [--max-hit-rate-drop F] [--max-sim-time-increase F]
//!               [--max-tail-shift F] [--max-bottleneck-shift F]
//!               [--ignore <metric>]...
//! autoblox report trend [--db store.db] [--window N] [--category C]
//!               [--max-grade-drop F] [--max-run-inflation F]
//!               [--max-bottleneck-shift F] [--min-calibration-coverage F]
//!               [--json]
//! ```
//!
//! `inspect` is the model observatory: from one `--telemetry` report it
//! derives the surrogate's calibration record (±1σ/±2σ coverage, RMSE,
//! NLPD), the per-parameter importance ranking, and the per-iteration
//! explore-vs-exploit decision provenance; `inspect diff` compares two
//! reports.
//!
//! A `tune`/`whatif`/`place` invocation with `--db` (or the opt-in
//! `--record`, which uses the default store `autoblox.db`) registers a
//! compact run summary under `run:<category>:<seq>` — the persistent
//! history `runs list/show` queries and `report trend` judges.
//!
//! Trace files are auto-detected by extension when the format argument is
//! omitted (`.csv`, `.blk`, `.msr`).
//!
//! Output discipline: machine-readable results (tuned configurations,
//! cluster decisions, simulator reports, telemetry) go to **stdout**;
//! progress and human-oriented commentary go to **stderr**, so pipelines
//! can consume the JSON without scraping.
//!
//! Exit codes: `0` success, `1` runtime failure, `2` usage error (missing
//! operands, bad flag values, a zero device budget) or a malformed input
//! file (unreadable/unparseable trace, telemetry report, config, run
//! journal, or checkpoint), `3` a `report diff` regression.

use autoblox::checkpoint::Checkpoint;
use autoblox::clustering::{ClusterDecision, WorkloadClusterer};
use autoblox::constraints::Constraints;
use autoblox::journal::Journal;
use autoblox::report_diff::{diff_reports, DiffThresholds};
use autoblox::tuner::{Tuner, TunerOptions, TuningTarget};
use autoblox::validator::{Validator, ValidatorOptions};
use autoblox::whatif::{what_if, WhatIfGoal, WhatIfOptions};
use iotrace::gen::WorkloadKind;
use iotrace::parse::{parse_blkparse, parse_csv, parse_msr, write_csv};
use iotrace::stats::TraceProfile;
use iotrace::window::WindowOptions;
use iotrace::Trace;
use ssdsim::config::{presets, DeviceFamily, FlashTechnology, Interface, SsdConfig};
use ssdsim::Simulator;
use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

/// A classified CLI failure so `main` can pick the right exit code:
/// usage errors and malformed user input exit `2`, anything else `1`.
enum CliError {
    /// The command line itself is wrong: missing operands, an unknown
    /// flag value, a zero device budget, and so on.
    Usage(String),
    /// A user-supplied input file (trace, config JSON, telemetry report,
    /// run journal, or checkpoint) could not be read or failed validation.
    Input(String),
    /// Any other runtime failure.
    Other(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Other(msg)
    }
}

// The static one-liners in this file ("tune needs <workload> [flags]", …)
// are all usage messages, so the &str conversion classifies them as such —
// this is what routes them to exit 2 instead of the generic failure path.
impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Usage(msg.to_string())
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: autoblox <command> ...\n\
         \n\
         commands:\n\
         \x20 generate <workload> <events> <seed> [out.csv]   synthesize a trace\n\
         \x20 profile  <trace-file> [csv|blkparse|msr]        print workload statistics\n\
         \x20 classify <trace-file> [csv|blkparse|msr]        match against the studied clusters\n\
         \x20 simulate <workload|trace-file> [config.json]    run the SSD simulator\n\
         \x20 tune     <workload> [--iterations N] [--events N] [--capacity GIB]\n\
         \x20          [--interface nvme|sata] [--flash slc|mlc|tlc|qlc] [--power W]\n\
         \x20          [--family homogeneous|hybrid] [--speculate K]\n\
         \x20          [--telemetry out.json] [--journal out.jsonl]\n\
         \x20          [--checkpoint dir/] [--checkpoint-every N] [--resume]\n\
         \x20          [--stop-after-iter N] [--db store.db] [--record]\n\
         \x20 whatif   <workload> --goal latency|throughput --factor F\n\
         \x20          [--telemetry out.json] [--journal out.jsonl]\n\
         \x20          [--db store.db] [--record]\n\
         \x20 place    --devices M --traces <spec|file>[,...]  consolidate tenant workloads\n\
         \x20          [--db store.db] [--record]              onto M virtual devices\n\
         \x20          [--json out.json]\n\
         \x20          [--alpha F] [--rounds N] [--no-classify]\n\
         \x20          [--capacity GIB] [--interface nvme|sata] [--flash slc|mlc|tlc|qlc]\n\
         \x20          [--family homogeneous|hybrid] [--power W]\n\
         \x20          [--telemetry out.json] [--journal out.jsonl]\n\
         \x20          (a trace spec is <workload>:<events>:<seed>;\n\
         \x20           --db/--record also register a run summary in the registry)\n\
         \x20 runs     list [--db store.db] [--json]           browse the run registry\n\
         \x20          [--category <name>] [--limit N]         (filter by category; keep the\n\
         \x20                                                  N most recent, N >= 1)\n\
         \x20 runs     show <run-key> [--db store.db] [--json] one recorded run in full\n\
         \x20 watch    <journal.jsonl> [--replay] [--json]     live progress dashboard over\n\
         \x20          [--interval-ms N]                       a streaming run journal\n\
         \x20 telemetry-check <report.json>                   validate a telemetry report\n\
         \x20 checkpoint inspect <checkpoint.json> [--json]   summarize a tuning checkpoint\n\
         \x20 explain  <telemetry.json> [--json]              bottleneck fingerprint of a run\n\
         \x20 explain  diff <baseline.json> <candidate.json> [--json]\n\
         \x20                                                 did the bottleneck move?\n\
         \x20 inspect  <telemetry.json> [--json]              model observatory: surrogate\n\
         \x20                                                 calibration, parameter importance,\n\
         \x20                                                 decision provenance\n\
         \x20 inspect  diff <baseline.json> <candidate.json> [--json]\n\
         \x20                                                 did the model's behavior move?\n\
         \x20 trace    export --chrome|--csv <journal.jsonl> <out-file>\n\
         \x20                                                 convert a run journal to Perfetto\n\
         \x20                                                 or a device-sample CSV (model\n\
         \x20                                                 calibration rows when no series)\n\
         \x20 report   diff <baseline.json> <candidate.json>  regression-diff two telemetry\n\
         \x20          [--ignore-time] [--max-grade-drop F]   reports (exit 3 on regression)\n\
         \x20          [--max-validation-increase F] [--max-hit-rate-drop F]\n\
         \x20          [--max-sim-time-increase F] [--max-tail-shift F]\n\
         \x20          [--max-bottleneck-shift F] [--ignore <metric>]...\n\
         \x20 report   trend [--db store.db] [--window N]      judge the newest recorded run\n\
         \x20          [--category C] [--max-grade-drop F]     against the registry's recent\n\
         \x20          [--max-run-inflation F]                 history (exit 3 on drift)\n\
         \x20          [--max-bottleneck-shift F]\n\
         \x20          [--min-calibration-coverage F] [--json]\n\
         \n\
         exit codes:\n\
         \x20 0  success\n\
         \x20 1  runtime failure\n\
         \x20 2  usage error (missing operands, bad flag values, zero device budget,\n\
         \x20    malformed run keys) or a malformed/unreadable input file\n\
         \x20 3  `report diff` found a regression / `report trend` found drift\n\
         \n\
         workloads: {}",
        WorkloadKind::STUDIED
            .iter()
            .chain(WorkloadKind::NEW.iter())
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::from(2)
}

fn load_trace(path: &str, format: Option<&str>) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let reader = BufReader::new(file);
    let fmt = format.map(str::to_string).unwrap_or_else(|| {
        if path.ends_with(".msr") {
            "msr".into()
        } else if path.ends_with(".blk") {
            "blkparse".into()
        } else {
            "csv".into()
        }
    });
    let result = match fmt.as_str() {
        "csv" => parse_csv(path, reader),
        "blkparse" => parse_blkparse(path, reader),
        "msr" => parse_msr(path, reader),
        other => return Err(format!("unknown trace format {other:?}")),
    };
    result.map_err(|e| format!("failed to parse {path}: {e}"))
}

fn parse_workload(name: &str) -> Result<WorkloadKind, String> {
    name.parse()
        .map_err(|_| format!("unknown workload {name:?}; see `autoblox` for the list"))
}

fn cmd_generate(args: &[String]) -> Result<(), CliError> {
    let [workload, events, seed, rest @ ..] = args else {
        return Err("generate needs <workload> <events> <seed> [out.csv]".into());
    };
    let kind = parse_workload(workload).map_err(CliError::Usage)?;
    let events: usize = events
        .parse()
        .map_err(|e| CliError::Usage(format!("bad event count: {e}")))?;
    let seed: u64 = seed
        .parse()
        .map_err(|e| CliError::Usage(format!("bad seed: {e}")))?;
    let trace = kind.spec().generate(events, seed);
    match rest.first() {
        Some(path) => {
            let f = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            write_csv(&trace, f).map_err(|e| format!("write failed: {e}"))?;
            eprintln!("wrote {} events to {path}", trace.len());
        }
        None => {
            write_csv(&trace, std::io::stdout()).map_err(|e| format!("write failed: {e}"))?;
        }
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), CliError> {
    let [path, rest @ ..] = args else {
        return Err("profile needs <trace-file> [format]".into());
    };
    let trace = load_trace(path, rest.first().map(String::as_str)).map_err(CliError::Input)?;
    println!("{}", TraceProfile::of(&trace));
    Ok(())
}

fn cmd_classify(args: &[String]) -> Result<(), CliError> {
    let [path, rest @ ..] = args else {
        return Err("classify needs <trace-file> [format]".into());
    };
    let trace = load_trace(path, rest.first().map(String::as_str)).map_err(CliError::Input)?;
    eprintln!("training the clustering front end on the studied categories ...");
    let window = WindowOptions { window_len: 1_000 };
    let train: Vec<Trace> = WorkloadKind::STUDIED
        .iter()
        .map(|k| k.spec().generate(6_000, 42))
        .collect();
    let model = WorkloadClusterer::fit(&train, WorkloadKind::STUDIED.len(), window, 7)
        .map_err(|e| format!("clustering failed: {e}"))?;
    // Identify which studied category owns each cluster id.
    let mut owners = vec![String::from("?"); model.k()];
    for (kind, t) in WorkloadKind::STUDIED.iter().zip(&train) {
        if let Ok(ClusterDecision::Existing { cluster, .. }) = model.classify(t) {
            owners[cluster] = kind.name().to_string();
        }
    }
    // Machine-readable decision to stdout; commentary to stderr.
    let decision = match model.classify(&trace).map_err(|e| e.to_string())? {
        ClusterDecision::Existing { cluster, distance } => {
            eprintln!(
                "trace matches cluster {cluster} ({}) at distance {distance:.2} (threshold {:.2})",
                owners[cluster],
                model.threshold()
            );
            serde_json::json!({
                "decision": "existing",
                "cluster": cluster as u64,
                "owner": owners[cluster].clone(),
                "distance": distance,
                "threshold": model.threshold(),
            })
        }
        ClusterDecision::New { nearest, distance } => {
            eprintln!(
                "trace is a NEW workload: nearest cluster {nearest} ({}) at distance {distance:.2} > threshold {:.2}",
                owners[nearest],
                model.threshold()
            );
            serde_json::json!({
                "decision": "new",
                "nearest": nearest as u64,
                "owner": owners[nearest].clone(),
                "distance": distance,
                "threshold": model.threshold(),
            })
        }
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&decision).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), CliError> {
    let [source, rest @ ..] = args else {
        return Err("simulate needs <workload|trace-file> [config.json]".into());
    };
    let trace = match parse_workload(source) {
        Ok(kind) => kind.spec().generate(5_000, 0xB10C5),
        Err(_) => load_trace(source, None).map_err(CliError::Input)?,
    };
    let cfg: SsdConfig = match rest.first() {
        Some(path) => {
            let f = File::open(path)
                .map_err(|e| CliError::Input(format!("cannot open {path}: {e}")))?;
            serde_json::from_reader(f)
                .map_err(|e| CliError::Input(format!("bad config JSON in {path}: {e}")))?
        }
        None => presets::intel_750(),
    };
    cfg.validate().map_err(|e| e.to_string())?;
    let mut sim = Simulator::new(cfg);
    sim.warm_up(0.5);
    let report = sim.run(&trace);
    println!(
        "{}",
        serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, CliError>
where
    T::Err: std::fmt::Display,
{
    if let Some(pos) = args.iter().position(|a| a == flag) {
        let value = args
            .get(pos + 1)
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
        return value
            .parse()
            .map(Some)
            .map_err(|e| CliError::Usage(format!("bad value for {flag}: {e}")));
    }
    Ok(None)
}

/// Shared observability sink configuration for the `tune` and `whatif`
/// subcommands: the `--telemetry` report path and the `--journal` stream
/// path are parsed, armed, and flushed in exactly one place, so a flag
/// added here can never drift between the two commands.
struct SinkConfig {
    telemetry: Option<String>,
    journal_path: Option<String>,
    journal: Option<Journal>,
}

impl SinkConfig {
    /// Parses `--telemetry` / `--journal` and, when either is present, arms
    /// telemetry collection (clearing prior state so the outputs cover
    /// exactly this command) and opens the journal.
    fn from_args(args: &[String]) -> Result<SinkConfig, CliError> {
        let telemetry: Option<String> = parse_flag(args, "--telemetry")?;
        let journal_path: Option<String> = parse_flag(args, "--journal")?;
        if telemetry.is_some() || journal_path.is_some() {
            autoblox::telemetry::set_enabled(true);
            autoblox::parallel::reset_pool_stats();
            autoblox::telemetry::global().clear();
        }
        let journal = match &journal_path {
            Some(path) => {
                let j = Journal::create(path).map_err(CliError::Other)?;
                autoblox::telemetry::global().attach_journal(j.handle());
                eprintln!("streaming run journal to {path}");
                Some(j)
            }
            None => None,
        };
        Ok(SinkConfig {
            telemetry,
            journal_path,
            journal,
        })
    }

    /// Writes the telemetry report (if requested) and closes the journal
    /// (if open), printing the histogram-derived latency percentiles the
    /// run observed.
    fn finish(mut self, validator: &Validator) -> Result<(), String> {
        if let Some(path) = &self.telemetry {
            let report = autoblox::telemetry::global().report(Some(validator));
            let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            let p = report.latency_percentiles;
            eprintln!(
                "telemetry report written to {path} \
                 (latency p50 {} ns, p95 {} ns, p99 {} ns)",
                p.p50_ns, p.p95_ns, p.p99_ns
            );
            // Optimization-visibility summary: total surrogate fitting time
            // (the incremental GPR chain should keep this flat as the
            // observation set grows) and the speculation ledger (hits =
            // prefetched results a demand later consumed; wasted = bounded
            // extra simulator work that never got used).
            let fit_ns: u64 = report
                .tuner
                .iter()
                .flat_map(|t| t.records.iter())
                .map(|r| r.surrogate_fit_ns)
                .sum();
            let v = &report.validator;
            eprintln!(
                "surrogate fit {:.3} ms total; speculation: {} run(s), {} hit(s), {} wasted",
                fit_ns as f64 / 1e6,
                v.speculative_runs,
                v.speculative_hits,
                v.speculative_wasted,
            );
        }
        if let Some(j) = self.journal.take() {
            autoblox::telemetry::global().detach_journal();
            let path = self.journal_path.as_deref().expect("journal has a path");
            j.finish(path)?;
            eprintln!("run journal closed: {path}");
        }
        Ok(())
    }
}

fn cmd_telemetry_check(args: &[String]) -> Result<(), CliError> {
    let [path] = args else {
        return Err("telemetry-check needs <report.json>".into());
    };
    let json = std::fs::read_to_string(path)
        .map_err(|e| CliError::Input(format!("cannot read {path}: {e}")))?;
    let checked = autoblox::telemetry::RunReport::parse_checked_verbose(&json)
        .map_err(|e| CliError::Input(format!("{path}: {e}")))?;
    for w in &checked.warnings {
        eprintln!("warning: {path}: {w}");
    }
    let report = checked.report;
    let p = report.latency_percentiles;
    eprintln!(
        "{path}: valid {} report ({} phase(s), {} tuner run(s), {} simulator run(s); \
         latency p50 {} ns, p95 {} ns, p99 {} ns)",
        report.schema,
        report.phases.len(),
        report.tuner.len(),
        report.validator.simulator_runs,
        p.p50_ns,
        p.p95_ns,
        p.p99_ns,
    );
    // Machine-readable verdict (with the accepted schema version echoed)
    // to stdout so CI can assert on it without scraping stderr.
    let verdict = serde_json::json!({
        "path": path.clone(),
        "schema": report.schema.clone(),
        "valid": true,
        "warnings": checked.warnings,
        "phases": report.phases.len() as u64,
        "tuner_runs": report.tuner.len() as u64,
        "simulator_runs": report.validator.simulator_runs,
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&verdict).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), CliError> {
    let json_out = args.iter().any(|a| a == "--json");
    let positional: Vec<&String> = args.iter().filter(|a| *a != "--json").collect();
    let load = |path: &str| -> Result<autoblox::telemetry::RunReport, String> {
        let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        autoblox::telemetry::RunReport::parse_checked(&json).map_err(|e| format!("{path}: {e}"))
    };
    match positional.as_slice() {
        [path] if *path != "diff" => {
            let fp = autoblox::explain::fingerprint(&load(path).map_err(CliError::Input)?);
            if json_out {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&fp).map_err(|e| e.to_string())?
                );
            } else {
                print!("{}", autoblox::explain::render_fingerprint(&fp));
            }
            Ok(())
        }
        [sub, baseline, candidate] if *sub == "diff" => {
            let diff = autoblox::explain::explain_diff(
                &load(baseline).map_err(CliError::Input)?,
                &load(candidate).map_err(CliError::Input)?,
            );
            if json_out {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&diff).map_err(|e| e.to_string())?
                );
            } else {
                print!("{}", autoblox::explain::render_diff(&diff));
            }
            Ok(())
        }
        _ => Err(
            "explain needs <telemetry.json> [--json] or diff <baseline.json> <candidate.json> \
             [--json]"
                .into(),
        ),
    }
}

fn cmd_inspect(args: &[String]) -> Result<(), CliError> {
    let json_out = args.iter().any(|a| a == "--json");
    let positional: Vec<&String> = args.iter().filter(|a| *a != "--json").collect();
    let load = |path: &str| -> Result<autoblox::telemetry::RunReport, String> {
        let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        autoblox::telemetry::RunReport::parse_checked(&json).map_err(|e| format!("{path}: {e}"))
    };
    match positional.as_slice() {
        [path] if *path != "diff" => {
            let model = autoblox::model_obs::inspect(&load(path).map_err(CliError::Input)?);
            if json_out {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&model).map_err(|e| e.to_string())?
                );
            } else {
                print!("{}", autoblox::model_obs::render_model(&model));
            }
            Ok(())
        }
        [sub, baseline, candidate] if *sub == "diff" => {
            let diff = autoblox::model_obs::inspect_diff(
                &load(baseline).map_err(CliError::Input)?,
                &load(candidate).map_err(CliError::Input)?,
            );
            if json_out {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&diff).map_err(|e| e.to_string())?
                );
            } else {
                print!("{}", autoblox::model_obs::render_model_diff(&diff));
            }
            Ok(())
        }
        _ => Err(
            "inspect needs <telemetry.json> [--json] or diff <baseline.json> <candidate.json> \
             [--json]"
                .into(),
        ),
    }
}

fn cmd_trace(args: &[String]) -> Result<(), CliError> {
    let [sub, rest @ ..] = args else {
        return Err("trace needs: export --chrome|--csv <journal.jsonl> <out-file>".into());
    };
    if sub != "export" {
        return Err(CliError::Usage(format!(
            "unknown trace subcommand {sub:?} (expected `export`)"
        )));
    }
    let [flag, journal_path, out_path] = rest else {
        return Err("trace export needs: --chrome|--csv <journal.jsonl> <out-file>".into());
    };
    let journal = std::fs::read_to_string(journal_path)
        .map_err(|e| CliError::Input(format!("cannot read {journal_path}: {e}")))?;
    match flag.as_str() {
        "--chrome" => {
            let chrome = autoblox::journal::export_chrome(&journal).map_err(CliError::Input)?;
            std::fs::write(out_path, &chrome)
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            eprintln!(
                "wrote {out_path} ({} bytes); open it in https://ui.perfetto.dev or \
                 chrome://tracing",
                chrome.len()
            );
        }
        "--csv" => {
            // Device series are the primary export; a journal recorded
            // without the sampler can still export its model-observatory
            // calibration records.
            let (csv, kind) = match autoblox::journal::export_csv(&journal) {
                Ok(csv) => (csv, "device-sample"),
                Err(series_err) => match autoblox::journal::export_calibration_csv(&journal) {
                    Ok(csv) => (csv, "calibration"),
                    Err(_) => return Err(CliError::Input(series_err)),
                },
            };
            std::fs::write(out_path, &csv).map_err(|e| format!("cannot write {out_path}: {e}"))?;
            eprintln!(
                "wrote {out_path} ({} {kind} row(s))",
                csv.lines().count().saturating_sub(1)
            );
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown trace export format {other:?} (expected `--chrome` or `--csv`)"
            )))
        }
    }
    Ok(())
}

/// Exit code returned by `report diff` on regression and `report trend`
/// on drift (distinct from `1` = usage/parse error so CI can tell them
/// apart).
const EXIT_REGRESSION: u8 = 3;

fn cmd_report(args: &[String]) -> Result<ExitCode, CliError> {
    let [sub, rest @ ..] = args else {
        return Err(
            "report needs: diff <baseline.json> <candidate.json> [flags] or trend [flags]".into(),
        );
    };
    match sub.as_str() {
        "diff" => cmd_report_diff(rest),
        "trend" => cmd_report_trend(rest),
        other => Err(CliError::Usage(format!(
            "unknown report subcommand {other:?} (expected `diff` or `trend`)"
        ))),
    }
}

fn cmd_report_diff(rest: &[String]) -> Result<ExitCode, CliError> {
    let [baseline_path, candidate_path, flags @ ..] = rest else {
        return Err("report diff needs <baseline.json> <candidate.json>".into());
    };
    let defaults = DiffThresholds::default();
    let thresholds = DiffThresholds {
        max_grade_drop: parse_flag(flags, "--max-grade-drop")?.unwrap_or(defaults.max_grade_drop),
        max_validation_increase: parse_flag(flags, "--max-validation-increase")?
            .unwrap_or(defaults.max_validation_increase),
        max_hit_rate_drop: parse_flag(flags, "--max-hit-rate-drop")?
            .unwrap_or(defaults.max_hit_rate_drop),
        max_sim_time_increase: parse_flag(flags, "--max-sim-time-increase")?
            .unwrap_or(defaults.max_sim_time_increase),
        max_tail_latency_shift: parse_flag(flags, "--max-tail-shift")?
            .unwrap_or(defaults.max_tail_latency_shift),
        max_bottleneck_shift: parse_flag(flags, "--max-bottleneck-shift")?
            .unwrap_or(defaults.max_bottleneck_shift),
        ignore_time: flags.iter().any(|a| a == "--ignore-time"),
    };
    // `--ignore <metric>` is repeatable, so it cannot go through parse_flag
    // (which stops at the first hit).
    let mut ignore: Vec<String> = Vec::new();
    let mut i = 0;
    while i < flags.len() {
        if flags[i] == "--ignore" {
            let value = flags
                .get(i + 1)
                .ok_or_else(|| "--ignore needs a metric name".to_string())?;
            ignore.push(value.clone());
            i += 2;
        } else {
            i += 1;
        }
    }
    let load = |path: &str| -> Result<autoblox::telemetry::RunReport, String> {
        let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        autoblox::telemetry::RunReport::parse_checked(&json).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = load(baseline_path).map_err(CliError::Input)?;
    let candidate = load(candidate_path).map_err(CliError::Input)?;
    let diff = diff_reports(&baseline, &candidate, &thresholds, &ignore);
    // Machine-readable verdict to stdout; the human summary to stderr.
    println!(
        "{}",
        serde_json::to_string_pretty(&diff).map_err(|e| e.to_string())?
    );
    for m in &diff.metrics {
        eprintln!(
            "{} {:<28} {:>14.3} -> {:>14.3}  ({:+.1}%){}",
            if m.regressed {
                "REGRESSED"
            } else if m.checked {
                "ok       "
            } else {
                "info     "
            },
            m.metric,
            m.baseline,
            m.candidate,
            m.relative * 100.0,
            if m.checked {
                String::new()
            } else {
                " [unchecked]".to_string()
            },
        );
    }
    if diff.pass {
        eprintln!("verdict: PASS");
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("verdict: REGRESSION ({})", diff.regressions.join(", "));
        Ok(ExitCode::from(EXIT_REGRESSION))
    }
}

/// Default AutoDB store used by `--record` (and by `runs`/`report trend`
/// when `--db` is omitted) so the zero-config path "record a few runs,
/// then ask about them" works without threading a path around.
const DEFAULT_RUN_STORE: &str = "autoblox.db";

/// Opens an existing run-registry store. `Store::open` would create the
/// file, which is never what a read-only query wants — a missing registry
/// is an input error, not an empty history.
fn open_run_store(db_path: &str) -> Result<autodb::Store, CliError> {
    if !std::path::Path::new(db_path).exists() {
        return Err(CliError::Input(format!(
            "no run registry at {db_path} (record runs with --db/--record first)"
        )));
    }
    autodb::Store::open(db_path)
        .map_err(|e| CliError::Input(format!("cannot open store {db_path}: {e}")))
}

fn cmd_report_trend(rest: &[String]) -> Result<ExitCode, CliError> {
    let json_only = rest.iter().any(|a| a == "--json");
    let db_path: String =
        parse_flag(rest, "--db")?.unwrap_or_else(|| DEFAULT_RUN_STORE.to_string());
    let defaults = autoblox::TrendThresholds::default();
    let thresholds = autoblox::TrendThresholds {
        window: parse_flag(rest, "--window")?.unwrap_or(defaults.window),
        max_grade_drop: parse_flag(rest, "--max-grade-drop")?.unwrap_or(defaults.max_grade_drop),
        max_run_inflation: parse_flag(rest, "--max-run-inflation")?
            .unwrap_or(defaults.max_run_inflation),
        max_bottleneck_shift: parse_flag(rest, "--max-bottleneck-shift")?
            .unwrap_or(defaults.max_bottleneck_shift),
        min_calibration_coverage: parse_flag(rest, "--min-calibration-coverage")?
            .unwrap_or(defaults.min_calibration_coverage),
    };
    if thresholds.window < 2 {
        return Err("--window must be at least 2 (a run needs history to drift from)".into());
    }
    if !(0.0..=1.0).contains(&thresholds.min_calibration_coverage) {
        return Err("--min-calibration-coverage must be in [0, 1]".into());
    }
    let category: Option<String> = parse_flag(rest, "--category")?;
    let db = open_run_store(&db_path)?;
    let report = autoblox::trend(&db, &thresholds, category.as_deref()).map_err(CliError::Input)?;
    // Machine-readable verdict to stdout; the human summary to stderr
    // (suppressed by --json so scripted callers get a quiet channel).
    println!(
        "{}",
        serde_json::to_string_pretty(&serde_json::to_value(&report).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?
    );
    if !json_only {
        eprint!("{}", autoblox::obs::render_trend(&report));
    }
    if report.pass {
        if !json_only {
            eprintln!("verdict: PASS");
        }
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("verdict: DRIFT ({})", report.drifts.join(", "));
        Ok(ExitCode::from(EXIT_REGRESSION))
    }
}

/// Opt-in run-registry recording for `tune`/`whatif`/`place`: `--db
/// <store>` picks the store, bare `--record` uses [`DEFAULT_RUN_STORE`].
/// Construction arms the telemetry switch (bottleneck shares come from
/// the validator's simulator aggregate, which only accumulates under it);
/// `record`/`record_with` write one [`autoblox::RunSummary`] when the
/// command completes.
struct RunRecorder {
    db_path: Option<String>,
    started: std::time::Instant,
}

impl RunRecorder {
    fn from_args(args: &[String]) -> Result<RunRecorder, CliError> {
        let db: Option<String> = parse_flag(args, "--db")?;
        let db_path = match (db, args.iter().any(|a| a == "--record")) {
            (Some(path), _) => Some(path),
            (None, true) => Some(DEFAULT_RUN_STORE.to_string()),
            (None, false) => None,
        };
        if db_path.is_some() {
            autoblox::telemetry::set_enabled(true);
        }
        Ok(RunRecorder {
            db_path,
            started: std::time::Instant::now(),
        })
    }

    fn active(&self) -> bool {
        self.db_path.is_some()
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        command: &str,
        category: &str,
        device_family: &str,
        seed: u64,
        best_grade: f64,
        iterations: u64,
        validator: &Validator,
        records: &[autoblox::tuner::IterationRecord],
    ) -> Result<(), CliError> {
        let Some(path) = &self.db_path else {
            return Ok(());
        };
        let db = autodb::Store::open(path)
            .map_err(|e| CliError::Input(format!("cannot open store {path}: {e}")))?;
        self.record_with(
            &db,
            command,
            category,
            device_family,
            seed,
            best_grade,
            iterations,
            validator,
            records,
        )
    }

    /// Records into an already-open store handle (`place` shares its
    /// recall store rather than opening a second appender on one file).
    /// `records` feeds the surrogate-calibration coverage the trend gate
    /// judges (empty for commands without a tuner, e.g. `place`).
    #[allow(clippy::too_many_arguments)]
    fn record_with(
        &self,
        db: &autodb::Store,
        command: &str,
        category: &str,
        device_family: &str,
        seed: u64,
        best_grade: f64,
        iterations: u64,
        validator: &Validator,
        records: &[autoblox::tuner::IterationRecord],
    ) -> Result<(), CliError> {
        let (calibration_coverage_1s, calibration_points) =
            autoblox::model_obs::coverage_1s(records);
        let summary = autoblox::RunSummary {
            schema: autoblox::obs::RUNS_SCHEMA.to_string(),
            command: command.to_string(),
            category: category.to_string(),
            device_family: device_family.to_string(),
            seed,
            best_grade,
            iterations,
            simulator_runs: validator.simulator_runs(),
            bottleneck: validator.stats().sim.bottleneck(),
            calibration_coverage_1s,
            calibration_points,
            threads: autoblox::parallel::max_threads() as u64,
            wall_ns: self.started.elapsed().as_nanos() as u64,
        };
        let key = autoblox::record_run(db, &summary).map_err(CliError::Other)?;
        eprintln!("run recorded as {key}");
        Ok(())
    }
}

fn cmd_runs(args: &[String]) -> Result<(), CliError> {
    let [sub, rest @ ..] = args else {
        return Err(
            "runs needs: list [--db store.db] [--json] [--category <name>] [--limit N] \
             or show <run-key> [--db] [--json]"
                .into(),
        );
    };
    let json_out = rest.iter().any(|a| a == "--json");
    let db_path: String =
        parse_flag(rest, "--db")?.unwrap_or_else(|| DEFAULT_RUN_STORE.to_string());
    match sub.as_str() {
        "list" => {
            let category: Option<String> = parse_flag(rest, "--category")?;
            if let Some(cat) = &category {
                if cat.is_empty() {
                    return Err("--category needs a non-empty name".into());
                }
            }
            let limit: Option<u64> = parse_flag(rest, "--limit")?;
            if limit == Some(0) {
                return Err("--limit must be at least 1".into());
            }
            let db = open_run_store(&db_path)?;
            let mut runs = autoblox::obs::list_runs(&db).map_err(CliError::Input)?;
            if let Some(cat) = &category {
                runs.retain(|(_, s)| s.category == *cat);
                if runs.is_empty() {
                    return Err(CliError::Input(format!(
                        "no recorded runs for category `{cat}` in {db_path}"
                    )));
                }
            }
            if let Some(n) = limit {
                // Keep the newest N entries of the (oldest-first) listing.
                let drop = runs.len().saturating_sub(n as usize);
                runs.drain(..drop);
            }
            if json_out {
                // The JSON listing emits fingerprints (host-varying fields
                // stripped) so diffing two listings compares substance.
                let entries: Vec<serde_json::Value> = runs
                    .iter()
                    .map(|(key, summary)| {
                        let mut value = summary.fingerprint();
                        if let serde_json::Value::Object(map) = &mut value {
                            map.insert("key".to_string(), serde_json::json!(key));
                        }
                        value
                    })
                    .collect();
                let doc = serde_json::json!({
                    "schema": autoblox::obs::RUNS_SCHEMA,
                    "runs": entries,
                });
                println!(
                    "{}",
                    serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?
                );
            } else {
                print!("{}", autoblox::obs::render_runs(&runs));
            }
        }
        "show" => {
            let mut positional: Vec<&String> = Vec::new();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--json" => i += 1,
                    "--db" => i += 2,
                    _ => {
                        positional.push(&rest[i]);
                        i += 1;
                    }
                }
            }
            let [key] = positional.as_slice() else {
                return Err("runs show needs <run-key> [--db store.db] [--json]".into());
            };
            // Malformed keys are usage errors (exit 2) before any I/O.
            autoblox::obs::parse_run_key(key).map_err(CliError::Usage)?;
            let db = open_run_store(&db_path)?;
            let summary: autoblox::RunSummary = db
                .get_record(key)
                .map_err(|e| CliError::Input(format!("{key}: {e}")))?
                .ok_or_else(|| CliError::Input(format!("no run {key} in {db_path}")))?;
            if json_out {
                let mut value = serde_json::to_value(&summary).map_err(|e| e.to_string())?;
                if let serde_json::Value::Object(map) = &mut value {
                    map.insert("key".to_string(), serde_json::json!(key.as_str()));
                }
                println!(
                    "{}",
                    serde_json::to_string_pretty(&value).map_err(|e| e.to_string())?
                );
            } else {
                print!(
                    "{}",
                    autoblox::obs::render_runs(&[(key.to_string(), summary)])
                );
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown runs subcommand {other:?} (expected `list` or `show`)"
            )))
        }
    }
    Ok(())
}

fn cmd_watch(args: &[String]) -> Result<(), CliError> {
    let json_out = args.iter().any(|a| a == "--json");
    let replay = args.iter().any(|a| a == "--replay");
    let interval_ms: u64 = parse_flag(args, "--interval-ms")?.unwrap_or(250);
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" | "--replay" => i += 1,
            "--interval-ms" => i += 2,
            other if other.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown watch flag {other:?}")));
            }
            _ => {
                positional.push(&args[i]);
                i += 1;
            }
        }
    }
    let [path] = positional.as_slice() else {
        return Err("watch needs <journal.jsonl> [--replay] [--json] [--interval-ms N]".into());
    };
    if replay {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Input(format!("cannot read {path}: {e}")))?;
        let mut state = autoblox::WatchState::new();
        for line in text.lines() {
            state.ingest(line);
        }
        check_watch_schema(path, &state)?;
        if state.counts().total() == 0 {
            return Err(CliError::Input(format!(
                "{path}: no journal lines recognized"
            )));
        }
        if state.counts().skipped > 0 {
            eprintln!(
                "warning: {path}: {} malformed line(s) skipped",
                state.counts().skipped
            );
        }
        if json_out {
            // Timing excluded: the replay snapshot is a fingerprint, and
            // byte-comparing it across hosts/thread counts is the point.
            println!(
                "{}",
                serde_json::to_string_pretty(&state.snapshot(false)).map_err(|e| e.to_string())?
            );
        } else {
            print!("{}", state.render());
        }
        return Ok(());
    }
    // Live mode: poll the file for appended bytes (no notify dependency),
    // carrying partial trailing lines until the writer finishes them.
    use std::io::Read as _;
    let interval = std::time::Duration::from_millis(interval_ms.max(20));
    let mut state = autoblox::WatchState::new();
    let mut carry = String::new();
    let mut file: Option<File> = None;
    let mut announced_wait = false;
    let mut opened_ino: u64 = 0;
    let mut consumed: u64 = 0;
    loop {
        // A producer that truncates or replaces the journal leaves the old
        // handle stalled at its EOF forever; detect that and start over on
        // the new file.
        if file.is_some() {
            match journal_identity(path) {
                Some((ino, len)) if ino == opened_ino && len >= consumed => {}
                _ => {
                    eprintln!("{path}: journal truncated or replaced; restarting watch");
                    file = None;
                    state = autoblox::WatchState::new();
                    carry.clear();
                    consumed = 0;
                }
            }
        }
        if file.is_none() {
            match File::open(path) {
                Ok(f) => {
                    opened_ino = journal_identity(path).map(|(ino, _)| ino).unwrap_or(0);
                    file = Some(f);
                }
                Err(_) if !announced_wait => {
                    eprintln!("waiting for {path} to appear ...");
                    announced_wait = true;
                }
                Err(_) => {}
            }
        }
        if let Some(f) = &mut file {
            // The handle keeps its offset, so each pass reads only what the
            // producer appended since the previous tick.
            let mut fresh = String::new();
            f.read_to_string(&mut fresh)
                .map_err(|e| CliError::Other(format!("read error on {path}: {e}")))?;
            if !fresh.is_empty() {
                consumed += fresh.len() as u64;
                carry.push_str(&fresh);
                while let Some(end) = carry.find('\n') {
                    let line: String = carry[..end].to_string();
                    state.ingest(&line);
                    carry.drain(..=end);
                }
            }
            check_watch_schema(path, &state)?;
            if json_out {
                // One compact snapshot per tick: a machine-readable ticker.
                println!(
                    "{}",
                    serde_json::to_string(&state.snapshot(true)).map_err(|e| e.to_string())?
                );
            } else {
                eprint!("\r\x1b[2K{}", state.status_line());
            }
            if state.summary_seen() {
                if !json_out {
                    eprintln!();
                }
                return Ok(());
            }
        }
        std::thread::sleep(interval);
    }
}

/// Identity (inode, length) of the journal at `path`, for the live
/// watcher's rotation/truncation detection.
fn journal_identity(path: &str) -> Option<(u64, u64)> {
    let md = std::fs::metadata(path).ok()?;
    #[cfg(unix)]
    let ino = std::os::unix::fs::MetadataExt::ino(&md);
    #[cfg(not(unix))]
    let ino = 0;
    Some((ino, md.len()))
}

/// A journal from a different (or missing) schema family is an input
/// error: silently rendering zeros would look like a stalled run.
fn check_watch_schema(path: &str, state: &autoblox::WatchState) -> Result<(), CliError> {
    if state.schema_ok() {
        return Ok(());
    }
    Err(CliError::Input(format!(
        "{path}: unknown journal schema {:?} (expected autoblox.journal.v*)",
        state.journal_schema()
    )))
}

fn constraints_from(args: &[String]) -> Result<Constraints, CliError> {
    let capacity: u64 = parse_flag(args, "--capacity")?.unwrap_or(512);
    let power: f64 = parse_flag(args, "--power")?.unwrap_or(25.0);
    let interface = match parse_flag::<String>(args, "--interface")?.as_deref() {
        None | Some("nvme") => Interface::Nvme,
        Some("sata") => Interface::Sata,
        Some(other) => return Err(CliError::Usage(format!("unknown interface {other:?}"))),
    };
    let flash = match parse_flag::<String>(args, "--flash")?.as_deref() {
        Some("slc") => FlashTechnology::Slc,
        None | Some("mlc") => FlashTechnology::Mlc,
        Some("tlc") => FlashTechnology::Tlc,
        Some("qlc") => FlashTechnology::Qlc,
        Some(other) => return Err(CliError::Usage(format!("unknown flash type {other:?}"))),
    };
    let family = match parse_flag::<String>(args, "--family")?.as_deref() {
        None | Some("homogeneous") => DeviceFamily::Homogeneous,
        // The hybrid preset's knob values seed the search; all three stay
        // tunable within the family.
        Some("hybrid") | Some("hybrid-slc-cache") => presets::hybrid_slc_qlc().device_family,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown device family {other:?} (expected homogeneous|hybrid)"
            )))
        }
    };
    if family.is_hybrid() && flash.bits_per_cell() < 2 {
        return Err(CliError::Usage(
            "--family hybrid needs a multi-bit capacity tier (mlc|tlc|qlc), not slc".to_string(),
        ));
    }
    Ok(Constraints::new(capacity, interface, flash, power).with_family(family))
}

fn reference_for(constraints: &Constraints) -> SsdConfig {
    let mut reference = if constraints.family.is_hybrid() {
        // `pin` below re-targets the capacity tier's technology and
        // latencies when the constraints ask for something other than QLC.
        presets::hybrid_slc_qlc()
    } else {
        match (constraints.interface, constraints.flash_type) {
            (Interface::Sata, _) => presets::samsung_850_pro(),
            (Interface::Nvme, FlashTechnology::Slc) => presets::samsung_z_ssd(),
            _ => presets::intel_750(),
        }
    };
    constraints.pin(&mut reference);
    reference
}

fn cmd_tune(args: &[String]) -> Result<(), CliError> {
    let [workload, rest @ ..] = args else {
        return Err("tune needs <workload> [flags]".into());
    };
    let kind = parse_workload(workload).map_err(CliError::Usage)?;
    let constraints = constraints_from(rest)?;
    let iterations: usize = parse_flag(rest, "--iterations")?.unwrap_or(20);
    let trace_events: usize =
        parse_flag(rest, "--events")?.unwrap_or(ValidatorOptions::default().trace_events);
    let checkpoint_dir: Option<String> = parse_flag(rest, "--checkpoint")?;
    let checkpoint_every: u64 = parse_flag(rest, "--checkpoint-every")?.unwrap_or(1);
    if checkpoint_every == 0 {
        return Err("--checkpoint-every must be at least 1".into());
    }
    // Speculative batch width: `--speculate 0` (the default) means "one
    // candidate per worker thread", which degrades to sequential on one
    // thread. Any k produces byte-identical results; k only affects how
    // much simulator work runs ahead of demand.
    let speculate: usize = parse_flag(rest, "--speculate")?.unwrap_or(0);
    let speculative_batch = if speculate == 0 {
        autoblox::parallel::max_threads()
    } else {
        speculate
    };
    let resume = rest.iter().any(|a| a == "--resume");
    let stop_after: Option<u64> = parse_flag(rest, "--stop-after-iter")?;
    if stop_after == Some(0) {
        return Err("--stop-after-iter must be at least 1".into());
    }
    if (resume || stop_after.is_some()) && checkpoint_dir.is_none() {
        return Err("--resume and --stop-after-iter need --checkpoint <dir>".into());
    }
    let sinks = SinkConfig::from_args(rest)?;
    let recorder = RunRecorder::from_args(rest)?;
    let validator = Validator::new(ValidatorOptions {
        trace_events,
        ..ValidatorOptions::default()
    });
    let opts = TunerOptions {
        max_iterations: iterations,
        speculative_batch,
        non_target: WorkloadKind::STUDIED
            .iter()
            .copied()
            .filter(|&w| w != kind)
            .take(3)
            .collect(),
        ..TunerOptions::default()
    };
    let seed = opts.seed;
    let reference = reference_for(&constraints);
    let ckpt_path = match &checkpoint_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create checkpoint dir {dir}: {e}"))?;
            Some(std::path::Path::new(dir).join(format!("checkpoint-{}.json", kind.name())))
        }
        None => None,
    };
    let sink = autoblox::telemetry::global();
    let tuner = Tuner::new(constraints, &validator, opts);
    let target = TuningTarget::Category(kind);
    let state = if resume {
        let path = ckpt_path.as_ref().expect("--resume implies --checkpoint");
        let cp = Checkpoint::read(path).map_err(CliError::Input)?;
        cp.verify(&tuner, target, &validator)
            .map_err(|e| CliError::Input(format!("cannot resume from {}: {e}", path.display())))?;
        validator.import_cache(&cp.cache).map_err(CliError::Input)?;
        eprintln!(
            "resuming {kind} from {} (iteration {}, {} observation(s))",
            path.display(),
            cp.state.iterations,
            cp.state.observations.len()
        );
        sink.record_checkpoint(
            &cp.state.workload,
            "resumed",
            cp.state.iterations,
            &path.display().to_string(),
        );
        cp.state
    } else {
        tuner.init_state(target, &reference, &[], None)
    };
    eprintln!("tuning {kind} for up to {iterations} iterations ...");
    let outcome = sink.phase("tune", || {
        tuner.drive(target, state, |s| {
            let Some(path) = &ckpt_path else { return };
            // `--stop-after-iter` only fires at outer-iteration boundaries
            // (`iterations` is 0 through both warm-up phases and N >= 1).
            let stop_now = stop_after.is_some_and(|n| s.iterations == n);
            let cadence = !s.done() && s.iterations % checkpoint_every == 0;
            if !stop_now && !cadence {
                return;
            }
            let cp = Checkpoint::capture(&tuner, target, &validator, s);
            match cp.write_atomic(path) {
                Ok(()) => {
                    sink.record_checkpoint(
                        &s.workload,
                        "written",
                        s.iterations,
                        &path.display().to_string(),
                    );
                    if stop_now {
                        eprintln!(
                            "stopped after iteration {} (checkpoint written to {})",
                            s.iterations,
                            path.display()
                        );
                        std::process::exit(0);
                    }
                }
                Err(e) => {
                    if stop_now {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("warning: {e}");
                }
            }
        })
    });
    sink.record_outcome(&outcome);
    // The run completed: the snapshot would only resume into a no-op, so
    // clean it up rather than leave a stale file to mis-resume from later.
    if let Some(path) = &ckpt_path {
        let _ = std::fs::remove_file(path);
    }
    eprintln!(
        "converged after {} iterations ({} validations); grade {:+.4}; \
         latency {:.2}x, throughput {:.2}x vs reference",
        outcome.iterations,
        outcome.validations,
        outcome.best.grade,
        outcome.best.measurement.latency_speedup(&outcome.reference),
        outcome
            .best
            .measurement
            .throughput_speedup(&outcome.reference),
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&outcome.best.config).map_err(|e| e.to_string())?
    );
    if recorder.active() {
        recorder.record(
            "tune",
            kind.name(),
            constraints.family.label(),
            seed,
            outcome.best.grade,
            outcome.iterations as u64,
            &validator,
            &outcome.iteration_records,
        )?;
    }
    sinks.finish(&validator)?;
    Ok(())
}

fn cmd_checkpoint(args: &[String]) -> Result<(), CliError> {
    let [sub, rest @ ..] = args else {
        return Err("checkpoint needs: inspect <checkpoint.json> [--json]".into());
    };
    if sub != "inspect" {
        return Err(CliError::Usage(format!(
            "unknown checkpoint subcommand {sub:?} (expected `inspect`)"
        )));
    }
    let json_out = rest.iter().any(|a| a == "--json");
    let positional: Vec<&String> = rest.iter().filter(|a| *a != "--json").collect();
    let [path] = positional.as_slice() else {
        return Err("checkpoint inspect needs <checkpoint.json> [--json]".into());
    };
    let cp = Checkpoint::read(path).map_err(CliError::Input)?;
    let summary = cp.summary();
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    if json_out {
        let verdict = serde_json::json!({
            "path": path.to_string(),
            "valid": true,
            "summary": serde_json::to_value(&summary).map_err(|e| e.to_string())?,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&verdict).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", summary.render(now));
    }
    Ok(())
}

fn cmd_whatif(args: &[String]) -> Result<(), CliError> {
    let [workload, rest @ ..] = args else {
        return Err("whatif needs <workload> --goal latency|throughput --factor F".into());
    };
    let kind = parse_workload(workload).map_err(CliError::Usage)?;
    let factor: f64 = parse_flag(rest, "--factor")?.unwrap_or(3.0);
    let goal = match parse_flag::<String>(rest, "--goal")?.as_deref() {
        None | Some("latency") => WhatIfGoal::LatencyReduction(factor),
        Some("throughput") => WhatIfGoal::ThroughputImprovement(factor),
        Some(other) => return Err(CliError::Usage(format!("unknown goal {other:?}"))),
    };
    let constraints = constraints_from(rest)?;
    let trace_events: usize =
        parse_flag(rest, "--events")?.unwrap_or(ValidatorOptions::default().trace_events);
    let sinks = SinkConfig::from_args(rest)?;
    let recorder = RunRecorder::from_args(rest)?;
    let validator = Validator::new(ValidatorOptions {
        trace_events,
        ..ValidatorOptions::default()
    });
    let reference = reference_for(&constraints);
    eprintln!("running what-if analysis for {kind} ...");
    let sink = autoblox::telemetry::global();
    let out = sink.phase("whatif", || {
        what_if(
            kind,
            goal,
            constraints,
            &reference,
            &validator,
            WhatIfOptions::default(),
        )
    });
    sink.record_outcome(&out.tuning);
    eprintln!(
        "achieved {:.2}x ({}) in {} iterations",
        out.achieved,
        if out.met { "goal met" } else { "goal NOT met" },
        out.tuning.iterations
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&out.tuning.best.config).map_err(|e| e.to_string())?
    );
    if recorder.active() {
        recorder.record(
            "whatif",
            kind.name(),
            constraints.family.label(),
            TunerOptions::default().seed,
            out.tuning.best.grade,
            out.tuning.iterations as u64,
            &validator,
            &out.tuning.iteration_records,
        )?;
    }
    sinks.finish(&validator)?;
    Ok(())
}

fn cmd_place(args: &[String]) -> Result<(), CliError> {
    let devices: usize = parse_flag(args, "--devices")?
        .ok_or_else(|| CliError::Usage(String::from("place needs --devices <M>")))?;
    if devices == 0 {
        return Err(CliError::Usage(String::from(
            "--devices must be at least 1",
        )));
    }
    // `--traces` is repeatable and each occurrence is comma-separable; an
    // entry is either a generator spec (<workload>:<events>:<seed>) or a
    // trace file path.
    let mut entries: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--traces" {
            let value = args
                .get(i + 1)
                .ok_or_else(|| CliError::Usage(String::from("--traces needs a value")))?;
            entries.extend(
                value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from),
            );
            i += 2;
        } else {
            i += 1;
        }
    }
    if entries.is_empty() {
        return Err(CliError::Usage(String::from(
            "place needs --traces <spec|file>[,...]",
        )));
    }
    let constraints = constraints_from(args)?;
    let alpha: f64 = parse_flag(args, "--alpha")?.unwrap_or(autoblox::metrics::DEFAULT_ALPHA);
    if !(0.0..=1.0).contains(&alpha) {
        return Err(CliError::Usage(String::from("--alpha must be in [0, 1]")));
    }
    let rounds: usize = parse_flag(args, "--rounds")?.unwrap_or(16);
    let json_path: Option<String> = parse_flag(args, "--json")?;
    let db_path: Option<String> = parse_flag(args, "--db")?;
    let no_classify = args.iter().any(|a| a == "--no-classify");
    let sinks = SinkConfig::from_args(args)?;
    let recorder = RunRecorder::from_args(args)?;

    let db = match &db_path {
        Some(path) => Some(
            autodb::Store::open(path)
                .map_err(|e| CliError::Input(format!("cannot open store {path}: {e}")))?,
        ),
        None => None,
    };
    if let Some(db) = &db {
        let families =
            db.keys_with_prefix("category:").len() + db.keys_with_prefix("cluster:").len();
        eprintln!(
            "{} learned config famil{} available in {}",
            families,
            if families == 1 { "y" } else { "ies" },
            db_path.as_deref().unwrap_or("store"),
        );
    }

    // Tenant names are `t<i>:<label>`: unique per mix (the validator keys
    // its caches by trace name) and stable across runs.
    let mut tenants: Vec<std::sync::Arc<Trace>> = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let trace = match entry.parse::<iotrace::TenantSpec>() {
            Ok(spec) => spec.generate(format!("t{i}:{}", spec.kind.name())),
            Err(_) => {
                let raw = load_trace(entry, None).map_err(CliError::Input)?;
                let label = entry.rsplit('/').next().unwrap_or(entry);
                Trace::from_events(format!("t{i}:{label}"), raw.events().to_vec())
            }
        };
        tenants.push(std::sync::Arc::new(trace));
    }

    let fallback = reference_for(&constraints);
    let validator = Validator::new(ValidatorOptions::default());
    let opts = autoblox::place::PlacementOptions {
        devices,
        alpha,
        max_rounds: rounds,
        classify: !no_classify,
        ..Default::default()
    };
    eprintln!(
        "placing {} tenant(s) onto {} device(s) ...",
        tenants.len(),
        devices
    );
    let report = autoblox::place::place(&tenants, &fallback, db.as_ref(), &validator, &opts)
        .map_err(CliError::Other)?;

    // Human-oriented summary to stderr; the machine-readable report to
    // stdout (and to --json when given).
    for d in &report.device_reports {
        if d.tenants.is_empty() {
            eprintln!("device {}: idle", d.device);
        } else {
            eprintln!(
                "device {}: {} (cost {:.4}, config {}, bottleneck {})",
                d.device,
                d.tenants.join(" + "),
                d.cost,
                d.config_source,
                d.bottleneck.dominant(),
            );
        }
    }
    for t in &report.tenants {
        eprintln!(
            "  {} -> device {}: solo {:.0} ns, co-located {:.0} ns ({:+.1}% degradation)",
            t.name,
            t.device,
            t.solo_latency_ns,
            t.co_latency_ns,
            t.degradation_frac * 100.0,
        );
    }
    eprintln!(
        "greedy cost {:.4} -> final cost {:.4} after {} move(s) in {} round(s)",
        report.greedy_cost, report.final_cost, report.moves_applied, report.search_rounds,
    );
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    if let Some(path) = &json_path {
        std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("placement report written to {path}");
    }
    println!("{json}");
    if recorder.active() {
        // Placement has no tuning grade: the registry gets the negated
        // final placement cost so "higher is better" still holds for the
        // trend gate's grade-drop rule.
        let grade = -report.final_cost;
        match &db {
            Some(db) => recorder.record_with(
                db,
                "place",
                "place",
                constraints.family.label(),
                opts.train_seed,
                grade,
                report.search_rounds,
                &validator,
                &[],
            )?,
            None => recorder.record(
                "place",
                "place",
                constraints.family.label(),
                opts.train_seed,
                grade,
                report.search_rounds,
                &validator,
                &[],
            )?,
        }
    }
    sinks.finish(&validator)?;
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    // `report diff`/`report trend` distinguish "regression/drift found"
    // (exit 3) from plain success/failure, so they return an ExitCode
    // directly.
    if command == "report" {
        return match cmd_report(rest) {
            Ok(code) => code,
            Err(err) => fail(err),
        };
    }
    let result = match command.as_str() {
        "generate" => cmd_generate(rest),
        "profile" => cmd_profile(rest),
        "classify" => cmd_classify(rest),
        "simulate" => cmd_simulate(rest),
        "tune" => cmd_tune(rest),
        "whatif" => cmd_whatif(rest),
        "place" => cmd_place(rest),
        "runs" => cmd_runs(rest),
        "watch" => cmd_watch(rest),
        "telemetry-check" => cmd_telemetry_check(rest),
        "checkpoint" => cmd_checkpoint(rest),
        "explain" => cmd_explain(rest),
        "inspect" => cmd_inspect(rest),
        "trace" => cmd_trace(rest),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => fail(err),
    }
}

/// Prints the error and maps its class to the documented exit code.
fn fail(err: CliError) -> ExitCode {
    match err {
        CliError::Usage(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `autoblox` with no arguments for usage");
            ExitCode::from(2)
        }
        CliError::Input(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
        CliError::Other(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
