//! The unified efficiency metrics: Formula 1 (performance) and Formula 2
//! (grade) of the paper.

use serde::{Deserialize, Serialize};
use ssdsim::SimReport;

/// Default latency/throughput balance coefficient (α in Formula 1), chosen
/// by the paper's sensitivity study (§4.6, Figure 11).
pub const DEFAULT_ALPHA: f64 = 0.5;

/// Default target/non-target penalty balance (β in Formula 2), the sweet
/// spot of Figure 12.
pub const DEFAULT_BETA: f64 = 0.1;

/// A latency/throughput measurement for one workload on one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Mean request latency in nanoseconds.
    pub latency_ns: f64,
    /// Host throughput in bytes per second.
    pub throughput_bps: f64,
    /// Average device power in watts.
    pub power_w: f64,
    /// Total energy in millijoules.
    pub energy_mj: f64,
}

impl Measurement {
    /// Extracts the measurement from a simulator report.
    pub fn from_report(report: &SimReport) -> Self {
        Measurement {
            latency_ns: report.latency.mean_ns.max(1.0),
            throughput_bps: report.throughput_bps.max(1.0),
            power_w: report.average_power_w,
            energy_mj: report.energy.total_mj(),
        }
    }

    /// Latency speedup of `self` relative to `reference` (>1 is better).
    pub fn latency_speedup(&self, reference: &Measurement) -> f64 {
        reference.latency_ns / self.latency_ns
    }

    /// Throughput speedup of `self` relative to `reference` (>1 is better).
    pub fn throughput_speedup(&self, reference: &Measurement) -> f64 {
        self.throughput_bps / reference.throughput_bps
    }
}

/// Formula 1: the unified performance of a target configuration relative to
/// a reference, balancing latency and throughput with coefficient `alpha`.
///
/// `Performance_W(target) = (1-α)·ln(Lat_ref/Lat_target) +
/// α·ln(Tp_target/Tp_ref)`
///
/// Positive values mean the target outperforms the reference.
///
/// # Panics
///
/// Panics in debug builds if `alpha` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use autoblox::metrics::{performance, Measurement};
/// let reference = Measurement { latency_ns: 100.0, throughput_bps: 100.0, power_w: 5.0, energy_mj: 1.0 };
/// let twice_as_fast = Measurement { latency_ns: 50.0, throughput_bps: 200.0, power_w: 5.0, energy_mj: 1.0 };
/// let p = performance(&twice_as_fast, &reference, 0.5);
/// assert!((p - (2.0f64).ln()).abs() < 1e-12);
/// ```
pub fn performance(target: &Measurement, reference: &Measurement, alpha: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    (1.0 - alpha) * (reference.latency_ns / target.latency_ns).ln()
        + alpha * (target.throughput_bps / reference.throughput_bps).ln()
}

/// Formula 2: the grade of a configuration, mixing target-workload
/// performance with the mean non-target performance using the penalty
/// balance `beta`.
///
/// `Grade_W(conf) = (1-β)·Perf_W(conf) + β·mean(Perf_W'(conf))`
///
/// `non_target_performances` holds one Formula-1 value per non-target
/// workload cluster; the paper divides by `NumClusters - 1`, i.e. averages
/// across them. An empty slice yields the pure target performance.
pub fn grade(target_performance: f64, non_target_performances: &[f64], beta: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    if non_target_performances.is_empty() {
        return target_performance;
    }
    let mean_non_target: f64 =
        non_target_performances.iter().sum::<f64>() / non_target_performances.len() as f64;
    (1.0 - beta) * target_performance + beta * mean_non_target
}

/// Geometric mean of a slice of positive ratios (used for the non-target
/// summary rows of Tables 1/4/8/9). Returns 0 for an empty slice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(lat: f64, tp: f64) -> Measurement {
        Measurement {
            latency_ns: lat,
            throughput_bps: tp,
            power_w: 5.0,
            energy_mj: 100.0,
        }
    }

    #[test]
    fn identical_config_scores_zero() {
        let r = m(100.0, 1e9);
        assert_eq!(performance(&r, &r, 0.5), 0.0);
    }

    #[test]
    fn better_latency_scores_positive() {
        let reference = m(100.0, 1e9);
        let faster = m(50.0, 1e9);
        assert!(performance(&faster, &reference, 0.5) > 0.0);
        let slower = m(200.0, 1e9);
        assert!(performance(&slower, &reference, 0.5) < 0.0);
    }

    #[test]
    fn alpha_extremes_isolate_metrics() {
        let reference = m(100.0, 1e9);
        // Better latency, worse throughput.
        let mixed = m(50.0, 5e8);
        // alpha = 0: only latency counts.
        assert!(performance(&mixed, &reference, 0.0) > 0.0);
        // alpha = 1: only throughput counts.
        assert!(performance(&mixed, &reference, 1.0) < 0.0);
    }

    #[test]
    fn grade_blends_target_and_non_target() {
        let g = grade(1.0, &[0.0, 0.0], 0.1);
        assert!((g - 0.9).abs() < 1e-12);
        let g2 = grade(1.0, &[], 0.1);
        assert_eq!(g2, 1.0);
        // beta = 1 ignores the target entirely.
        let g3 = grade(5.0, &[1.0, 3.0], 1.0);
        assert!((g3 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speedups() {
        let reference = m(100.0, 1e9);
        let target = m(50.0, 2e9);
        assert!((target.latency_speedup(&reference) - 2.0).abs() < 1e-12);
        assert!((target.throughput_speedup(&reference) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_known() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn performance_is_antisymmetric() {
        let a = m(80.0, 1.5e9);
        let b = m(120.0, 0.9e9);
        let ab = performance(&a, &b, 0.5);
        let ba = performance(&b, &a, 0.5);
        assert!((ab + ba).abs() < 1e-12);
    }
}
