//! `autoblox explain`: bottleneck fingerprints over telemetry reports.
//!
//! Turns a serialized [`RunReport`] (the `--telemetry out.json` document)
//! into a compact, human-readable answer to "where did this run's simulated
//! time go?" — the per-resource latency attribution the device observatory
//! collects — and diffs two such fingerprints to say whether (and where) the
//! bottleneck moved between runs.
//!
//! Everything here is a pure function of the input reports: no clocks, no
//! environment, so `explain` output is bit-identical whenever its inputs
//! are, which the determinism suite asserts across thread counts.

use crate::telemetry::RunReport;
use serde::{Deserialize, Serialize};
use ssdsim::report::HistogramPercentiles;
use ssdsim::BottleneckReport;

/// Schema identifier of the `explain --json` document.
pub const EXPLAIN_SCHEMA: &str = "autoblox.explain.v1";

/// Schema identifier of the `explain diff --json` document.
pub const EXPLAIN_DIFF_SCHEMA: &str = "autoblox.explain-diff.v1";

/// One resource's share of the attributed request time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceShare {
    /// Resource name (`channel-wait`, `plane-busy`, `gc-stall`,
    /// `cache-miss`, `host-queue`, `slc-migration`, or `other`).
    pub resource: String,
    /// Fraction of total request time attributed to it.
    pub frac: f64,
}

/// The bottleneck fingerprint of one telemetry report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// Always [`EXPLAIN_SCHEMA`].
    pub schema: String,
    /// Schema of the report the fingerprint was taken from.
    pub source_schema: String,
    /// Workloads the run tuned, in recording order.
    pub workloads: Vec<String>,
    /// Best grade over every recorded tuning run (0 when none ran).
    pub best_grade: f64,
    /// Simulator validations the run performed.
    pub validations: u64,
    /// Total attributed request time, simulated ns.
    pub total_latency_ns: u64,
    /// Resource with the largest share, `"none"` when nothing attributed.
    pub dominant: String,
    /// All seven shares, sorted descending by fraction (ties by name).
    pub shares: Vec<ResourceShare>,
    /// Tail-latency percentiles from the aggregated histogram.
    pub latency_percentiles: HistogramPercentiles,
    /// Device-observatory samples retained across all simulator runs.
    pub device_samples: u64,
    /// Samples dropped by the bounded per-run buffers.
    pub device_samples_dropped: u64,
}

fn shares_of(b: &BottleneckReport) -> Vec<ResourceShare> {
    let mut shares: Vec<ResourceShare> = b
        .fractions()
        .iter()
        .map(|(name, frac)| ResourceShare {
            resource: name.to_string(),
            frac: *frac,
        })
        .collect();
    shares.push(ResourceShare {
        resource: "other".to_string(),
        frac: b.other_frac,
    });
    shares.sort_by(|a, b| {
        b.frac
            .total_cmp(&a.frac)
            .then_with(|| a.resource.cmp(&b.resource))
    });
    shares
}

/// Extracts the bottleneck fingerprint of a parsed telemetry report.
pub fn fingerprint(report: &RunReport) -> Fingerprint {
    let b = &report.bottleneck;
    Fingerprint {
        schema: EXPLAIN_SCHEMA.to_string(),
        source_schema: report.schema.clone(),
        workloads: report.tuner.iter().map(|t| t.workload.clone()).collect(),
        best_grade: report
            .tuner
            .iter()
            .map(|t| t.best_grade)
            .fold(0.0, f64::max),
        validations: report.validator.simulator_runs,
        total_latency_ns: b.total_latency_ns,
        dominant: b.dominant().to_string(),
        shares: shares_of(b),
        latency_percentiles: report.latency_percentiles,
        device_samples: report.validator.sim.device_samples,
        device_samples_dropped: report.validator.sim.device_samples_dropped,
    }
}

/// Width of the ASCII share bars in [`render_fingerprint`].
const BAR_WIDTH: usize = 40;

fn bar(frac: f64) -> String {
    let filled = ((frac.clamp(0.0, 1.0) * BAR_WIDTH as f64).round() as usize).min(BAR_WIDTH);
    let mut s = String::with_capacity(BAR_WIDTH);
    for i in 0..BAR_WIDTH {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// Renders a fingerprint for humans: one bar per resource share plus the
/// run's headline numbers.
pub fn render_fingerprint(fp: &Fingerprint) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "bottleneck fingerprint ({})\n",
        if fp.workloads.is_empty() {
            "no tuning runs recorded".to_string()
        } else {
            fp.workloads.join(", ")
        }
    ));
    out.push_str(&format!(
        "  validations: {}   best grade: {:.4}   attributed: {:.3} ms simulated\n",
        fp.validations,
        fp.best_grade,
        fp.total_latency_ns as f64 / 1e6
    ));
    out.push_str(&format!(
        "  latency p50/p95/p99: {}/{}/{} us\n",
        fp.latency_percentiles.p50_ns / 1_000,
        fp.latency_percentiles.p95_ns / 1_000,
        fp.latency_percentiles.p99_ns / 1_000
    ));
    out.push_str(&format!(
        "  device samples: {} retained, {} dropped\n",
        fp.device_samples, fp.device_samples_dropped
    ));
    out.push_str(&format!("  dominant: {}\n", fp.dominant));
    for share in &fp.shares {
        out.push_str(&format!(
            "  {:<12} {} {:5.1}%\n",
            share.resource,
            bar(share.frac),
            share.frac * 100.0
        ));
    }
    out
}

/// One resource's share movement between two reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShareDelta {
    /// Resource name.
    pub resource: String,
    /// Share in the baseline report.
    pub baseline_frac: f64,
    /// Share in the candidate report.
    pub candidate_frac: f64,
    /// `candidate_frac - baseline_frac`.
    pub delta: f64,
}

/// The difference between two bottleneck fingerprints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplainDiff {
    /// Always [`EXPLAIN_DIFF_SCHEMA`].
    pub schema: String,
    /// Fingerprint of the baseline report.
    pub baseline: Fingerprint,
    /// Fingerprint of the candidate report.
    pub candidate: Fingerprint,
    /// Per-resource share movement, in the stable resource order
    /// (channel-wait, plane-busy, gc-stall, cache-miss, host-queue,
    /// slc-migration, other).
    pub deltas: Vec<ShareDelta>,
    /// Candidate best grade minus baseline best grade.
    pub grade_delta: f64,
    /// Whether the dominant resource changed.
    pub bottleneck_moved: bool,
    /// Dominant resource of the baseline.
    pub moved_from: String,
    /// Dominant resource of the candidate.
    pub moved_to: String,
    /// One-line human verdict.
    pub verdict: String,
}

fn frac_by_name(fp: &Fingerprint, name: &str) -> f64 {
    fp.shares
        .iter()
        .find(|s| s.resource == name)
        .map(|s| s.frac)
        .unwrap_or(0.0)
}

/// The stable resource order diff rows are emitted in.
const RESOURCES: [&str; 7] = [
    "channel-wait",
    "plane-busy",
    "gc-stall",
    "cache-miss",
    "host-queue",
    "slc-migration",
    "other",
];

/// Diffs two parsed telemetry reports' bottleneck fingerprints.
pub fn explain_diff(baseline: &RunReport, candidate: &RunReport) -> ExplainDiff {
    let base = fingerprint(baseline);
    let cand = fingerprint(candidate);
    let deltas: Vec<ShareDelta> = RESOURCES
        .iter()
        .map(|name| {
            let b = frac_by_name(&base, name);
            let c = frac_by_name(&cand, name);
            ShareDelta {
                resource: name.to_string(),
                baseline_frac: b,
                candidate_frac: c,
                delta: c - b,
            }
        })
        .collect();
    let moved = base.dominant != cand.dominant;
    let largest = deltas
        .iter()
        .max_by(|a, b| a.delta.abs().total_cmp(&b.delta.abs()))
        .cloned();
    let verdict = if moved {
        format!("bottleneck moved: {} -> {}", base.dominant, cand.dominant)
    } else {
        match largest {
            Some(d) if d.delta.abs() > 1e-12 => format!(
                "bottleneck unchanged ({}); largest shift {} {:+.1} pts",
                base.dominant,
                d.resource,
                d.delta * 100.0
            ),
            _ => format!("bottleneck unchanged ({}); no share moved", base.dominant),
        }
    };
    ExplainDiff {
        schema: EXPLAIN_DIFF_SCHEMA.to_string(),
        grade_delta: cand.best_grade - base.best_grade,
        bottleneck_moved: moved,
        moved_from: base.dominant.clone(),
        moved_to: cand.dominant.clone(),
        baseline: base,
        candidate: cand,
        deltas,
        verdict,
    }
}

/// Renders an [`ExplainDiff`] for humans: one row per resource with both
/// shares and the movement, then the verdict.
pub fn render_diff(diff: &ExplainDiff) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>9} {:>9} {:>9}\n",
        "resource", "baseline", "candidate", "delta"
    ));
    for d in &diff.deltas {
        out.push_str(&format!(
            "{:<12} {:>8.1}% {:>8.1}% {:>+8.1}p\n",
            d.resource,
            d.baseline_frac * 100.0,
            d.candidate_frac * 100.0,
            d.delta * 100.0
        ));
    }
    out.push_str(&format!("grade delta: {:+.4}\n", diff.grade_delta));
    out.push_str(&diff.verdict);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::ValidatorStats;

    fn report_with(b: BottleneckReport, grade: f64) -> RunReport {
        RunReport {
            schema: RunReport::SCHEMA.to_string(),
            bottleneck: b,
            tuner: vec![crate::telemetry::TunerRunTelemetry {
                workload: "database".to_string(),
                best_grade: grade,
                ..Default::default()
            }],
            validator: ValidatorStats {
                simulator_runs: 7,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn fingerprint_sorts_shares_descending() {
        let r = report_with(
            BottleneckReport::from_totals(1_000, 50, 300, 100, 20, 30, 0),
            0.5,
        );
        let fp = fingerprint(&r);
        assert_eq!(fp.dominant, "plane-busy");
        assert_eq!(fp.shares.len(), 7);
        // "other" here is 1 - 0.5 = 0.5, the largest share.
        assert_eq!(fp.shares[0].resource, "other");
        assert_eq!(fp.shares[1].resource, "plane-busy");
        for w in fp.shares.windows(2) {
            assert!(w[0].frac >= w[1].frac, "shares must be sorted");
        }
        assert_eq!(fp.validations, 7);
        assert_eq!(fp.workloads, vec!["database".to_string()]);
    }

    #[test]
    fn diff_reports_a_moved_bottleneck() {
        let a = report_with(
            BottleneckReport::from_totals(1_000, 600, 100, 0, 0, 0, 0),
            0.4,
        );
        let b = report_with(
            BottleneckReport::from_totals(1_000, 100, 0, 700, 0, 0, 0),
            0.6,
        );
        let d = explain_diff(&a, &b);
        assert!(d.bottleneck_moved);
        assert_eq!(d.moved_from, "channel-wait");
        assert_eq!(d.moved_to, "gc-stall");
        assert!((d.grade_delta - 0.2).abs() < 1e-12);
        assert!(d.verdict.contains("moved"), "{}", d.verdict);
        assert_eq!(d.deltas.len(), 7);
        let gc = d.deltas.iter().find(|x| x.resource == "gc-stall").unwrap();
        assert!((gc.delta - 0.7).abs() < 1e-12);
    }

    #[test]
    fn diff_of_identical_reports_is_stable() {
        let a = report_with(
            BottleneckReport::from_totals(1_000, 200, 100, 50, 25, 100, 25),
            0.4,
        );
        let d = explain_diff(&a, &a.clone());
        assert!(!d.bottleneck_moved);
        assert_eq!(d.grade_delta, 0.0);
        for delta in &d.deltas {
            assert_eq!(delta.delta, 0.0);
        }
        assert!(d.verdict.contains("unchanged"), "{}", d.verdict);
    }

    #[test]
    fn render_is_deterministic_and_mentions_every_resource() {
        let r = report_with(
            BottleneckReport::from_totals(1_000, 200, 100, 50, 25, 100, 25),
            0.4,
        );
        let fp = fingerprint(&r);
        let a = render_fingerprint(&fp);
        let b = render_fingerprint(&fp);
        assert_eq!(a, b);
        for name in [
            "channel-wait",
            "plane-busy",
            "gc-stall",
            "cache-miss",
            "host-queue",
            "slc-migration",
            "other",
        ] {
            assert!(a.contains(name), "render must mention {name}:\n{a}");
        }
        let d = explain_diff(&r, &r.clone());
        let rendered = render_diff(&d);
        assert!(rendered.contains("grade delta"), "{rendered}");
    }

    #[test]
    fn explain_json_round_trips() {
        let r = report_with(
            BottleneckReport::from_totals(1_000, 200, 100, 50, 25, 100, 25),
            0.4,
        );
        let fp = fingerprint(&r);
        let json = serde_json::to_string(&fp).expect("serializes");
        let back: Fingerprint = serde_json::from_str(&json).expect("parses");
        assert_eq!(fp, back);
        let d = explain_diff(&r, &r.clone());
        let json = serde_json::to_string(&d).expect("serializes");
        let back: ExplainDiff = serde_json::from_str(&json).expect("parses");
        assert_eq!(d, back);
    }
}
