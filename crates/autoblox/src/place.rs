//! Fleet placement: consolidate N tenant workloads onto M virtual devices.
//!
//! The paper tunes one configuration per workload cluster; a fleet operator
//! has the dual problem — given a *set* of tenant traces and a bounded pool
//! of devices, which tenants should share a device, and under which of the
//! learned configurations? This module follows the Serifos blueprint
//! (workload consolidation and load balancing for SSD-backed cloud storage)
//! built from the pieces that already exist here:
//!
//! 1. **Classify** — each tenant trace is classified against the studied
//!    clusters ([`crate::clustering`]) and its learned configuration is
//!    fetched from AutoDB (`category:<owner>` / `cluster:<id>` records,
//!    restricted to the fleet's device-family kind), falling back to a
//!    constraint-matched preset.
//! 2. **Score** — a candidate device (a subset of tenants plus one
//!    compromise configuration) is scored by co-simulating the tenants'
//!    merged, LBA-partitioned trace ([`iotrace::mix::merge_partitioned`])
//!    through the shared [`Validator`] and comparing it against the
//!    tenants' *entitled* blend — the latency/throughput they measure when
//!    run solo under their own configurations. The interference cost is the
//!    negated Formula-1 performance of merged-vs-entitled, so a tenant
//!    alone on its own configuration costs exactly zero.
//! 3. **Search** — assignments are searched with greedy seeding (tenants
//!    by descending footprint, each placed on the device with the smallest
//!    marginal cost) followed by local-search rounds of single-tenant moves
//!    and pairwise swaps. Candidate scoring fans out through
//!    [`mlkit::parallel`]; every selection ties break on the lowest index,
//!    so the result is bit-identical at any thread count.
//! 4. **Attribute** — the winning assignment is replayed once per device
//!    with per-tenant lane accounting ([`ssdsim::TenantLanes`]) armed,
//!    yielding each device's bottleneck attribution and each tenant's
//!    co-located latency, from which the per-tenant degradation versus the
//!    solo run is reported.
//!
//! The result is a [`PlacementReport`] (`autoblox.place.v1`), the JSON
//! contract the `place-smoke` CI stage pins byte-identical across thread
//! counts.

use crate::clustering::{ClusterDecision, WorkloadClusterer};
use crate::framework::StoredConfig;
use crate::metrics::{performance, Measurement, DEFAULT_ALPHA};
use crate::validator::Validator;
use autodb::Store;
use iotrace::gen::WorkloadKind;
use iotrace::mix::merge_partitioned;
use iotrace::window::WindowOptions;
use iotrace::Trace;
use mlkit::parallel::parallel_map;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use ssdsim::config::{DeviceFamily, SsdConfig};
use ssdsim::{BottleneckReport, Simulator};
use std::collections::HashMap;
use std::sync::Arc;

/// Schema tag of [`PlacementReport`].
pub const PLACE_SCHEMA: &str = "autoblox.place.v1";

/// Knobs for a placement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementOptions {
    /// Device budget M (must be at least 1).
    pub devices: usize,
    /// Formula-1 latency/throughput blend used by the interference score.
    pub alpha: f64,
    /// Upper bound on local-search rounds after greedy seeding.
    pub max_rounds: usize,
    /// Classify tenants against the studied clusters before looking up
    /// learned configurations. Disable to place every tenant under the
    /// fallback configuration (fast; used by tests).
    pub classify: bool,
    /// Events per studied-category training trace for the clustering
    /// front end.
    pub train_events: usize,
    /// Generator seed for the training traces.
    pub train_seed: u64,
    /// Feature-window length for the clustering front end; tenants shorter
    /// than one window are placed under the fallback configuration.
    pub window_len: usize,
}

impl Default for PlacementOptions {
    fn default() -> Self {
        PlacementOptions {
            devices: 2,
            alpha: DEFAULT_ALPHA,
            max_rounds: 16,
            classify: true,
            train_events: 6_000,
            train_seed: 42,
            window_len: 1_000,
        }
    }
}

/// One tenant's row in the placement report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant name (unique within the mix).
    pub name: String,
    /// Studied category owning the tenant's cluster, when classified.
    pub workload: Option<String>,
    /// Cluster id the tenant matched, when classification found one.
    pub cluster: Option<u64>,
    /// Where the tenant's candidate configuration came from
    /// (`db:category:<owner>`, `db:cluster:<id>`, or `preset`).
    pub config_source: String,
    /// Device the tenant was assigned to.
    pub device: u64,
    /// Requests in the tenant's trace.
    pub requests: u64,
    /// Host bytes moved by the tenant's trace.
    pub bytes: u64,
    /// Mean latency of the tenant run solo under its own configuration, ns.
    pub solo_latency_ns: f64,
    /// Mean latency of the tenant's requests in the co-located replay, ns.
    pub co_latency_ns: f64,
    /// Fractional latency degradation of co-location versus the solo run
    /// (clamped to be finite and non-negative; 0 for an idle lane).
    pub degradation_frac: f64,
}

/// One device's row in the placement report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Device index in `0..M`.
    pub device: u64,
    /// Names of the tenants sharing the device, in tenant-index order.
    pub tenants: Vec<String>,
    /// Source of the compromise configuration the device runs
    /// (`idle` for a device with no tenants).
    pub config_source: String,
    /// The device's interference cost (0 for an idle device).
    pub cost: f64,
    /// Name of the merged trace the device replays (empty when idle).
    pub merged_trace: String,
    /// End-of-run bottleneck attribution of the co-located replay.
    pub bottleneck: BottleneckReport,
}

/// Outcome of one placement run (`autoblox.place.v1`).
///
/// Deliberately excludes wall-clock times and thread counts: the report is
/// a pure function of (tenants, options, stored configs), which is what
/// lets the CI gate `cmp` reports from different thread counts
/// byte-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementReport {
    /// Schema tag ([`PLACE_SCHEMA`]).
    pub schema: String,
    /// Device budget M.
    pub devices: u64,
    /// Formula-1 blend used by the interference score.
    pub alpha: f64,
    /// Total cost of the greedy seed assignment.
    pub greedy_cost: f64,
    /// Total cost after local search (never exceeds `greedy_cost`).
    pub final_cost: f64,
    /// Local-search rounds executed (including the final round that found
    /// no improvement).
    pub search_rounds: u64,
    /// Accepted local-search improvements.
    pub moves_applied: u64,
    /// The validator's cumulative simulator-run counter after the search —
    /// exact and thread-count-independent.
    pub simulator_runs: u64,
    /// Per-tenant rows, in tenant-index order.
    pub tenants: Vec<TenantReport>,
    /// Per-device rows, in device order.
    pub device_reports: Vec<DeviceReport>,
}

/// Fractional degradation of a co-located mean latency versus the solo
/// mean, clamped finite and non-negative. Idle lanes (zero or non-finite
/// inputs) degrade by 0.
pub fn degradation_frac(co_latency_ns: f64, solo_latency_ns: f64) -> f64 {
    if !co_latency_ns.is_finite() || co_latency_ns <= 0.0 {
        return 0.0;
    }
    if !solo_latency_ns.is_finite() || solo_latency_ns <= 0.0 {
        return 0.0;
    }
    let frac = co_latency_ns / solo_latency_ns - 1.0;
    if frac.is_finite() {
        frac.max(0.0)
    } else {
        0.0
    }
}

/// A tenant's resolved candidate configuration and its provenance.
#[derive(Debug, Clone)]
struct TenantConfig {
    cfg_idx: usize,
    source: String,
    workload: Option<String>,
    cluster: Option<u64>,
}

/// Classification + config resolution for every tenant.
struct Resolution {
    /// Deduplicated candidate configurations (device compromise choices).
    cfgs: Vec<SsdConfig>,
    /// Per-candidate provenance strings, parallel to `cfgs`.
    sources: Vec<String>,
    /// Per-tenant resolution, parallel to the tenant slice.
    tenants: Vec<TenantConfig>,
}

fn best_stored(db: &Store, key: &str, family: DeviceFamily) -> Option<StoredConfig> {
    let stored: Vec<StoredConfig> = db.get_record(key).ok().flatten()?;
    stored
        .into_iter()
        .filter(|s| s.config.device_family.is_hybrid() == family.is_hybrid())
        .max_by(|a, b| a.grade.total_cmp(&b.grade))
}

/// Looks up a tenant's learned configuration in AutoDB: the category record
/// of the cluster's owner first, then the raw cluster record. Recall is
/// family-local — only records of the fleet's device-family kind are
/// considered, so a hybrid-tuned configuration is never recalled onto a
/// homogeneous fleet (or vice versa).
fn lookup_config(
    db: Option<&Store>,
    owner: Option<&str>,
    cluster: Option<u64>,
    family: DeviceFamily,
) -> Option<(SsdConfig, String)> {
    let db = db?;
    if let Some(owner) = owner {
        let key = format!("category:{owner}");
        if let Some(best) = best_stored(db, &key, family) {
            return Some((best.config, format!("db:{key}")));
        }
    }
    if let Some(cluster) = cluster {
        let key = format!("cluster:{cluster}");
        if let Some(best) = best_stored(db, &key, family) {
            return Some((best.config, format!("db:{key}")));
        }
    }
    None
}

/// Classifies every tenant and resolves its candidate configuration,
/// deduplicating identical configurations into one candidate index.
fn resolve_configs(
    tenants: &[Arc<Trace>],
    fallback: &SsdConfig,
    db: Option<&Store>,
    opts: &PlacementOptions,
) -> Result<Resolution, String> {
    let model = if opts.classify {
        let window = WindowOptions {
            window_len: opts.window_len,
        };
        let train: Vec<Trace> = WorkloadKind::STUDIED
            .iter()
            .map(|k| k.spec().generate(opts.train_events, opts.train_seed))
            .collect();
        let model = WorkloadClusterer::fit(&train, WorkloadKind::STUDIED.len(), window, 7)
            .map_err(|e| format!("clustering failed: {e}"))?;
        let mut owners = vec![String::from("?"); model.k()];
        for (kind, t) in WorkloadKind::STUDIED.iter().zip(&train) {
            if let Ok(ClusterDecision::Existing { cluster, .. }) = model.classify(t) {
                owners[cluster] = kind.name().to_string();
            }
        }
        Some((model, owners))
    } else {
        None
    };

    let mut cfgs: Vec<SsdConfig> = Vec::new();
    let mut sources: Vec<String> = Vec::new();
    let mut dedup: HashMap<String, usize> = HashMap::new();
    let mut out = Vec::with_capacity(tenants.len());
    for trace in tenants {
        let (workload, cluster) = match &model {
            Some((model, owners)) => match model.classify(trace) {
                Ok(ClusterDecision::Existing { cluster, .. }) => {
                    (Some(owners[cluster].clone()), Some(cluster as u64))
                }
                // A new workload has no learned config to fetch; a trace
                // too short to window cannot be classified at all.
                Ok(ClusterDecision::New { .. }) | Err(_) => (None, None),
            },
            None => (None, None),
        };
        let (cfg, source) = lookup_config(db, workload.as_deref(), cluster, fallback.device_family)
            .unwrap_or_else(|| (fallback.clone(), String::from("preset")));
        let fingerprint = serde_json::to_string(&cfg).map_err(|e| e.to_string())?;
        let cfg_idx = *dedup.entry(fingerprint).or_insert_with(|| {
            cfgs.push(cfg);
            sources.push(source.clone());
            cfgs.len() - 1
        });
        out.push(TenantConfig {
            cfg_idx,
            source,
            workload,
            cluster,
        });
    }
    Ok(Resolution {
        cfgs,
        sources,
        tenants: out,
    })
}

/// A merged device trace plus its per-tenant lane start offsets.
struct MergedDevice {
    trace: Arc<Trace>,
    lane_starts: Vec<u64>,
}

/// The assignment-search engine: owns the per-subset merged-trace cache and
/// scores candidate devices through the shared validator.
struct Placer<'a> {
    validator: &'a Validator,
    tenants: &'a [Arc<Trace>],
    cfgs: &'a [SsdConfig],
    tenant_cfg: Vec<usize>,
    /// Per-tenant solo measurement under the tenant's own configuration.
    entitled: Vec<Measurement>,
    alpha: f64,
    merged: Mutex<HashMap<Vec<usize>, Arc<MergedDevice>>>,
}

/// One local-search proposal, enumerated in a fixed deterministic order.
#[derive(Debug, Clone, Copy)]
enum Proposal {
    /// Move tenant `t` from its device to device `to`.
    Move { t: usize, to: usize },
    /// Swap the devices of tenants `a` and `b`.
    Swap { a: usize, b: usize },
}

/// The searched assignment: per-tenant device plus per-device bookkeeping.
struct Assignment {
    /// Tenant index → device index.
    device_of: Vec<usize>,
    /// Device index → sorted tenant indices.
    members: Vec<Vec<usize>>,
    /// Device index → interference cost.
    cost: Vec<f64>,
    /// Device index → chosen candidate configuration (usize::MAX = idle).
    cfg_of: Vec<usize>,
    greedy_cost: f64,
    final_cost: f64,
    search_rounds: u64,
    moves_applied: u64,
}

impl<'a> Placer<'a> {
    fn new(
        validator: &'a Validator,
        tenants: &'a [Arc<Trace>],
        cfgs: &'a [SsdConfig],
        tenant_cfg: Vec<usize>,
        alpha: f64,
    ) -> Self {
        // Entitled baseline: each tenant solo under its own configuration.
        // Evaluated through the validator so the measurements (and their
        // simulator runs) are shared with singleton-device scoring.
        let entitled = parallel_map((0..tenants.len()).collect(), |i| {
            validator.evaluate_trace(&cfgs[tenant_cfg[i]], &tenants[i])
        });
        Placer {
            validator,
            tenants,
            cfgs,
            tenant_cfg,
            entitled,
            alpha,
            merged: Mutex::new(HashMap::new()),
        }
    }

    /// The merged trace for a sorted tenant subset, built on first use. A
    /// singleton subset reuses the tenant's own trace (and therefore the
    /// validator's cached solo measurement).
    fn merged_for(&self, subset: &[usize]) -> Arc<MergedDevice> {
        if let Some(hit) = self.merged.lock().get(subset) {
            return Arc::clone(hit);
        }
        let built = if subset.len() == 1 {
            Arc::new(MergedDevice {
                trace: Arc::clone(&self.tenants[subset[0]]),
                lane_starts: vec![0],
            })
        } else {
            let parts: Vec<&Trace> = subset.iter().map(|&i| &*self.tenants[i]).collect();
            let label: Vec<String> = subset.iter().map(|i| i.to_string()).collect();
            let name = format!("mix[{}]", label.join("+"));
            let (trace, lane_starts) = merge_partitioned(name, &parts);
            Arc::new(MergedDevice {
                trace: Arc::new(trace),
                lane_starts,
            })
        };
        let mut cache = self.merged.lock();
        Arc::clone(cache.entry(subset.to_vec()).or_insert(built))
    }

    /// The entitled blend a subset is compared against: request-weighted
    /// mean latency and *summed* throughput (aggregate demand).
    fn entitled_blend(&self, subset: &[usize]) -> Measurement {
        let mut requests = 0.0;
        let mut lat = 0.0;
        let mut tp = 0.0;
        for &i in subset {
            let n = self.tenants[i].len() as f64;
            requests += n;
            lat += n * self.entitled[i].latency_ns;
            tp += self.entitled[i].throughput_bps;
        }
        Measurement {
            latency_ns: (lat / requests.max(1.0)).max(1.0),
            throughput_bps: tp.max(1.0),
            power_w: 0.0,
            energy_mj: 0.0,
        }
    }

    /// Scores a sorted tenant subset: the best (lowest) interference cost
    /// over the subset's candidate compromise configurations, and the
    /// chosen candidate. An empty subset costs 0.
    fn subset_cost(&self, subset: &[usize]) -> (f64, usize) {
        if subset.is_empty() {
            return (0.0, usize::MAX);
        }
        let blend = self.entitled_blend(subset);
        let merged = self.merged_for(subset);
        // Candidate compromise configs: the distinct configurations of the
        // subset's members, in member order (deterministic tie-break).
        let mut candidates: Vec<usize> = Vec::new();
        for &i in subset {
            let c = self.tenant_cfg[i];
            if !candidates.contains(&c) {
                candidates.push(c);
            }
        }
        let mut best = (f64::INFINITY, usize::MAX);
        for &c in &candidates {
            let m = self.validator.evaluate_trace(&self.cfgs[c], &merged.trace);
            let cost = -performance(&m, &blend, self.alpha);
            if cost < best.0 {
                best = (cost, c);
            }
        }
        best
    }

    /// Greedy seeding followed by bounded local search. Deterministic: all
    /// parallel fan-outs preserve input order and every tie breaks on the
    /// lowest index.
    fn search(&self, devices: usize, max_rounds: usize) -> Assignment {
        let n = self.tenants.len();
        // Seed order: heaviest tenants first (footprint = total bytes),
        // ties on tenant index.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(self.tenants[i].total_bytes()), i));

        let mut members: Vec<Vec<usize>> = vec![Vec::new(); devices];
        let mut cost = vec![0.0f64; devices];
        let mut cfg_of = vec![usize::MAX; devices];
        for &t in &order {
            let scored = parallel_map((0..devices).collect(), |d| {
                let mut s = members[d].clone();
                s.push(t);
                s.sort_unstable();
                self.subset_cost(&s)
            });
            let mut best_d = 0;
            let mut best_delta = f64::INFINITY;
            for (d, &(c, _)) in scored.iter().enumerate() {
                let delta = c - cost[d];
                if delta < best_delta {
                    best_delta = delta;
                    best_d = d;
                }
            }
            members[best_d].push(t);
            members[best_d].sort_unstable();
            cost[best_d] = scored[best_d].0;
            cfg_of[best_d] = scored[best_d].1;
        }
        let greedy_cost: f64 = cost.iter().sum();

        let mut device_of = vec![0usize; n];
        for (d, m) in members.iter().enumerate() {
            for &t in m {
                device_of[t] = d;
            }
        }

        // Local search: single-tenant moves and pairwise swaps, best strict
        // improvement per round, until a round finds nothing or the bound
        // is hit.
        let mut total = greedy_cost;
        let mut search_rounds = 0u64;
        let mut moves_applied = 0u64;
        while (search_rounds as usize) < max_rounds {
            search_rounds += 1;
            let mut proposals: Vec<Proposal> = Vec::new();
            for (t, &cur) in device_of.iter().enumerate() {
                for to in (0..devices).filter(|&to| to != cur) {
                    proposals.push(Proposal::Move { t, to });
                }
            }
            for a in 0..n {
                for b in (a + 1)..n {
                    if device_of[a] != device_of[b] {
                        proposals.push(Proposal::Swap { a, b });
                    }
                }
            }
            if proposals.is_empty() {
                break;
            }
            let totals = parallel_map(proposals.clone(), |p| {
                let (x, y) = match p {
                    Proposal::Move { t, to } => (device_of[t], to),
                    Proposal::Swap { a, b } => (device_of[a], device_of[b]),
                };
                let (sx, sy) = apply(&members[x], &members[y], p);
                total - cost[x] - cost[y] + self.subset_cost(&sx).0 + self.subset_cost(&sy).0
            });
            let mut best = (f64::INFINITY, usize::MAX);
            for (i, &t) in totals.iter().enumerate() {
                if t < best.0 {
                    best = (t, i);
                }
            }
            if best.0 >= total {
                break;
            }
            let p = proposals[best.1];
            let (x, y) = match p {
                Proposal::Move { t, to } => (device_of[t], to),
                Proposal::Swap { a, b } => (device_of[a], device_of[b]),
            };
            let (sx, sy) = apply(&members[x], &members[y], p);
            let (cx, kx) = self.subset_cost(&sx);
            let (cy, ky) = self.subset_cost(&sy);
            members[x] = sx;
            members[y] = sy;
            cost[x] = cx;
            cost[y] = cy;
            cfg_of[x] = kx;
            cfg_of[y] = ky;
            for (d, m) in [(x, &members[x]), (y, &members[y])] {
                for &t in m.iter() {
                    device_of[t] = d;
                }
            }
            total = best.0;
            moves_applied += 1;
        }

        Assignment {
            device_of,
            members,
            cost,
            cfg_of,
            greedy_cost,
            final_cost: total,
            search_rounds,
            moves_applied,
        }
    }
}

/// The member sets of the two affected devices after applying `p`: `mx` is
/// the device of the moved tenant (or of `a` for a swap), `my` the target
/// device (or the device of `b`). Both come back sorted.
fn apply(mx: &[usize], my: &[usize], p: Proposal) -> (Vec<usize>, Vec<usize>) {
    let mut sx = mx.to_vec();
    let mut sy = my.to_vec();
    match p {
        Proposal::Move { t, .. } => {
            sx.retain(|&i| i != t);
            sy.push(t);
        }
        Proposal::Swap { a, b } => {
            sx.retain(|&i| i != a);
            sx.push(b);
            sy.retain(|&i| i != b);
            sy.push(a);
        }
    }
    sx.sort_unstable();
    sy.sort_unstable();
    (sx, sy)
}

/// Runs the full placement pipeline and builds the report.
///
/// `tenants` must carry unique names (downstream caches key traces by
/// name); `fallback` is the configuration used for tenants without a
/// learned config in `db`. The validator is shared — repeated placements
/// of the same mix hit its cache and add zero simulator runs.
///
/// # Errors
///
/// Returns an error when `opts.devices` is 0, `tenants` is empty, tenant
/// names collide, or the clustering front end fails to train.
pub fn place(
    tenants: &[Arc<Trace>],
    fallback: &SsdConfig,
    db: Option<&Store>,
    validator: &Validator,
    opts: &PlacementOptions,
) -> Result<PlacementReport, String> {
    if opts.devices == 0 {
        return Err(String::from("device budget must be at least 1"));
    }
    if tenants.is_empty() {
        return Err(String::from("placement needs at least one tenant"));
    }
    {
        let mut names: Vec<&str> = tenants.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != tenants.len() {
            return Err(String::from("tenant names must be unique"));
        }
    }
    let sink = crate::telemetry::global();

    let resolution = sink.phase("place.classify", || {
        resolve_configs(tenants, fallback, db, opts)
    })?;
    let tenant_cfg: Vec<usize> = resolution.tenants.iter().map(|t| t.cfg_idx).collect();
    let placer = Placer::new(validator, tenants, &resolution.cfgs, tenant_cfg, opts.alpha);
    let assignment = sink.phase("place.search", || {
        placer.search(opts.devices, opts.max_rounds)
    });

    // Attribution: replay each occupied device once with lane accounting
    // armed. Sequential over devices — the replay itself is the work, and a
    // fixed order keeps journal output stable.
    let attributed = sink.phase("place.attribute", || {
        let mut device_reports = Vec::with_capacity(opts.devices);
        let mut co_latency = vec![0.0f64; tenants.len()];
        for (d, subset) in assignment.members.iter().enumerate() {
            if subset.is_empty() {
                device_reports.push(DeviceReport {
                    device: d as u64,
                    tenants: Vec::new(),
                    config_source: String::from("idle"),
                    cost: 0.0,
                    merged_trace: String::new(),
                    bottleneck: BottleneckReport::default(),
                });
                continue;
            }
            let merged = placer.merged_for(subset);
            let cfg = &resolution.cfgs[assignment.cfg_of[d]];
            let mut sim = Simulator::new(cfg.clone());
            sim.warm_up(validator.options().warm_fill);
            sim.set_lanes(&merged.lane_starts);
            let report = sim.run(&merged.trace);
            let lanes = sim.take_lanes().expect("lanes were armed");
            for (lane, &t) in lanes.reports().iter().zip(subset.iter()) {
                co_latency[t] = lane.mean_latency_ns;
            }
            let source = resolution.sources[assignment.cfg_of[d]].clone();
            sink.record_device(merged.trace.name(), "placement", &report);
            sink.record_placement(
                d as u64,
                &subset
                    .iter()
                    .map(|&t| tenants[t].name().to_string())
                    .collect::<Vec<_>>(),
                assignment.cost[d],
                &source,
            );
            device_reports.push(DeviceReport {
                device: d as u64,
                tenants: subset
                    .iter()
                    .map(|&t| tenants[t].name().to_string())
                    .collect(),
                config_source: source,
                cost: assignment.cost[d],
                merged_trace: merged.trace.name().to_string(),
                bottleneck: report.bottleneck,
            });
        }
        (device_reports, co_latency)
    });
    let (device_reports, co_latency) = attributed;

    let tenant_reports: Vec<TenantReport> = tenants
        .iter()
        .enumerate()
        .map(|(i, trace)| {
            let resolved = &resolution.tenants[i];
            let solo = placer.entitled[i].latency_ns;
            TenantReport {
                name: trace.name().to_string(),
                workload: resolved.workload.clone(),
                cluster: resolved.cluster,
                config_source: resolved.source.clone(),
                device: assignment.device_of[i] as u64,
                requests: trace.len() as u64,
                bytes: trace.total_bytes(),
                solo_latency_ns: solo,
                co_latency_ns: co_latency[i],
                degradation_frac: degradation_frac(co_latency[i], solo),
            }
        })
        .collect();

    Ok(PlacementReport {
        schema: String::from(PLACE_SCHEMA),
        devices: opts.devices as u64,
        alpha: opts.alpha,
        greedy_cost: assignment.greedy_cost,
        final_cost: assignment.final_cost,
        search_rounds: assignment.search_rounds,
        moves_applied: assignment.moves_applied,
        simulator_runs: validator.simulator_runs(),
        tenants: tenant_reports,
        device_reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_is_clamped() {
        assert_eq!(degradation_frac(0.0, 100.0), 0.0);
        assert_eq!(degradation_frac(100.0, 0.0), 0.0);
        assert_eq!(degradation_frac(f64::NAN, 100.0), 0.0);
        assert_eq!(degradation_frac(100.0, f64::INFINITY), 0.0);
        assert_eq!(degradation_frac(50.0, 100.0), 0.0, "speedup clamps to 0");
        assert!((degradation_frac(150.0, 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        use crate::validator::{Validator, ValidatorOptions};
        let v = Validator::new(ValidatorOptions {
            trace_events: 100,
            ..Default::default()
        });
        let cfg = ssdsim::config::presets::intel_750();
        let t = Arc::new(WorkloadKind::Database.spec().generate(50, 1));
        let opts = PlacementOptions {
            devices: 0,
            classify: false,
            ..Default::default()
        };
        assert!(place(&[Arc::clone(&t)], &cfg, None, &v, &opts).is_err());
        let opts = PlacementOptions {
            devices: 1,
            classify: false,
            ..Default::default()
        };
        assert!(place(&[], &cfg, None, &v, &opts).is_err());
        // Duplicate tenant names are rejected.
        assert!(place(&[Arc::clone(&t), t], &cfg, None, &v, &opts).is_err());
    }

    /// Recall is family-local: a higher-graded hybrid record must never be
    /// recalled onto a homogeneous fleet, and vice versa; with no record of
    /// the matching kind the lookup falls through entirely.
    #[test]
    fn recall_never_crosses_device_families() {
        let db = Store::in_memory();
        let homogeneous = StoredConfig {
            workload: "Database".to_string(),
            config: ssdsim::config::presets::intel_750(),
            grade: 0.1,
        };
        let hybrid = StoredConfig {
            workload: "Database".to_string(),
            config: ssdsim::config::presets::hybrid_slc_qlc(),
            grade: 0.9,
        };
        db.put_record("category:Database", &vec![homogeneous, hybrid])
            .expect("records stored");

        let homo_fleet = DeviceFamily::Homogeneous;
        let hybrid_fleet = ssdsim::config::presets::hybrid_slc_qlc().device_family;
        let (cfg, source) =
            lookup_config(Some(&db), Some("Database"), None, homo_fleet).expect("recalls");
        assert!(!cfg.device_family.is_hybrid(), "0.9-graded hybrid skipped");
        assert_eq!(source, "db:category:Database");
        let (cfg, _) =
            lookup_config(Some(&db), Some("Database"), None, hybrid_fleet).expect("recalls");
        assert!(cfg.device_family.is_hybrid());

        // A store holding only the other kind yields nothing at all.
        let db = Store::in_memory();
        db.put_record(
            "category:Database",
            &vec![StoredConfig {
                workload: "Database".to_string(),
                config: ssdsim::config::presets::hybrid_slc_qlc(),
                grade: 0.9,
            }],
        )
        .expect("record stored");
        assert!(lookup_config(Some(&db), Some("Database"), None, homo_fleet).is_none());
    }
}
