//! What-if analysis (§4.5): given a performance target (e.g. "3x lower
//! latency than the Intel 750"), search an expanded design space for a
//! configuration that meets it. The reported configurations serve as
//! reference points for next-generation SSD designs.

use crate::constraints::Constraints;
use crate::tuner::{Tuner, TunerOptions, TuningOutcome};
use crate::validator::Validator;
use iotrace::gen::WorkloadKind;
use serde::{Deserialize, Serialize};
use ssdsim::config::SsdConfig;

/// The performance goal of a what-if analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WhatIfGoal {
    /// Reduce mean latency by this factor versus the reference.
    LatencyReduction(f64),
    /// Improve throughput by this factor versus the reference.
    ThroughputImprovement(f64),
}

impl WhatIfGoal {
    /// The α coefficient that slants Formula 1 toward the goal: latency
    /// goals weigh latency heavily (α → 0), throughput goals the reverse.
    pub fn alpha(&self) -> f64 {
        match self {
            WhatIfGoal::LatencyReduction(_) => 0.1,
            WhatIfGoal::ThroughputImprovement(_) => 0.9,
        }
    }

    /// The goal factor.
    pub fn factor(&self) -> f64 {
        match self {
            WhatIfGoal::LatencyReduction(f) | WhatIfGoal::ThroughputImprovement(f) => *f,
        }
    }
}

/// Result of a what-if analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhatIfOutcome {
    /// The target workload.
    pub workload: String,
    /// The goal that was requested.
    pub goal: WhatIfGoal,
    /// The achieved factor (latency reduction or throughput improvement).
    pub achieved: f64,
    /// Whether the goal was met.
    pub met: bool,
    /// The underlying tuning result (best configuration, history, ...).
    pub tuning: TuningOutcome,
}

/// Options for the what-if search.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfOptions {
    /// Base tuner options (α is overridden by the goal; β is zeroed — the
    /// what-if analysis maximizes the target workload alone).
    pub tuner: TunerOptions,
}

impl Default for WhatIfOptions {
    fn default() -> Self {
        WhatIfOptions {
            tuner: TunerOptions {
                // The paper's what-if runs explore an aggressive space and
                // converge within ~121 iterations; the exploration bound is
                // relaxed accordingly.
                max_iterations: 60,
                manhattan_limit: 8,
                non_target: Vec::new(),
                ..TunerOptions::default()
            },
        }
    }
}

/// Runs a what-if analysis for `workload` against `reference`.
///
/// The search reuses the automated tuner with the goal-slanted α and no
/// non-target penalty, mirroring §4.5 ("set more aggressive bounds ... to
/// explore a larger design space").
pub fn what_if(
    workload: WorkloadKind,
    goal: WhatIfGoal,
    constraints: Constraints,
    reference: &SsdConfig,
    validator: &Validator,
    opts: WhatIfOptions,
) -> WhatIfOutcome {
    // §4.5 explores bounds that "may not be realistic today": flash timing
    // becomes tunable and the manufacturable-die floor is relaxed to a
    // quarter of its production value.
    let constraints = Constraints {
        min_die_capacity_bytes: constraints.min_die_capacity_bytes / 4,
        ..constraints
    };
    let tuner_opts = TunerOptions {
        alpha: goal.alpha(),
        beta: 0.0,
        explore_flash_timing: true,
        // A goal-driven search uses its whole iteration budget instead of
        // stopping at the first ±1% plateau: the paper's what-if runs take
        // ~121 iterations, well past normal convergence.
        convergence_epsilon: 0.0,
        convergence_window: usize::MAX,
        ..opts.tuner
    };
    let tuner = Tuner::new(constraints, validator, tuner_opts);
    let tuning = tuner.tune(workload, reference, &[], None);
    let achieved = match goal {
        WhatIfGoal::LatencyReduction(_) => {
            tuning.reference.latency_ns / tuning.best.measurement.latency_ns
        }
        WhatIfGoal::ThroughputImprovement(_) => {
            tuning.best.measurement.throughput_bps / tuning.reference.throughput_bps
        }
    };
    WhatIfOutcome {
        workload: workload.name().to_string(),
        goal,
        achieved,
        met: achieved >= goal.factor(),
        tuning,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::ValidatorOptions;
    use ssdsim::config::presets;

    #[test]
    fn goal_alpha_slants_correctly() {
        assert!(WhatIfGoal::LatencyReduction(3.0).alpha() < 0.5);
        assert!(WhatIfGoal::ThroughputImprovement(3.0).alpha() > 0.5);
        assert_eq!(WhatIfGoal::LatencyReduction(3.0).factor(), 3.0);
    }

    #[test]
    fn what_if_improves_over_reference() {
        let v = Validator::new(ValidatorOptions {
            trace_events: 300,
            ..Default::default()
        });
        let opts = WhatIfOptions {
            tuner: TunerOptions {
                max_iterations: 5,
                sgd_iterations: 3,
                ..TunerOptions::default()
            },
        };
        let out = what_if(
            WorkloadKind::Database,
            WhatIfGoal::LatencyReduction(1.05),
            Constraints::paper_default(),
            &presets::intel_750(),
            &v,
            opts,
        );
        // The achieved factor is at worst 1.0 (the reference itself).
        assert!(out.achieved >= 0.99, "achieved {}", out.achieved);
        assert_eq!(out.met, out.achieved >= 1.05);
        assert_eq!(out.workload, "Database");
    }
}
