//! `autoblox inspect`: the model observatory over telemetry reports.
//!
//! Where `explain` answers "where did this run's simulated time go?", this
//! module answers "what did the surrogate believe, and should we trust it?"
//! Three views over the per-iteration model fields the tuner records:
//!
//! - **calibration** — z-scores of realized grades under the surrogate's
//!   predictive distribution, ±1σ/±2σ coverage, RMSE, and mean NLPD;
//! - **parameter importance** — the per-iteration sensitivity sweeps around
//!   the incumbent, averaged and renormalized into one vector per run;
//! - **decision provenance** — the explore/exploit decomposition of each
//!   chosen candidate's acquisition value and its margin over the runner-up.
//!
//! Everything here is a pure function of the parsed [`RunReport`]: no
//! clocks, no environment, so `inspect` output is bit-identical whenever
//! its inputs are — the determinism suite asserts this across thread
//! counts and speculation depths.

use crate::telemetry::RunReport;
use crate::tuner::IterationRecord;
use mlkit::gpr::Prediction;
use serde::{Deserialize, Serialize};

/// Schema identifier of the `inspect --json` document.
pub const MODEL_SCHEMA: &str = "autoblox.model.v1";

/// Schema identifier of the `inspect diff --json` document.
pub const MODEL_DIFF_SCHEMA: &str = "autoblox.model-diff.v1";

/// Rolling calibration summary of a surrogate's predictions against the
/// grades validation later realized.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CalibrationSummary {
    /// Calibrated iterations: a surrogate prediction existed for the chosen
    /// candidate and validation realized a grade for it.
    pub points: u64,
    /// Fraction of calibrated iterations with `|z| <= 1` (a well-calibrated
    /// Gaussian predicts ~0.68).
    pub coverage_1s: f64,
    /// Fraction with `|z| <= 2` (~0.95 when well-calibrated).
    pub coverage_2s: f64,
    /// Root-mean-square error of the predicted means.
    pub rmse: f64,
    /// Mean negative log predictive density (lower is better).
    pub mean_nlpd: f64,
    /// Mean absolute z-score.
    pub mean_abs_z: f64,
}

/// One iteration's decision provenance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DecisionPoint {
    /// 1-based outer-iteration index.
    pub iteration: u64,
    /// Exploration share of the chosen UCB (`σ / (|μ| + σ)` at β = 1).
    pub explore_share: f64,
    /// Exploitation share (`|μ| / (|μ| + σ)`).
    pub exploit_share: f64,
    /// Chosen UCB minus the runner-up's UCB (0 without a runner-up).
    pub decision_margin: f64,
    /// Predicted grade mean for the chosen candidate.
    pub predicted_mean: f64,
    /// Predicted grade standard deviation.
    pub predicted_std: f64,
    /// Grade validation realized (meaningful only when `calibrated`).
    pub realized_grade: f64,
    /// Whether this iteration produced a prediction/realization pair.
    pub calibrated: bool,
    /// Standardized residual of the realized grade (0 when uncalibrated).
    pub z: f64,
}

/// One parameter's averaged, normalized importance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParamImportance {
    /// Parameter name (catalog name, or `p<i>` for a pruned space whose
    /// layout the report does not carry).
    pub name: String,
    /// Normalized importance in `[0, 1]`; all entries sum to 1.
    pub importance: f64,
}

/// The model fingerprint of one recorded tuning run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelRun {
    /// Target workload name.
    pub workload: String,
    /// Iterations the run executed.
    pub iterations: u64,
    /// Calibration over this run's iterations.
    pub calibration: CalibrationSummary,
    /// Averaged normalized importances, sorted descending (ties by name).
    pub importance: Vec<ParamImportance>,
    /// Per-iteration decision provenance, in iteration order.
    pub timeline: Vec<DecisionPoint>,
    /// Mean exploration share over iterations with a prediction.
    pub mean_explore_share: f64,
    /// Kernel lengthscale of the last fitted GPR (0 when none fitted or the
    /// surrogate was not a GPR).
    pub kernel_length_scale: f64,
}

/// The `inspect` document: per-run model fingerprints plus aggregates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelReport {
    /// Always [`MODEL_SCHEMA`].
    pub schema: String,
    /// Schema of the telemetry report inspected.
    pub source_schema: String,
    /// One fingerprint per recorded tuning run.
    pub runs: Vec<ModelRun>,
    /// Calibration pooled over every run's iterations.
    pub calibration: CalibrationSummary,
    /// Importances averaged over every run, sorted descending.
    pub importance: Vec<ParamImportance>,
    /// Mean exploration share pooled over every run.
    pub mean_explore_share: f64,
}

/// The predictive distribution an iteration record describes.
fn prediction_of(r: &IterationRecord) -> Prediction {
    Prediction {
        mean: r.predicted_mean,
        variance: r.predicted_std * r.predicted_std,
    }
}

/// Pools a calibration summary over iteration records (only `calibrated`
/// ones contribute).
pub fn calibration_of(records: &[IterationRecord]) -> CalibrationSummary {
    let mut n = 0u64;
    let mut within_1 = 0u64;
    let mut within_2 = 0u64;
    let mut se_sum = 0.0;
    let mut nlpd_sum = 0.0;
    let mut abs_z_sum = 0.0;
    for r in records.iter().filter(|r| r.calibrated) {
        let p = prediction_of(r);
        let z = p.z_score(r.realized_grade);
        n += 1;
        if z.abs() <= 1.0 {
            within_1 += 1;
        }
        if z.abs() <= 2.0 {
            within_2 += 1;
        }
        let resid = r.realized_grade - r.predicted_mean;
        se_sum += resid * resid;
        nlpd_sum += p.nlpd(r.realized_grade);
        abs_z_sum += z.abs();
    }
    if n == 0 {
        return CalibrationSummary::default();
    }
    let nf = n as f64;
    CalibrationSummary {
        points: n,
        coverage_1s: within_1 as f64 / nf,
        coverage_2s: within_2 as f64 / nf,
        rmse: (se_sum / nf).sqrt(),
        mean_nlpd: nlpd_sum / nf,
        mean_abs_z: abs_z_sum / nf,
    }
}

/// ±1σ coverage plus the number of calibrated points — the pair the run
/// observatory persists per run for the trend gate.
pub fn coverage_1s(records: &[IterationRecord]) -> (f64, u64) {
    let c = calibration_of(records);
    (c.coverage_1s, c.points)
}

/// Maps an importance-vector length onto parameter labels: the full catalog
/// names when the length matches, positional `p<i>` labels otherwise (a
/// pruned space whose layout the telemetry report does not carry).
fn param_labels(len: usize) -> Vec<String> {
    let space = crate::params::ParamSpace::new();
    if space.len() == len {
        space.params().iter().map(|p| p.name.to_string()).collect()
    } else {
        (0..len).map(|i| format!("p{i:02}")).collect()
    }
}

/// Averages the non-empty per-iteration importance vectors and renormalizes
/// to sum 1; empty when no iteration recorded one.
pub fn averaged_importance(records: &[IterationRecord]) -> Vec<ParamImportance> {
    let vectors: Vec<&Vec<f64>> = records
        .iter()
        .map(|r| &r.importance)
        .filter(|v| !v.is_empty())
        .collect();
    let Some(first) = vectors.first() else {
        return Vec::new();
    };
    let len = first.len();
    let mut acc = vec![0.0f64; len];
    let mut count = 0usize;
    for v in &vectors {
        if v.len() != len {
            continue;
        }
        for (a, &x) in acc.iter_mut().zip(v.iter()) {
            *a += x;
        }
        count += 1;
    }
    let total: f64 = acc.iter().sum();
    if count == 0 || total <= 1e-12 {
        return Vec::new();
    }
    for a in &mut acc {
        *a /= total;
    }
    let labels = param_labels(len);
    let mut out: Vec<ParamImportance> = labels
        .into_iter()
        .zip(acc)
        .map(|(name, importance)| ParamImportance { name, importance })
        .collect();
    out.sort_by(|a, b| {
        b.importance
            .total_cmp(&a.importance)
            .then_with(|| a.name.cmp(&b.name))
    });
    out
}

fn timeline_of(records: &[IterationRecord]) -> Vec<DecisionPoint> {
    records
        .iter()
        .map(|r| {
            let z = if r.calibrated {
                prediction_of(r).z_score(r.realized_grade)
            } else {
                0.0
            };
            DecisionPoint {
                iteration: r.iteration,
                explore_share: r.explore_share,
                exploit_share: r.exploit_share,
                decision_margin: r.decision_margin,
                predicted_mean: r.predicted_mean,
                predicted_std: r.predicted_std,
                realized_grade: r.realized_grade,
                calibrated: r.calibrated,
                z,
            }
        })
        .collect()
}

fn mean_explore_share(records: &[IterationRecord]) -> f64 {
    let shares: Vec<f64> = records
        .iter()
        .filter(|r| r.explore_share + r.exploit_share > 0.0)
        .map(|r| r.explore_share)
        .collect();
    if shares.is_empty() {
        0.0
    } else {
        shares.iter().sum::<f64>() / shares.len() as f64
    }
}

/// Extracts the model fingerprint of a parsed telemetry report.
pub fn inspect(report: &RunReport) -> ModelReport {
    let runs: Vec<ModelRun> = report
        .tuner
        .iter()
        .map(|t| {
            let kernel_length_scale = t
                .records
                .iter()
                .rev()
                .map(|r| r.kernel_length_scale)
                .find(|&l| l > 0.0)
                .unwrap_or(0.0);
            ModelRun {
                workload: t.workload.clone(),
                iterations: t.iterations,
                calibration: calibration_of(&t.records),
                importance: averaged_importance(&t.records),
                timeline: timeline_of(&t.records),
                mean_explore_share: mean_explore_share(&t.records),
                kernel_length_scale,
            }
        })
        .collect();
    let pooled: Vec<IterationRecord> = report
        .tuner
        .iter()
        .flat_map(|t| t.records.iter().cloned())
        .collect();
    ModelReport {
        schema: MODEL_SCHEMA.to_string(),
        source_schema: report.schema.clone(),
        calibration: calibration_of(&pooled),
        importance: averaged_importance(&pooled),
        mean_explore_share: mean_explore_share(&pooled),
        runs,
    }
}

/// Width of the ASCII bars in [`render_model`].
const BAR_WIDTH: usize = 40;

fn bar(frac: f64) -> String {
    let filled = ((frac.clamp(0.0, 1.0) * BAR_WIDTH as f64).round() as usize).min(BAR_WIDTH);
    let mut s = String::with_capacity(BAR_WIDTH);
    for i in 0..BAR_WIDTH {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

fn render_calibration(out: &mut String, c: &CalibrationSummary, indent: &str) {
    if c.points == 0 {
        out.push_str(&format!("{indent}calibration: no calibrated iterations\n"));
        return;
    }
    out.push_str(&format!(
        "{indent}calibration over {} iterations (ideal Gaussian: 68% / 95%)\n",
        c.points
    ));
    out.push_str(&format!(
        "{indent}  within 1σ   {} {:5.1}%\n",
        bar(c.coverage_1s),
        c.coverage_1s * 100.0
    ));
    out.push_str(&format!(
        "{indent}  within 2σ   {} {:5.1}%\n",
        bar(c.coverage_2s),
        c.coverage_2s * 100.0
    ));
    out.push_str(&format!(
        "{indent}  rmse {:.4}   mean nlpd {:.3}   mean |z| {:.3}\n",
        c.rmse, c.mean_nlpd, c.mean_abs_z
    ));
}

/// How many importance rows [`render_model`] prints per run.
const IMPORTANCE_ROWS: usize = 12;

/// Renders a model report for humans: per-run calibration summary,
/// importance bars, and the explore/exploit decision timeline.
pub fn render_model(report: &ModelReport) -> String {
    let mut out = String::new();
    if report.runs.is_empty() {
        out.push_str("model observatory: no tuning runs recorded\n");
        return out;
    }
    for run in &report.runs {
        out.push_str(&format!(
            "model observatory — {} ({} iterations)\n",
            run.workload, run.iterations
        ));
        render_calibration(&mut out, &run.calibration, "  ");
        if run.kernel_length_scale > 0.0 {
            out.push_str(&format!(
                "  kernel lengthscale: {:.4}\n",
                run.kernel_length_scale
            ));
        }
        if run.importance.is_empty() {
            out.push_str("  importance: not recorded (run with --telemetry)\n");
        } else {
            out.push_str(&format!(
                "  parameter importance (top {} of {})\n",
                IMPORTANCE_ROWS.min(run.importance.len()),
                run.importance.len()
            ));
            for p in run.importance.iter().take(IMPORTANCE_ROWS) {
                out.push_str(&format!(
                    "  {:<28} {} {:5.1}%\n",
                    p.name,
                    bar(p.importance),
                    p.importance * 100.0
                ));
            }
        }
        out.push_str(&format!(
            "  decision timeline (mean explore share {:5.1}%)\n",
            run.mean_explore_share * 100.0
        ));
        for d in &run.timeline {
            let z = if d.calibrated {
                format!("{:+6.2}", d.z)
            } else {
                "    --".to_string()
            };
            out.push_str(&format!(
                "    iter {:>3}  explore {:5.1}%  margin {:+.4}  z {}\n",
                d.iteration,
                d.explore_share * 100.0,
                d.decision_margin,
                z
            ));
        }
    }
    out
}

/// One parameter's importance movement between two reports.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ImportanceDelta {
    /// Parameter name.
    pub name: String,
    /// Importance in the baseline report.
    pub baseline: f64,
    /// Importance in the candidate report.
    pub candidate: f64,
    /// `candidate - baseline`.
    pub delta: f64,
}

/// The difference between two model fingerprints.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelDiff {
    /// Always [`MODEL_DIFF_SCHEMA`].
    pub schema: String,
    /// Fingerprint of the baseline report.
    pub baseline: ModelReport,
    /// Fingerprint of the candidate report.
    pub candidate: ModelReport,
    /// ±1σ coverage movement.
    pub coverage_1s_delta: f64,
    /// ±2σ coverage movement.
    pub coverage_2s_delta: f64,
    /// RMSE movement.
    pub rmse_delta: f64,
    /// Mean-NLPD movement.
    pub nlpd_delta: f64,
    /// Mean explore-share movement.
    pub explore_share_delta: f64,
    /// Per-parameter importance movement, sorted by |delta| descending
    /// (ties by name).
    pub importance_deltas: Vec<ImportanceDelta>,
    /// Whether the most important parameter changed.
    pub top_param_moved: bool,
    /// Most important parameter of the baseline (`"none"` when absent).
    pub moved_from: String,
    /// Most important parameter of the candidate.
    pub moved_to: String,
    /// One-line human verdict.
    pub verdict: String,
}

fn top_param(report: &ModelReport) -> String {
    report
        .importance
        .first()
        .map(|p| p.name.clone())
        .unwrap_or_else(|| "none".to_string())
}

/// Diffs two parsed telemetry reports' model fingerprints.
pub fn inspect_diff(baseline: &RunReport, candidate: &RunReport) -> ModelDiff {
    let base = inspect(baseline);
    let cand = inspect(candidate);
    let mut names: Vec<String> = base
        .importance
        .iter()
        .chain(cand.importance.iter())
        .map(|p| p.name.clone())
        .collect();
    names.sort();
    names.dedup();
    let lookup = |r: &ModelReport, name: &str| {
        r.importance
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.importance)
            .unwrap_or(0.0)
    };
    let mut importance_deltas: Vec<ImportanceDelta> = names
        .into_iter()
        .map(|name| {
            let b = lookup(&base, &name);
            let c = lookup(&cand, &name);
            ImportanceDelta {
                name,
                baseline: b,
                candidate: c,
                delta: c - b,
            }
        })
        .collect();
    importance_deltas.sort_by(|a, b| {
        b.delta
            .abs()
            .total_cmp(&a.delta.abs())
            .then_with(|| a.name.cmp(&b.name))
    });
    let moved_from = top_param(&base);
    let moved_to = top_param(&cand);
    let top_param_moved = moved_from != moved_to;
    let coverage_1s_delta = cand.calibration.coverage_1s - base.calibration.coverage_1s;
    let verdict = if top_param_moved {
        format!("importance lead moved: {moved_from} -> {moved_to}")
    } else if coverage_1s_delta.abs() > 1e-12 {
        format!(
            "importance lead unchanged ({moved_from}); ±1σ coverage {:+.1} pts",
            coverage_1s_delta * 100.0
        )
    } else {
        format!("importance lead unchanged ({moved_from}); calibration unchanged")
    };
    ModelDiff {
        schema: MODEL_DIFF_SCHEMA.to_string(),
        coverage_1s_delta,
        coverage_2s_delta: cand.calibration.coverage_2s - base.calibration.coverage_2s,
        rmse_delta: cand.calibration.rmse - base.calibration.rmse,
        nlpd_delta: cand.calibration.mean_nlpd - base.calibration.mean_nlpd,
        explore_share_delta: cand.mean_explore_share - base.mean_explore_share,
        importance_deltas,
        top_param_moved,
        moved_from,
        moved_to,
        baseline: base,
        candidate: cand,
        verdict,
    }
}

/// How many importance-delta rows [`render_model_diff`] prints.
const DIFF_ROWS: usize = 10;

/// Renders a [`ModelDiff`] for humans: calibration movement, the largest
/// importance shifts, then the verdict.
pub fn render_model_diff(diff: &ModelDiff) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>9} {:>9} {:>9}\n",
        "calibration", "baseline", "candidate", "delta"
    ));
    let rows = [
        (
            "within 1σ",
            diff.baseline.calibration.coverage_1s,
            diff.candidate.calibration.coverage_1s,
            diff.coverage_1s_delta,
        ),
        (
            "within 2σ",
            diff.baseline.calibration.coverage_2s,
            diff.candidate.calibration.coverage_2s,
            diff.coverage_2s_delta,
        ),
        (
            "explore share",
            diff.baseline.mean_explore_share,
            diff.candidate.mean_explore_share,
            diff.explore_share_delta,
        ),
    ];
    for (name, b, c, d) in rows {
        out.push_str(&format!(
            "{:<16} {:>8.1}% {:>8.1}% {:>+8.1}p\n",
            name,
            b * 100.0,
            c * 100.0,
            d * 100.0
        ));
    }
    out.push_str(&format!(
        "rmse delta: {:+.4}   nlpd delta: {:+.3}\n",
        diff.rmse_delta, diff.nlpd_delta
    ));
    if !diff.importance_deltas.is_empty() {
        out.push_str("largest importance shifts:\n");
        for d in diff.importance_deltas.iter().take(DIFF_ROWS) {
            out.push_str(&format!(
                "  {:<28} {:>7.1}% -> {:>6.1}% ({:+.1}p)\n",
                d.name,
                d.baseline * 100.0,
                d.candidate * 100.0,
                d.delta * 100.0
            ));
        }
    }
    out.push_str(&diff.verdict);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TunerRunTelemetry;

    fn record(iteration: u64, mean: f64, std: f64, realized: f64) -> IterationRecord {
        let denom = mean.abs() + std;
        IterationRecord {
            iteration,
            predicted_mean: mean,
            predicted_std: std,
            realized_grade: realized,
            calibrated: true,
            explore_share: if denom > 0.0 { std / denom } else { 0.0 },
            exploit_share: if denom > 0.0 { mean.abs() / denom } else { 0.0 },
            decision_margin: 0.01,
            ..Default::default()
        }
    }

    fn report_with(records: Vec<IterationRecord>) -> RunReport {
        RunReport {
            schema: RunReport::SCHEMA.to_string(),
            tuner: vec![TunerRunTelemetry {
                workload: "database".to_string(),
                iterations: records.len() as u64,
                records,
                ..Default::default()
            }],
            ..Default::default()
        }
    }

    #[test]
    fn calibration_counts_coverage() {
        // Realized grades at 0.5σ, 1.5σ, and 3σ from their means.
        let records = vec![
            record(1, 0.0, 1.0, 0.5),
            record(2, 0.0, 1.0, 1.5),
            record(3, 0.0, 1.0, 3.0),
        ];
        let c = calibration_of(&records);
        assert_eq!(c.points, 3);
        assert!((c.coverage_1s - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.coverage_2s - 2.0 / 3.0).abs() < 1e-12);
        assert!(c.rmse > 0.0 && c.mean_nlpd.is_finite());
        // Uncalibrated records contribute nothing.
        let mut uncal = record(4, 0.0, 1.0, 9.0);
        uncal.calibrated = false;
        let mut with_uncal = records.clone();
        with_uncal.push(uncal);
        assert_eq!(calibration_of(&with_uncal), c);
    }

    #[test]
    fn coverage_stays_in_unit_interval() {
        for spread in [0.0, 0.1, 1.0, 10.0] {
            let records: Vec<IterationRecord> = (1..=8)
                .map(|i| record(i, 0.2, 0.05, 0.2 + spread * (i as f64 - 4.0) / 8.0))
                .collect();
            let c = calibration_of(&records);
            assert!((0.0..=1.0).contains(&c.coverage_1s), "{}", c.coverage_1s);
            assert!((0.0..=1.0).contains(&c.coverage_2s), "{}", c.coverage_2s);
            assert!(c.coverage_2s >= c.coverage_1s);
        }
    }

    #[test]
    fn importance_averages_and_normalizes() {
        let mut a = record(1, 0.1, 0.05, 0.12);
        a.importance = vec![0.5, 0.3, 0.2];
        let mut b = record(2, 0.1, 0.05, 0.12);
        b.importance = vec![0.1, 0.6, 0.3];
        let imp = averaged_importance(&[a, b]);
        assert_eq!(imp.len(), 3);
        let total: f64 = imp.iter().map(|p| p.importance).sum();
        assert!((total - 1.0).abs() < 1e-9, "sums to 1, got {total}");
        // Sorted descending: p01 averaged (0.45) leads.
        assert_eq!(imp[0].name, "p01");
        for w in imp.windows(2) {
            assert!(w[0].importance >= w[1].importance);
        }
    }

    #[test]
    fn importance_labels_full_catalog() {
        let len = crate::params::ParamSpace::new().len();
        let mut r = record(1, 0.1, 0.05, 0.12);
        r.importance = vec![1.0 / len as f64; len];
        let imp = averaged_importance(&[r]);
        assert_eq!(imp.len(), len);
        assert!(imp.iter().any(|p| p.name == "channel_count"));
    }

    #[test]
    fn inspect_builds_runs_and_aggregates() {
        let report = report_with(vec![record(1, 0.0, 1.0, 0.5), record(2, 0.0, 1.0, 1.5)]);
        let m = inspect(&report);
        assert_eq!(m.schema, MODEL_SCHEMA);
        assert_eq!(m.runs.len(), 1);
        assert_eq!(m.runs[0].workload, "database");
        assert_eq!(m.runs[0].timeline.len(), 2);
        assert_eq!(m.calibration, m.runs[0].calibration);
        assert!(m.mean_explore_share > 0.0);
    }

    #[test]
    fn render_is_deterministic() {
        let report = report_with(vec![record(1, 0.0, 1.0, 0.5)]);
        let m = inspect(&report);
        assert_eq!(render_model(&m), render_model(&m));
        assert!(render_model(&m).contains("within 1σ"));
        let empty = inspect(&RunReport::default());
        assert!(render_model(&empty).contains("no tuning runs"));
    }

    #[test]
    fn diff_reports_calibration_movement() {
        let a = report_with(vec![record(1, 0.0, 1.0, 0.5), record(2, 0.0, 1.0, 0.5)]);
        let b = report_with(vec![record(1, 0.0, 1.0, 3.0), record(2, 0.0, 1.0, 3.0)]);
        let d = inspect_diff(&a, &b);
        assert!((d.coverage_1s_delta + 1.0).abs() < 1e-12);
        assert!(d.rmse_delta > 0.0);
        let rendered = render_model_diff(&d);
        assert!(rendered.contains("within 1σ"), "{rendered}");
        assert_eq!(render_model_diff(&d), rendered);
    }

    #[test]
    fn diff_tracks_importance_lead() {
        let mut ra = record(1, 0.1, 0.05, 0.12);
        ra.importance = vec![0.8, 0.2];
        let mut rb = record(1, 0.1, 0.05, 0.12);
        rb.importance = vec![0.2, 0.8];
        let d = inspect_diff(&report_with(vec![ra]), &report_with(vec![rb]));
        assert!(d.top_param_moved);
        assert_eq!(d.moved_from, "p00");
        assert_eq!(d.moved_to, "p01");
        assert!(d.verdict.contains("moved"), "{}", d.verdict);
    }

    #[test]
    fn model_json_round_trips() {
        let report = report_with(vec![record(1, 0.0, 1.0, 0.5)]);
        let m = inspect(&report);
        let json = serde_json::to_string(&m).expect("serializes");
        let back: ModelReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(m, back);
        let d = inspect_diff(&report, &report.clone());
        let json = serde_json::to_string(&d).expect("serializes");
        let back: ModelDiff = serde_json::from_str(&json).expect("parses");
        assert_eq!(d, back);
    }
}
