//! Structured telemetry collection for the tuning pipeline.
//!
//! The low-level switch and primitives live in the workspace-root
//! `telemetry` crate (re-exported here); this module adds the collection
//! layer: a thread-safe [`TelemetrySink`] that phases, tuning outcomes, and
//! pruning reports are recorded into, and a [`RunReport`] that serializes
//! the whole picture — per-iteration tuner records, validator cache
//! statistics, simulator activity, and worker-pool utilization — to JSON
//! (the `--telemetry out.json` CLI flag).
//!
//! Everything is gated on the process-wide switch: while telemetry is
//! disabled (the default) a sink records nothing and instrumented call
//! sites pay a single relaxed atomic load, so the hot path is unaffected.
//!
//! # Examples
//!
//! ```
//! use autoblox::telemetry::{RunReport, TelemetrySink};
//!
//! autoblox::telemetry::set_enabled(true);
//! let sink = TelemetrySink::new();
//! let answer = sink.phase("warmup", || 2 + 2);
//! assert_eq!(answer, 4);
//! let report = sink.report(None);
//! autoblox::telemetry::set_enabled(false);
//! assert_eq!(report.phases.len(), 1);
//! assert_eq!(report.schema, RunReport::SCHEMA);
//! ```

use crate::journal::JournalHandle;
use crate::pruning::{CoarseReport, FineReport};
use crate::tuner::{IterationRecord, TuningOutcome};
use crate::validator::{Validator, ValidatorStats};
use mlkit::parallel::PoolStats;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use ssdsim::report::{HistogramPercentiles, SimReport};
use ssdsim::BottleneckReport;
use std::sync::{Arc, OnceLock};

pub use telemetry::{elapsed_ns, enabled, set_enabled, start, Counter};

/// One named pipeline stage and how long it took.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Stage name (e.g. `coarse_prune`, `tune`).
    pub name: String,
    /// Wall-clock duration, ns.
    pub wall_ns: u64,
}

/// Summary of one tuning run, including its per-iteration records.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TunerRunTelemetry {
    /// Target workload name.
    pub workload: String,
    /// Outer iterations executed.
    pub iterations: u64,
    /// Simulator validations the run performed.
    pub validations: u64,
    /// Final best grade.
    pub best_grade: f64,
    /// Per-iteration diagnostics.
    pub records: Vec<IterationRecord>,
}

/// Summary of one coarse-pruning stage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoarsePruneTelemetry {
    /// Workload the sweep ran against.
    pub workload: String,
    /// Deduplicated simulator probes fanned out.
    pub probe_count: u64,
    /// Stage wall-clock, ns.
    pub wall_ns: u64,
    /// Parameters classified insensitive.
    pub insensitive: u64,
    /// Parameters that survived.
    pub sensitive: u64,
}

/// Summary of one fine-pruning stage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FinePruneTelemetry {
    /// Workload the regression was fitted for.
    pub workload: String,
    /// Valid samples the regression used.
    pub samples_used: u64,
    /// Sampling attempts including rejected draws.
    pub attempts: u64,
    /// Ridge fit time, ns.
    pub fit_ns: u64,
    /// Stage wall-clock, ns.
    pub wall_ns: u64,
    /// Parameters pruned by the coefficient threshold.
    pub pruned: u64,
    /// Parameters surviving into the tuning order.
    pub survivors: u64,
    /// R² of the fitted regression.
    pub r_squared: f64,
}

/// Both pruning stages' summaries, in recording order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PruningTelemetry {
    /// Coarse sweeps recorded.
    pub coarse: Vec<CoarsePruneTelemetry>,
    /// Fine regressions recorded.
    pub fine: Vec<FinePruneTelemetry>,
}

/// The full structured telemetry report for one run.
///
/// This is what `--telemetry out.json` writes: a versioned, self-describing
/// JSON document that round-trips through serde.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema identifier; always [`RunReport::SCHEMA`].
    pub schema: String,
    /// Whether telemetry was enabled when the report was taken.
    pub enabled: bool,
    /// Worker-pool thread limit in effect.
    pub threads: u64,
    /// Named pipeline stages in completion order.
    pub phases: Vec<PhaseRecord>,
    /// One entry per recorded tuning run.
    pub tuner: Vec<TunerRunTelemetry>,
    /// Pruning-stage summaries.
    pub pruning: PruningTelemetry,
    /// Validator cache/simulator statistics.
    pub validator: ValidatorStats,
    /// Worker-pool utilization counters.
    pub pool: PoolStats,
    /// Tail-latency percentiles estimated from the validator's aggregated
    /// latency histogram (all zeros when telemetry was off or no simulator
    /// ran). Absent in reports written before the field existed — the
    /// default keeps those parseable.
    #[serde(default)]
    pub latency_percentiles: HistogramPercentiles,
    /// Bottleneck attribution over every simulator run the validator
    /// performed (all zeros when telemetry was off). New in schema v2;
    /// the default keeps v1 reports parseable.
    #[serde(default)]
    pub bottleneck: BottleneckReport,
}

impl RunReport {
    /// The schema identifier written into every report.
    pub const SCHEMA: &'static str = "autoblox.telemetry.v3";

    /// Top-level keys every serialized report must carry.
    pub const REQUIRED_KEYS: [&'static str; 8] = [
        "schema",
        "enabled",
        "threads",
        "phases",
        "tuner",
        "pruning",
        "validator",
        "pool",
    ];

    /// Parses and validates a serialized report: the JSON must parse, carry
    /// every required top-level key, match the schema identifier, and
    /// deserialize back into a [`RunReport`].
    ///
    /// All current minor schema versions (`autoblox.telemetry.v1`, `.v2`,
    /// and `.v3`) parse silently — older reports simply default the fields
    /// later versions added (v2: bottleneck attribution; v3: the model
    /// observatory's per-iteration fields). Newer minor versions (`.v4`
    /// and up) parse with a warning (see
    /// [`RunReport::parse_checked_verbose`] to observe it) rather than
    /// failing, so a new producer and an old checker can coexist.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found; for
    /// field-level mismatches the message names the exact field path (e.g.
    /// `validator.simulate_ns`).
    pub fn parse_checked(json: &str) -> Result<RunReport, String> {
        Self::parse_checked_verbose(json).map(|c| c.report)
    }

    /// Like [`RunReport::parse_checked`], also returning any non-fatal
    /// warnings (currently: a newer minor schema version was accepted).
    ///
    /// # Errors
    ///
    /// Same as [`RunReport::parse_checked`].
    pub fn parse_checked_verbose(json: &str) -> Result<CheckedReport, String> {
        let value: serde_json::Value =
            serde_json::from_str(json).map_err(|e| format!("invalid JSON: {e}"))?;
        let obj = match &value {
            serde_json::Value::Object(map) => map,
            _ => return Err("telemetry report must be a JSON object".to_string()),
        };
        for key in Self::REQUIRED_KEYS {
            if !obj.contains_key(key) {
                return Err(format!("missing required key `{key}`"));
            }
        }
        let schema = value["schema"].as_str().unwrap_or("").to_string();
        let mut warnings = Vec::new();
        match schema_minor_version(&schema) {
            Some(1) | Some(2) | Some(3) => {}
            Some(v) if v > 3 => warnings.push(format!(
                "report uses newer schema `{schema}`; parsing best-effort as `{}` \
                 (unknown fields ignored)",
                Self::SCHEMA
            )),
            _ => {
                return Err(format!(
                    "unknown schema `{schema}` (expected `{}`)",
                    Self::SCHEMA
                ))
            }
        }
        let report: RunReport =
            serde_json::from_str(json).map_err(|e| match locate_schema_mismatch(&value) {
                Some(path) => format!("schema mismatch at `{path}`: {e}"),
                None => format!("schema mismatch: {e}"),
            })?;
        Ok(CheckedReport { report, warnings })
    }
}

/// A successfully validated report plus any non-fatal warnings.
#[derive(Debug, Clone)]
pub struct CheckedReport {
    /// The parsed report.
    pub report: RunReport,
    /// Non-fatal validation warnings (e.g. a newer minor schema version).
    pub warnings: Vec<String>,
}

/// Extracts `N` from `autoblox.telemetry.vN`; `None` for anything else.
fn schema_minor_version(schema: &str) -> Option<u64> {
    let rest = schema.strip_prefix("autoblox.telemetry.v")?;
    let n: u64 = rest.parse().ok()?;
    (n >= 1).then_some(n)
}

/// A fully-populated v1 report (one element in every list) used as the
/// structural template for field-level mismatch reporting.
fn schema_template() -> serde_json::Value {
    let report = RunReport {
        schema: RunReport::SCHEMA.to_string(),
        phases: vec![PhaseRecord::default()],
        tuner: vec![TunerRunTelemetry {
            records: vec![IterationRecord::default()],
            ..Default::default()
        }],
        pruning: PruningTelemetry {
            coarse: vec![CoarsePruneTelemetry::default()],
            fine: vec![FinePruneTelemetry::default()],
        },
        ..Default::default()
    };
    serde_json::to_value(&report).expect("template serializes")
}

/// Walks `candidate` against the v1 template and names the first field that
/// does not fit the schema (wrong type or missing member). `None` when the
/// document is structurally conformant — then the deserializer's own error
/// message is the best description available.
fn locate_schema_mismatch(candidate: &serde_json::Value) -> Option<String> {
    fn kind(v: &serde_json::Value) -> &'static str {
        use serde_json::Value::*;
        match v {
            Null => "null",
            Bool(_) => "boolean",
            Int(_) => "integer",
            Float(_) => "number",
            Str(_) => "string",
            Array(_) => "array",
            Object(_) => "object",
        }
    }
    fn walk(tpl: &serde_json::Value, got: &serde_json::Value, path: &str) -> Option<String> {
        use serde_json::Value::*;
        match (tpl, got) {
            (Object(t), Object(g)) => {
                for (k, tv) in t {
                    let sub = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    // Absent members are serde's department (its error
                    // already names the missing field, and `default`ed
                    // fields are legitimately absent) — the walker only
                    // hunts type mismatches, which serde reports pathless.
                    if let Some(gv) = g.get(k) {
                        if let Some(hit) = walk(tv, gv, &sub) {
                            return Some(hit);
                        }
                    }
                }
                None
            }
            (Array(t), Array(g)) => {
                let elem_tpl = t.first()?;
                for (i, gv) in g.iter().enumerate() {
                    if let Some(hit) = walk(elem_tpl, gv, &format!("{path}[{i}]")) {
                        return Some(hit);
                    }
                }
                None
            }
            // Numbers are interchangeable where integral; everything else
            // must match the template's kind exactly.
            (Int(_), Int(_)) | (Float(_), Float(_)) | (Float(_), Int(_)) => None,
            (Int(_), Float(f)) if f.fract() == 0.0 => None,
            (Bool(_), Bool(_)) | (Str(_), Str(_)) | (Null, _) => None,
            _ => Some(format!(
                "{path} (expected {}, got {})",
                kind(tpl),
                kind(got)
            )),
        }
    }
    walk(&schema_template(), candidate, "")
}

#[derive(Debug, Default)]
struct SinkInner {
    phases: Vec<PhaseRecord>,
    tuner: Vec<TunerRunTelemetry>,
    coarse: Vec<CoarsePruneTelemetry>,
    fine: Vec<FinePruneTelemetry>,
    journal: Option<Arc<JournalHandle>>,
}

/// Thread-safe collector for structured telemetry.
///
/// All recording methods are no-ops while the process-wide switch is off,
/// so a sink can sit on the hot path unconditionally. Reports are taken
/// with [`TelemetrySink::report`], which also snapshots the worker pool
/// and (optionally) a validator.
#[derive(Debug, Default)]
pub struct TelemetrySink {
    inner: Mutex<SinkInner>,
}

impl TelemetrySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        TelemetrySink::default()
    }

    /// Runs `f` as a named pipeline stage, recording its wall-clock time
    /// when telemetry is enabled and opening a span around it when tracing
    /// is armed. The closure's result passes through.
    pub fn phase<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let _span = telemetry::span::Span::enter_keyed(name, telemetry::span::key_str(name));
        let t = start();
        let out = f();
        if enabled() {
            self.record_phase_ns(name, elapsed_ns(t));
        }
        out
    }

    /// Records an already-measured stage duration, streaming it to an
    /// attached journal.
    pub fn record_phase_ns(&self, name: &str, wall_ns: u64) {
        if enabled() {
            let mut inner = self.inner.lock();
            inner.phases.push(PhaseRecord {
                name: name.to_string(),
                wall_ns,
            });
            if let Some(j) = &inner.journal {
                j.record_phase(name, wall_ns);
            }
        }
    }

    /// Attaches a run journal: subsequent phase completions and tuner
    /// iteration records stream into it as they happen.
    pub fn attach_journal(&self, handle: Arc<JournalHandle>) {
        self.inner.lock().journal = Some(handle);
    }

    /// Detaches the journal, if any (the handle's writer keeps draining
    /// whatever was already queued).
    pub fn detach_journal(&self) {
        self.inner.lock().journal = None;
    }

    /// Streams one tuner iteration record to the attached journal; a no-op
    /// without one. Unlike the other recorders this is not gated on the
    /// telemetry switch — a journal is an explicit opt-in of its own.
    pub fn record_iteration(&self, workload: &str, record: &IterationRecord) {
        let inner = self.inner.lock();
        if let Some(j) = &inner.journal {
            j.record_iteration(workload, record);
        }
    }

    /// Streams one model-observatory line (the surrogate's prediction,
    /// explore/exploit shares, and calibration pair for an iteration) to
    /// the attached journal; a no-op without one. Journal-gated like
    /// [`TelemetrySink::record_iteration`].
    pub fn record_model(&self, workload: &str, record: &IterationRecord) {
        let inner = self.inner.lock();
        if let Some(j) = &inner.journal {
            j.record_model(workload, record);
        }
    }

    /// Whether a run journal is currently attached — the tuner uses this
    /// (besides the telemetry switch) to decide whether the model
    /// observatory's importance sweep is worth paying for.
    pub fn has_journal(&self) -> bool {
        self.inner.lock().journal.is_some()
    }

    /// Streams one driver progress estimate (phase, iteration, percent
    /// complete, ETA) to the attached journal; a no-op without one.
    /// Journal-gated like [`TelemetrySink::record_iteration`] — a journal
    /// is an explicit opt-in of its own.
    pub fn record_progress(
        &self,
        workload: &str,
        phase: &str,
        iteration: u64,
        total: u64,
        percent: f64,
        eta_ns: u64,
    ) {
        let inner = self.inner.lock();
        if let Some(j) = &inner.journal {
            j.record_progress(workload, phase, iteration, total, percent, eta_ns);
        }
    }

    /// Streams one checkpoint write or resume event to the attached
    /// journal; a no-op without one. Like [`TelemetrySink::record_iteration`]
    /// this is journal-gated rather than switch-gated — a journal is an
    /// explicit opt-in of its own.
    pub fn record_checkpoint(&self, workload: &str, event: &str, iteration: u64, location: &str) {
        let inner = self.inner.lock();
        if let Some(j) = &inner.journal {
            j.record_checkpoint(workload, event, iteration, location);
        }
    }

    /// Streams one simulator run's device observatory output — the sampled
    /// [`ssdsim::DeviceSeries`] and the per-run bottleneck attribution — to
    /// the attached journal; a no-op without one. `replay` distinguishes the
    /// timed from the saturated replay of a validation.
    pub fn record_device(&self, trace: &str, replay: &str, report: &SimReport) {
        let inner = self.inner.lock();
        if let Some(j) = &inner.journal {
            if !report.device.is_empty() {
                j.record_series(trace, replay, &report.device);
            }
            if report.bottleneck.total_latency_ns > 0 {
                j.record_bottleneck(trace, replay, &report.bottleneck);
            }
        }
    }

    /// Streams one placement decision to the attached journal; a no-op
    /// without one.
    pub fn record_placement(&self, device: u64, tenants: &[String], cost: f64, source: &str) {
        let inner = self.inner.lock();
        if let Some(j) = &inner.journal {
            j.record_placement(device, tenants, cost, source);
        }
    }

    /// Records one tuning run's outcome (including its iteration records).
    pub fn record_outcome(&self, outcome: &TuningOutcome) {
        if enabled() {
            self.inner.lock().tuner.push(TunerRunTelemetry {
                workload: outcome.workload.clone(),
                iterations: outcome.iterations as u64,
                validations: outcome.validations,
                best_grade: outcome.best.grade,
                records: outcome.iteration_records.clone(),
            });
        }
    }

    /// Records a coarse-pruning stage.
    pub fn record_coarse(&self, report: &CoarseReport) {
        if enabled() {
            self.inner.lock().coarse.push(CoarsePruneTelemetry {
                workload: report.workload.clone(),
                probe_count: report.probe_count,
                wall_ns: report.wall_ns,
                insensitive: report.insensitive().len() as u64,
                sensitive: report.sensitive().len() as u64,
            });
        }
    }

    /// Records a fine-pruning stage.
    pub fn record_fine(&self, report: &FineReport) {
        if enabled() {
            let pruned = report.coefficients.iter().filter(|c| c.pruned).count() as u64;
            self.inner.lock().fine.push(FinePruneTelemetry {
                workload: report.workload.clone(),
                samples_used: report.samples_used,
                attempts: report.attempts,
                fit_ns: report.fit_ns,
                wall_ns: report.wall_ns,
                pruned,
                survivors: report.coefficients.len() as u64 - pruned,
                r_squared: report.r_squared,
            });
        }
    }

    /// Drops everything recorded so far (used at the start of an
    /// instrumented run so the report covers exactly that run).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let journal = inner.journal.take();
        *inner = SinkInner::default();
        inner.journal = journal;
    }

    /// Snapshots everything recorded into a serializable [`RunReport`],
    /// folding in the worker pool's counters and, when given, the
    /// validator's cache statistics.
    pub fn report(&self, validator: Option<&Validator>) -> RunReport {
        let inner = self.inner.lock();
        let validator = validator.map(Validator::stats).unwrap_or_default();
        RunReport {
            schema: RunReport::SCHEMA.to_string(),
            enabled: enabled(),
            threads: mlkit::parallel::max_threads() as u64,
            phases: inner.phases.clone(),
            tuner: inner.tuner.clone(),
            pruning: PruningTelemetry {
                coarse: inner.coarse.clone(),
                fine: inner.fine.clone(),
            },
            latency_percentiles: validator.sim.latency_buckets.percentiles(),
            bottleneck: validator.sim.bottleneck(),
            validator,
            pool: mlkit::parallel::pool_stats(),
        }
    }
}

/// The process-wide sink the framework facade and the CLI record into.
pub fn global() -> &'static TelemetrySink {
    static GLOBAL: OnceLock<TelemetrySink> = OnceLock::new();
    GLOBAL.get_or_init(TelemetrySink::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The process-wide switch is shared by every test in this binary, so
    // these tests never toggle it; integration tests own the enabled paths.

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TelemetrySink::new();
        let v = sink.phase("noop", || 7);
        assert_eq!(v, 7);
        sink.record_phase_ns("direct", 123);
        let report = sink.report(None);
        assert!(report.phases.is_empty());
        assert!(report.tuner.is_empty());
        assert_eq!(report.validator, ValidatorStats::default());
    }

    #[test]
    fn parse_checked_rejects_bad_documents() {
        assert!(RunReport::parse_checked("not json").is_err());
        assert!(RunReport::parse_checked("[1,2,3]").is_err());
        let missing = r#"{"schema":"autoblox.telemetry.v1"}"#;
        let err = RunReport::parse_checked(missing).unwrap_err();
        assert!(err.contains("missing required key"), "{err}");
    }

    #[test]
    fn default_report_round_trips() {
        let report = RunReport {
            schema: RunReport::SCHEMA.to_string(),
            ..Default::default()
        };
        let json = serde_json::to_string(&report).expect("serializes");
        let back = RunReport::parse_checked(&json).expect("parses back");
        assert_eq!(report, back);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let report = RunReport {
            schema: "autoblox.telemetry.v0".to_string(),
            ..Default::default()
        };
        let json = serde_json::to_string(&report).expect("serializes");
        let err = RunReport::parse_checked(&json).unwrap_err();
        assert!(err.contains("unknown schema"), "{err}");
    }

    #[test]
    fn newer_minor_schema_parses_with_warning() {
        let report = RunReport {
            schema: "autoblox.telemetry.v4".to_string(),
            ..Default::default()
        };
        let json = serde_json::to_string(&report).expect("serializes");
        let checked = RunReport::parse_checked_verbose(&json)
            .expect("a newer minor version must still parse");
        assert_eq!(checked.report.schema, "autoblox.telemetry.v4");
        assert_eq!(checked.warnings.len(), 1, "exactly one version warning");
        assert!(
            checked.warnings[0].contains("newer schema"),
            "{}",
            checked.warnings[0]
        );
        // The strict entry point stays warning-free on the current version.
        let current = serde_json::to_string(&RunReport {
            schema: RunReport::SCHEMA.to_string(),
            ..Default::default()
        })
        .expect("serializes");
        let checked = RunReport::parse_checked_verbose(&current).expect("parses");
        assert!(checked.warnings.is_empty());
    }

    #[test]
    fn v1_reports_still_parse_silently() {
        // A report written by the v1 producer has no `bottleneck` member;
        // the serde default fills it and no warning is raised.
        let report = RunReport {
            schema: "autoblox.telemetry.v1".to_string(),
            ..Default::default()
        };
        let mut value = serde_json::to_value(&report).expect("to value");
        if let serde_json::Value::Object(map) = &mut value {
            map.remove("bottleneck");
            map.remove("latency_percentiles");
        }
        let json = serde_json::to_string(&value).expect("serializes");
        let checked = RunReport::parse_checked_verbose(&json).expect("v1 parses");
        assert!(checked.warnings.is_empty(), "{:?}", checked.warnings);
        assert_eq!(checked.report.bottleneck, BottleneckReport::default());
    }

    #[test]
    fn v2_reports_still_parse_silently() {
        // A v2 producer's iteration records carry none of the model
        // observatory's fields; the serde defaults fill them.
        let report = RunReport {
            schema: "autoblox.telemetry.v2".to_string(),
            tuner: vec![TunerRunTelemetry {
                workload: "database".to_string(),
                records: vec![IterationRecord::default()],
                ..Default::default()
            }],
            ..Default::default()
        };
        let mut value = serde_json::to_value(&report).expect("to value");
        if let serde_json::Value::Object(map) = &mut value {
            if let Some(serde_json::Value::Array(tuner)) = map.get_mut("tuner") {
                if let Some(serde_json::Value::Object(run)) = tuner.first_mut() {
                    if let Some(serde_json::Value::Array(records)) = run.get_mut("records") {
                        if let Some(serde_json::Value::Object(rec)) = records.first_mut() {
                            for key in [
                                "predicted_mean",
                                "predicted_std",
                                "calibrated",
                                "realized_grade",
                                "explore_share",
                                "exploit_share",
                                "decision_margin",
                                "kernel_length_scale",
                                "importance",
                            ] {
                                rec.remove(key);
                            }
                        }
                    }
                }
            }
        }
        let json = serde_json::to_string(&value).expect("serializes");
        let checked = RunReport::parse_checked_verbose(&json).expect("v2 parses");
        assert!(checked.warnings.is_empty(), "{:?}", checked.warnings);
        let rec = &checked.report.tuner[0].records[0];
        assert!(!rec.calibrated);
        assert!(rec.importance.is_empty());
    }

    #[test]
    fn type_mismatch_names_the_exact_field() {
        let report = RunReport {
            schema: RunReport::SCHEMA.to_string(),
            ..Default::default()
        };
        let mut value = serde_json::to_value(&report).expect("to value");
        // Corrupt one deeply nested field: validator.cache_hits: u64 -> str.
        if let serde_json::Value::Object(map) = &mut value {
            if let Some(serde_json::Value::Object(v)) = map.get_mut("validator") {
                v.insert(
                    "cache_hits".to_string(),
                    serde_json::Value::Str("lots".to_string()),
                );
            }
        }
        let err = RunReport::parse_checked(&serde_json::to_string(&value).unwrap())
            .expect_err("a corrupted field must not parse");
        assert!(
            err.contains("validator.cache_hits"),
            "error must name the exact field path: {err}"
        );
    }

    #[test]
    fn global_sink_is_a_singleton() {
        let a = global() as *const TelemetrySink;
        let b = global() as *const TelemetrySink;
        assert_eq!(a, b);
    }
}
