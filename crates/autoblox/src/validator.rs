//! Efficiency validation (§3.4): running candidate configurations on the
//! SSD simulator and caching the measurements.
//!
//! The validator is `Sync`: the trace cache and the sharded measurement
//! cache sit behind `parking_lot::RwLock`s, the run counter is atomic, and
//! in-flight evaluations are deduplicated per key with `OnceLock`, so any
//! number of threads can share one validator and the simulator-run count
//! stays exactly what a sequential execution would produce.

use crate::metrics::Measurement;
use iotrace::gen::WorkloadKind;
use iotrace::Trace;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use ssdsim::config::SsdConfig;
use ssdsim::report::{LatencyBuckets, SimReport};
use ssdsim::{BottleneckReport, Simulator};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use telemetry::Counter;

/// A speculative result produced by [`Validator::prefetch_trace`] that no
/// demand evaluation has consumed yet. It is invisible to every piece of
/// sequential-exact accounting: the run counter, the simulator aggregate,
/// the device journal, and [`Validator::export_cache`] all ignore it until
/// the entry is promoted on first demand access.
#[derive(Debug)]
struct PendingSpec {
    measurement: Measurement,
    /// The timed and saturated reports, retained only while telemetry is
    /// enabled so a later promotion can absorb and journal them exactly as
    /// a demand-time simulation would have.
    reports: Option<Box<(SimReport, SimReport)>>,
}

/// Options controlling validation runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidatorOptions {
    /// Events per generated validation trace.
    pub trace_events: usize,
    /// Flash occupancy established before measuring (paper: >= 50%).
    pub warm_fill: f64,
    /// Seed for the deterministic validation traces.
    pub seed: u64,
}

impl Default for ValidatorOptions {
    fn default() -> Self {
        ValidatorOptions {
            trace_events: 3_000,
            warm_fill: 0.5,
            seed: 0xB10C5,
        }
    }
}

/// Compact memoization key for one [`SsdConfig`].
///
/// 128 bits of FNV-1a over [`SsdConfig::canonical_words`] — two independent
/// 64-bit streams — replacing the seed's `serde_json::to_string(cfg)` key,
/// which serialized ~50 fields to a heap string on every cache probe.
/// Hashing actual field values (not parameter-grid indices) keeps off-grid
/// configurations such as presets collision-distinct too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConfigKey([u64; 2]);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl ConfigKey {
    /// Fingerprints a configuration.
    pub fn of(cfg: &SsdConfig) -> Self {
        let words = cfg.canonical_words();
        let mut h0 = FNV_OFFSET;
        // Second stream: offset basis perturbed so the two hashes are
        // independent even over identical input words.
        let mut h1 = FNV_OFFSET ^ 0x9E37_79B9_7F4A_7C15;
        for (i, &w) in words.iter().enumerate() {
            h0 = (h0 ^ w).wrapping_mul(FNV_PRIME);
            h1 = (h1 ^ w.rotate_left((i % 63) as u32 + 1)).wrapping_mul(FNV_PRIME);
        }
        ConfigKey([h0, h1])
    }

    fn shard(&self) -> usize {
        (self.0[0] >> 59) as usize % CACHE_SHARDS
    }
}

const CACHE_SHARDS: usize = 16;

type CacheKey = (ConfigKey, String);
type Shard = RwLock<HashMap<CacheKey, Arc<OnceLock<Measurement>>>>;

/// One exported measurement-cache entry: a `(configuration, trace)` key and
/// its memoized measurement.
///
/// The two [`ConfigKey`] words travel as 16-digit hex strings because the
/// vendored JSON number type is lossy above `i64::MAX`; hex round-trips
/// every `u64` exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The configuration fingerprint, two hex words.
    pub key: [String; 2],
    /// The validation-trace name.
    pub trace: String,
    /// The memoized measurement.
    pub measurement: Measurement,
}

/// Simulator activity summed over every uncached evaluation (both the timed
/// and the saturated replay), collected only while telemetry is enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimAggregate {
    /// Simulator runs absorbed into this aggregate.
    pub runs: u64,
    /// Flash page reads (host data + mapping + migrations).
    pub flash_reads: u64,
    /// Flash page programs, including GC/wear-leveling migrations.
    pub flash_programs: u64,
    /// Block erases.
    pub flash_erases: u64,
    /// Garbage-collection invocations.
    pub gc_invocations: u64,
    /// Static wear-leveling swaps.
    pub wearleveling_swaps: u64,
    /// Data-cache evictions across all runs.
    pub data_cache_evictions: u64,
    /// Mapping-table evictions across all runs.
    pub cmt_evictions: u64,
    /// Simulated-time request-latency histogram summed over all runs.
    pub latency_buckets: LatencyBuckets,
    /// Simulated ns requests spent waiting on busy channels (reads+writes).
    #[serde(default)]
    pub channel_wait_ns: u64,
    /// Simulated ns requests spent waiting on busy dies/planes.
    #[serde(default)]
    pub plane_wait_ns: u64,
    /// Simulated ns of die time consumed by GC/wear-leveling cycles.
    #[serde(default)]
    pub gc_stall_ns: u64,
    /// Simulated ns requests waited for admission into the device queue.
    #[serde(default)]
    pub queue_wait_ns: u64,
    /// Simulated ns of flash service caused by cache/CMT misses.
    #[serde(default)]
    pub cache_miss_ns: u64,
    /// Simulated ns of die time consumed by SLC-cache fold migrations.
    #[serde(default)]
    pub slc_migration_ns: u64,
    /// Total arrival-to-completion simulated ns over all requests.
    #[serde(default)]
    pub total_latency_ns: u64,
    /// Device-observatory samples retained across all runs.
    #[serde(default)]
    pub device_samples: u64,
    /// Device-observatory samples dropped by the bounded buffers.
    #[serde(default)]
    pub device_samples_dropped: u64,
}

impl SimAggregate {
    fn absorb(&mut self, r: &SimReport) {
        self.runs += 1;
        self.flash_reads += r.read_breakdown.flash_reads;
        self.flash_programs += r.flash.programs + r.flash.migrated_pages;
        self.flash_erases += r.flash.erases;
        self.gc_invocations += r.flash.gc_invocations;
        self.wearleveling_swaps += r.flash.wearleveling_swaps;
        self.data_cache_evictions += r.data_cache_evictions;
        self.cmt_evictions += r.cmt_evictions;
        for (dst, src) in self
            .latency_buckets
            .counts
            .iter_mut()
            .zip(r.latency_buckets.counts.iter())
        {
            *dst += src;
        }
        self.channel_wait_ns += r.bottleneck.channel_wait_ns;
        self.plane_wait_ns += r.bottleneck.plane_wait_ns;
        self.gc_stall_ns += r.bottleneck.gc_stall_ns;
        self.queue_wait_ns += r.bottleneck.queue_wait_ns;
        self.cache_miss_ns += r.bottleneck.cache_miss_ns;
        self.slc_migration_ns += r.bottleneck.slc_migration_ns;
        self.total_latency_ns += r.bottleneck.total_latency_ns;
        self.device_samples += r.device.len() as u64;
        self.device_samples_dropped += r.device.dropped;
    }

    /// Bottleneck attribution over everything absorbed so far.
    pub fn bottleneck(&self) -> BottleneckReport {
        BottleneckReport::from_totals(
            self.total_latency_ns,
            self.channel_wait_ns,
            self.plane_wait_ns,
            self.gc_stall_ns,
            self.cache_miss_ns,
            self.queue_wait_ns,
            self.slc_migration_ns,
        )
    }

    /// Bottleneck attribution over the work absorbed since `earlier` was
    /// snapshotted (used for per-iteration fingerprints in the tuner).
    pub fn bottleneck_delta(&self, earlier: &SimAggregate) -> BottleneckReport {
        BottleneckReport::from_totals(
            self.total_latency_ns
                .saturating_sub(earlier.total_latency_ns),
            self.channel_wait_ns.saturating_sub(earlier.channel_wait_ns),
            self.plane_wait_ns.saturating_sub(earlier.plane_wait_ns),
            self.gc_stall_ns.saturating_sub(earlier.gc_stall_ns),
            self.cache_miss_ns.saturating_sub(earlier.cache_miss_ns),
            self.queue_wait_ns.saturating_sub(earlier.queue_wait_ns),
            self.slc_migration_ns
                .saturating_sub(earlier.slc_migration_ns),
        )
    }
}

/// Snapshot of one validator's cache and simulator activity.
///
/// `simulator_runs` and `shard_entries` are always exact; the remaining
/// counters accumulate only while telemetry is enabled (see the `telemetry`
/// crate) and read zero otherwise. Cache misses are deterministic for a
/// given evaluation set; under concurrency the split between `cache_hits`
/// and `dedup_waits` depends on timing, but their sum is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ValidatorStats {
    /// Actual (non-cached) simulator evaluations performed.
    pub simulator_runs: u64,
    /// Probes answered from a completed cache entry.
    pub cache_hits: u64,
    /// Probes that simulated because no entry existed.
    pub cache_misses: u64,
    /// Probes that blocked on another thread's in-flight evaluation.
    pub dedup_waits: u64,
    /// Validation traces generated (not served from the trace cache).
    pub trace_builds: u64,
    /// Time spent generating validation traces, ns.
    pub trace_build_ns: u64,
    /// Time spent inside uncached simulator evaluations, ns.
    pub simulate_ns: u64,
    /// Cache probes per shard (contention/distribution diagnostic).
    pub shard_probes: [u64; CACHE_SHARDS],
    /// Memoized entries currently resident per shard.
    pub shard_entries: [u64; CACHE_SHARDS],
    /// Speculative (prefetch) simulator evaluations performed. Exact
    /// regardless of the telemetry switch, like `simulator_runs`.
    #[serde(default)]
    pub speculative_runs: u64,
    /// Speculative results a demand evaluation later consumed — work the
    /// batched tuner reused instead of re-simulating. Exact.
    #[serde(default)]
    pub speculative_hits: u64,
    /// Speculative results still unconsumed — wasted work if the run ends
    /// now. Exact; `speculative_runs - speculative_hits - speculative_wasted`
    /// entries were dropped by `clear_cache` or lost duplicate races.
    #[serde(default)]
    pub speculative_wasted: u64,
    /// Simulator activity summed over the uncached evaluations.
    pub sim: SimAggregate,
}

/// Telemetry counters owned by one [`Validator`]; bumped only while the
/// process-wide telemetry switch is on.
#[derive(Debug, Default)]
struct ValidatorCounters {
    hits: Counter,
    misses: Counter,
    dedup_waits: Counter,
    trace_builds: Counter,
    trace_build_ns: Counter,
    simulate_ns: Counter,
    shard_probes: [Counter; CACHE_SHARDS],
    sim_agg: Mutex<SimAggregate>,
}

/// Runs configurations against the simulator, memoizing results.
///
/// Each evaluation performs two simulator runs: a **timed replay** (trace
/// timestamps preserved) that yields the latency distribution, power, and
/// energy, and a **saturated replay** (timestamps compressed to zero, so the
/// queue depth drives submission) that yields the device's throughput
/// capability — the same methodology MQSim-based studies use for bandwidth.
///
/// The cache key is the exact configuration plus the workload name, so the
/// tuner never pays twice for the same (configuration, workload) pair — the
/// dominant cost in the paper's Table 6. Concurrent callers asking for the
/// same pair block on a per-key `OnceLock` instead of duplicating simulator
/// work, so [`Validator::simulator_runs`] is identical under any thread
/// count.
///
/// # Examples
///
/// ```
/// use autoblox::validator::{Validator, ValidatorOptions};
/// use iotrace::gen::WorkloadKind;
/// use ssdsim::config::SsdConfig;
///
/// let validator = Validator::new(ValidatorOptions { trace_events: 500, ..Default::default() });
/// let m = validator.evaluate(&SsdConfig::default(), WorkloadKind::Database);
/// assert!(m.latency_ns > 0.0);
/// ```
#[derive(Debug)]
pub struct Validator {
    opts: ValidatorOptions,
    traces: RwLock<HashMap<String, Arc<Trace>>>,
    /// Saturated (timestamps-compressed) variants of the validation traces,
    /// keyed by trace name like `traces` — built once per trace instead of
    /// re-cloning every event on every evaluation.
    sat_traces: RwLock<HashMap<String, Arc<Trace>>>,
    shards: [Shard; CACHE_SHARDS],
    runs: AtomicU64,
    /// Speculative results awaiting their first demand access.
    spec: Mutex<HashMap<CacheKey, PendingSpec>>,
    /// Relaxed mirror of `spec.len()`, so the demand fast path skips the
    /// store lock entirely when nothing was ever prefetched.
    spec_pending: AtomicUsize,
    spec_runs: AtomicU64,
    spec_hits: AtomicU64,
    counters: ValidatorCounters,
}

impl Validator {
    /// Creates a validator.
    pub fn new(opts: ValidatorOptions) -> Self {
        Validator {
            opts,
            traces: RwLock::new(HashMap::new()),
            sat_traces: RwLock::new(HashMap::new()),
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            runs: AtomicU64::new(0),
            spec: Mutex::new(HashMap::new()),
            spec_pending: AtomicUsize::new(0),
            spec_runs: AtomicU64::new(0),
            spec_hits: AtomicU64::new(0),
            counters: ValidatorCounters::default(),
        }
    }

    /// The options in effect.
    pub fn options(&self) -> ValidatorOptions {
        self.opts
    }

    /// Number of actual (non-cached) simulator runs performed.
    pub fn simulator_runs(&self) -> u64 {
        self.runs.load(Ordering::SeqCst)
    }

    /// The (cached) validation trace for a workload category, shared
    /// allocation-free via `Arc`.
    pub fn trace_for(&self, kind: WorkloadKind) -> Arc<Trace> {
        if let Some(t) = self.traces.read().get(kind.name()) {
            return Arc::clone(t);
        }
        // Generation is deterministic per (kind, seed), so a racing thread
        // building the same trace is wasted work at worst, never divergence;
        // `entry` keeps exactly one copy. The span is keyed by the workload
        // name, so a racing duplicate build collapses to the same identity
        // in the canonical span tree.
        let _span = telemetry::span::Span::enter_keyed(
            "validator.trace_build",
            telemetry::span::key_str(kind.name()),
        );
        let built = telemetry::start();
        let fresh = Arc::new(kind.spec().generate(self.opts.trace_events, self.opts.seed));
        if telemetry::enabled() {
            self.counters.trace_builds.inc();
            self.counters
                .trace_build_ns
                .add(telemetry::elapsed_ns(built));
        }
        let mut traces = self.traces.write();
        Arc::clone(traces.entry(kind.name().to_string()).or_insert(fresh))
    }

    /// Evaluates a configuration on a named workload category, generating
    /// (and caching) the validation trace for the category.
    pub fn evaluate(&self, cfg: &SsdConfig, kind: WorkloadKind) -> Measurement {
        let trace = self.trace_for(kind);
        self.evaluate_trace(cfg, &trace)
    }

    /// Evaluates a configuration on a caller-provided trace.
    pub fn evaluate_trace(&self, cfg: &SsdConfig, trace: &Trace) -> Measurement {
        let instrument = telemetry::enabled();
        let key = (ConfigKey::of(cfg), trace.name().to_string());
        let shard_idx = key.0.shard();
        let shard = &self.shards[shard_idx];
        if instrument {
            self.counters.shard_probes[shard_idx].inc();
        }
        if let Some(cell) = shard.read().get(&key) {
            if let Some(m) = cell.get() {
                if instrument {
                    self.counters.hits.inc();
                }
                return *m;
            }
        }
        let cell = {
            let mut map = shard.write();
            Arc::clone(map.entry(key.clone()).or_default())
        };
        // First caller simulates; concurrent callers for the same key block
        // here and reuse the result, keeping the run count sequential-exact.
        // A speculative prefetch of this key is promoted instead of
        // re-simulated: the run is charged and its reports absorbed/journaled
        // here — the exact point a sequential execution would have paid.
        let mut ran = false;
        let m = *cell.get_or_init(|| {
            ran = true;
            if let Some(p) = self.take_speculative(&key) {
                self.spec_hits.fetch_add(1, Ordering::SeqCst);
                self.runs.fetch_add(1, Ordering::SeqCst);
                self.commit_reports(trace.name(), p.reports.as_deref());
                p.measurement
            } else {
                let m = self.simulate(cfg, trace);
                self.runs.fetch_add(1, Ordering::SeqCst);
                m
            }
        });
        // A promoted speculation still counts as a miss: the demand probe
        // found no completed entry, exactly as in a sequential run — which
        // keeps the hit/miss counters independent of the speculation depth.
        if instrument {
            if ran {
                self.counters.misses.inc();
            } else {
                self.counters.dedup_waits.inc();
            }
        }
        m
    }

    /// Speculatively evaluates `(cfg, kind)` without charging the run
    /// accounting; see [`Validator::prefetch_trace`].
    pub fn prefetch(&self, cfg: &SsdConfig, kind: WorkloadKind) {
        let trace = self.trace_for(kind);
        self.prefetch_trace(cfg, &trace);
    }

    /// Speculatively evaluates a `(configuration, trace)` pair.
    ///
    /// The simulation happens now (typically on a worker thread), but every
    /// piece of sequential-exact accounting — [`Validator::simulator_runs`],
    /// the simulator aggregate, the device journal, and the exported cache —
    /// is deferred until a demand [`Validator::evaluate_trace`] consumes the
    /// result. A speculation that is never demanded therefore leaves all of
    /// them untouched, which is what keeps batched tuning byte-identical to
    /// sequential tuning at any speculation depth. Keys already evaluated
    /// (or already speculated) are skipped.
    pub fn prefetch_trace(&self, cfg: &SsdConfig, trace: &Trace) {
        let key = (ConfigKey::of(cfg), trace.name().to_string());
        // Already demanded — completed or in flight — or already speculated:
        // nothing useful to do.
        if self.shards[key.0.shard()].read().contains_key(&key) {
            return;
        }
        if self.spec_pending.load(Ordering::Relaxed) > 0 && self.spec.lock().contains_key(&key) {
            return;
        }
        let (m, reports) = self.simulate_core(cfg, trace);
        self.spec_runs.fetch_add(1, Ordering::SeqCst);
        let mut spec = self.spec.lock();
        // A racing prefetch of the same key keeps the first result; a demand
        // evaluation that started meanwhile leaves this entry to age out as
        // wasted work (it will never be promoted past the completed cell).
        spec.entry(key).or_insert(PendingSpec {
            measurement: m,
            reports,
        });
        self.spec_pending.store(spec.len(), Ordering::Relaxed);
    }

    /// Removes and returns the speculative entry for `key`, if any. The
    /// relaxed `spec_pending` probe keeps this a single atomic load for
    /// validators that never speculate.
    fn take_speculative(&self, key: &CacheKey) -> Option<PendingSpec> {
        if self.spec_pending.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let mut spec = self.spec.lock();
        let p = spec.remove(key);
        self.spec_pending.store(spec.len(), Ordering::Relaxed);
        p
    }

    /// Absorbs and journals a simulation's reports — the telemetry side
    /// effects of one charged simulator evaluation.
    fn commit_reports(&self, trace_name: &str, reports: Option<&(SimReport, SimReport)>) {
        if let Some((timed, saturated)) = reports {
            {
                let mut agg = self.counters.sim_agg.lock();
                agg.absorb(timed);
                agg.absorb(saturated);
            }
            let sink = crate::telemetry::global();
            sink.record_device(trace_name, "timed", timed);
            sink.record_device(trace_name, "saturated", saturated);
        }
    }

    /// The two uncached simulator runs behind one measurement, with the
    /// telemetry side effects committed immediately (demand path).
    fn simulate(&self, cfg: &SsdConfig, trace: &Trace) -> Measurement {
        let (m, reports) = self.simulate_core(cfg, trace);
        self.commit_reports(trace.name(), reports.as_deref());
        m
    }

    /// Runs the timed and saturated replays for `(cfg, trace)`. Pure with
    /// respect to run accounting: neither the run counter nor the aggregate
    /// nor the journal is touched, so both the demand and the speculative
    /// path can share it. Returns the two reports while telemetry is
    /// enabled so the caller can commit (or defer) them.
    fn simulate_core(
        &self,
        cfg: &SsdConfig,
        trace: &Trace,
    ) -> (Measurement, Option<Box<(SimReport, SimReport)>>) {
        // Keyed by (configuration, trace) content, so the span id does not
        // depend on which thread won the `OnceLock` race to simulate.
        let _span = telemetry::span::Span::enter_keyed(
            "validator.simulate",
            if telemetry::span::tracing_enabled() {
                ConfigKey::of(cfg).0[0] ^ telemetry::span::key_str(trace.name())
            } else {
                0
            },
        );
        let sim_start = telemetry::start();
        // Timed replay: latency, power, energy.
        //
        // Known scale limitation: a validation trace of tens of thousands
        // of events moves hundreds of MB, so multi-GB DRAM-cache capacities
        // cannot express their real reuse benefit here (the paper's
        // 15-240 h traces move TBs). The DRAM capacity parameters are
        // therefore near-insensitive at this scale; see DESIGN.md §9.
        // Per-thread scratch: the latency vectors and the outstanding heap
        // grow once per worker thread and are reused by every replay after
        // that (reports are pure functions of config + trace; the scratch
        // only carries capacity).
        thread_local! {
            static SCRATCH: std::cell::RefCell<ssdsim::RunScratch> =
                std::cell::RefCell::new(ssdsim::RunScratch::default());
        }
        let mut sim = Simulator::new(cfg.clone());
        sim.warm_up(self.opts.warm_fill);
        let report = SCRATCH.with(|s| sim.run_scratch(trace, &mut s.borrow_mut()));
        let mut m = Measurement::from_report(&report);
        // Saturated replay: throughput capability.
        let saturated = self.saturated_for(trace);
        let mut sat_sim = Simulator::new(cfg.clone());
        sat_sim.warm_up(self.opts.warm_fill);
        let sat_report = SCRATCH.with(|s| sat_sim.run_scratch(&saturated, &mut s.borrow_mut()));
        // Sustained throughput includes draining the write-back cache.
        let drained_ns = sat_sim.drain(sat_report.makespan_ns).max(1);
        m.throughput_bps = (sat_report.host_bytes as f64 / (drained_ns as f64 / 1e9)).max(1.0);
        if telemetry::enabled() {
            self.counters
                .simulate_ns
                .add(telemetry::elapsed_ns(sim_start));
            (m, Some(Box::new((report, sat_report))))
        } else {
            (m, None)
        }
    }

    /// The cached saturated (timestamps-compressed) variant of `trace`.
    ///
    /// Keyed by trace name, the same identity assumption the measurement
    /// cache already makes: one validator treats a trace name as naming one
    /// immutable event stream.
    fn saturated_for(&self, trace: &Trace) -> Arc<Trace> {
        if let Some(t) = self.sat_traces.read().get(trace.name()) {
            return Arc::clone(t);
        }
        let fresh = Arc::new(Trace::from_events(
            trace.name(),
            trace
                .events()
                .iter()
                .map(|e| iotrace::TraceEvent::new(0, e.lba, e.size_bytes, e.op))
                .collect(),
        ));
        let mut map = self.sat_traces.write();
        Arc::clone(map.entry(trace.name().to_string()).or_insert(fresh))
    }

    /// Snapshot of the simulator activity aggregate (zero unless telemetry
    /// was enabled while the validator ran).
    pub fn sim_aggregate(&self) -> SimAggregate {
        *self.counters.sim_agg.lock()
    }

    /// Drops all memoized measurements (used between experiments that reset
    /// the model, e.g. the α/β sweeps of §4.6). Unconsumed speculative
    /// results are dropped too — they must not outlive the cache they were
    /// meant to warm.
    pub fn clear_cache(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        let mut spec = self.spec.lock();
        spec.clear();
        self.spec_pending.store(0, Ordering::Relaxed);
    }

    /// Exports every completed measurement-cache entry, sorted by
    /// `(key, trace)` so the output is deterministic regardless of shard
    /// iteration order. In-flight (incomplete) evaluations are skipped.
    ///
    /// Together with [`Validator::import_cache`] this lets a resumed tuning
    /// run skip every simulation its interrupted predecessor already paid
    /// for.
    pub fn export_cache(&self) -> Vec<CacheEntry> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for ((key, trace), cell) in shard.read().iter() {
                if let Some(m) = cell.get() {
                    out.push(CacheEntry {
                        key: [format!("{:016x}", key.0[0]), format!("{:016x}", key.0[1])],
                        trace: trace.clone(),
                        measurement: *m,
                    });
                }
            }
        }
        out.sort_by(|a, b| (&a.key, &a.trace).cmp(&(&b.key, &b.trace)));
        out
    }

    /// Imports previously exported cache entries; returns how many were
    /// newly installed (entries already present are left untouched, so an
    /// import never overwrites a live measurement).
    ///
    /// The simulator-run counter is not advanced: imported measurements were
    /// paid for by the exporting run, and a resumed tune accounts for them
    /// through its own `TuneState` tally.
    ///
    /// # Errors
    ///
    /// Rejects entries whose key words are not 16-digit hex (a corrupt or
    /// hand-edited checkpoint); nothing before the bad entry is rolled back.
    pub fn import_cache(&self, entries: &[CacheEntry]) -> Result<usize, String> {
        let mut installed = 0;
        for e in entries {
            let mut words = [0u64; 2];
            for (slot, word) in words.iter_mut().zip(&e.key) {
                *slot = u64::from_str_radix(word, 16)
                    .map_err(|_| format!("cache entry key {word:?} is not a hex word"))?;
            }
            let key = (ConfigKey(words), e.trace.clone());
            let cell = {
                let mut map = self.shards[key.0.shard()].write();
                Arc::clone(map.entry(key).or_default())
            };
            if cell.set(e.measurement).is_ok() {
                installed += 1;
            }
        }
        Ok(installed)
    }

    /// Snapshot of this validator's cache and simulator activity.
    ///
    /// `simulator_runs` and `shard_entries` are exact regardless of the
    /// telemetry switch; the remaining counters are zero unless telemetry
    /// was enabled while the validator ran.
    pub fn stats(&self) -> ValidatorStats {
        let mut shard_probes = [0u64; CACHE_SHARDS];
        let mut shard_entries = [0u64; CACHE_SHARDS];
        for i in 0..CACHE_SHARDS {
            shard_probes[i] = self.counters.shard_probes[i].get();
            shard_entries[i] = self.shards[i].read().len() as u64;
        }
        ValidatorStats {
            simulator_runs: self.simulator_runs(),
            cache_hits: self.counters.hits.get(),
            cache_misses: self.counters.misses.get(),
            dedup_waits: self.counters.dedup_waits.get(),
            trace_builds: self.counters.trace_builds.get(),
            trace_build_ns: self.counters.trace_build_ns.get(),
            simulate_ns: self.counters.simulate_ns.get(),
            shard_probes,
            shard_entries,
            speculative_runs: self.spec_runs.load(Ordering::SeqCst),
            speculative_hits: self.spec_hits.load(Ordering::SeqCst),
            speculative_wasted: self.spec.lock().len() as u64,
            sim: *self.counters.sim_agg.lock(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Validator {
        Validator::new(ValidatorOptions {
            trace_events: 400,
            ..Default::default()
        })
    }

    #[test]
    fn evaluation_is_cached() {
        let v = quick();
        let cfg = SsdConfig::default();
        let a = v.evaluate(&cfg, WorkloadKind::Database);
        assert_eq!(v.simulator_runs(), 1);
        let b = v.evaluate(&cfg, WorkloadKind::Database);
        assert_eq!(v.simulator_runs(), 1, "second call must hit the cache");
        assert_eq!(a, b);
    }

    #[test]
    fn different_configs_rerun() {
        let v = quick();
        v.evaluate(&SsdConfig::default(), WorkloadKind::Database);
        let other = SsdConfig {
            channel_count: 4,
            ..SsdConfig::default()
        };
        v.evaluate(&other, WorkloadKind::Database);
        assert_eq!(v.simulator_runs(), 2);
    }

    #[test]
    fn different_workloads_rerun() {
        let v = quick();
        let cfg = SsdConfig::default();
        v.evaluate(&cfg, WorkloadKind::Database);
        v.evaluate(&cfg, WorkloadKind::WebSearch);
        assert_eq!(v.simulator_runs(), 2);
    }

    #[test]
    fn clear_cache_forces_rerun() {
        let v = quick();
        let cfg = SsdConfig::default();
        v.evaluate(&cfg, WorkloadKind::Fiu);
        v.clear_cache();
        v.evaluate(&cfg, WorkloadKind::Fiu);
        assert_eq!(v.simulator_runs(), 2);
    }

    #[test]
    fn measurements_are_physical() {
        let v = quick();
        let m = v.evaluate(&SsdConfig::default(), WorkloadKind::KvStore);
        assert!(m.latency_ns > 100.0);
        assert!(m.throughput_bps > 1e3);
        assert!(m.power_w > 0.0);
        assert!(m.energy_mj > 0.0);
    }

    #[test]
    fn config_keys_distinguish_configs() {
        let base = SsdConfig::default();
        let a = ConfigKey::of(&base);
        assert_eq!(a, ConfigKey::of(&base.clone()));
        let mut tweaked = base.clone();
        tweaked.gc_threshold += 1e-9;
        assert_ne!(a, ConfigKey::of(&tweaked));
        let mut flipped = base;
        flipped.preemptible_gc = !flipped.preemptible_gc;
        assert_ne!(a, ConfigKey::of(&flipped));
    }

    #[test]
    fn validator_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Validator>();
    }

    #[test]
    fn imported_cache_gives_run_count_parity() {
        let v = quick();
        let base = SsdConfig::default();
        let other = SsdConfig {
            channel_count: 4,
            ..SsdConfig::default()
        };
        let a = v.evaluate(&base, WorkloadKind::Database);
        let b = v.evaluate(&other, WorkloadKind::Database);
        assert_eq!(v.simulator_runs(), 2);

        let exported = v.export_cache();
        assert_eq!(exported.len(), 2);

        // A fresh validator with the import answers the same evaluations
        // without a single simulator run.
        let w = quick();
        assert_eq!(w.import_cache(&exported).expect("import"), 2);
        assert_eq!(w.evaluate(&base, WorkloadKind::Database), a);
        assert_eq!(w.evaluate(&other, WorkloadKind::Database), b);
        assert_eq!(w.simulator_runs(), 0, "imports must be pure cache hits");

        // Re-importing is idempotent and never overwrites live entries.
        assert_eq!(w.import_cache(&exported).expect("import"), 0);
    }

    #[test]
    fn export_is_sorted_and_round_trips() {
        let v = quick();
        v.evaluate(&SsdConfig::default(), WorkloadKind::WebSearch);
        v.evaluate(&SsdConfig::default(), WorkloadKind::Database);
        let exported = v.export_cache();
        let mut sorted = exported.clone();
        sorted.sort_by(|a, b| (&a.key, &a.trace).cmp(&(&b.key, &b.trace)));
        assert_eq!(exported, sorted);
        let json = serde_json::to_string(&exported).expect("serialize");
        let back: Vec<CacheEntry> = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, exported);
    }

    #[test]
    fn prefetch_defers_run_charging_until_demand() {
        let v = quick();
        let cfg = SsdConfig::default();
        v.prefetch(&cfg, WorkloadKind::Database);
        // The simulation happened but nothing sequential-visible moved.
        assert_eq!(v.simulator_runs(), 0, "prefetch must not charge runs");
        assert!(v.export_cache().is_empty(), "prefetch must not be exported");
        let s = v.stats();
        assert_eq!(s.speculative_runs, 1);
        assert_eq!(s.speculative_hits, 0);
        assert_eq!(s.speculative_wasted, 1);

        // Demand access promotes: charged now, and bit-identical to a
        // validator that never speculated.
        let m = v.evaluate(&cfg, WorkloadKind::Database);
        assert_eq!(v.simulator_runs(), 1);
        assert_eq!(v.export_cache().len(), 1);
        let s = v.stats();
        assert_eq!(s.speculative_hits, 1);
        assert_eq!(s.speculative_wasted, 0);

        let w = quick();
        assert_eq!(w.evaluate(&cfg, WorkloadKind::Database), m);
    }

    #[test]
    fn prefetch_skips_known_keys_and_clear_drops_pending() {
        let v = quick();
        let cfg = SsdConfig::default();
        v.evaluate(&cfg, WorkloadKind::Database);
        v.prefetch(&cfg, WorkloadKind::Database);
        assert_eq!(
            v.stats().speculative_runs,
            0,
            "prefetch of an evaluated key must be a no-op"
        );
        v.prefetch(&cfg, WorkloadKind::WebSearch);
        v.prefetch(&cfg, WorkloadKind::WebSearch);
        assert_eq!(
            v.stats().speculative_runs,
            1,
            "re-prefetch of a pending key must be a no-op"
        );
        v.clear_cache();
        assert_eq!(v.stats().speculative_wasted, 0);
        // After the clear the speculation is gone: demand must re-simulate.
        v.evaluate(&cfg, WorkloadKind::WebSearch);
        assert_eq!(v.simulator_runs(), 2);
        assert_eq!(v.stats().speculative_hits, 0);
    }

    #[test]
    fn import_rejects_malformed_keys() {
        let v = quick();
        let bad = CacheEntry {
            key: ["zzzz".into(), "0".into()],
            trace: "t".into(),
            measurement: Measurement {
                latency_ns: 1.0,
                throughput_bps: 1.0,
                power_w: 1.0,
                energy_mj: 1.0,
            },
        };
        assert!(v.import_cache(&[bad]).is_err());
    }
}
