//! Efficiency validation (§3.4): running candidate configurations on the
//! SSD simulator and caching the measurements.
//!
//! The validator is `Sync`: the trace cache and the sharded measurement
//! cache sit behind `parking_lot::RwLock`s, the run counter is atomic, and
//! in-flight evaluations are deduplicated per key with `OnceLock`, so any
//! number of threads can share one validator and the simulator-run count
//! stays exactly what a sequential execution would produce.

use crate::metrics::Measurement;
use iotrace::gen::WorkloadKind;
use iotrace::Trace;
use parking_lot::RwLock;
use ssdsim::config::SsdConfig;
use ssdsim::Simulator;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Options controlling validation runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidatorOptions {
    /// Events per generated validation trace.
    pub trace_events: usize,
    /// Flash occupancy established before measuring (paper: >= 50%).
    pub warm_fill: f64,
    /// Seed for the deterministic validation traces.
    pub seed: u64,
}

impl Default for ValidatorOptions {
    fn default() -> Self {
        ValidatorOptions {
            trace_events: 3_000,
            warm_fill: 0.5,
            seed: 0xB10C5,
        }
    }
}

/// Compact memoization key for one [`SsdConfig`].
///
/// 128 bits of FNV-1a over [`SsdConfig::canonical_words`] — two independent
/// 64-bit streams — replacing the seed's `serde_json::to_string(cfg)` key,
/// which serialized ~50 fields to a heap string on every cache probe.
/// Hashing actual field values (not parameter-grid indices) keeps off-grid
/// configurations such as presets collision-distinct too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConfigKey([u64; 2]);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl ConfigKey {
    /// Fingerprints a configuration.
    pub fn of(cfg: &SsdConfig) -> Self {
        let words = cfg.canonical_words();
        let mut h0 = FNV_OFFSET;
        // Second stream: offset basis perturbed so the two hashes are
        // independent even over identical input words.
        let mut h1 = FNV_OFFSET ^ 0x9E37_79B9_7F4A_7C15;
        for (i, &w) in words.iter().enumerate() {
            h0 = (h0 ^ w).wrapping_mul(FNV_PRIME);
            h1 = (h1 ^ w.rotate_left((i % 63) as u32 + 1)).wrapping_mul(FNV_PRIME);
        }
        ConfigKey([h0, h1])
    }

    fn shard(&self) -> usize {
        (self.0[0] >> 59) as usize % CACHE_SHARDS
    }
}

const CACHE_SHARDS: usize = 16;

type CacheKey = (ConfigKey, String);
type Shard = RwLock<HashMap<CacheKey, Arc<OnceLock<Measurement>>>>;

/// Runs configurations against the simulator, memoizing results.
///
/// Each evaluation performs two simulator runs: a **timed replay** (trace
/// timestamps preserved) that yields the latency distribution, power, and
/// energy, and a **saturated replay** (timestamps compressed to zero, so the
/// queue depth drives submission) that yields the device's throughput
/// capability — the same methodology MQSim-based studies use for bandwidth.
///
/// The cache key is the exact configuration plus the workload name, so the
/// tuner never pays twice for the same (configuration, workload) pair — the
/// dominant cost in the paper's Table 6. Concurrent callers asking for the
/// same pair block on a per-key `OnceLock` instead of duplicating simulator
/// work, so [`Validator::simulator_runs`] is identical under any thread
/// count.
///
/// # Examples
///
/// ```
/// use autoblox::validator::{Validator, ValidatorOptions};
/// use iotrace::gen::WorkloadKind;
/// use ssdsim::config::SsdConfig;
///
/// let validator = Validator::new(ValidatorOptions { trace_events: 500, ..Default::default() });
/// let m = validator.evaluate(&SsdConfig::default(), WorkloadKind::Database);
/// assert!(m.latency_ns > 0.0);
/// ```
#[derive(Debug)]
pub struct Validator {
    opts: ValidatorOptions,
    traces: RwLock<HashMap<String, Arc<Trace>>>,
    shards: [Shard; CACHE_SHARDS],
    runs: AtomicU64,
}

impl Validator {
    /// Creates a validator.
    pub fn new(opts: ValidatorOptions) -> Self {
        Validator {
            opts,
            traces: RwLock::new(HashMap::new()),
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            runs: AtomicU64::new(0),
        }
    }

    /// The options in effect.
    pub fn options(&self) -> ValidatorOptions {
        self.opts
    }

    /// Number of actual (non-cached) simulator runs performed.
    pub fn simulator_runs(&self) -> u64 {
        self.runs.load(Ordering::SeqCst)
    }

    /// The (cached) validation trace for a workload category, shared
    /// allocation-free via `Arc`.
    pub fn trace_for(&self, kind: WorkloadKind) -> Arc<Trace> {
        if let Some(t) = self.traces.read().get(kind.name()) {
            return Arc::clone(t);
        }
        // Generation is deterministic per (kind, seed), so a racing thread
        // building the same trace is wasted work at worst, never divergence;
        // `entry` keeps exactly one copy.
        let fresh = Arc::new(kind.spec().generate(self.opts.trace_events, self.opts.seed));
        let mut traces = self.traces.write();
        Arc::clone(traces.entry(kind.name().to_string()).or_insert(fresh))
    }

    /// Evaluates a configuration on a named workload category, generating
    /// (and caching) the validation trace for the category.
    pub fn evaluate(&self, cfg: &SsdConfig, kind: WorkloadKind) -> Measurement {
        let trace = self.trace_for(kind);
        self.evaluate_trace(cfg, &trace)
    }

    /// Evaluates a configuration on a caller-provided trace.
    pub fn evaluate_trace(&self, cfg: &SsdConfig, trace: &Trace) -> Measurement {
        let key = (ConfigKey::of(cfg), trace.name().to_string());
        let shard = &self.shards[key.0.shard()];
        if let Some(cell) = shard.read().get(&key) {
            if let Some(m) = cell.get() {
                return *m;
            }
        }
        let cell = {
            let mut map = shard.write();
            Arc::clone(map.entry(key).or_default())
        };
        // First caller simulates; concurrent callers for the same key block
        // here and reuse the result, keeping the run count sequential-exact.
        *cell.get_or_init(|| {
            let m = self.simulate(cfg, trace);
            self.runs.fetch_add(1, Ordering::SeqCst);
            m
        })
    }

    /// The two uncached simulator runs behind one measurement.
    fn simulate(&self, cfg: &SsdConfig, trace: &Trace) -> Measurement {
        // Timed replay: latency, power, energy.
        //
        // Known scale limitation: a validation trace of tens of thousands
        // of events moves hundreds of MB, so multi-GB DRAM-cache capacities
        // cannot express their real reuse benefit here (the paper's
        // 15-240 h traces move TBs). The DRAM capacity parameters are
        // therefore near-insensitive at this scale; see DESIGN.md §9.
        let mut sim = Simulator::new(cfg.clone());
        sim.warm_up(self.opts.warm_fill);
        let report = sim.run(trace);
        let mut m = Measurement::from_report(&report);
        // Saturated replay: throughput capability.
        let saturated = Trace::from_events(
            trace.name(),
            trace
                .events()
                .iter()
                .map(|e| iotrace::TraceEvent::new(0, e.lba, e.size_bytes, e.op))
                .collect(),
        );
        let mut sat_sim = Simulator::new(cfg.clone());
        sat_sim.warm_up(self.opts.warm_fill);
        let sat_report = sat_sim.run(&saturated);
        // Sustained throughput includes draining the write-back cache.
        let drained_ns = sat_sim.drain(sat_report.makespan_ns).max(1);
        m.throughput_bps = (sat_report.host_bytes as f64 / (drained_ns as f64 / 1e9)).max(1.0);
        m
    }

    /// Drops all memoized measurements (used between experiments that reset
    /// the model, e.g. the α/β sweeps of §4.6).
    pub fn clear_cache(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Validator {
        Validator::new(ValidatorOptions {
            trace_events: 400,
            ..Default::default()
        })
    }

    #[test]
    fn evaluation_is_cached() {
        let v = quick();
        let cfg = SsdConfig::default();
        let a = v.evaluate(&cfg, WorkloadKind::Database);
        assert_eq!(v.simulator_runs(), 1);
        let b = v.evaluate(&cfg, WorkloadKind::Database);
        assert_eq!(v.simulator_runs(), 1, "second call must hit the cache");
        assert_eq!(a, b);
    }

    #[test]
    fn different_configs_rerun() {
        let v = quick();
        v.evaluate(&SsdConfig::default(), WorkloadKind::Database);
        let other = SsdConfig {
            channel_count: 4,
            ..SsdConfig::default()
        };
        v.evaluate(&other, WorkloadKind::Database);
        assert_eq!(v.simulator_runs(), 2);
    }

    #[test]
    fn different_workloads_rerun() {
        let v = quick();
        let cfg = SsdConfig::default();
        v.evaluate(&cfg, WorkloadKind::Database);
        v.evaluate(&cfg, WorkloadKind::WebSearch);
        assert_eq!(v.simulator_runs(), 2);
    }

    #[test]
    fn clear_cache_forces_rerun() {
        let v = quick();
        let cfg = SsdConfig::default();
        v.evaluate(&cfg, WorkloadKind::Fiu);
        v.clear_cache();
        v.evaluate(&cfg, WorkloadKind::Fiu);
        assert_eq!(v.simulator_runs(), 2);
    }

    #[test]
    fn measurements_are_physical() {
        let v = quick();
        let m = v.evaluate(&SsdConfig::default(), WorkloadKind::KvStore);
        assert!(m.latency_ns > 100.0);
        assert!(m.throughput_bps > 1e3);
        assert!(m.power_w > 0.0);
        assert!(m.energy_mj > 0.0);
    }

    #[test]
    fn config_keys_distinguish_configs() {
        let base = SsdConfig::default();
        let a = ConfigKey::of(&base);
        assert_eq!(a, ConfigKey::of(&base.clone()));
        let mut tweaked = base.clone();
        tweaked.gc_threshold += 1e-9;
        assert_ne!(a, ConfigKey::of(&tweaked));
        let mut flipped = base;
        flipped.preemptible_gc = !flipped.preemptible_gc;
        assert_ne!(a, ConfigKey::of(&flipped));
    }

    #[test]
    fn validator_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Validator>();
    }
}
