//! Efficiency validation (§3.4): running candidate configurations on the
//! SSD simulator and caching the measurements.

use crate::metrics::Measurement;
use iotrace::gen::WorkloadKind;
use iotrace::Trace;
use ssdsim::config::SsdConfig;
use ssdsim::Simulator;
use std::cell::RefCell;
use std::collections::HashMap;

/// Options controlling validation runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidatorOptions {
    /// Events per generated validation trace.
    pub trace_events: usize,
    /// Flash occupancy established before measuring (paper: >= 50%).
    pub warm_fill: f64,
    /// Seed for the deterministic validation traces.
    pub seed: u64,
}

impl Default for ValidatorOptions {
    fn default() -> Self {
        ValidatorOptions {
            trace_events: 3_000,
            warm_fill: 0.5,
            seed: 0xB10C5,
        }
    }
}

/// Runs configurations against the simulator, memoizing results.
///
/// Each evaluation performs two simulator runs: a **timed replay** (trace
/// timestamps preserved) that yields the latency distribution, power, and
/// energy, and a **saturated replay** (timestamps compressed to zero, so the
/// queue depth drives submission) that yields the device's throughput
/// capability — the same methodology MQSim-based studies use for bandwidth.
///
/// The cache key is the exact configuration plus the workload name, so the
/// tuner never pays twice for the same (configuration, workload) pair — the
/// dominant cost in the paper's Table 6.
///
/// # Examples
///
/// ```
/// use autoblox::validator::{Validator, ValidatorOptions};
/// use iotrace::gen::WorkloadKind;
/// use ssdsim::config::SsdConfig;
///
/// let validator = Validator::new(ValidatorOptions { trace_events: 500, ..Default::default() });
/// let m = validator.evaluate(&SsdConfig::default(), WorkloadKind::Database);
/// assert!(m.latency_ns > 0.0);
/// ```
#[derive(Debug)]
pub struct Validator {
    opts: ValidatorOptions,
    traces: RefCell<HashMap<String, Trace>>,
    cache: RefCell<HashMap<(String, String), Measurement>>,
    runs: RefCell<u64>,
}

impl Validator {
    /// Creates a validator.
    pub fn new(opts: ValidatorOptions) -> Self {
        Validator {
            opts,
            traces: RefCell::new(HashMap::new()),
            cache: RefCell::new(HashMap::new()),
            runs: RefCell::new(0),
        }
    }

    /// The options in effect.
    pub fn options(&self) -> ValidatorOptions {
        self.opts
    }

    /// Number of actual (non-cached) simulator runs performed.
    pub fn simulator_runs(&self) -> u64 {
        *self.runs.borrow()
    }

    /// Evaluates a configuration on a named workload category, generating
    /// (and caching) the validation trace for the category.
    pub fn evaluate(&self, cfg: &SsdConfig, kind: WorkloadKind) -> Measurement {
        let trace = self
            .traces
            .borrow_mut()
            .entry(kind.name().to_string())
            .or_insert_with(|| kind.spec().generate(self.opts.trace_events, self.opts.seed))
            .clone();
        self.evaluate_trace(cfg, &trace)
    }

    /// Evaluates a configuration on a caller-provided trace.
    pub fn evaluate_trace(&self, cfg: &SsdConfig, trace: &Trace) -> Measurement {
        let key = (
            serde_json::to_string(cfg).expect("config serializes"),
            trace.name().to_string(),
        );
        if let Some(m) = self.cache.borrow().get(&key) {
            return *m;
        }
        // Timed replay: latency, power, energy.
        //
        // Known scale limitation: a validation trace of tens of thousands
        // of events moves hundreds of MB, so multi-GB DRAM-cache capacities
        // cannot express their real reuse benefit here (the paper's
        // 15-240 h traces move TBs). The DRAM capacity parameters are
        // therefore near-insensitive at this scale; see DESIGN.md §9.
        let mut sim = Simulator::new(cfg.clone());
        sim.warm_up(self.opts.warm_fill);
        let report = sim.run(trace);
        let mut m = Measurement::from_report(&report);
        // Saturated replay: throughput capability.
        let saturated = Trace::from_events(
            trace.name(),
            trace
                .events()
                .iter()
                .map(|e| iotrace::TraceEvent::new(0, e.lba, e.size_bytes, e.op))
                .collect(),
        );
        let mut sat_sim = Simulator::new(cfg.clone());
        sat_sim.warm_up(self.opts.warm_fill);
        let sat_report = sat_sim.run(&saturated);
        // Sustained throughput includes draining the write-back cache.
        let drained_ns = sat_sim.drain(sat_report.makespan_ns).max(1);
        m.throughput_bps = (sat_report.host_bytes as f64 / (drained_ns as f64 / 1e9)).max(1.0);
        *self.runs.borrow_mut() += 1;
        self.cache.borrow_mut().insert(key, m);
        m
    }

    /// Drops all memoized measurements (used between experiments that reset
    /// the model, e.g. the α/β sweeps of §4.6).
    pub fn clear_cache(&self) {
        self.cache.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Validator {
        Validator::new(ValidatorOptions {
            trace_events: 400,
            ..Default::default()
        })
    }

    #[test]
    fn evaluation_is_cached() {
        let v = quick();
        let cfg = SsdConfig::default();
        let a = v.evaluate(&cfg, WorkloadKind::Database);
        assert_eq!(v.simulator_runs(), 1);
        let b = v.evaluate(&cfg, WorkloadKind::Database);
        assert_eq!(v.simulator_runs(), 1, "second call must hit the cache");
        assert_eq!(a, b);
    }

    #[test]
    fn different_configs_rerun() {
        let v = quick();
        v.evaluate(&SsdConfig::default(), WorkloadKind::Database);
        let other = SsdConfig {
            channel_count: 4,
            ..SsdConfig::default()
        };
        v.evaluate(&other, WorkloadKind::Database);
        assert_eq!(v.simulator_runs(), 2);
    }

    #[test]
    fn different_workloads_rerun() {
        let v = quick();
        let cfg = SsdConfig::default();
        v.evaluate(&cfg, WorkloadKind::Database);
        v.evaluate(&cfg, WorkloadKind::WebSearch);
        assert_eq!(v.simulator_runs(), 2);
    }

    #[test]
    fn clear_cache_forces_rerun() {
        let v = quick();
        let cfg = SsdConfig::default();
        v.evaluate(&cfg, WorkloadKind::Fiu);
        v.clear_cache();
        v.evaluate(&cfg, WorkloadKind::Fiu);
        assert_eq!(v.simulator_runs(), 2);
    }

    #[test]
    fn measurements_are_physical() {
        let v = quick();
        let m = v.evaluate(&SsdConfig::default(), WorkloadKind::KvStore);
        assert!(m.latency_ns > 100.0);
        assert!(m.throughput_bps > 1e3);
        assert!(m.power_w > 0.0);
        assert!(m.energy_mj > 0.0);
    }
}
