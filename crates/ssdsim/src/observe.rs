//! Device observatory: in-simulator time-series sampling and bottleneck
//! attribution.
//!
//! Two complementary views of where a run's time went:
//!
//! - [`DeviceSeries`] — a bounded, deterministic time series of
//!   [`DeviceSample`]s taken every `interval_ns` of *simulated* time while
//!   the process-wide telemetry switch is on. Each sample snapshots channel
//!   and die busy fractions over the elapsed interval plus instantaneous
//!   cache occupancy/hit rates, host queue depth, GC backlog/activity, and
//!   cumulative write amplification. The buffer is drop-counting: once
//!   `max` samples exist, later ones are dropped (newest-dropped) and
//!   counted, so a pathological interval cannot balloon memory and a
//!   truncated series is visibly truncated.
//! - [`BottleneckReport`] — an end-of-run attribution of total request
//!   latency into channel-wait / plane-busy / GC-stall / cache-miss /
//!   host-queueing fractions, built from the simulator's always-on wait
//!   counters (so it is populated even with telemetry off).
//!
//! Both are pure functions of the (configuration, trace) pair — no wall
//! clock, no randomness — so they are bit-identical across thread counts
//! and back-to-back runs, which is what lets the regression gate assert on
//! them.

use serde::{Deserialize, Serialize};

/// Default simulated-time spacing between device samples (100 µs).
pub const DEFAULT_SAMPLE_INTERVAL_NS: u64 = 100_000;

/// Default bound on retained samples per run.
pub const DEFAULT_SAMPLE_CAP: usize = 512;

/// One snapshot of device state at a simulated instant.
///
/// Busy fractions cover the interval that *ended* at `t_ns`; occupancy,
/// queue depth, and backlog are instantaneous; hit rates and write
/// amplification are cumulative since the simulator was built.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceSample {
    /// Simulated time of the sample, ns.
    pub t_ns: u64,
    /// Fraction of aggregate channel capacity busy over the interval
    /// (clamped to 1.0 — background work is charged in bursts).
    pub channel_busy: f64,
    /// Fraction of aggregate die/plane capacity busy over the interval.
    pub plane_busy: f64,
    /// Of the die busy fraction, the part consumed by GC / wear leveling.
    pub gc_activity: f64,
    /// Outstanding host requests in the device queue.
    pub queue_depth: u64,
    /// Data-cache fill fraction (0 when the cache has zero capacity).
    pub data_cache_occupancy: f64,
    /// Cumulative data-cache read hit rate.
    pub data_cache_hit_rate: f64,
    /// Cached-mapping-table fill fraction.
    pub cmt_occupancy: f64,
    /// Cumulative CMT hit rate.
    pub cmt_hit_rate: f64,
    /// Pages the device is short of its per-plane GC free-page target,
    /// summed over planes (0 when every plane is above threshold).
    pub gc_backlog_pages: u64,
    /// Cumulative write amplification (physical programs / host writes).
    pub write_amplification: f64,
}

/// A bounded, drop-counting series of [`DeviceSample`]s from one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceSeries {
    /// Simulated-time spacing between samples, ns.
    pub interval_ns: u64,
    /// Retained samples, oldest first.
    pub samples: Vec<DeviceSample>,
    /// Samples dropped after the buffer filled (drop-newest).
    pub dropped: u64,
}

impl DeviceSeries {
    /// Creates an empty series with the given sampling interval.
    pub fn new(interval_ns: u64) -> Self {
        DeviceSeries {
            interval_ns,
            samples: Vec::new(),
            dropped: 0,
        }
    }

    /// Appends a sample unless the series already holds `max`; a rejected
    /// sample is counted in [`DeviceSeries::dropped`].
    pub fn push_bounded(&mut self, max: usize, sample: DeviceSample) {
        if self.samples.len() >= max {
            self.dropped += 1;
        } else {
            self.samples.push(sample);
        }
    }

    /// Retained sample count.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no sample was retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Attribution of one run's total request latency to device resources.
///
/// Raw totals are nanosecond sums over the simulator's lifetime (matching
/// the `diag_*` counters); fractions are each component divided by the
/// total end-to-end request time (arrival to completion, summed over
/// requests). Components overlap — a multi-page request accrues waits on
/// several planes concurrently, and GC stall time resurfaces as plane wait
/// for the ops queued behind it — so when the raw fractions sum past 1.0
/// they are rescaled proportionally; `other_frac` is whatever the six
/// attributed buckets leave unexplained (flash service time of host
/// operations, DRAM and link transfers, protocol overhead).
///
/// The invariant the proptest suite holds: every fraction lies in
/// `[0, 1]` and the seven fractions sum to at most 1.0 (up to float
/// rounding).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BottleneckReport {
    /// Total end-to-end request time attributed, ns.
    pub total_latency_ns: u64,
    /// Time operations waited for busy channels, ns (reads + writes).
    pub channel_wait_ns: u64,
    /// Time operations waited for busy dies/planes, ns (reads + writes).
    pub plane_wait_ns: u64,
    /// Die time consumed by GC and wear-leveling migrations, ns.
    pub gc_stall_ns: u64,
    /// Flash service time paid because a cache missed (data cache, CMT,
    /// read-modify-write fetches), ns.
    pub cache_miss_ns: u64,
    /// Host-side time requests waited to enter the full device queue, ns.
    pub queue_wait_ns: u64,
    /// Die time consumed folding SLC-cache blocks into capacity flash, ns
    /// (hybrid device families only; always zero on homogeneous devices).
    #[serde(default)]
    pub slc_migration_ns: u64,
    /// `channel_wait_ns` over the total, rescaled (see type docs).
    pub channel_wait_frac: f64,
    /// `plane_wait_ns` over the total, rescaled.
    pub plane_wait_frac: f64,
    /// `gc_stall_ns` over the total, rescaled.
    pub gc_stall_frac: f64,
    /// `cache_miss_ns` over the total, rescaled.
    pub cache_miss_frac: f64,
    /// `queue_wait_ns` over the total, rescaled.
    pub host_queue_frac: f64,
    /// `slc_migration_ns` over the total, rescaled.
    #[serde(default)]
    pub slc_migration_frac: f64,
    /// Unattributed remainder of the total.
    pub other_frac: f64,
}

impl BottleneckReport {
    /// Builds a report from raw nanosecond totals, normalizing the
    /// fractions so they sum to at most 1.0.
    pub fn from_totals(
        total_latency_ns: u64,
        channel_wait_ns: u64,
        plane_wait_ns: u64,
        gc_stall_ns: u64,
        cache_miss_ns: u64,
        queue_wait_ns: u64,
        slc_migration_ns: u64,
    ) -> Self {
        let mut report = BottleneckReport {
            total_latency_ns,
            channel_wait_ns,
            plane_wait_ns,
            gc_stall_ns,
            cache_miss_ns,
            queue_wait_ns,
            slc_migration_ns,
            ..Default::default()
        };
        if total_latency_ns == 0 {
            return report;
        }
        let total = total_latency_ns as f64;
        let mut fracs = [
            channel_wait_ns as f64 / total,
            plane_wait_ns as f64 / total,
            gc_stall_ns as f64 / total,
            cache_miss_ns as f64 / total,
            queue_wait_ns as f64 / total,
            slc_migration_ns as f64 / total,
        ];
        let sum: f64 = fracs.iter().sum();
        if sum > 1.0 {
            for f in &mut fracs {
                *f /= sum;
            }
        }
        report.channel_wait_frac = fracs[0];
        report.plane_wait_frac = fracs[1];
        report.gc_stall_frac = fracs[2];
        report.cache_miss_frac = fracs[3];
        report.host_queue_frac = fracs[4];
        report.slc_migration_frac = fracs[5];
        report.other_frac = (1.0 - fracs.iter().sum::<f64>()).max(0.0);
        report
    }

    /// The six attributed resources and their fractions, in a stable
    /// order (`other` excluded).
    pub fn fractions(&self) -> [(&'static str, f64); 6] {
        [
            ("channel-wait", self.channel_wait_frac),
            ("plane-busy", self.plane_wait_frac),
            ("gc-stall", self.gc_stall_frac),
            ("cache-miss", self.cache_miss_frac),
            ("host-queue", self.host_queue_frac),
            ("slc-migration", self.slc_migration_frac),
        ]
    }

    /// Name of the resource with the largest attributed fraction, or
    /// `"none"` when nothing was attributed (no requests, or every bucket
    /// zero).
    pub fn dominant(&self) -> &'static str {
        let mut best = ("none", 0.0);
        for (name, frac) in self.fractions() {
            if frac > best.1 {
                best = (name, frac);
            }
        }
        best.0
    }
}

/// Per-tenant latency accounting for one lane of a merged multi-tenant
/// trace.
///
/// A *lane* is a half-open LBA range `[start_lba, next start)` produced by
/// `iotrace`'s partitioned merge: each tenant's address space is relocated
/// to a disjoint window, so the pre-modulo LBA of every request identifies
/// its tenant. Lane totals are simple sums over the requests that landed in
/// the lane — deterministic, no sampling — which is what lets the placement
/// report compare a tenant's co-located latency against its solo run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LaneReport {
    /// First LBA of the lane (inclusive).
    pub start_lba: u64,
    /// Requests that landed in the lane.
    pub requests: u64,
    /// Host bytes moved by those requests.
    pub bytes: u64,
    /// Summed device response time, ns.
    pub total_latency_ns: u64,
    /// Mean device response time, ns (0 for an idle lane).
    pub mean_latency_ns: f64,
    /// Worst device response time, ns.
    pub max_latency_ns: u64,
}

/// Accumulates per-lane latency totals during a simulator run.
///
/// Built from the ascending lane start offsets returned by the partitioned
/// merge; [`TenantLanes::observe`] bins each request by its pre-modulo LBA
/// with a binary search, so the hot-loop cost is `O(log lanes)` and zero
/// when no lanes are armed.
#[derive(Debug, Clone, Default)]
pub struct TenantLanes {
    starts: Vec<u64>,
    requests: Vec<u64>,
    bytes: Vec<u64>,
    total_latency_ns: Vec<u64>,
    max_latency_ns: Vec<u64>,
}

impl TenantLanes {
    /// Creates an accumulator for lanes beginning at `starts` (ascending;
    /// the first lane implicitly starts at 0 regardless).
    ///
    /// # Panics
    ///
    /// Panics if `starts` is not sorted ascending.
    pub fn new(starts: &[u64]) -> Self {
        assert!(
            starts.windows(2).all(|w| w[0] <= w[1]),
            "lane starts must be sorted ascending"
        );
        let n = starts.len();
        TenantLanes {
            starts: starts.to_vec(),
            requests: vec![0; n],
            bytes: vec![0; n],
            total_latency_ns: vec![0; n],
            max_latency_ns: vec![0; n],
        }
    }

    /// Lane count.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// `true` when no lanes are configured.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Charges one request to the lane containing `lba`. LBAs below the
    /// first lane start are charged to lane 0.
    pub fn observe(&mut self, lba: u64, bytes: u64, latency_ns: u64) {
        if self.starts.is_empty() {
            return;
        }
        let i = self
            .starts
            .partition_point(|&s| s <= lba)
            .saturating_sub(1)
            .min(self.starts.len() - 1);
        self.requests[i] += 1;
        self.bytes[i] += bytes;
        self.total_latency_ns[i] += latency_ns;
        self.max_latency_ns[i] = self.max_latency_ns[i].max(latency_ns);
    }

    /// Finalizes the accumulated totals into one [`LaneReport`] per lane,
    /// in lane order.
    pub fn reports(&self) -> Vec<LaneReport> {
        (0..self.starts.len())
            .map(|i| LaneReport {
                start_lba: self.starts[i],
                requests: self.requests[i],
                bytes: self.bytes[i],
                total_latency_ns: self.total_latency_ns[i],
                mean_latency_ns: if self.requests[i] == 0 {
                    0.0
                } else {
                    self.total_latency_ns[i] as f64 / self.requests[i] as f64
                },
                max_latency_ns: self.max_latency_ns[i],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_bin_by_start_offsets() {
        let mut lanes = TenantLanes::new(&[0, 1_000, 5_000]);
        lanes.observe(0, 512, 10);
        lanes.observe(999, 512, 30);
        lanes.observe(1_000, 4_096, 100);
        lanes.observe(4_999, 512, 50);
        lanes.observe(1 << 40, 512, 7); // far past the last lane start
        let r = lanes.reports();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].requests, 2);
        assert_eq!(r[0].total_latency_ns, 40);
        assert!((r[0].mean_latency_ns - 20.0).abs() < 1e-12);
        assert_eq!(r[0].max_latency_ns, 30);
        assert_eq!(r[1].requests, 2);
        assert_eq!(r[1].bytes, 4_608);
        assert_eq!(r[2].requests, 1);
        assert_eq!(r[2].max_latency_ns, 7);
    }

    #[test]
    fn idle_lane_reports_zero_mean() {
        let lanes = TenantLanes::new(&[0, 100]);
        let r = lanes.reports();
        assert_eq!(r[1].requests, 0);
        assert_eq!(r[1].mean_latency_ns, 0.0);
    }

    #[test]
    fn empty_series_and_bounded_pushes() {
        let mut s = DeviceSeries::new(50);
        assert!(s.is_empty());
        for i in 0..10 {
            s.push_bounded(
                4,
                DeviceSample {
                    t_ns: i * 50,
                    ..Default::default()
                },
            );
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.dropped, 6);
        assert_eq!(s.samples[3].t_ns, 150, "drop-newest keeps the oldest");
    }

    #[test]
    fn zero_total_is_all_zero() {
        let b = BottleneckReport::from_totals(0, 10, 10, 10, 10, 10, 10);
        assert_eq!(b.channel_wait_frac, 0.0);
        assert_eq!(b.other_frac, 0.0);
        assert_eq!(b.dominant(), "none");
    }

    #[test]
    fn fractions_attribute_and_normalize() {
        let b = BottleneckReport::from_totals(1_000, 200, 100, 50, 25, 125, 25);
        assert!((b.channel_wait_frac - 0.2).abs() < 1e-12);
        assert!((b.host_queue_frac - 0.125).abs() < 1e-12);
        assert!((b.slc_migration_frac - 0.025).abs() < 1e-12);
        assert!((b.other_frac - 0.475).abs() < 1e-12);
        assert_eq!(b.dominant(), "channel-wait");

        // Overlapping components exceeding the total rescale to sum 1.
        let b = BottleneckReport::from_totals(100, 100, 100, 0, 0, 0, 0);
        assert!((b.channel_wait_frac - 0.5).abs() < 1e-12);
        assert!((b.plane_wait_frac - 0.5).abs() < 1e-12);
        assert!(b.other_frac.abs() < 1e-12);
        let sum: f64 = b.fractions().iter().map(|(_, f)| f).sum::<f64>() + b.other_frac;
        assert!(sum <= 1.0 + 1e-9, "sum {sum}");
    }

    #[test]
    fn dominant_picks_the_largest_bucket() {
        let b = BottleneckReport::from_totals(1_000, 10, 20, 500, 30, 40, 0);
        assert_eq!(b.dominant(), "gc-stall");
    }
}
