//! SSD hardware configuration: every tunable parameter AutoBlox explores.
//!
//! The field set is transcribed from MQSim's SSD/flash configuration files
//! (the simulator the paper extends) plus the parameters named in the paper's
//! Tables 5 and 7 and Figures 4 and 5. A handful of parameters are
//! performance-inert by design (they exist in real SSD configs but do not
//! influence the modeled datapath); the paper's coarse-grained pruning stage
//! is expected to discover exactly those.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// NAND flash cell technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlashTechnology {
    /// Single-level cell: fastest, most durable.
    Slc,
    /// Multi-level cell (2 bits/cell).
    Mlc,
    /// Triple-level cell (3 bits/cell).
    Tlc,
    /// Quad-level cell (4 bits/cell): densest, slowest. Latencies follow the
    /// device-level optimization survey (arXiv:2507.10573): reads in the
    /// 100-200 µs band, programs in the low milliseconds, erases the
    /// slowest of any technology.
    Qlc,
}

impl FlashTechnology {
    /// Baseline page-read latency in nanoseconds for this technology.
    pub fn base_read_ns(self) -> u64 {
        match self {
            FlashTechnology::Slc => 3_000,
            FlashTechnology::Mlc => 83_000,
            FlashTechnology::Tlc => 110_000,
            FlashTechnology::Qlc => 145_000,
        }
    }

    /// Baseline page-program latency in nanoseconds.
    pub fn base_program_ns(self) -> u64 {
        match self {
            FlashTechnology::Slc => 100_000,
            FlashTechnology::Mlc => 1_166_000,
            FlashTechnology::Tlc => 2_300_000,
            FlashTechnology::Qlc => 3_400_000,
        }
    }

    /// Baseline block-erase latency in nanoseconds.
    pub fn base_erase_ns(self) -> u64 {
        match self {
            FlashTechnology::Slc => 1_500_000,
            FlashTechnology::Mlc => 3_800_000,
            FlashTechnology::Tlc => 5_000_000,
            FlashTechnology::Qlc => 6_500_000,
        }
    }

    /// Bits stored per cell (1 for SLC through 4 for QLC).
    pub fn bits_per_cell(self) -> u32 {
        match self {
            FlashTechnology::Slc => 1,
            FlashTechnology::Mlc => 2,
            FlashTechnology::Tlc => 3,
            FlashTechnology::Qlc => 4,
        }
    }
}

impl fmt::Display for FlashTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashTechnology::Slc => write!(f, "SLC"),
            FlashTechnology::Mlc => write!(f, "MLC"),
            FlashTechnology::Tlc => write!(f, "TLC"),
            FlashTechnology::Qlc => write!(f, "QLC"),
        }
    }
}

/// When the hybrid SLC cache folds cold pages into the capacity tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MigrationPolicy {
    /// Trickle migration: whenever a sealed cache block exists, fold one
    /// block per host program — a deterministic proxy for migrating during
    /// idle windows.
    Idle,
    /// Burst migration: leave the cache alone until its free space drops
    /// below the watermark, then fold blocks until it recovers.
    Watermark,
}

impl MigrationPolicy {
    /// Both policies, index-stable for categorical encoding.
    pub const ALL: [MigrationPolicy; 2] = [MigrationPolicy::Idle, MigrationPolicy::Watermark];

    /// Index of this policy within [`MigrationPolicy::ALL`].
    pub fn index(self) -> usize {
        match self {
            MigrationPolicy::Idle => 0,
            MigrationPolicy::Watermark => 1,
        }
    }
}

impl fmt::Display for MigrationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationPolicy::Idle => write!(f, "idle"),
            MigrationPolicy::Watermark => write!(f, "watermark"),
        }
    }
}

/// Device family: how block modes are organised across the device.
///
/// `Homogeneous` is the classic single-technology device every preset
/// before this abstraction modeled; `HybridSlcCache` reserves a fraction of
/// each plane's blocks as an SLC-mode write cache in front of the dense
/// capacity technology (`SsdConfig::flash_technology`, typically QLC), as
/// in arXiv:2503.13105. Cache blocks store one bit per cell, so usable
/// capacity shrinks as the cache grows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum DeviceFamily {
    /// Every block runs the device's single `flash_technology`.
    #[default]
    Homogeneous,
    /// An SLC-mode write cache in front of the capacity technology.
    HybridSlcCache {
        /// Percent of each plane's blocks reserved as SLC cache, `(0, 50]`.
        cache_blocks_pct: f64,
        /// When cold pages are folded into the capacity tier.
        migration_policy: MigrationPolicy,
        /// Watermark: migrate when cache free pages fall below this percent
        /// of cache capacity, `(0, 90]`. Ignored by [`MigrationPolicy::Idle`].
        migration_threshold_pct: f64,
    },
}

impl DeviceFamily {
    /// Whether this family runs an SLC cache tier.
    pub fn is_hybrid(self) -> bool {
        matches!(self, DeviceFamily::HybridSlcCache { .. })
    }

    /// Stable short label (`homogeneous` / `hybrid-slc-cache`), used by the
    /// run registry so histories are never compared across families.
    pub fn label(self) -> &'static str {
        match self {
            DeviceFamily::Homogeneous => "homogeneous",
            DeviceFamily::HybridSlcCache { .. } => "hybrid-slc-cache",
        }
    }

    /// Canonical four-word encoding (discriminant, cache pct bits, policy,
    /// threshold bits); the tail of [`SsdConfig::canonical_words`].
    pub fn canonical_words(self) -> [u64; 4] {
        match self {
            DeviceFamily::Homogeneous => [0, 0, 0, 0],
            DeviceFamily::HybridSlcCache {
                cache_blocks_pct,
                migration_policy,
                migration_threshold_pct,
            } => [
                1,
                cache_blocks_pct.to_bits(),
                migration_policy.index() as u64,
                migration_threshold_pct.to_bits(),
            ],
        }
    }
}

impl fmt::Display for DeviceFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceFamily::Homogeneous => write!(f, "homogeneous"),
            DeviceFamily::HybridSlcCache {
                cache_blocks_pct,
                migration_policy,
                migration_threshold_pct,
            } => write!(
                f,
                "hybrid-slc-cache({cache_blocks_pct:.0}% cache, {migration_policy} @ \
                 {migration_threshold_pct:.0}%)"
            ),
        }
    }
}

/// Host interface protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interface {
    /// NVMe over PCIe: multi-queue, deep queues, low protocol overhead.
    Nvme,
    /// SATA: single queue (NCQ), 6 Gb/s link, higher protocol overhead.
    Sata,
}

impl fmt::Display for Interface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interface::Nvme => write!(f, "NVMe"),
            Interface::Sata => write!(f, "SATA"),
        }
    }
}

/// Order in which write pages are striped across the flash hierarchy.
///
/// The four letters are Channel, Way (chip), Die, Plane; the first resource
/// in the ordering varies fastest. MQSim defines all 16 non-degenerate
/// orderings that keep Channel or Way first-or-second; here all 24/… are
/// collapsed to the 16 the paper counts ("16 possible values for the plane
/// allocation scheme").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum PlaneAllocationScheme {
    Cwdp,
    Cwpd,
    Cdwp,
    Cdpw,
    Cpwd,
    Cpdw,
    Wcdp,
    Wcpd,
    Wdcp,
    Wdpc,
    Wpcd,
    Wpdc,
    Dcwp,
    Dcpw,
    Pcwd,
    Pcdw,
}

impl PlaneAllocationScheme {
    /// All 16 schemes, index-stable for categorical encoding.
    pub const ALL: [PlaneAllocationScheme; 16] = [
        PlaneAllocationScheme::Cwdp,
        PlaneAllocationScheme::Cwpd,
        PlaneAllocationScheme::Cdwp,
        PlaneAllocationScheme::Cdpw,
        PlaneAllocationScheme::Cpwd,
        PlaneAllocationScheme::Cpdw,
        PlaneAllocationScheme::Wcdp,
        PlaneAllocationScheme::Wcpd,
        PlaneAllocationScheme::Wdcp,
        PlaneAllocationScheme::Wdpc,
        PlaneAllocationScheme::Wpcd,
        PlaneAllocationScheme::Wpdc,
        PlaneAllocationScheme::Dcwp,
        PlaneAllocationScheme::Dcpw,
        PlaneAllocationScheme::Pcwd,
        PlaneAllocationScheme::Pcdw,
    ];

    /// Resource priority order as indices into `[channel, way, die, plane]`,
    /// fastest-varying first.
    pub fn order(self) -> [usize; 4] {
        // 0 = channel, 1 = way/chip, 2 = die, 3 = plane.
        match self {
            PlaneAllocationScheme::Cwdp => [0, 1, 2, 3],
            PlaneAllocationScheme::Cwpd => [0, 1, 3, 2],
            PlaneAllocationScheme::Cdwp => [0, 2, 1, 3],
            PlaneAllocationScheme::Cdpw => [0, 2, 3, 1],
            PlaneAllocationScheme::Cpwd => [0, 3, 1, 2],
            PlaneAllocationScheme::Cpdw => [0, 3, 2, 1],
            PlaneAllocationScheme::Wcdp => [1, 0, 2, 3],
            PlaneAllocationScheme::Wcpd => [1, 0, 3, 2],
            PlaneAllocationScheme::Wdcp => [1, 2, 0, 3],
            PlaneAllocationScheme::Wdpc => [1, 2, 3, 0],
            PlaneAllocationScheme::Wpcd => [1, 3, 0, 2],
            PlaneAllocationScheme::Wpdc => [1, 3, 2, 0],
            PlaneAllocationScheme::Dcwp => [2, 0, 1, 3],
            PlaneAllocationScheme::Dcpw => [2, 0, 3, 1],
            PlaneAllocationScheme::Pcwd => [3, 0, 1, 2],
            PlaneAllocationScheme::Pcdw => [3, 0, 2, 1],
        }
    }

    /// Index of this scheme within [`PlaneAllocationScheme::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&s| s == self)
            .expect("scheme is in ALL")
    }
}

/// Data-cache write policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheMode {
    /// Writes are absorbed in DRAM and flushed on eviction.
    WriteBack,
    /// Writes go straight to flash; the cache only serves reads.
    WriteThrough,
}

/// Garbage-collection victim-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GcPolicy {
    /// Pick the block with the fewest valid pages (lowest migration cost).
    Greedy,
    /// Pick a random used block.
    Random,
}

/// Complete SSD hardware configuration.
///
/// This is a passive, public-field struct in the C spirit: the tuner mutates
/// fields directly and calls [`SsdConfig::validate`] before simulating.
///
/// # Examples
///
/// ```
/// use ssdsim::config::SsdConfig;
/// let cfg = SsdConfig::default();
/// cfg.validate().expect("default config is valid");
/// assert!(cfg.physical_capacity_bytes() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    // ---- Flash layout -------------------------------------------------
    /// Number of independent flash channels.
    pub channel_count: u32,
    /// Flash chips (ways) sharing each channel.
    pub chips_per_channel: u32,
    /// Dies per chip; dies execute commands independently.
    pub dies_per_chip: u32,
    /// Planes per die; planes allow multiplane operations.
    pub planes_per_die: u32,
    /// Flash blocks per plane (erase unit count).
    pub blocks_per_plane: u32,
    /// Pages per block.
    pub pages_per_block: u32,
    /// Flash page size in bytes.
    pub page_size_bytes: u32,

    // ---- Flash timing -------------------------------------------------
    /// NAND cell technology (drives baseline latencies and energy).
    pub flash_technology: FlashTechnology,
    /// Device family: homogeneous or hybrid SLC-cache block organisation.
    /// Defaults to [`DeviceFamily::Homogeneous`] so configurations
    /// serialized before the abstraction existed still parse.
    #[serde(default)]
    pub device_family: DeviceFamily,
    /// Page read latency in nanoseconds.
    pub read_latency_ns: u64,
    /// Page program latency in nanoseconds.
    pub program_latency_ns: u64,
    /// Block erase latency in nanoseconds.
    pub erase_latency_ns: u64,
    /// ONFI channel transfer rate in mega-transfers per second.
    pub channel_transfer_rate_mts: u32,
    /// Channel data width in bits.
    pub channel_width_bits: u32,
    /// Command/address cycle overhead per flash command, nanoseconds.
    pub flash_cmd_overhead_ns: u64,
    /// Time to suspend an in-flight program (used only when
    /// `program_suspension_enabled`), nanoseconds.
    pub suspend_program_ns: u64,
    /// Time to suspend an in-flight erase (used only when
    /// `erase_suspension_enabled`), nanoseconds.
    pub suspend_erase_ns: u64,
    /// Whether reads may suspend in-flight programs.
    pub program_suspension_enabled: bool,
    /// Whether reads may suspend in-flight erases.
    pub erase_suspension_enabled: bool,

    // ---- Controller DRAM ----------------------------------------------
    /// Data (read/write) cache capacity in mebibytes.
    pub data_cache_mb: u32,
    /// Cached mapping table capacity in mebibytes (DFTL-style CMT).
    pub cmt_capacity_mb: u32,
    /// DRAM data rate in mega-transfers per second.
    pub dram_data_rate_mts: u32,
    /// DRAM burst size in bytes.
    pub dram_burst_bytes: u32,
    /// Bytes per cached mapping entry.
    pub cmt_entry_bytes: u32,
    /// Data-cache write policy.
    pub cache_mode: CacheMode,

    // ---- FTL / GC / wear leveling --------------------------------------
    /// Over-provisioning ratio in `[0, 0.5]` (spare physical capacity).
    pub overprovisioning_ratio: f64,
    /// Free-page fraction below which GC starts.
    pub gc_threshold: f64,
    /// Free-page fraction below which GC becomes urgent (blocks host I/O).
    pub gc_hard_threshold: f64,
    /// Victim-selection policy.
    pub gc_policy: GcPolicy,
    /// Whether host reads may preempt GC migrations.
    pub preemptible_gc: bool,
    /// Enables periodic static wear leveling.
    pub static_wearleveling_enabled: bool,
    /// Erase-count spread that triggers a static wear-leveling swap.
    pub static_wearleveling_threshold: u32,
    /// Page-allocation striping order across the hierarchy.
    pub plane_allocation_scheme: PlaneAllocationScheme,

    // ---- Host interface -------------------------------------------------
    /// Protocol between host and device.
    pub interface: Interface,
    /// Per-queue depth of outstanding commands.
    pub io_queue_depth: u32,
    /// Number of host submission queues (NVMe; SATA forces 1).
    pub queue_count: u32,
    /// PCIe lanes (NVMe only).
    pub pcie_lane_count: u32,
    /// Per-lane PCIe bandwidth in giga-transfers per second (e.g. 8 = Gen3).
    pub pcie_lane_gtps: u32,
    /// Fixed protocol processing overhead per command, nanoseconds.
    pub host_cmd_overhead_ns: u64,

    // ---- Performance-inert parameters ----------------------------------
    // These exist in real SSD configuration files but do not influence the
    // modeled datapath; the paper's coarse pruning (Figure 4) identifies
    // them as insensitive.
    /// Per-page metadata (OOB) capacity in bytes.
    pub page_metadata_bytes: u32,
    /// Number of ECC engines in the controller.
    pub ecc_engine_count: u32,
    /// Read-retry attempts before reporting an uncorrectable error.
    pub read_retry_limit: u32,
    /// Background media-scan interval in milliseconds.
    pub background_scan_interval_ms: u32,
    /// Device initialization (boot) delay in microseconds.
    pub init_delay_us: u32,
    /// Firmware scratchpad SRAM in kibibytes.
    pub firmware_sram_kb: u32,
    /// Temperature-throttle threshold in degrees Celsius.
    pub thermal_throttle_c: u32,
    /// Capacitor-backed flush energy budget in microjoules.
    pub pfail_flush_budget_uj: u32,
    /// Controller DRAM refresh interval in microseconds.
    pub dram_refresh_interval_us: u32,
    /// NAND core supply voltage in millivolts.
    pub nand_vcc_mv: u32,
}

impl Default for SsdConfig {
    /// A mid-range NVMe MLC device loosely modeled on the Intel 750
    /// (the paper's primary reference configuration).
    fn default() -> Self {
        SsdConfig {
            channel_count: 12,
            chips_per_channel: 5,
            dies_per_chip: 8,
            planes_per_die: 1,
            blocks_per_plane: 512,
            pages_per_block: 512,
            page_size_bytes: 4096,
            flash_technology: FlashTechnology::Mlc,
            device_family: DeviceFamily::Homogeneous,
            read_latency_ns: 83_000,
            program_latency_ns: 1_166_000,
            erase_latency_ns: 3_800_000,
            channel_transfer_rate_mts: 333,
            channel_width_bits: 8,
            flash_cmd_overhead_ns: 500,
            suspend_program_ns: 5_000,
            suspend_erase_ns: 10_000,
            program_suspension_enabled: false,
            erase_suspension_enabled: false,
            data_cache_mb: 800,
            cmt_capacity_mb: 256,
            dram_data_rate_mts: 1600,
            dram_burst_bytes: 64,
            cmt_entry_bytes: 8,
            cache_mode: CacheMode::WriteBack,
            overprovisioning_ratio: 0.07,
            gc_threshold: 0.05,
            gc_hard_threshold: 0.005,
            gc_policy: GcPolicy::Greedy,
            preemptible_gc: true,
            static_wearleveling_enabled: true,
            static_wearleveling_threshold: 100,
            plane_allocation_scheme: PlaneAllocationScheme::Cwdp,
            interface: Interface::Nvme,
            io_queue_depth: 32,
            queue_count: 8,
            pcie_lane_count: 4,
            pcie_lane_gtps: 8,
            host_cmd_overhead_ns: 3_000,
            page_metadata_bytes: 448,
            ecc_engine_count: 8,
            read_retry_limit: 3,
            background_scan_interval_ms: 1000,
            init_delay_us: 500,
            firmware_sram_kb: 512,
            thermal_throttle_c: 70,
            pfail_flush_budget_uj: 4000,
            dram_refresh_interval_us: 64,
            nand_vcc_mv: 3300,
        }
    }
}

/// Error returned when a configuration is structurally invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidConfigError(String);

impl fmt::Display for InvalidConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid SSD configuration: {}", self.0)
    }
}

impl Error for InvalidConfigError {}

/// Number of `u64` words in [`SsdConfig::canonical_words`].
pub const CONFIG_WORDS: usize = 52;

impl SsdConfig {
    /// Encodes every field as one `u64` word, in declaration order.
    ///
    /// Two configurations produce the same words iff they are field-for-field
    /// identical (floats are compared by bit pattern), so the encoding is a
    /// sound basis for memoization keys — unlike grid indices, it also
    /// distinguishes off-grid configurations such as presets. Keep this in
    /// sync when adding fields: the array length is a compile-time check.
    pub fn canonical_words(&self) -> [u64; CONFIG_WORDS] {
        let family = self.device_family.canonical_words();
        [
            u64::from(self.channel_count),
            u64::from(self.chips_per_channel),
            u64::from(self.dies_per_chip),
            u64::from(self.planes_per_die),
            u64::from(self.blocks_per_plane),
            u64::from(self.pages_per_block),
            u64::from(self.page_size_bytes),
            self.flash_technology as u64,
            family[0],
            family[1],
            family[2],
            family[3],
            self.read_latency_ns,
            self.program_latency_ns,
            self.erase_latency_ns,
            u64::from(self.channel_transfer_rate_mts),
            u64::from(self.channel_width_bits),
            self.flash_cmd_overhead_ns,
            self.suspend_program_ns,
            self.suspend_erase_ns,
            u64::from(self.program_suspension_enabled),
            u64::from(self.erase_suspension_enabled),
            u64::from(self.data_cache_mb),
            u64::from(self.cmt_capacity_mb),
            u64::from(self.dram_data_rate_mts),
            u64::from(self.dram_burst_bytes),
            u64::from(self.cmt_entry_bytes),
            self.cache_mode as u64,
            self.overprovisioning_ratio.to_bits(),
            self.gc_threshold.to_bits(),
            self.gc_hard_threshold.to_bits(),
            self.gc_policy as u64,
            u64::from(self.preemptible_gc),
            u64::from(self.static_wearleveling_enabled),
            u64::from(self.static_wearleveling_threshold),
            self.plane_allocation_scheme as u64,
            self.interface as u64,
            u64::from(self.io_queue_depth),
            u64::from(self.queue_count),
            u64::from(self.pcie_lane_count),
            u64::from(self.pcie_lane_gtps),
            self.host_cmd_overhead_ns,
            u64::from(self.page_metadata_bytes),
            u64::from(self.ecc_engine_count),
            u64::from(self.read_retry_limit),
            u64::from(self.background_scan_interval_ms),
            u64::from(self.init_delay_us),
            u64::from(self.firmware_sram_kb),
            u64::from(self.thermal_throttle_c),
            u64::from(self.pfail_flush_budget_uj),
            u64::from(self.dram_refresh_interval_us),
            u64::from(self.nand_vcc_mv),
        ]
    }

    /// Total raw flash capacity in bytes.
    pub fn physical_capacity_bytes(&self) -> u64 {
        u64::from(self.channel_count)
            * u64::from(self.chips_per_channel)
            * u64::from(self.dies_per_chip)
            * u64::from(self.planes_per_die)
            * u64::from(self.blocks_per_plane)
            * u64::from(self.pages_per_block)
            * u64::from(self.page_size_bytes)
    }

    /// SLC-cache blocks per plane for hybrid families (0 when homogeneous).
    ///
    /// At least one block when any cache is requested, and always at least
    /// two non-cache blocks per plane so the capacity tier keeps an active
    /// block plus GC headroom.
    pub fn slc_cache_blocks_per_plane(&self) -> u32 {
        let DeviceFamily::HybridSlcCache {
            cache_blocks_pct, ..
        } = self.device_family
        else {
            return 0;
        };
        let want = (f64::from(self.blocks_per_plane) * cache_blocks_pct / 100.0).ceil() as u32;
        want.clamp(1, self.blocks_per_plane.saturating_sub(2).max(1))
    }

    /// Usable flash capacity in bytes: physical capacity minus what the
    /// SLC cache gives up by storing one bit per cell. Equal to
    /// [`SsdConfig::physical_capacity_bytes`] for homogeneous devices.
    pub fn effective_capacity_bytes(&self) -> u64 {
        let physical = self.physical_capacity_bytes();
        let cache_blocks = u64::from(self.slc_cache_blocks_per_plane());
        if cache_blocks == 0 {
            return physical;
        }
        let bits = u64::from(self.flash_technology.bits_per_cell());
        let cache_bytes = self.total_planes()
            * cache_blocks
            * u64::from(self.pages_per_block)
            * u64::from(self.page_size_bytes);
        // A cache block keeps 1/bits of its dense capacity.
        physical - cache_bytes * (bits - 1) / bits
    }

    /// Host-visible capacity after over-provisioning, in bytes.
    pub fn logical_capacity_bytes(&self) -> u64 {
        (self.effective_capacity_bytes() as f64 * (1.0 - self.overprovisioning_ratio)) as u64
    }

    /// Host-visible capacity in logical pages.
    pub fn logical_pages(&self) -> u64 {
        self.logical_capacity_bytes() / u64::from(self.page_size_bytes)
    }

    /// Total number of dies.
    pub fn total_dies(&self) -> u64 {
        u64::from(self.channel_count)
            * u64::from(self.chips_per_channel)
            * u64::from(self.dies_per_chip)
    }

    /// Total number of planes.
    pub fn total_planes(&self) -> u64 {
        self.total_dies() * u64::from(self.planes_per_die)
    }

    /// Pages per plane.
    pub fn pages_per_plane(&self) -> u64 {
        u64::from(self.blocks_per_plane) * u64::from(self.pages_per_block)
    }

    /// Time to move one page over a flash channel, in nanoseconds.
    pub fn channel_transfer_ns(&self) -> u64 {
        let bytes_per_sec =
            f64::from(self.channel_transfer_rate_mts) * 1e6 * f64::from(self.channel_width_bits)
                / 8.0;
        let payload = f64::from(self.page_size_bytes);
        ((payload / bytes_per_sec) * 1e9) as u64 + self.flash_cmd_overhead_ns
    }

    /// Host link bandwidth in bytes per second.
    pub fn link_bandwidth_bps(&self) -> f64 {
        match self.interface {
            // PCIe: lanes x GT/s x 128b/130b encoding / 8 bits.
            Interface::Nvme => {
                f64::from(self.pcie_lane_count)
                    * f64::from(self.pcie_lane_gtps)
                    * 1e9
                    * (128.0 / 130.0)
                    / 8.0
            }
            // SATA III: 6 Gb/s with 8b/10b encoding = 600 MB/s.
            Interface::Sata => 600e6,
        }
    }

    /// Effective number of host queues (SATA collapses to one).
    pub fn effective_queue_count(&self) -> u32 {
        match self.interface {
            Interface::Nvme => self.queue_count.max(1),
            Interface::Sata => 1,
        }
    }

    /// Effective aggregate queue depth.
    pub fn effective_queue_depth(&self) -> u32 {
        let per_queue = match self.interface {
            Interface::Nvme => self.io_queue_depth.max(1),
            // SATA NCQ caps at 32 outstanding commands.
            Interface::Sata => self.io_queue_depth.clamp(1, 32),
        };
        per_queue * self.effective_queue_count()
    }

    /// Protocol overhead per command in nanoseconds.
    pub fn protocol_overhead_ns(&self) -> u64 {
        match self.interface {
            Interface::Nvme => self.host_cmd_overhead_ns,
            // SATA command processing is substantially heavier.
            Interface::Sata => self.host_cmd_overhead_ns + 25_000,
        }
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfigError`] naming the first violated invariant:
    /// zero-sized layout dimensions, non-power-of-two page size, ratios
    /// outside `[0, 0.5]`, or an empty queue setup.
    pub fn validate(&self) -> Result<(), InvalidConfigError> {
        let positive = [
            ("channel_count", u64::from(self.channel_count)),
            ("chips_per_channel", u64::from(self.chips_per_channel)),
            ("dies_per_chip", u64::from(self.dies_per_chip)),
            ("planes_per_die", u64::from(self.planes_per_die)),
            ("blocks_per_plane", u64::from(self.blocks_per_plane)),
            ("pages_per_block", u64::from(self.pages_per_block)),
            ("page_size_bytes", u64::from(self.page_size_bytes)),
            (
                "channel_transfer_rate_mts",
                u64::from(self.channel_transfer_rate_mts),
            ),
            ("channel_width_bits", u64::from(self.channel_width_bits)),
            ("io_queue_depth", u64::from(self.io_queue_depth)),
            ("read_latency_ns", self.read_latency_ns),
            ("program_latency_ns", self.program_latency_ns),
            ("erase_latency_ns", self.erase_latency_ns),
        ];
        for (name, v) in positive {
            if v == 0 {
                return Err(InvalidConfigError(format!("{name} must be positive")));
            }
        }
        if !self.page_size_bytes.is_power_of_two() {
            return Err(InvalidConfigError(
                "page_size_bytes must be a power of two".into(),
            ));
        }
        if !(0.0..=0.5).contains(&self.overprovisioning_ratio) {
            return Err(InvalidConfigError(
                "overprovisioning_ratio must be within [0, 0.5]".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.gc_threshold) {
            return Err(InvalidConfigError(
                "gc_threshold must be within [0, 1)".into(),
            ));
        }
        if self.gc_hard_threshold > self.gc_threshold {
            return Err(InvalidConfigError(
                "gc_hard_threshold must not exceed gc_threshold".into(),
            ));
        }
        if self.interface == Interface::Nvme && self.pcie_lane_count == 0 {
            return Err(InvalidConfigError(
                "NVMe devices need at least one PCIe lane".into(),
            ));
        }
        if let DeviceFamily::HybridSlcCache {
            cache_blocks_pct,
            migration_threshold_pct,
            ..
        } = self.device_family
        {
            if !(cache_blocks_pct > 0.0 && cache_blocks_pct <= 50.0) {
                return Err(InvalidConfigError(
                    "hybrid cache_blocks_pct must be within (0, 50]".into(),
                ));
            }
            if !(migration_threshold_pct > 0.0 && migration_threshold_pct <= 90.0) {
                return Err(InvalidConfigError(
                    "hybrid migration_threshold_pct must be within (0, 90]".into(),
                ));
            }
            if self.flash_technology.bits_per_cell() < 2 {
                return Err(InvalidConfigError(
                    "hybrid SLC cache requires a multi-bit capacity technology".into(),
                ));
            }
            if self.blocks_per_plane < 3 {
                return Err(InvalidConfigError(
                    "hybrid devices need at least 3 blocks per plane".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Reference configurations of the commodity SSDs the paper compares against.
pub mod presets {
    use super::*;

    /// Intel 750 (NVMe, MLC): the paper's primary baseline.
    pub fn intel_750() -> SsdConfig {
        SsdConfig::default()
    }

    /// Samsung 850 PRO (SATA, MLC): the SATA baseline of Table 9.
    pub fn samsung_850_pro() -> SsdConfig {
        SsdConfig {
            interface: Interface::Sata,
            io_queue_depth: 32,
            queue_count: 1,
            channel_count: 8,
            chips_per_channel: 4,
            dies_per_chip: 4,
            planes_per_die: 2,
            blocks_per_plane: 1024,
            pages_per_block: 256,
            page_size_bytes: 8192,
            data_cache_mb: 512,
            cmt_capacity_mb: 128,
            channel_transfer_rate_mts: 266,
            pcie_lane_count: 0,
            pcie_lane_gtps: 0,
            host_cmd_overhead_ns: 5_000,
            ..SsdConfig::default()
        }
    }

    /// Samsung Z-SSD (NVMe, SLC-like Z-NAND): the SLC baseline of Table 8.
    pub fn samsung_z_ssd() -> SsdConfig {
        SsdConfig {
            flash_technology: FlashTechnology::Slc,
            read_latency_ns: 3_000,
            program_latency_ns: 100_000,
            erase_latency_ns: 1_500_000,
            channel_count: 16,
            chips_per_channel: 4,
            dies_per_chip: 4,
            planes_per_die: 2,
            blocks_per_plane: 512,
            pages_per_block: 512,
            page_size_bytes: 2048,
            data_cache_mb: 512,
            cmt_capacity_mb: 192,
            channel_transfer_rate_mts: 667,
            io_queue_depth: 64,
            queue_count: 8,
            ..SsdConfig::default()
        }
    }

    /// Hybrid SLC/QLC device: a small SLC write cache in front of dense QLC
    /// capacity flash, with watermark-triggered background migration.
    pub fn hybrid_slc_qlc() -> SsdConfig {
        SsdConfig {
            flash_technology: FlashTechnology::Qlc,
            read_latency_ns: FlashTechnology::Qlc.base_read_ns(),
            program_latency_ns: FlashTechnology::Qlc.base_program_ns(),
            erase_latency_ns: FlashTechnology::Qlc.base_erase_ns(),
            device_family: DeviceFamily::HybridSlcCache {
                cache_blocks_pct: 10.0,
                migration_policy: MigrationPolicy::Watermark,
                migration_threshold_pct: 25.0,
            },
            ..SsdConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SsdConfig::default().validate().unwrap();
        presets::intel_750().validate().unwrap();
        presets::samsung_850_pro().validate().unwrap();
        presets::samsung_z_ssd().validate().unwrap();
        presets::hybrid_slc_qlc().validate().unwrap();
    }

    #[test]
    fn capacity_math() {
        let cfg = SsdConfig {
            channel_count: 2,
            chips_per_channel: 2,
            dies_per_chip: 1,
            planes_per_die: 1,
            blocks_per_plane: 4,
            pages_per_block: 8,
            page_size_bytes: 4096,
            overprovisioning_ratio: 0.25,
            ..SsdConfig::default()
        };
        assert_eq!(cfg.physical_capacity_bytes(), 2 * 2 * 4 * 8 * 4096);
        assert_eq!(
            cfg.logical_capacity_bytes(),
            (cfg.physical_capacity_bytes() as f64 * 0.75) as u64
        );
        assert_eq!(cfg.total_dies(), 4);
        assert_eq!(cfg.total_planes(), 4);
        assert_eq!(cfg.pages_per_plane(), 32);
    }

    #[test]
    fn transfer_time_scales_with_rate() {
        let slow = SsdConfig {
            channel_transfer_rate_mts: 100,
            ..SsdConfig::default()
        };
        let fast = SsdConfig {
            channel_transfer_rate_mts: 800,
            ..SsdConfig::default()
        };
        assert!(slow.channel_transfer_ns() > 4 * fast.channel_transfer_ns());
    }

    #[test]
    fn sata_queue_and_link_limits() {
        let sata = presets::samsung_850_pro();
        assert_eq!(sata.effective_queue_count(), 1);
        assert!(sata.effective_queue_depth() <= 32);
        assert!(sata.link_bandwidth_bps() < 1e9);
        let nvme = presets::intel_750();
        assert!(nvme.link_bandwidth_bps() > 3e9);
        assert!(nvme.protocol_overhead_ns() < sata.protocol_overhead_ns());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let c = SsdConfig {
            channel_count: 0,
            ..SsdConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SsdConfig {
            page_size_bytes: 5000,
            ..SsdConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SsdConfig {
            overprovisioning_ratio: 0.9,
            ..SsdConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = SsdConfig::default();
        c.gc_hard_threshold = c.gc_threshold + 0.1;
        assert!(c.validate().is_err());

        let c = SsdConfig {
            pcie_lane_count: 0,
            ..SsdConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn allocation_schemes_are_distinct_permutations() {
        for s in PlaneAllocationScheme::ALL {
            let mut o = s.order();
            o.sort_unstable();
            assert_eq!(o, [0, 1, 2, 3], "{s:?} is not a permutation");
            assert_eq!(PlaneAllocationScheme::ALL[s.index()], s);
        }
        // All orders are unique.
        let orders: std::collections::HashSet<[usize; 4]> = PlaneAllocationScheme::ALL
            .iter()
            .map(|s| s.order())
            .collect();
        assert_eq!(orders.len(), 16);
    }

    #[test]
    fn technology_latency_ordering() {
        assert!(FlashTechnology::Slc.base_read_ns() < FlashTechnology::Mlc.base_read_ns());
        assert!(FlashTechnology::Mlc.base_program_ns() < FlashTechnology::Tlc.base_program_ns());
        assert!(FlashTechnology::Tlc.base_read_ns() < FlashTechnology::Qlc.base_read_ns());
        assert!(FlashTechnology::Tlc.base_program_ns() < FlashTechnology::Qlc.base_program_ns());
        assert!(FlashTechnology::Tlc.base_erase_ns() < FlashTechnology::Qlc.base_erase_ns());
        assert_eq!(FlashTechnology::Slc.to_string(), "SLC");
    }

    #[test]
    fn qlc_latencies_are_pinned() {
        // Survey-grade QLC figures (arXiv:2507.10573): keep these stable so
        // every consumer (presets, energy model, goldens) agrees.
        assert_eq!(FlashTechnology::Qlc.base_read_ns(), 145_000);
        assert_eq!(FlashTechnology::Qlc.base_program_ns(), 3_400_000);
        assert_eq!(FlashTechnology::Qlc.base_erase_ns(), 6_500_000);
        assert_eq!(FlashTechnology::Qlc.bits_per_cell(), 4);
        assert_eq!(FlashTechnology::Qlc.to_string(), "QLC");
    }

    #[test]
    fn hybrid_cache_shrinks_effective_capacity() {
        let homogeneous = presets::intel_750();
        assert_eq!(
            homogeneous.effective_capacity_bytes(),
            homogeneous.physical_capacity_bytes()
        );
        assert_eq!(homogeneous.slc_cache_blocks_per_plane(), 0);

        let hybrid = presets::hybrid_slc_qlc();
        let cache_blocks = hybrid.slc_cache_blocks_per_plane();
        assert!(cache_blocks >= 1);
        assert!(cache_blocks <= hybrid.blocks_per_plane - 2);
        assert!(hybrid.effective_capacity_bytes() < hybrid.physical_capacity_bytes());
        // QLC cells in SLC mode keep 1/4 of their density: the loss is
        // cache_bytes * 3/4 exactly.
        let cache_bytes = hybrid.total_planes()
            * u64::from(cache_blocks)
            * u64::from(hybrid.pages_per_block)
            * u64::from(hybrid.page_size_bytes);
        assert_eq!(
            hybrid.physical_capacity_bytes() - hybrid.effective_capacity_bytes(),
            cache_bytes * 3 / 4
        );
        assert!(hybrid.logical_capacity_bytes() < hybrid.effective_capacity_bytes());
    }

    #[test]
    fn family_canonical_words_distinguish_configs() {
        let base = presets::hybrid_slc_qlc();
        let mut other = base.clone();
        other.device_family = DeviceFamily::HybridSlcCache {
            cache_blocks_pct: 20.0,
            migration_policy: MigrationPolicy::Idle,
            migration_threshold_pct: 25.0,
        };
        assert_ne!(base.canonical_words(), other.canonical_words());
        let mut homogeneous = base.clone();
        homogeneous.device_family = DeviceFamily::Homogeneous;
        assert_ne!(base.canonical_words(), homogeneous.canonical_words());
        assert_eq!(base.canonical_words().len(), CONFIG_WORDS);
        assert_eq!(DeviceFamily::Homogeneous.label(), "homogeneous");
        assert_eq!(base.device_family.label(), "hybrid-slc-cache");
    }

    #[test]
    fn hybrid_validation_rules() {
        let mut c = presets::hybrid_slc_qlc();
        c.device_family = DeviceFamily::HybridSlcCache {
            cache_blocks_pct: 0.0,
            migration_policy: MigrationPolicy::Watermark,
            migration_threshold_pct: 25.0,
        };
        assert!(c.validate().is_err());
        c.device_family = DeviceFamily::HybridSlcCache {
            cache_blocks_pct: 10.0,
            migration_policy: MigrationPolicy::Watermark,
            migration_threshold_pct: 95.0,
        };
        assert!(c.validate().is_err());
        // SLC capacity flash cannot host an SLC cache tier.
        let mut slc = presets::samsung_z_ssd();
        slc.device_family = DeviceFamily::HybridSlcCache {
            cache_blocks_pct: 10.0,
            migration_policy: MigrationPolicy::Idle,
            migration_threshold_pct: 25.0,
        };
        assert!(slc.validate().is_err());
    }

    #[test]
    fn hybrid_serde_roundtrip_and_legacy_default() {
        let hybrid = presets::hybrid_slc_qlc();
        let json = serde_json::to_string(&hybrid).unwrap();
        let back: SsdConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.canonical_words(), hybrid.canonical_words());
        // Old documents without a device_family field deserialize homogeneous.
        let mut doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        if let serde_json::Value::Object(map) = &mut doc {
            map.remove("device_family");
        }
        let legacy: SsdConfig = serde_json::from_value(doc).unwrap();
        assert_eq!(legacy.device_family, DeviceFamily::Homogeneous);
    }
}
