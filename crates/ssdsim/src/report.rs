//! Simulation results: latency distribution, throughput, cache behaviour,
//! GC activity, and energy.

use crate::flash::FlashStats;
use crate::observe::{BottleneckReport, DeviceSeries};
use crate::power::EnergyReport;
use serde::{Deserialize, Serialize};

/// Latency distribution summary in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of requests observed.
    pub count: u64,
    /// Mean latency, ns.
    pub mean_ns: f64,
    /// Median latency, ns.
    pub p50_ns: u64,
    /// 95th percentile latency, ns.
    pub p95_ns: u64,
    /// 99th percentile latency, ns.
    pub p99_ns: u64,
    /// Maximum latency, ns.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Builds a summary from raw per-request latencies.
    ///
    /// Returns the default (all zeros) summary for an empty slice.
    pub fn from_latencies(latencies: &mut [u64]) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        latencies.sort_unstable();
        let count = latencies.len() as u64;
        let sum: u128 = latencies.iter().map(|&l| u128::from(l)).sum();
        let pct = |p: f64| -> u64 {
            let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
            latencies[idx]
        };
        LatencySummary {
            count,
            mean_ns: sum as f64 / count as f64,
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
            max_ns: *latencies.last().expect("nonempty"),
        }
    }
}

/// Number of logarithmic latency buckets in a [`LatencyBuckets`] histogram.
pub const LATENCY_BUCKET_COUNT: usize = 16;

/// Simulated-time histogram of request latencies on a log scale.
///
/// Bucket `i` counts requests whose latency fell in
/// `[BASE_NS * 2^i, BASE_NS * 2^(i+1))` (bucket 0 also absorbs anything
/// faster; the last bucket absorbs anything slower). With `BASE_NS` = 1 µs
/// the histogram spans 1 µs to ~65 ms, covering everything from a DRAM
/// cache hit to a GC-stalled worst case.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyBuckets {
    /// Per-bucket request counts.
    pub counts: [u64; LATENCY_BUCKET_COUNT],
}

impl LatencyBuckets {
    /// Lower bound of bucket 0, ns.
    pub const BASE_NS: u64 = 1_000;

    /// Records one request latency.
    pub fn observe(&mut self, latency_ns: u64) {
        let scaled = (latency_ns / Self::BASE_NS).max(1);
        let idx = (63 - scaled.leading_zeros()) as usize; // floor(log2(scaled))
        self.counts[idx.min(LATENCY_BUCKET_COUNT - 1)] += 1;
    }

    /// Inclusive lower bound of bucket `i`, ns.
    pub fn bucket_floor_ns(i: usize) -> u64 {
        Self::BASE_NS << i.min(LATENCY_BUCKET_COUNT - 1)
    }

    /// Total requests recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimates the `p`-th percentile (`0.0..=1.0`) from the histogram by
    /// linear interpolation within the containing bucket. Returns `0` for an
    /// empty histogram.
    ///
    /// The estimate is bucket-resolution-bounded: exact at bucket edges,
    /// within a factor of two inside a bucket — good enough to detect
    /// tail-latency regressions between runs, which is what it exists for.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        // 1-based rank of the target request, at least 1.
        let rank = ((p * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let within = rank - cum; // 1..=c
                let floor = Self::bucket_floor_ns(i);
                // Width of the bucket equals its floor (log2 buckets); the
                // last bucket is open-ended but we cap at 2x its floor.
                let width = floor;
                let frac = within as f64 / c as f64;
                return floor + (frac * width as f64) as u64;
            }
            cum += c;
        }
        Self::bucket_floor_ns(LATENCY_BUCKET_COUNT - 1) * 2
    }

    /// Derives the standard tail-latency percentiles from the histogram.
    pub fn percentiles(&self) -> HistogramPercentiles {
        HistogramPercentiles {
            p50_ns: self.percentile_ns(0.50),
            p95_ns: self.percentile_ns(0.95),
            p99_ns: self.percentile_ns(0.99),
        }
    }
}

/// Tail-latency percentiles estimated from a [`LatencyBuckets`] histogram
/// (bucket-resolution-bounded; see [`LatencyBuckets::percentile_ns`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramPercentiles {
    /// Estimated median latency, ns.
    pub p50_ns: u64,
    /// Estimated 95th-percentile latency, ns.
    pub p95_ns: u64,
    /// Estimated 99th-percentile latency, ns.
    pub p99_ns: u64,
}

/// Where flash-read time went, on average (diagnostic decomposition).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ReadBreakdown {
    /// Flash reads issued (host data + mapping + migrations).
    pub flash_reads: u64,
    /// Of which translation-page (CMT miss) reads.
    pub mapping_reads: u64,
    /// Mean time a read waited for its die to become available, ns.
    pub mean_die_wait_ns: f64,
    /// Mean time a read waited for its channel, ns.
    pub mean_channel_wait_ns: f64,
}

/// Where flash-program time went, on average (the write-side counterpart
/// of [`ReadBreakdown`]; GC migrations are charged separately and show up
/// in [`BottleneckReport::gc_stall_ns`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WriteBreakdown {
    /// Flash page programs issued (host destages + metadata writes).
    pub flash_programs: u64,
    /// Mean time a program waited for its die, ns (programs that merged
    /// into an executing multiplane window waited zero).
    pub mean_die_wait_ns: f64,
    /// Mean time a program's data transfer waited for its channel, ns.
    pub mean_channel_wait_ns: f64,
}

/// Full result of simulating one trace against one configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// All-request latency summary.
    pub latency: LatencySummary,
    /// Read-only latency summary.
    pub read_latency: LatencySummary,
    /// Write-only latency summary.
    pub write_latency: LatencySummary,
    /// Host-visible throughput in bytes per second.
    pub throughput_bps: f64,
    /// Wall-clock duration of the simulated run, ns.
    pub makespan_ns: u64,
    /// Bytes transferred for the host.
    pub host_bytes: u64,
    /// Data-cache hit fraction (reads).
    pub read_cache_hit_rate: f64,
    /// Cached-mapping-table hit fraction.
    pub cmt_hit_rate: f64,
    /// Data-cache evictions (pages displaced by capacity pressure, across
    /// the simulator's lifetime — matching the hit-rate counters).
    pub data_cache_evictions: u64,
    /// Cached-mapping-table evictions (translation pages displaced).
    pub cmt_evictions: u64,
    /// Log-scale request-latency histogram for this run.
    pub latency_buckets: LatencyBuckets,
    /// Percentiles estimated from `latency_buckets` (not the exact
    /// per-request summaries above — these are what cross-run diffs use,
    /// because histograms aggregate losslessly across runs).
    #[serde(default)]
    pub histogram_percentiles: HistogramPercentiles,
    /// Flash-array statistics (programs, erases, GC, wear leveling).
    pub flash: FlashStats,
    /// Read-path wait decomposition.
    pub read_breakdown: ReadBreakdown,
    /// Write-path wait decomposition (absent in pre-observatory reports —
    /// the default keeps those parseable).
    #[serde(default)]
    pub write_breakdown: WriteBreakdown,
    /// Per-resource latency attribution for this run (always populated —
    /// built from the always-on wait counters).
    #[serde(default)]
    pub bottleneck: BottleneckReport,
    /// Sampled device time series; empty unless telemetry was enabled
    /// while the run executed (see [`crate::observe`]).
    #[serde(default)]
    pub device: DeviceSeries,
    /// Write amplification: physical programs / host page-writes (0 when
    /// the host wrote nothing).
    pub write_amplification: f64,
    /// Energy breakdown.
    pub energy: EnergyReport,
    /// Average power draw, watts.
    pub average_power_w: f64,
}

impl SimReport {
    /// Mean latency in microseconds (convenience for reporting).
    pub fn mean_latency_us(&self) -> f64 {
        self.latency.mean_ns / 1000.0
    }

    /// Throughput in MiB/s (convenience for reporting).
    pub fn throughput_mibps(&self) -> f64 {
        self.throughput_bps / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_distribution() {
        let mut lats: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_latencies(&mut lats);
        assert_eq!(s.count, 100);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
        assert_eq!(s.p50_ns, 51); // index round(99*0.5)=50 -> value 51
        assert_eq!(s.p95_ns, 95);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = LatencySummary::from_latencies(&mut Vec::new());
        assert_eq!(s, LatencySummary::default());
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut lats = vec![5, 1, 9, 3];
        let s = LatencySummary::from_latencies(&mut lats);
        assert_eq!(s.max_ns, 9);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn latency_buckets_are_logarithmic() {
        let mut b = LatencyBuckets::default();
        b.observe(0); // absorbed by bucket 0
        b.observe(999);
        b.observe(1_000);
        b.observe(1_999);
        b.observe(2_000);
        b.observe(u64::MAX); // absorbed by the last bucket
        assert_eq!(b.counts[0], 4);
        assert_eq!(b.counts[1], 1);
        assert_eq!(b.counts[LATENCY_BUCKET_COUNT - 1], 1);
        assert_eq!(b.total(), 6);
        assert_eq!(LatencyBuckets::bucket_floor_ns(0), 1_000);
        assert_eq!(LatencyBuckets::bucket_floor_ns(3), 8_000);
    }

    #[test]
    fn bucket_boundaries_split_exactly() {
        let mut b = LatencyBuckets::default();
        for i in 0..LATENCY_BUCKET_COUNT {
            b.observe(LatencyBuckets::bucket_floor_ns(i));
        }
        for i in 0..LATENCY_BUCKET_COUNT - 1 {
            assert_eq!(b.counts[i], 1, "bucket {i}");
        }
        // The last floor lands in the last bucket alongside nothing else.
        assert_eq!(b.counts[LATENCY_BUCKET_COUNT - 1], 1);
    }

    #[test]
    fn percentiles_of_known_histogram() {
        // 100 requests in bucket 0 ([1000, 2000)): every percentile lies in
        // that bucket and interpolates by rank.
        let mut b = LatencyBuckets::default();
        b.counts[0] = 100;
        assert_eq!(b.percentile_ns(0.50), 1_500);
        assert_eq!(b.percentile_ns(0.99), 1_990);
        assert_eq!(b.percentile_ns(1.0), 2_000);

        // 90 fast + 10 slow: p50 in the fast bucket, p95/p99 in the slow
        // one ([8000, 16000)).
        let mut b = LatencyBuckets::default();
        b.counts[0] = 90;
        b.counts[3] = 10;
        let p = b.percentiles();
        assert!(p.p50_ns >= 1_000 && p.p50_ns < 2_000, "p50 {}", p.p50_ns);
        assert!(p.p95_ns >= 8_000 && p.p95_ns <= 16_000, "p95 {}", p.p95_ns);
        assert!(p.p99_ns >= 8_000 && p.p99_ns <= 16_000, "p99 {}", p.p99_ns);
        assert!(p.p95_ns < p.p99_ns, "higher percentile is later in bucket");
    }

    #[test]
    fn percentiles_edge_cases() {
        let empty = LatencyBuckets::default();
        assert_eq!(empty.percentile_ns(0.99), 0);
        assert_eq!(empty.percentiles(), HistogramPercentiles::default());

        // A single request: all percentiles land in its bucket.
        let mut one = LatencyBuckets::default();
        one.observe(5_000); // bucket 2: [4000, 8000)
        for p in [0.0, 0.5, 0.99, 1.0] {
            let v = one.percentile_ns(p);
            assert!((4_000..=8_000).contains(&v), "p{p} -> {v}");
        }

        // Everything in the open-ended last bucket stays bounded.
        let mut tail = LatencyBuckets::default();
        tail.counts[LATENCY_BUCKET_COUNT - 1] = 10;
        let v = tail.percentile_ns(0.99);
        let floor = LatencyBuckets::bucket_floor_ns(LATENCY_BUCKET_COUNT - 1);
        assert!(v >= floor && v <= floor * 2);
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let mut b = LatencyBuckets::default();
        for (i, n) in [(0, 500), (1, 300), (2, 150), (5, 40), (9, 10)] {
            b.counts[i] = n;
        }
        let mut last = 0;
        for p in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = b.percentile_ns(p);
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn unit_conversions() {
        let r = SimReport {
            latency: LatencySummary {
                mean_ns: 50_000.0,
                ..Default::default()
            },
            throughput_bps: 1024.0 * 1024.0 * 3.0,
            ..Default::default()
        };
        assert!((r.mean_latency_us() - 50.0).abs() < 1e-9);
        assert!((r.throughput_mibps() - 3.0).abs() < 1e-9);
    }
}
