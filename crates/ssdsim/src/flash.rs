//! Physical flash state: planes, blocks, page allocation, garbage
//! collection bookkeeping, and the write-striping allocator.

use crate::config::{GcPolicy, MigrationPolicy, SsdConfig};
use serde::{Deserialize, Serialize};

/// Location of a physical flash page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysicalLocation {
    /// Channel index.
    pub channel: u32,
    /// Chip (way) index within the channel.
    pub chip: u32,
    /// Die index within the chip.
    pub die: u32,
    /// Plane index within the die.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl PhysicalLocation {
    /// Flat plane index within the whole device.
    pub fn plane_index(&self, cfg: &SsdConfig) -> u32 {
        ((self.channel * cfg.chips_per_channel + self.chip) * cfg.dies_per_chip + self.die)
            * cfg.planes_per_die
            + self.plane
    }

    /// Flat die index within the whole device.
    pub fn die_index(&self, cfg: &SsdConfig) -> u32 {
        (self.channel * cfg.chips_per_channel + self.chip) * cfg.dies_per_chip + self.die
    }
}

/// Lifecycle state of a flash block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    Free,
    Active,
    Full,
}

#[derive(Debug, Clone)]
struct Block {
    valid: u16,
    erases: u16,
    state: BlockState,
}

/// Per-plane flash bookkeeping: block states, valid counts, write pointer.
///
/// On hybrid devices the first `slc_cache_blocks` blocks form the SLC-mode
/// cache tier with its own active block and write pointer; `active`,
/// `write_ptr`, and `free_pages` always describe the capacity tier (which
/// is the whole plane on homogeneous devices).
#[derive(Debug, Clone)]
struct Plane {
    blocks: Vec<Block>,
    active: u32,
    write_ptr: u32,
    free_pages: u64,
    /// Pages migrated into the active block by GC (valid on arrival).
    gc_pressure: bool,
    /// Active block of the SLC cache tier (hybrid only).
    cache_active: u32,
    /// Write pointer within the cache active block (hybrid only).
    cache_write_ptr: u32,
    /// Free pages remaining in the SLC cache tier (hybrid only).
    cache_free_pages: u64,
}

/// Statistics accumulated by the flash array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashStats {
    /// Host + internal page programs.
    pub programs: u64,
    /// Programs caused by GC migrations or wear-leveling swaps.
    pub migrated_pages: u64,
    /// Block erases performed.
    pub erases: u64,
    /// GC invocations.
    pub gc_invocations: u64,
    /// Static wear-leveling swaps performed.
    pub wearleveling_swaps: u64,
    /// Pages folded from the SLC cache tier into capacity flash (hybrid
    /// devices only; always zero for homogeneous families).
    #[serde(default)]
    pub slc_migrated_pages: u64,
}

/// One unit of work the flash array asks the timing layer to charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackgroundOp {
    /// Read+program of `pages` valid pages within `plane`, then one erase.
    GcCycle {
        /// Flat plane index.
        plane: u32,
        /// Valid pages migrated.
        pages: u32,
    },
    /// Wear-leveling swap: migrate a whole block and erase two blocks.
    WearLevelSwap {
        /// Flat plane index.
        plane: u32,
        /// Pages moved.
        pages: u32,
    },
    /// SLC-cache fold: read `pages` valid pages out of cache block `block`
    /// at SLC latency, program them into the capacity tier, erase the cache
    /// block. The block index lets the mapping layer relocate folded pages.
    SlcMigration {
        /// Flat plane index.
        plane: u32,
        /// Cache block (within the plane) that was folded.
        block: u32,
        /// Valid pages migrated into the capacity tier.
        pages: u32,
    },
}

/// The device's physical flash array.
///
/// Tracks per-block valid-page counts and erase counts exactly; this is the
/// state garbage collection and wear leveling operate on. Timing is *not*
/// modeled here — the array returns [`BackgroundOp`]s that the simulator
/// charges to its resource timelines.
#[derive(Debug)]
pub struct FlashArray {
    planes: Vec<Plane>,
    pages_per_block: u32,
    blocks_per_plane: u32,
    gc_threshold_pages: u64,
    gc_policy: GcPolicy,
    wl_enabled: bool,
    wl_threshold: u32,
    stats: FlashStats,
    stripe: u64,
    dims: [u64; 4],
    order: [usize; 4],
    /// SLC-cache blocks at the start of every plane (0 = homogeneous).
    slc_cache_blocks: u32,
    /// How folded pages leave the cache tier (hybrid only).
    migration_policy: Option<MigrationPolicy>,
    /// Watermark: fold whenever cache free pages drop below this.
    migration_low_pages: u64,
}

impl FlashArray {
    /// Builds an empty (fully erased) flash array for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SsdConfig::validate`].
    pub fn new(cfg: &SsdConfig) -> Self {
        cfg.validate().expect("valid configuration");
        let n_planes = cfg.total_planes() as usize;
        let slc_cache_blocks = cfg.slc_cache_blocks_per_plane();
        let cache_pages = u64::from(slc_cache_blocks) * u64::from(cfg.pages_per_block);
        let capacity_pages = cfg.pages_per_plane() - cache_pages;
        let plane = Plane {
            blocks: vec![
                Block {
                    valid: 0,
                    erases: 0,
                    state: BlockState::Free,
                };
                cfg.blocks_per_plane as usize
            ],
            active: slc_cache_blocks,
            write_ptr: 0,
            free_pages: capacity_pages,
            gc_pressure: false,
            cache_active: 0,
            cache_write_ptr: 0,
            cache_free_pages: cache_pages,
        };
        let mut planes = vec![plane; n_planes];
        for p in &mut planes {
            p.blocks[slc_cache_blocks as usize].state = BlockState::Active;
            if slc_cache_blocks > 0 {
                p.blocks[0].state = BlockState::Active;
            }
        }
        let gc_threshold_pages = (capacity_pages as f64 * cfg.gc_threshold).ceil() as u64;
        let migration_policy = match cfg.device_family {
            crate::config::DeviceFamily::Homogeneous => None,
            crate::config::DeviceFamily::HybridSlcCache {
                migration_policy, ..
            } => Some(migration_policy),
        };
        let migration_low_pages = match cfg.device_family {
            crate::config::DeviceFamily::HybridSlcCache {
                migration_threshold_pct,
                ..
            } => (cache_pages as f64 * migration_threshold_pct / 100.0).ceil() as u64,
            crate::config::DeviceFamily::Homogeneous => 0,
        };
        FlashArray {
            planes,
            pages_per_block: cfg.pages_per_block,
            blocks_per_plane: cfg.blocks_per_plane,
            gc_threshold_pages,
            gc_policy: cfg.gc_policy,
            wl_enabled: cfg.static_wearleveling_enabled,
            wl_threshold: cfg.static_wearleveling_threshold.max(1),
            stats: FlashStats::default(),
            stripe: 0,
            dims: [
                u64::from(cfg.channel_count),
                u64::from(cfg.chips_per_channel),
                u64::from(cfg.dies_per_chip),
                u64::from(cfg.planes_per_die),
            ],
            order: cfg.plane_allocation_scheme.order(),
            slc_cache_blocks,
            migration_policy,
            migration_low_pages,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FlashStats {
        self.stats
    }

    /// Number of planes.
    pub fn plane_count(&self) -> usize {
        self.planes.len()
    }

    /// Free pages remaining in a plane's capacity tier (the whole plane on
    /// homogeneous devices).
    ///
    /// # Panics
    ///
    /// Panics if `plane` is out of range.
    pub fn free_pages(&self, plane: u32) -> u64 {
        self.planes[plane as usize].free_pages
    }

    /// Free pages remaining in a plane's SLC cache tier (0 when homogeneous).
    ///
    /// # Panics
    ///
    /// Panics if `plane` is out of range.
    pub fn cache_free_pages(&self, plane: u32) -> u64 {
        self.planes[plane as usize].cache_free_pages
    }

    /// SLC-cache blocks per plane (0 when homogeneous).
    pub fn slc_cache_blocks(&self) -> u32 {
        self.slc_cache_blocks
    }

    /// Valid pages currently stored in a plane, both tiers.
    ///
    /// # Panics
    ///
    /// Panics if `plane` is out of range.
    pub fn valid_pages(&self, plane: u32) -> u64 {
        self.planes[plane as usize]
            .blocks
            .iter()
            .map(|b| u64::from(b.valid))
            .sum()
    }

    /// Pages the array is short of its per-plane GC free-page target,
    /// summed over planes (`sum(max(0, threshold - free))`). A rising
    /// backlog means allocation is outrunning garbage collection; the
    /// device observatory samples this as GC pressure.
    pub fn gc_backlog_pages(&self) -> u64 {
        self.planes
            .iter()
            .map(|p| self.gc_threshold_pages.saturating_sub(p.free_pages))
            .sum()
    }

    /// Pre-fills the array so that only `1 - fill_fraction` of each plane's
    /// pages remain free, modeling the paper's warm-up ("occupy at least 50%
    /// of the storage capacity"). Valid densities vary deterministically per
    /// block so greedy GC has meaningful choices.
    pub fn warm_up(&mut self, fill_fraction: f64) {
        let fill = fill_fraction.clamp(0.0, 0.95);
        let ppb = u64::from(self.pages_per_block);
        let cache = self.slc_cache_blocks as usize;
        // Warm-up data is cold by definition: it lives in the capacity tier.
        let tier_blocks = self.blocks_per_plane - self.slc_cache_blocks;
        for (pi, plane) in self.planes.iter_mut().enumerate() {
            let target_blocks = (fill * f64::from(tier_blocks)).floor() as usize;
            let mut filled = 0u64;
            for (bi, b) in plane.blocks.iter_mut().enumerate().skip(cache) {
                if bi - cache >= target_blocks || b.state != BlockState::Free {
                    continue;
                }
                // Deterministic pseudo-random valid density in [0.70, 1.0].
                let h = splitmix64((pi as u64) << 32 | bi as u64);
                let density = 0.70 + 0.30 * ((h % 1000) as f64 / 1000.0);
                b.valid = ((ppb as f64) * density) as u16;
                b.state = BlockState::Full;
                filled += ppb;
            }
            plane.free_pages = plane.free_pages.saturating_sub(filled);
        }
    }

    /// Chooses the plane the next host write stripes to, per the
    /// plane-allocation scheme, and advances the stripe pointer.
    pub fn next_write_plane(&mut self) -> u32 {
        let k = self.stripe;
        self.stripe = self.stripe.wrapping_add(1);
        let mut coords = [0u64; 4]; // channel, way, die, plane
        let mut rem = k;
        for &dim in &self.order {
            coords[dim] = rem % self.dims[dim];
            rem /= self.dims[dim];
        }
        // Wrap the slowest dimension.
        let slowest = self.order[3];
        coords[slowest] %= self.dims[slowest];
        let (c, w, d, p) = (coords[0], coords[1], coords[2], coords[3]);
        (((c * self.dims[1] + w) * self.dims[2] + d) * self.dims[3] + p) as u32
    }

    /// Programs one page into `plane`, returning the block and page indices
    /// plus any background work that became necessary (GC, wear leveling,
    /// SLC-cache folds).
    ///
    /// On homogeneous devices the page lands in the plane's active block;
    /// on hybrid devices every host/foreground program lands in the SLC
    /// cache tier and the configured migration policy decides when sealed
    /// cache blocks fold into capacity flash.
    ///
    /// # Panics
    ///
    /// Panics if `plane` is out of range.
    pub fn program_page(&mut self, plane: u32) -> (u32, u32, Vec<BackgroundOp>) {
        if self.slc_cache_blocks > 0 {
            self.program_cache_page(plane)
        } else {
            self.program_capacity_page(plane)
        }
    }

    /// Programs one page into the SLC cache tier and runs migration policy.
    fn program_cache_page(&mut self, plane: u32) -> (u32, u32, Vec<BackgroundOp>) {
        let mut ops = Vec::new();
        let ppb = self.pages_per_block;
        let pidx = plane as usize;

        if self.planes[pidx].cache_write_ptr >= ppb {
            self.seal_cache_active(pidx);
            if !self.open_new_cache_active(pidx) {
                // Every cache block is sealed: fold one now to make room.
                self.fold_cache_block(plane, &mut ops);
                let opened = self.open_new_cache_active(pidx);
                debug_assert!(opened, "fold must free a cache block");
            }
        }

        let plane_ref = &mut self.planes[pidx];
        let block = plane_ref.cache_active;
        let page = plane_ref.cache_write_ptr;
        plane_ref.cache_write_ptr += 1;
        plane_ref.blocks[block as usize].valid += 1;
        plane_ref.cache_free_pages = plane_ref.cache_free_pages.saturating_sub(1);
        self.stats.programs += 1;

        match self.migration_policy {
            // Trickle: fold one sealed block per host program when one
            // exists (deterministic stand-in for idle-window migration).
            Some(MigrationPolicy::Idle) => {
                self.fold_cache_block(plane, &mut ops);
            }
            // Burst: fold only once the cache runs low, until it recovers.
            Some(MigrationPolicy::Watermark) => {
                while self.planes[pidx].cache_free_pages < self.migration_low_pages {
                    if !self.fold_cache_block(plane, &mut ops) {
                        break;
                    }
                }
            }
            None => {}
        }
        if self.wl_enabled {
            if let Some(op) = self.maybe_wear_level(plane) {
                ops.push(op);
            }
        }
        (block, page, ops)
    }

    /// Folds the fullest-invalid sealed cache block of `plane` into the
    /// capacity tier: programs its valid pages there (triggering capacity
    /// GC if needed), erases the cache block, and records the op. Returns
    /// `false` when no sealed cache block exists.
    fn fold_cache_block(&mut self, plane: u32, ops: &mut Vec<BackgroundOp>) -> bool {
        let pidx = plane as usize;
        let cache = self.slc_cache_blocks as usize;
        let Some(victim) = self.planes[pidx].blocks[..cache]
            .iter()
            .enumerate()
            .filter(|(_, b)| b.state == BlockState::Full)
            .min_by_key(|&(i, b)| (b.valid, i))
            .map(|(i, _)| i)
        else {
            return false;
        };
        let valid = self.planes[pidx].blocks[victim].valid;
        // Program the folded pages into the capacity tier.
        let mut moved = 0u16;
        for _ in 0..valid {
            if self.planes[pidx].write_ptr >= self.pages_per_block {
                self.seal_active(pidx);
                if !self.open_new_active(pidx) {
                    if let Some(op) = self.collect_garbage(plane) {
                        ops.push(op);
                    }
                    if !self.open_new_active(pidx) {
                        self.emergency_erase(pidx);
                        if !self.open_new_active(pidx) {
                            break;
                        }
                    }
                }
            }
            let plane_ref = &mut self.planes[pidx];
            let active = plane_ref.active as usize;
            plane_ref.blocks[active].valid += 1;
            plane_ref.write_ptr += 1;
            plane_ref.free_pages = plane_ref.free_pages.saturating_sub(1);
            moved += 1;
        }
        // Erase the folded cache block.
        {
            let b = &mut self.planes[pidx].blocks[victim];
            b.valid = 0;
            b.erases = b.erases.saturating_add(1);
            b.state = BlockState::Free;
        }
        self.planes[pidx].cache_free_pages += u64::from(self.pages_per_block);
        self.stats.erases += 1;
        self.stats.slc_migrated_pages += u64::from(moved);
        ops.push(BackgroundOp::SlcMigration {
            plane,
            block: victim as u32,
            pages: u32::from(moved),
        });
        // Folding consumed capacity pages; keep the capacity tier's GC honest.
        if self.planes[pidx].free_pages < self.gc_threshold_pages {
            if let Some(op) = self.collect_garbage(plane) {
                ops.push(op);
            }
        }
        true
    }

    fn seal_cache_active(&mut self, pidx: usize) {
        let plane = &mut self.planes[pidx];
        let active = plane.cache_active as usize;
        plane.blocks[active].state = BlockState::Full;
    }

    fn open_new_cache_active(&mut self, pidx: usize) -> bool {
        let cache = self.slc_cache_blocks as usize;
        let plane = &mut self.planes[pidx];
        if let Some(idx) = plane.blocks[..cache]
            .iter()
            .position(|b| b.state == BlockState::Free)
        {
            plane.blocks[idx].state = BlockState::Active;
            plane.cache_active = idx as u32;
            plane.cache_write_ptr = 0;
            true
        } else {
            false
        }
    }

    /// Programs one page into `plane`'s capacity-tier active block.
    fn program_capacity_page(&mut self, plane: u32) -> (u32, u32, Vec<BackgroundOp>) {
        let mut ops = Vec::new();
        let ppb = self.pages_per_block;
        let pidx = plane as usize;

        // Ensure the active block has room.
        if self.planes[pidx].write_ptr >= ppb {
            self.seal_active(pidx);
            if !self.open_new_active(pidx) {
                // No free block: force a GC cycle to make room.
                if let Some(op) = self.collect_garbage(plane) {
                    ops.push(op);
                }
                if !self.open_new_active(pidx) {
                    // Device is truly full; reuse the fullest block after an
                    // emergency erase (degenerate but keeps the sim alive).
                    self.emergency_erase(pidx);
                    let opened = self.open_new_active(pidx);
                    debug_assert!(opened, "emergency erase must free a block");
                }
            }
        }

        let plane_ref = &mut self.planes[pidx];
        let block = plane_ref.active;
        let page = plane_ref.write_ptr;
        plane_ref.write_ptr += 1;
        plane_ref.blocks[block as usize].valid += 1;
        plane_ref.free_pages = plane_ref.free_pages.saturating_sub(1);
        self.stats.programs += 1;

        // Trigger GC when the plane dips below the threshold.
        if self.planes[pidx].free_pages < self.gc_threshold_pages && !self.planes[pidx].gc_pressure
        {
            self.planes[pidx].gc_pressure = true;
            if let Some(op) = self.collect_garbage(plane) {
                ops.push(op);
            }
            self.planes[pidx].gc_pressure = false;
        }
        if self.wl_enabled {
            if let Some(op) = self.maybe_wear_level(plane) {
                ops.push(op);
            }
        }
        (block, page, ops)
    }

    /// Invalidates one previously valid page in `plane`/`block` (the old
    /// copy of an overwritten logical page).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn invalidate(&mut self, plane: u32, block: u32) {
        let b = &mut self.planes[plane as usize].blocks[block as usize];
        if b.valid > 0 {
            b.valid -= 1;
        }
    }

    /// Invalidates one page "somewhere" in the plane: used when the old
    /// copy's exact block is unknown (warm-up resident data). Prefers the
    /// fullest block so overwrite-heavy workloads create cheap GC victims.
    pub fn invalidate_somewhere(&mut self, plane: u32, hint: u64) {
        let cache = self.slc_cache_blocks as usize;
        let plane_ref = &mut self.planes[plane as usize];
        // Resident-but-untracked data is cold: it lives in the capacity tier.
        let n = plane_ref.blocks.len() - cache;
        // Probe a few hashed positions, decrement the first full block.
        for probe in 0..8 {
            let idx = cache + (splitmix64(hint.wrapping_add(probe)) % n as u64) as usize;
            let b = &mut plane_ref.blocks[idx];
            if b.state == BlockState::Full && b.valid > 0 {
                b.valid -= 1;
                return;
            }
        }
    }

    fn seal_active(&mut self, pidx: usize) {
        let plane = &mut self.planes[pidx];
        let active = plane.active as usize;
        plane.blocks[active].state = BlockState::Full;
    }

    fn open_new_active(&mut self, pidx: usize) -> bool {
        let cache = self.slc_cache_blocks as usize;
        let plane = &mut self.planes[pidx];
        if let Some(free_idx) = plane.blocks[cache..]
            .iter()
            .position(|b| b.state == BlockState::Free)
            .map(|i| i + cache)
        {
            plane.blocks[free_idx].state = BlockState::Active;
            plane.active = free_idx as u32;
            plane.write_ptr = 0;
            true
        } else {
            false
        }
    }

    fn emergency_erase(&mut self, pidx: usize) {
        let cache = self.slc_cache_blocks as usize;
        let plane = &mut self.planes[pidx];
        // Erase the fullest non-active capacity block regardless of valid
        // data (cache blocks are reclaimed by folds, never sacrificed).
        if let Some((idx, _)) = plane
            .blocks
            .iter()
            .enumerate()
            .skip(cache)
            .filter(|(_, b)| b.state == BlockState::Full)
            .max_by_key(|(_, b)| b.valid)
        {
            let reclaimed = u64::from(self.pages_per_block);
            let b = &mut plane.blocks[idx];
            b.valid = 0;
            b.erases = b.erases.saturating_add(1);
            b.state = BlockState::Free;
            plane.free_pages += reclaimed;
            self.stats.erases += 1;
        }
    }

    /// Runs one GC cycle on `plane`: select a victim, account for the
    /// migration of its valid pages into the active block, erase it.
    fn collect_garbage(&mut self, plane: u32) -> Option<BackgroundOp> {
        let pidx = plane as usize;
        let cache = self.slc_cache_blocks as usize;
        let victim = {
            let plane_ref = &self.planes[pidx];
            let full = plane_ref
                .blocks
                .iter()
                .enumerate()
                .skip(cache)
                .filter(|(_, b)| b.state == BlockState::Full);
            match self.gc_policy {
                GcPolicy::Greedy => full.min_by_key(|(_, b)| b.valid).map(|(i, _)| i),
                GcPolicy::Random => {
                    let candidates: Vec<usize> = full.map(|(i, _)| i).collect();
                    if candidates.is_empty() {
                        None
                    } else {
                        let h = splitmix64(self.stats.gc_invocations ^ u64::from(plane));
                        Some(candidates[(h % candidates.len() as u64) as usize])
                    }
                }
            }
        }?;
        let valid = self.planes[pidx].blocks[victim].valid;
        // Migrate valid pages: program them into the active block.
        let mut moved = 0u16;
        for _ in 0..valid {
            // Migration consumes free pages in the same plane; we inline a
            // simplified program that cannot recursively trigger GC.
            let ppb = self.pages_per_block;
            if self.planes[pidx].write_ptr >= ppb {
                self.seal_active(pidx);
                if !self.open_new_active(pidx) {
                    break;
                }
            }
            let plane_ref = &mut self.planes[pidx];
            let active = plane_ref.active as usize;
            plane_ref.blocks[active].valid += 1;
            plane_ref.write_ptr += 1;
            plane_ref.free_pages = plane_ref.free_pages.saturating_sub(1);
            moved += 1;
        }
        // Erase the victim.
        let reclaimed = u64::from(self.pages_per_block);
        {
            let b = &mut self.planes[pidx].blocks[victim];
            b.valid = 0;
            b.erases = b.erases.saturating_add(1);
            b.state = BlockState::Free;
        }
        self.planes[pidx].free_pages += reclaimed;
        self.stats.erases += 1;
        self.stats.gc_invocations += 1;
        self.stats.migrated_pages += u64::from(moved);
        Some(BackgroundOp::GcCycle {
            plane,
            pages: u32::from(moved),
        })
    }

    fn maybe_wear_level(&mut self, plane: u32) -> Option<BackgroundOp> {
        let pidx = plane as usize;
        let cache = self.slc_cache_blocks as usize;
        // Wear leveling balances the capacity tier only: cache blocks cycle
        // orders of magnitude faster by design (and SLC endures it).
        let (min_e, max_e) = {
            let plane_ref = &self.planes[pidx];
            let mut min_e = u16::MAX;
            let mut max_e = 0u16;
            for b in &plane_ref.blocks[cache..] {
                min_e = min_e.min(b.erases);
                max_e = max_e.max(b.erases);
            }
            (min_e, max_e)
        };
        if u32::from(max_e.saturating_sub(min_e)) <= self.wl_threshold {
            return None;
        }
        // Swap: migrate the coldest (min-erase) block's data and erase it so
        // future hot writes land there.
        let cold = self.planes[pidx].blocks[cache..]
            .iter()
            .position(|b| b.erases == min_e && b.state == BlockState::Full)
            .map(|i| i + cache)?;
        let pages = self.planes[pidx].blocks[cold].valid;
        {
            let b = &mut self.planes[pidx].blocks[cold];
            b.valid = 0;
            b.erases = b.erases.saturating_add(1);
            b.state = BlockState::Free;
        }
        self.planes[pidx].free_pages += u64::from(self.pages_per_block);
        self.stats.erases += 1;
        self.stats.wearleveling_swaps += 1;
        self.stats.migrated_pages += u64::from(pages);
        Some(BackgroundOp::WearLevelSwap {
            plane,
            pages: u32::from(pages),
        })
    }

    /// Spread between the most- and least-erased block across the device.
    pub fn erase_spread(&self) -> u32 {
        let mut min_e = u16::MAX;
        let mut max_e = 0u16;
        for p in &self.planes {
            for b in &p.blocks {
                min_e = min_e.min(b.erases);
                max_e = max_e.max(b.erases);
            }
        }
        if min_e == u16::MAX {
            0
        } else {
            u32::from(max_e - min_e)
        }
    }
}

/// Deterministic 64-bit mixer (SplitMix64) for pseudo-placement decisions.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Computes a deterministic pseudo physical location for a logical page
/// that has never been written during simulation (warm-up resident data).
pub fn pseudo_location(cfg: &SsdConfig, lpn: u64) -> PhysicalLocation {
    let h = splitmix64(lpn);
    let channel = (h % u64::from(cfg.channel_count)) as u32;
    let h = h / u64::from(cfg.channel_count);
    let chip = (h % u64::from(cfg.chips_per_channel)) as u32;
    let h = h / u64::from(cfg.chips_per_channel);
    let die = (h % u64::from(cfg.dies_per_chip)) as u32;
    let h = h / u64::from(cfg.dies_per_chip);
    let plane = (h % u64::from(cfg.planes_per_die)) as u32;
    let h2 = splitmix64(lpn ^ 0xABCD_EF01);
    PhysicalLocation {
        channel,
        chip,
        die,
        plane,
        block: (h2 % u64::from(cfg.blocks_per_plane)) as u32,
        page: ((h2 >> 32) % u64::from(cfg.pages_per_block)) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SsdConfig {
        SsdConfig {
            channel_count: 2,
            chips_per_channel: 2,
            dies_per_chip: 1,
            planes_per_die: 1,
            blocks_per_plane: 8,
            pages_per_block: 16,
            gc_threshold: 0.2,
            gc_hard_threshold: 0.05,
            static_wearleveling_threshold: 4,
            ..SsdConfig::default()
        }
    }

    #[test]
    fn striping_cwdp_rotates_channels_first() {
        let mut fa = FlashArray::new(&tiny_cfg());
        // CWDP: channel varies fastest. Plane layout: ((c*2+w)*1+d)*1+p.
        let p0 = fa.next_write_plane();
        let p1 = fa.next_write_plane();
        // Consecutive writes land on different channels.
        let cfg = tiny_cfg();
        let ch0 = p0 / (cfg.chips_per_channel * cfg.dies_per_chip * cfg.planes_per_die);
        let ch1 = p1 / (cfg.chips_per_channel * cfg.dies_per_chip * cfg.planes_per_die);
        assert_ne!(ch0, ch1);
    }

    #[test]
    fn striping_visits_all_planes() {
        let cfg = tiny_cfg();
        let mut fa = FlashArray::new(&cfg);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..cfg.total_planes() {
            seen.insert(fa.next_write_plane());
        }
        assert_eq!(seen.len() as u64, cfg.total_planes());
    }

    #[test]
    fn program_decrements_free_pages() {
        let cfg = tiny_cfg();
        let mut fa = FlashArray::new(&cfg);
        let before = fa.free_pages(0);
        let (_, _, ops) = fa.program_page(0);
        assert!(ops.is_empty());
        assert_eq!(fa.free_pages(0), before - 1);
        assert_eq!(fa.stats().programs, 1);
    }

    #[test]
    fn filling_plane_triggers_gc() {
        let cfg = tiny_cfg();
        let mut fa = FlashArray::new(&cfg);
        let total = cfg.pages_per_plane();
        let mut saw_gc = false;
        for i in 0..(total * 2) {
            let (block, _, ops) = fa.program_page(0);
            // Immediately invalidate what we wrote so GC victims are cheap.
            fa.invalidate(0, block);
            if ops
                .iter()
                .any(|op| matches!(op, BackgroundOp::GcCycle { .. }))
            {
                saw_gc = true;
            }
            if i > total && saw_gc {
                break;
            }
        }
        assert!(saw_gc, "GC should trigger under sustained overwrites");
        assert!(fa.stats().erases > 0);
    }

    #[test]
    fn greedy_gc_prefers_invalid_blocks() {
        let cfg = SsdConfig {
            gc_policy: GcPolicy::Greedy,
            ..tiny_cfg()
        };
        let mut fa = FlashArray::new(&cfg);
        // Fill the plane with alternating fully-valid and fully-invalid blocks.
        let total = cfg.pages_per_plane();
        for i in 0..total {
            let (block, _, _) = fa.program_page(0);
            if (i / u64::from(cfg.pages_per_block)) % 2 == 0 {
                fa.invalidate(0, block);
            }
        }
        let migrated_before = fa.stats().migrated_pages;
        // Next program must trigger GC on a cheap (half-invalid) victim.
        let (_, _, _ops) = fa.program_page(0);
        let migrated = fa.stats().migrated_pages - migrated_before;
        // Greedy victim has at most half its pages valid.
        assert!(
            migrated <= u64::from(cfg.pages_per_block),
            "greedy GC migrated {migrated} pages"
        );
    }

    #[test]
    fn warm_up_reduces_free_pages() {
        let cfg = tiny_cfg();
        let mut fa = FlashArray::new(&cfg);
        fa.warm_up(0.5);
        let pp = cfg.pages_per_plane();
        for p in 0..cfg.total_planes() as u32 {
            assert!(fa.free_pages(p) < pp);
            assert!(fa.free_pages(p) >= pp / 4);
        }
    }

    #[test]
    fn invalidate_somewhere_targets_full_blocks() {
        let cfg = tiny_cfg();
        let mut fa = FlashArray::new(&cfg);
        fa.warm_up(0.6);
        // Must not panic and should not change free pages.
        let before = fa.free_pages(0);
        fa.invalidate_somewhere(0, 42);
        assert_eq!(fa.free_pages(0), before);
    }

    #[test]
    fn pseudo_location_is_deterministic_and_in_range() {
        let cfg = tiny_cfg();
        for lpn in 0..1000 {
            let a = pseudo_location(&cfg, lpn);
            let b = pseudo_location(&cfg, lpn);
            assert_eq!(a, b);
            assert!(a.channel < cfg.channel_count);
            assert!(a.chip < cfg.chips_per_channel);
            assert!(a.die < cfg.dies_per_chip);
            assert!(a.plane < cfg.planes_per_die);
            assert!(a.block < cfg.blocks_per_plane);
            assert!(a.page < cfg.pages_per_block);
            assert!(a.plane_index(&cfg) < cfg.total_planes() as u32);
            assert!(a.die_index(&cfg) < cfg.total_dies() as u32);
        }
    }

    #[test]
    fn pseudo_location_spreads_across_channels() {
        let cfg = tiny_cfg();
        let mut seen = std::collections::HashSet::new();
        for lpn in 0..64 {
            seen.insert(pseudo_location(&cfg, lpn).channel);
        }
        assert_eq!(seen.len() as u32, cfg.channel_count);
    }

    #[test]
    fn wear_leveling_triggers_on_spread() {
        let cfg = SsdConfig {
            static_wearleveling_enabled: true,
            static_wearleveling_threshold: 2,
            gc_threshold: 0.3,
            ..tiny_cfg()
        };
        let mut fa = FlashArray::new(&cfg);
        // Hammer one plane with overwrites to build up erase spread.
        for _ in 0..(cfg.pages_per_plane() * 6) {
            let (block, _, _) = fa.program_page(0);
            fa.invalidate(0, block);
        }
        assert!(
            fa.stats().wearleveling_swaps > 0 || fa.erase_spread() <= 2,
            "wear leveling should bound the erase spread"
        );
    }

    #[test]
    fn hybrid_programs_land_in_cache_and_fold() {
        use crate::config::{DeviceFamily, MigrationPolicy};
        let cfg = SsdConfig {
            device_family: DeviceFamily::HybridSlcCache {
                cache_blocks_pct: 20.0,
                migration_policy: MigrationPolicy::Idle,
                migration_threshold_pct: 25.0,
            },
            ..tiny_cfg()
        };
        let mut fa = FlashArray::new(&cfg);
        let cache = fa.slc_cache_blocks();
        assert!(cache >= 1);
        assert_eq!(
            fa.cache_free_pages(0),
            u64::from(cache * cfg.pages_per_block)
        );
        let mut folded = false;
        for _ in 0..(cfg.pages_per_plane() * 2) {
            let (block, _page, ops) = fa.program_page(0);
            // Host writes always land in the SLC cache tier.
            assert!(block < cache, "host program hit capacity block {block}");
            if ops
                .iter()
                .any(|op| matches!(op, BackgroundOp::SlcMigration { .. }))
            {
                folded = true;
            }
        }
        assert!(folded, "idle policy must fold sealed cache blocks");
        assert!(fa.stats().slc_migrated_pages > 0);
    }

    #[test]
    fn hybrid_watermark_defers_folds_until_low() {
        use crate::config::{DeviceFamily, MigrationPolicy};
        let cfg = SsdConfig {
            device_family: DeviceFamily::HybridSlcCache {
                cache_blocks_pct: 40.0,
                migration_policy: MigrationPolicy::Watermark,
                migration_threshold_pct: 30.0,
            },
            ..tiny_cfg()
        };
        let mut fa = FlashArray::new(&cfg);
        let cache_pages = u64::from(fa.slc_cache_blocks()) * u64::from(cfg.pages_per_block);
        // Writing a fraction of the cache stays above the watermark: no fold.
        for _ in 0..(cache_pages / 2) {
            let (_, _, ops) = fa.program_page(0);
            assert!(
                !ops.iter()
                    .any(|op| matches!(op, BackgroundOp::SlcMigration { .. })),
                "watermark policy folded while the cache was still high"
            );
        }
        // Filling past the watermark must eventually fold.
        for _ in 0..cache_pages {
            let _ = fa.program_page(0);
        }
        assert!(fa.stats().slc_migrated_pages > 0);
    }

    #[test]
    fn device_survives_saturation() {
        // Writing far beyond capacity without invalidations must not panic
        // (emergency erase path).
        let cfg = SsdConfig {
            blocks_per_plane: 4,
            pages_per_block: 8,
            channel_count: 1,
            chips_per_channel: 1,
            dies_per_chip: 1,
            planes_per_die: 1,
            ..tiny_cfg()
        };
        let mut fa = FlashArray::new(&cfg);
        for _ in 0..200 {
            let _ = fa.program_page(0);
        }
        assert!(fa.stats().erases > 0);
    }
}
